//! `scrubsim` — run one scrub simulation from the command line.
//!
//! ```bash
//! scrubsim [--lines N] [--code secded|bch-T] [--policy NAME] \
//!          [--workload NAME|idle] [--hours H] [--interval SECS] [--seed S] \
//!          [--threads N]
//! ```
//!
//! Policies: `none`, `basic`, `threshold`, `age-aware`, `adaptive`,
//! `combined` (default). Workloads: the 8-name suite (see `--help`).

use scrubsim::prelude::*;

struct Args {
    lines: u32,
    code: CodeSpec,
    policy_name: String,
    workload: Option<WorkloadId>,
    hours: f64,
    interval_s: f64,
    seed: u64,
    /// Bank-sweep workers; 0 = auto ($SCRUBSIM_THREADS or all cores).
    /// Results are bit-identical for every value.
    threads: usize,
}

fn usage() -> ! {
    eprintln!(
        "usage: scrubsim [--lines N] [--code secded|bch-1..bch-16] [--policy NAME]\n\
         \x20               [--workload NAME|idle] [--hours H] [--interval SECS] [--seed S]\n\
         \x20               [--threads N]   (default: $SCRUBSIM_THREADS or all cores;\n\
         \x20                                results are identical for every N)\n\
         policies:  none basic threshold age-aware adaptive combined\n\
         workloads: db-oltp db-olap web-serve logging stream batch kv-cache archive idle"
    );
    std::process::exit(2);
}

fn parse_code(s: &str) -> Option<CodeSpec> {
    if s == "secded" {
        return Some(CodeSpec::secded_line());
    }
    let t = s.strip_prefix("bch-")?.parse::<u32>().ok()?;
    if (1..=16).contains(&t) {
        Some(CodeSpec::bch_line(t))
    } else {
        None
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        lines: 1 << 14,
        code: CodeSpec::bch_line(6),
        policy_name: "combined".to_string(),
        workload: Some(WorkloadId::DbOltp),
        hours: 24.0,
        interval_s: 900.0,
        seed: 0,
        threads: 0,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--lines" => args.lines = value().parse().unwrap_or_else(|_| usage()),
            "--code" => args.code = parse_code(&value()).unwrap_or_else(|| usage()),
            "--policy" => args.policy_name = value(),
            "--workload" => {
                let v = value();
                args.workload = if v == "idle" {
                    None
                } else {
                    Some(
                        WorkloadId::all()
                            .into_iter()
                            .find(|w| w.name() == v)
                            .unwrap_or_else(|| usage()),
                    )
                };
            }
            "--hours" => args.hours = value().parse().unwrap_or_else(|_| usage()),
            "--interval" => args.interval_s = value().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = value().parse().unwrap_or_else(|_| usage()),
            "--threads" => args.threads = value().parse().unwrap_or_else(|_| usage()),
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let theta = args.code.guaranteed_t().saturating_sub(2).max(1);
    let policy = match args.policy_name.as_str() {
        "none" => PolicyKind::None,
        "basic" => PolicyKind::Basic {
            interval_s: args.interval_s,
        },
        "threshold" => PolicyKind::Threshold {
            interval_s: args.interval_s,
            theta,
        },
        "age-aware" => PolicyKind::AgeAware {
            interval_s: args.interval_s,
            theta,
            min_age_s: args.interval_s * 2.0 / 3.0,
        },
        "adaptive" => PolicyKind::Adaptive {
            interval_s: args.interval_s,
            theta,
            regions: 64,
        },
        "combined" => PolicyKind::Combined {
            interval_s: args.interval_s,
            theta,
            regions: 64,
            min_age_s: args.interval_s * 2.0 / 3.0,
        },
        _ => usage(),
    };
    let traffic = match args.workload {
        Some(id) => DemandTraffic::suite(id),
        None => DemandTraffic::Idle,
    };
    let threads = if args.threads > 0 {
        args.threads
    } else {
        scrub_exec::default_threads()
    };
    let config = SimConfig::builder()
        .num_lines(args.lines)
        .code(args.code)
        .policy(policy)
        .traffic(traffic)
        .horizon_s(args.hours * 3600.0)
        .seed(args.seed)
        .threads(threads)
        .build();
    let report = Simulation::new(config).run();
    println!("{report}");
    println!(
        "\nUE rate: {:.3}/GiB-day   scrub energy: {:.2} nJ/line-day",
        report.ue_per_gib_day(),
        report.scrub_energy_nj_per_line_day()
    );
}
