//! `scrubsim` — run one scrub simulation from the command line.
//!
//! ```bash
//! scrubsim [--lines N] [--code secded|bch-T] [--policy NAME] \
//!          [--workload NAME|idle] [--hours H] [--interval SECS] [--seed S] \
//!          [--threads N] [--fault-campaign SPEC]
//! ```
//!
//! Policies: `none`, `basic`, `threshold`, `age-aware`, `adaptive`,
//! `combined` (default). Workloads: the 8-name suite (see `--help`).

use pcm_memsim::CampaignSpec;
use scrubsim::prelude::*;

struct Args {
    lines: u32,
    code: CodeSpec,
    policy_name: String,
    workload: Option<WorkloadId>,
    hours: f64,
    interval_s: f64,
    seed: u64,
    /// Bank-sweep workers; 0 = auto ($SCRUBSIM_THREADS or all cores).
    /// Results are bit-identical for every value.
    threads: usize,
    campaign: Option<CampaignSpec>,
}

fn usage() -> ! {
    eprintln!(
        "usage: scrubsim [--lines N] [--code secded|bch-1..bch-16] [--policy NAME]\n\
         \x20               [--workload NAME|idle] [--hours H] [--interval SECS] [--seed S]\n\
         \x20               [--threads N]   (default: $SCRUBSIM_THREADS or all cores;\n\
         \x20                                results are identical for every N)\n\
         \x20               [--fault-campaign SPEC]  deterministic fault campaign, e.g.\n\
         \x20                                'seed=1;stuck=lines:8,cells:6'\n\
         policies:  none basic threshold age-aware adaptive combined\n\
         workloads: db-oltp db-olap web-serve logging stream batch kv-cache archive idle"
    );
    std::process::exit(2);
}

/// One-line fatal error naming the offending input; exit code matches
/// usage errors so scripts can treat both as "bad invocation".
fn fail(msg: &str) -> ! {
    eprintln!("scrubsim: {msg}");
    std::process::exit(2);
}

/// Parses a duration-like flag, rejecting NaN, infinities, and
/// non-positive values with a one-line error.
fn parse_positive_f64(flag: &str, raw: &str) -> f64 {
    match raw.parse::<f64>() {
        Ok(x) if x.is_finite() && x > 0.0 => x,
        _ => fail(&format!(
            "{flag} must be a positive finite number, got {raw:?}"
        )),
    }
}

fn parse_code(s: &str) -> Option<CodeSpec> {
    if s == "secded" {
        return Some(CodeSpec::secded_line());
    }
    let t = s.strip_prefix("bch-")?.parse::<u32>().ok()?;
    if (1..=16).contains(&t) {
        Some(CodeSpec::bch_line(t))
    } else {
        None
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        lines: 1 << 14,
        code: CodeSpec::bch_line(6),
        policy_name: "combined".to_string(),
        workload: Some(WorkloadId::DbOltp),
        hours: 24.0,
        interval_s: 900.0,
        seed: 0,
        threads: 0,
        campaign: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--lines" => {
                let raw = value();
                match raw.parse::<u32>() {
                    Ok(n) if n > 0 => args.lines = n,
                    _ => fail(&format!("--lines must be a positive integer, got {raw:?}")),
                }
            }
            "--code" => {
                let raw = value();
                args.code = parse_code(&raw).unwrap_or_else(|| {
                    fail(&format!(
                        "--code must be secded or bch-1..bch-16, got {raw:?}"
                    ))
                });
            }
            "--policy" => args.policy_name = value(),
            "--workload" => {
                let v = value();
                args.workload = if v == "idle" {
                    None
                } else {
                    Some(
                        WorkloadId::all()
                            .into_iter()
                            .find(|w| w.name() == v)
                            .unwrap_or_else(|| fail(&format!("unknown workload {v:?}"))),
                    )
                };
            }
            "--hours" => {
                let raw = value();
                args.hours = parse_positive_f64("--hours", &raw);
            }
            "--interval" => {
                let raw = value();
                args.interval_s = parse_positive_f64("--interval", &raw);
            }
            "--seed" => {
                let raw = value();
                args.seed = raw
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--seed must be a u64, got {raw:?}")));
            }
            "--threads" => {
                let raw = value();
                match raw.parse::<usize>() {
                    Ok(n) if n > 0 => args.threads = n,
                    _ => fail(&format!(
                        "--threads must be a positive integer, got {raw:?}"
                    )),
                }
            }
            "--fault-campaign" => {
                let raw = value();
                args.campaign = Some(raw.parse().unwrap_or_else(|e: String| fail(&e)));
            }
            _ => usage(),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    // Validate the environment up front: a malformed SCRUBSIM_THREADS
    // fails loudly here instead of being silently ignored mid-run.
    if let Err(e) = scrub_exec::env_threads() {
        fail(&e);
    }
    let theta = args.code.guaranteed_t().saturating_sub(2).max(1);
    let policy = match args.policy_name.as_str() {
        "none" => PolicyKind::None,
        "basic" => PolicyKind::Basic {
            interval_s: args.interval_s,
        },
        "threshold" => PolicyKind::Threshold {
            interval_s: args.interval_s,
            theta,
        },
        "age-aware" => PolicyKind::AgeAware {
            interval_s: args.interval_s,
            theta,
            min_age_s: args.interval_s * 2.0 / 3.0,
        },
        "adaptive" => PolicyKind::Adaptive {
            interval_s: args.interval_s,
            theta,
            regions: 64,
        },
        "combined" => PolicyKind::Combined {
            interval_s: args.interval_s,
            theta,
            regions: 64,
            min_age_s: args.interval_s * 2.0 / 3.0,
        },
        other => fail(&format!("unknown policy {other:?}")),
    };
    let traffic = match args.workload {
        Some(id) => DemandTraffic::suite(id),
        None => DemandTraffic::Idle,
    };
    let threads = if args.threads > 0 {
        args.threads
    } else {
        scrub_exec::default_threads()
    };
    let mut builder = SimConfig::builder();
    builder
        .num_lines(args.lines)
        .code(args.code)
        .policy(policy)
        .traffic(traffic)
        .horizon_s(args.hours * 3600.0)
        .seed(args.seed)
        .threads(threads);
    if let Some(spec) = args.campaign {
        builder.fault_campaign(spec);
    }
    let report = Simulation::new(builder.build()).run();
    println!("{report}");
    println!(
        "\nUE rate: {:.3}/GiB-day   scrub energy: {:.2} nJ/line-day",
        report.ue_per_gib_day(),
        report.scrub_energy_nj_per_line_day()
    );
}
