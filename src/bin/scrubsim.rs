//! `scrubsim` — run one scrub simulation from the command line.
//!
//! ```bash
//! scrubsim [--lines N] [--code secded|bch-T] [--policy NAME] \
//!          [--workload NAME|idle] [--hours H] [--interval SECS] [--seed S] \
//!          [--threads N] [--engine stepped|event] [--fault-campaign SPEC] \
//!          [--resume SNAP] [--checkpoint-out SNAP --checkpoint-every SECS] \
//!          [--bench-out JSON]
//! ```
//!
//! Policies: `none`, `basic`, `threshold`, `age-aware`, `adaptive`,
//! `tour`, `profiled`, `combined` (default). Workloads: the 8-name suite
//! (see `--help`). Codes: `secded`, `bch-1..16`, `rs:N,K` (Reed–Solomon
//! over GF(2^8), e.g. `rs:72,64`).
//!
//! ## Split-horizon runs
//!
//! With `--checkpoint-out` + `--checkpoint-every`, the process runs ONE
//! segment (to the next cadence boundary), writes a sealed snapshot, and
//! exits without a report. A later invocation with the *same* simulation
//! flags plus `--resume SNAP` continues from the snapshot; the invocation
//! that reaches the horizon prints a report byte-identical to a
//! continuous run's.

use pcm_memsim::CampaignSpec;
use scrubsim::prelude::*;

struct Args {
    lines: u32,
    code: CodeSpec,
    policy_name: String,
    workload: Option<WorkloadId>,
    hours: f64,
    interval_s: f64,
    seed: u64,
    /// Bank-sweep workers; 0 = auto ($SCRUBSIM_THREADS or all cores).
    /// Results are bit-identical for every value.
    threads: usize,
    /// Simulation core; both produce byte-identical output.
    engine: EngineKind,
    campaign: Option<CampaignSpec>,
    resume: Option<String>,
    checkpoint_out: Option<String>,
    checkpoint_every_s: Option<f64>,
    bench_out: Option<String>,
    /// Token-bucket refill rate for `--policy tour`; `None` defaults to
    /// 2x the nominal slot rate (an uncontended tour never throttles).
    scrub_iops: Option<f64>,
    /// Token-bucket capacity for `--policy tour`.
    scrub_burst: f64,
    /// Throttled slots tolerated before a tour probe is forced.
    max_defer: u32,
    /// Risk-table capacity for `--policy profiled`; `None` defaults to
    /// `lines / 16` (min 16).
    profile_capacity: Option<u32>,
    /// Hot-interleave stride for `--policy profiled`.
    profile_stride: u32,
    /// Quiet-line tour stretch for `--policy profiled`.
    profile_stretch: u32,
    /// Hot-line score threshold for `--policy profiled`.
    profile_risk: u32,
}

fn usage() -> ! {
    eprintln!(
        "usage: scrubsim [--lines N] [--code secded|bch-1..bch-16|rs:N,K] [--policy NAME]\n\
         \x20               [--workload NAME|idle] [--hours H] [--interval SECS] [--seed S]\n\
         \x20               [--threads N]   (default: $SCRUBSIM_THREADS or all cores;\n\
         \x20                                results are identical for every N)\n\
         \x20               [--engine stepped|event]  simulation core (default stepped;\n\
         \x20                                the event core skip-aheads idle time, same output)\n\
         \x20               [--fault-campaign SPEC]  deterministic fault campaign, e.g.\n\
         \x20                                'seed=1;stuck=lines:8,cells:6'\n\
         \x20               [--resume SNAP]          continue from a snapshot file\n\
         \x20               [--checkpoint-out SNAP --checkpoint-every SECS]\n\
         \x20                                run one segment, snapshot, exit (no report)\n\
         \x20               [--bench-out JSON]       write snapshot-size metrics\n\
         \x20               [--scrub-iops N]  token-bucket budget for --policy tour|profiled\n\
         \x20               [--scrub-burst N] bucket capacity (default 64)\n\
         \x20               [--max-defer N]   throttled slots before a forced probe (default 8)\n\
         \x20               [--profile-capacity N] risk-table entries for --policy profiled\n\
         \x20                                (default lines/16)\n\
         \x20               [--profile-stride N]   hot-line interleave stride (default 4, >= 2)\n\
         \x20               [--profile-stretch N]  quiet-line tour stretch (default 2)\n\
         \x20               [--profile-risk N]     hot-line score threshold (default 2)\n\
         policies:  none basic threshold age-aware adaptive tour profiled combined\n\
         workloads: db-oltp db-olap web-serve logging stream batch kv-cache archive idle"
    );
    std::process::exit(2);
}

/// One-line fatal error naming the offending input; exit code matches
/// usage errors so scripts can treat both as "bad invocation".
fn fail(msg: &str) -> ! {
    eprintln!("scrubsim: {msg}");
    std::process::exit(2);
}

/// Parses a duration-like flag, rejecting NaN, infinities, and
/// non-positive values with a one-line error.
fn parse_positive_f64(flag: &str, raw: &str) -> f64 {
    match raw.parse::<f64>() {
        Ok(x) if x.is_finite() && x > 0.0 => x,
        _ => fail(&format!(
            "{flag} must be a positive finite number, got {raw:?}"
        )),
    }
}

fn parse_code(s: &str) -> Option<CodeSpec> {
    if s == "secded" {
        return Some(CodeSpec::secded_line());
    }
    if let Some(nk) = s.strip_prefix("rs:") {
        let (n, k) = nk.split_once(',')?;
        let n = n.trim().parse::<u32>().ok()?;
        let k = k.trim().parse::<u32>().ok()?;
        // Mirror CodeSpec::rs_line's panics as parse failures: a 512-bit
        // data payload needs k = 64 byte symbols, 1 <= k < n <= 255,
        // even parity.
        if !(1..=255).contains(&n) || k == 0 || k >= n || (n - k) % 2 != 0 || k * 8 != 512 {
            return None;
        }
        return Some(CodeSpec::rs_line(n, k));
    }
    let t = s.strip_prefix("bch-")?.parse::<u32>().ok()?;
    if (1..=16).contains(&t) {
        Some(CodeSpec::bch_line(t))
    } else {
        None
    }
}

fn parse_args() -> Args {
    let mut args = Args {
        lines: 1 << 14,
        code: CodeSpec::bch_line(6),
        policy_name: "combined".to_string(),
        workload: Some(WorkloadId::DbOltp),
        hours: 24.0,
        interval_s: 900.0,
        seed: 0,
        threads: 0,
        engine: EngineKind::Stepped,
        campaign: None,
        resume: None,
        checkpoint_out: None,
        checkpoint_every_s: None,
        bench_out: None,
        scrub_iops: None,
        scrub_burst: 64.0,
        max_defer: 8,
        profile_capacity: None,
        profile_stride: 4,
        profile_stretch: 2,
        profile_risk: 2,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--lines" => {
                let raw = value();
                match raw.parse::<u32>() {
                    Ok(n) if n > 0 => args.lines = n,
                    _ => fail(&format!("--lines must be a positive integer, got {raw:?}")),
                }
            }
            // `--ecc` is an alias kept for symmetry with experiment
            // configs that name the knob by its subsystem.
            "--code" | "--ecc" => {
                let raw = value();
                args.code = parse_code(&raw).unwrap_or_else(|| {
                    fail(&format!(
                        "--code must be secded, bch-1..bch-16, or rs:N,K \
                         (1 <= K < N <= 255, K*8 = 512 data bits, even parity), got {raw:?}"
                    ))
                });
            }
            "--policy" => args.policy_name = value(),
            "--workload" => {
                let v = value();
                args.workload = if v == "idle" {
                    None
                } else {
                    Some(
                        WorkloadId::all()
                            .into_iter()
                            .find(|w| w.name() == v)
                            .unwrap_or_else(|| fail(&format!("unknown workload {v:?}"))),
                    )
                };
            }
            "--hours" => {
                let raw = value();
                args.hours = parse_positive_f64("--hours", &raw);
            }
            "--interval" => {
                let raw = value();
                args.interval_s = parse_positive_f64("--interval", &raw);
            }
            "--seed" => {
                let raw = value();
                args.seed = raw
                    .parse()
                    .unwrap_or_else(|_| fail(&format!("--seed must be a u64, got {raw:?}")));
            }
            "--threads" => {
                let raw = value();
                match raw.parse::<usize>() {
                    Ok(n) if n > 0 => args.threads = n,
                    _ => fail(&format!(
                        "--threads must be a positive integer, got {raw:?}"
                    )),
                }
            }
            "--engine" => {
                let raw = value();
                args.engine = EngineKind::parse(&raw).unwrap_or_else(|| {
                    fail(&format!(
                        "--engine must be 'stepped' or 'event', got {raw:?}"
                    ))
                });
            }
            "--fault-campaign" => {
                let raw = value();
                args.campaign = Some(raw.parse().unwrap_or_else(|e: String| fail(&e)));
            }
            "--resume" => args.resume = Some(value()),
            "--checkpoint-out" => args.checkpoint_out = Some(value()),
            "--checkpoint-every" => {
                let raw = value();
                args.checkpoint_every_s = Some(parse_positive_f64("--checkpoint-every", &raw));
            }
            "--bench-out" => args.bench_out = Some(value()),
            "--scrub-iops" => {
                let raw = value();
                args.scrub_iops = Some(parse_positive_f64("--scrub-iops", &raw));
            }
            "--scrub-burst" => {
                let raw = value();
                let burst = parse_positive_f64("--scrub-burst", &raw);
                if burst < 1.0 {
                    fail(&format!(
                        "--scrub-burst must hold at least one token, got {raw:?}"
                    ));
                }
                args.scrub_burst = burst;
            }
            "--max-defer" => {
                let raw = value();
                args.max_defer = raw.parse().unwrap_or_else(|_| {
                    fail(&format!(
                        "--max-defer must be a non-negative integer, got {raw:?}"
                    ))
                });
            }
            "--profile-capacity" => {
                let raw = value();
                match raw.parse::<u32>() {
                    Ok(n) if n > 0 => args.profile_capacity = Some(n),
                    _ => fail(&format!(
                        "--profile-capacity must be a positive integer, got {raw:?}"
                    )),
                }
            }
            "--profile-stride" => {
                let raw = value();
                match raw.parse::<u32>() {
                    Ok(n) if n >= 2 => args.profile_stride = n,
                    _ => fail(&format!(
                        "--profile-stride must be an integer >= 2, got {raw:?}"
                    )),
                }
            }
            "--profile-stretch" => {
                let raw = value();
                match raw.parse::<u32>() {
                    Ok(n) if n > 0 => args.profile_stretch = n,
                    _ => fail(&format!(
                        "--profile-stretch must be a positive integer, got {raw:?}"
                    )),
                }
            }
            "--profile-risk" => {
                let raw = value();
                match raw.parse::<u32>() {
                    Ok(n) if n > 0 => args.profile_risk = n,
                    _ => fail(&format!(
                        "--profile-risk must be a positive integer, got {raw:?}"
                    )),
                }
            }
            _ => usage(),
        }
    }
    if args.checkpoint_out.is_some() != args.checkpoint_every_s.is_some() {
        fail("--checkpoint-out and --checkpoint-every must be given together");
    }
    args
}

fn main() {
    let args = parse_args();
    // Validate the environment up front: a malformed SCRUBSIM_THREADS
    // fails loudly here instead of being silently ignored mid-run.
    if let Err(e) = scrub_exec::env_threads() {
        fail(&e);
    }
    let theta = args.code.guaranteed_t().saturating_sub(2).max(1);
    let policy = match args.policy_name.as_str() {
        "none" => PolicyKind::None,
        "basic" => PolicyKind::Basic {
            interval_s: args.interval_s,
        },
        "threshold" => PolicyKind::Threshold {
            interval_s: args.interval_s,
            theta,
        },
        "age-aware" => PolicyKind::AgeAware {
            interval_s: args.interval_s,
            theta,
            min_age_s: args.interval_s * 2.0 / 3.0,
        },
        "adaptive" => PolicyKind::Adaptive {
            interval_s: args.interval_s,
            theta,
            regions: 64,
        },
        "tour" => PolicyKind::Tour {
            interval_s: args.interval_s,
            theta,
            // Default budget: twice the nominal slot rate, so an
            // uncontended tour never throttles.
            iops: args
                .scrub_iops
                .unwrap_or(2.0 * args.lines as f64 / args.interval_s),
            burst: args.scrub_burst,
            max_defer: args.max_defer,
        },
        "profiled" => PolicyKind::Profiled {
            interval_s: args.interval_s,
            theta,
            // Same default budget as the tour: twice the nominal slot
            // rate, so an uncontended run never throttles.
            iops: args
                .scrub_iops
                .unwrap_or(2.0 * args.lines as f64 / args.interval_s),
            burst: args.scrub_burst,
            max_defer: args.max_defer,
            capacity: args.profile_capacity.unwrap_or((args.lines / 16).max(16)),
            hot_stride: args.profile_stride,
            stretch: args.profile_stretch,
            risk: args.profile_risk,
        },
        "combined" => PolicyKind::Combined {
            interval_s: args.interval_s,
            theta,
            regions: 64,
            min_age_s: args.interval_s * 2.0 / 3.0,
        },
        other => fail(&format!("unknown policy {other:?}")),
    };
    if !matches!(args.policy_name.as_str(), "tour" | "profiled")
        && (args.scrub_iops.is_some() || args.scrub_burst != 64.0 || args.max_defer != 8)
    {
        fail("--scrub-iops/--scrub-burst/--max-defer require --policy tour or profiled");
    }
    if args.policy_name != "profiled"
        && (args.profile_capacity.is_some()
            || args.profile_stride != 4
            || args.profile_stretch != 2
            || args.profile_risk != 2)
    {
        fail("--profile-capacity/--profile-stride/--profile-stretch/--profile-risk require --policy profiled");
    }
    let traffic = match args.workload {
        Some(id) => DemandTraffic::suite(id),
        None => DemandTraffic::Idle,
    };
    let threads = if args.threads > 0 {
        args.threads
    } else {
        scrub_exec::default_threads()
    };
    let mut builder = SimConfig::builder();
    builder
        .num_lines(args.lines)
        .code(args.code.clone())
        .policy(policy)
        .traffic(traffic)
        .horizon_s(args.hours * 3600.0)
        .seed(args.seed)
        .threads(threads)
        .engine(args.engine);
    if let Some(spec) = args.campaign {
        builder.fault_campaign(spec);
    }
    let config = builder.build();
    let horizon_s = config.horizon_s;
    let mut sim = match &args.resume {
        Some(path) => {
            let bytes = std::fs::read(path)
                .unwrap_or_else(|e| fail(&format!("cannot read snapshot {path:?}: {e}")));
            Simulation::resume(config, &bytes)
                .unwrap_or_else(|e| fail(&format!("cannot resume from {path:?}: {e}")))
        }
        None => Simulation::new(config),
    };
    // Segment mode: advance to the next cadence boundary, snapshot, exit.
    // The boundary grid is anchored at time zero so any chain of segment
    // invocations visits the same stop times run_split would.
    if let (Some(out), Some(every_s)) = (&args.checkpoint_out, args.checkpoint_every_s) {
        let k = (sim.clock_s() / every_s).floor() as u64 + 1;
        let stop_s = k as f64 * every_s;
        if stop_s < horizon_s {
            sim.run_to(stop_s);
            let bytes = sim
                .checkpoint()
                .unwrap_or_else(|e| fail(&format!("cannot checkpoint: {e}")));
            std::fs::write(out, &bytes)
                .unwrap_or_else(|e| fail(&format!("cannot write snapshot {out:?}: {e}")));
            if let Some(bench) = &args.bench_out {
                write_bench(bench, &args, bytes.len(), sim.clock_s());
            }
            eprintln!(
                "scrubsim: segment done at t={:.0}s / {:.0}s, snapshot {} bytes -> {}",
                sim.clock_s(),
                horizon_s,
                bytes.len(),
                out
            );
            return;
        }
        // Fewer than one cadence left: fall through and finish the run.
    }
    let report = sim.finish();
    println!("{report}");
    println!(
        "\nUE rate: {:.3}/GiB-day   scrub energy: {:.2} nJ/line-day",
        report.ue_per_gib_day(),
        report.scrub_energy_nj_per_line_day()
    );
}

/// Writes the snapshot-size metrics JSON the CI resume job guards with
/// `jq` (flat keys, stable order, no dependencies).
fn write_bench(path: &str, args: &Args, snapshot_bytes: usize, clock_s: f64) {
    let json = format!(
        "{{\n  \"name\": \"resume\",\n  \"lines\": {},\n  \"policy\": \"{}\",\n  \
         \"clock_s\": {:.1},\n  \"snapshot_bytes\": {}\n}}\n",
        args.lines, args.policy_name, clock_s, snapshot_bytes
    );
    if let Err(e) = std::fs::write(path, json) {
        fail(&format!("cannot write bench file {path:?}: {e}"));
    }
}
