//! # scrubsim — efficient scrub mechanisms for error-prone emerging memories
//!
//! A full Rust reproduction of the HPCA 2012 paper *"Efficient scrub
//! mechanisms for error-prone emerging memories"* (Awasthi, Shevgoor,
//! Sudan, Rajendran, Balasubramonian, Srinivasan): drift-aware scrubbing
//! for multi-level-cell PCM, together with every substrate the evaluation
//! needs — an MLC-PCM device model with resistance drift and wear, BCH and
//! SECDED codecs, a line-granularity main-memory simulator, synthetic
//! workloads, and an analysis/reporting layer.
//!
//! ## Crate map
//!
//! | module | crate | contents |
//! |--------|-------|----------|
//! | [`device`] | `pcm-model` | cells, drift, noise, endurance, energy |
//! | [`ecc`] | `pcm-ecc` | GF(2^m), BCH, SECDED, count-level code specs |
//! | [`memsim`] | `pcm-memsim` | memory array, fault engine, ledgers |
//! | [`workloads`] | `pcm-workloads` | synthetic trace suite |
//! | [`scrub`] | `scrub-core` | the paper's scrub mechanisms + simulation |
//! | [`analysis`] | `pcm-analysis` | statistics and table rendering |
//!
//! ## Five-minute tour
//!
//! ```
//! use scrubsim::prelude::*;
//!
//! // Compare the paper's combined mechanism against DRAM-style scrub on
//! // a small memory for a few simulated hours.
//! let basic = Simulation::new(
//!     SimConfig::builder()
//!         .num_lines(2048)
//!         .code(CodeSpec::secded_line())
//!         .policy(PolicyKind::Basic { interval_s: 900.0 })
//!         .traffic(DemandTraffic::suite(WorkloadId::KvCache))
//!         .horizon_s(4.0 * 3600.0)
//!         .build(),
//! )
//! .run();
//!
//! let combined = Simulation::new(
//!     SimConfig::builder()
//!         .num_lines(2048)
//!         .code(CodeSpec::bch_line(6))
//!         .policy(PolicyKind::combined_default(900.0))
//!         .traffic(DemandTraffic::suite(WorkloadId::KvCache))
//!         .horizon_s(4.0 * 3600.0)
//!         .build(),
//! )
//! .run();
//!
//! assert!(combined.scrub_writes() < basic.scrub_writes());
//! ```

/// MLC/SLC PCM device physics (re-export of `pcm-model`).
pub mod device {
    pub use pcm_model::*;
}

/// Error-correcting codes (re-export of `pcm-ecc`).
pub mod ecc {
    pub use pcm_ecc::*;
}

/// Main-memory simulator (re-export of `pcm-memsim`).
pub mod memsim {
    pub use pcm_memsim::*;
}

/// Synthetic workload generators (re-export of `pcm-workloads`).
pub mod workloads {
    pub use pcm_workloads::*;
}

/// Scrub mechanisms and simulation driver (re-export of `scrub-core`).
pub mod scrub {
    pub use scrub_core::*;
}

/// Statistics and report rendering (re-export of `pcm-analysis`).
pub mod analysis {
    pub use pcm_analysis::*;
}

/// The common imports for working with the library.
pub mod prelude {
    pub use pcm_ecc::{ClassifyOutcome, CodeSpec};
    pub use pcm_memsim::{LineAddr, MemGeometry, Memory, ProbeKind, SimTime};
    pub use pcm_model::{
        DeviceConfig, DriftParams, EnduranceSpec, LevelStack, SensingMode, ThresholdPlacement,
    };
    pub use pcm_workloads::WorkloadId;
    pub use scrub_core::{
        DemandTraffic, EngineKind, PolicyKind, ScrubPolicy, SimConfig, SimReport, Simulation,
    };
}
