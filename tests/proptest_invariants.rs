//! Property-based tests of the invariants DESIGN.md calls out:
//! drift monotonicity, incremental-binomial consistency, BCH round-trips,
//! Gray-code structure, and sampler laws.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scrubsim::device::{DeviceConfig, DriftParams, LevelStack, NoiseParams, ThresholdPlacement};
use scrubsim::ecc::{BchCode, BitBuf, DecodeOutcome, LineCode};
use scrubsim::memsim::{FaultEngine, SimTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// p_up is monotone nondecreasing in age for every level, under any
    /// sane noise/drift parameterization.
    #[test]
    fn p_up_monotone_for_random_devices(
        sigma_w in 0.05f64..0.2,
        sigma_r in 0.0f64..0.05,
        sigma_nu in 0.0f64..0.6,
        nu_scale in 0.0f64..2.5,
        t_lo in 1.0f64..1e4,
        factor in 1.01f64..1e3,
    ) {
        let dev = DeviceConfig::builder()
            .noise(NoiseParams::new(sigma_w, sigma_r))
            .drift(DriftParams::new(sigma_nu, 1.0).with_scale(nu_scale))
            .build();
        let model = dev.drift_model();
        let t_hi = t_lo * factor;
        for level in 0..4 {
            let lo = model.p_up(level, t_lo);
            let hi = model.p_up(level, t_hi);
            prop_assert!(hi >= lo - 1e-12,
                "level {level}: p_up({t_lo}) = {lo} > p_up({t_hi}) = {hi}");
            prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    /// Advancing a line's faults is consistent regardless of how the time
    /// interval is subdivided (the incremental-binomial law, in means).
    #[test]
    fn fault_advance_subdivision_invariance(
        steps in 1usize..6,
        seed in 0u64..1000,
    ) {
        let dev = DeviceConfig::default();
        let engine = FaultEngine::new(&dev, 288);
        let horizon = 86_400.0;
        let reps = 60;
        let mut one = 0u64;
        let mut many = 0u64;
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..reps {
            let mut a = engine.fresh_line(SimTime::ZERO, &mut rng);
            one += engine.advance(&mut a, SimTime::from_secs(horizon), &mut rng) as u64;
            let mut b = engine.fresh_line(SimTime::ZERO, &mut rng);
            for k in 1..=steps {
                engine.advance(
                    &mut b,
                    SimTime::from_secs(horizon * k as f64 / steps as f64),
                    &mut rng,
                );
            }
            many += b.persistent_bit_errors() as u64;
        }
        let m1 = one as f64 / reps as f64;
        let m2 = many as f64 / reps as f64;
        // Loose bound: 60 reps of a mean-5 count have stderr ~0.4.
        prop_assert!((m1 - m2).abs() < 1.6 + 0.3 * m1,
            "one-shot {m1} vs {steps}-step {m2}");
    }

    /// Drift failures never decrease and never exceed occupancy.
    #[test]
    fn fault_counts_bounded_and_monotone(seed in 0u64..500) {
        let dev = DeviceConfig::default();
        let engine = FaultEngine::new(&dev, 288);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut line = engine.fresh_line(SimTime::ZERO, &mut rng);
        let mut prev = 0u32;
        for hours in [1u64, 6, 24, 96, 400] {
            let e = engine.advance(
                &mut line,
                SimTime::from_secs(hours as f64 * 3600.0),
                &mut rng,
            );
            prop_assert!(e >= prev);
            prev = e;
            for lv in 0..4 {
                prop_assert!(line.drift_failed[lv] <= line.occupancy[lv]);
            }
        }
    }

    /// BCH corrects any error pattern up to t, for random payloads,
    /// pattern weights, and code strengths.
    #[test]
    fn bch_roundtrip_any_pattern(
        t in 1u32..6,
        seed in 0u64..10_000,
    ) {
        let code = BchCode::new(10, t, 512);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut data = BitBuf::zeros(512);
        for i in 0..512 {
            if rng.gen::<bool>() {
                data.set(i, true);
            }
        }
        let clean = code.encode(&data);
        let e = rng.gen_range(0..=t);
        let mut cw = clean.clone();
        let mut flipped = std::collections::HashSet::new();
        while (flipped.len() as u32) < e {
            let pos = rng.gen_range(0..code.n());
            if flipped.insert(pos) {
                cw.flip(pos);
            }
        }
        let outcome = code.decode(&mut cw);
        if e == 0 {
            prop_assert_eq!(outcome, DecodeOutcome::Clean);
        } else {
            prop_assert_eq!(outcome, DecodeOutcome::Corrected { bits: e });
        }
        prop_assert_eq!(code.extract_data(&cw), data);
    }

    /// Gray codes of adjacent levels differ in exactly one bit for any
    /// power-of-two stack size.
    #[test]
    fn gray_adjacency(bits in 1u32..3) {
        let stack = match bits {
            1 => LevelStack::standard_slc(),
            _ => LevelStack::standard_mlc2(),
        };
        for l in 0..stack.num_levels() - 1 {
            prop_assert_eq!(stack.bit_errors(l, l + 1), 1);
        }
    }

    /// Threshold classification is consistent: classify() is the inverse
    /// of the band the resistance falls in.
    #[test]
    fn threshold_classify_partition(log_r in 0.0f64..9.0) {
        let stack = LevelStack::standard_mlc2();
        let th = ThresholdPlacement::Midpoint.build(&stack, &NoiseParams::default(), 1.0);
        let level = th.classify(log_r);
        prop_assert!(level < 4);
        if let Some(up) = th.upper(level) {
            prop_assert!(log_r < up);
        }
        if let Some(dn) = th.lower(level) {
            prop_assert!(log_r >= dn);
        }
    }

    /// Binomial sampling respects bounds and degenerate inputs for any p.
    #[test]
    fn binomial_bounds_hold(n in 0u32..2000, p in 0.0f64..1.0, seed in 0u64..100) {
        let mut rng = StdRng::seed_from_u64(seed);
        let k = scrubsim::device::math::sample_binomial(&mut rng, n, p);
        prop_assert!(k <= n);
    }

    /// CodeSpec classification laws: zero errors are always clean; counts
    /// within guaranteed capability are always corrected in full; counts
    /// beyond a per-line code's capability are never silently clean.
    #[test]
    fn code_spec_classification_laws(t in 1u32..8, e in 0u32..20, seed in 0u64..200) {
        use scrubsim::ecc::{ClassifyOutcome, CodeSpec};
        let code = CodeSpec::bch_line(t);
        let mut rng = StdRng::seed_from_u64(seed);
        match code.classify(e, &mut rng) {
            ClassifyOutcome::Clean => prop_assert_eq!(e, 0),
            ClassifyOutcome::Corrected { bits } => {
                prop_assert!(e >= 1 && e <= t);
                prop_assert_eq!(bits, e);
            }
            ClassifyOutcome::DetectedUncorrectable | ClassifyOutcome::Miscorrected => {
                prop_assert!(e > t);
            }
        }
    }

    /// Start-Gap stays a bijection from logical onto physical-minus-gap
    /// after any number of rotations.
    #[test]
    fn start_gap_bijective(
        physical in 2u32..64,
        period in 1u32..5,
        writes in 0u32..300,
    ) {
        use scrubsim::memsim::{LineAddr, StartGap};
        let mut sg = StartGap::new(physical, period);
        for _ in 0..writes {
            sg.on_write();
        }
        let mut seen = std::collections::HashSet::new();
        for l in 0..sg.logical_lines() {
            let p = sg.map(LineAddr(l));
            prop_assert!(p.0 < physical);
            prop_assert!(p.0 != sg.gap(), "logical {l} mapped onto the gap");
            prop_assert!(seen.insert(p.0), "collision at logical {l}");
        }
    }

    /// Diurnal thinning never reorders time and never amplifies traffic:
    /// over any op budget, the thinned stream is a subsequence in time.
    #[test]
    fn diurnal_thinning_preserves_order(mult in 0.0f64..1.0, seed in 0u64..100) {
        use scrubsim::workloads::{DiurnalTrace, Phase, WorkloadId};
        use scrubsim::memsim::{SimTime, TraceSource};
        let inner = WorkloadId::KvCache.build(256, 1.0, seed);
        let mut t = DiurnalTrace::new(
            inner,
            vec![
                Phase { duration_s: 100.0, rate_multiplier: 1.0 },
                Phase { duration_s: 100.0, rate_multiplier: mult },
            ],
        );
        let mut prev = SimTime::ZERO;
        for _ in 0..300 {
            let op = t.next_op().expect("infinite");
            prop_assert!(op.at >= prev);
            prev = op.at;
        }
    }
}
