//! Cross-crate integration tests: whole simulations, conservation laws,
//! and policy orderings the paper's conclusions rest on.
//!
//! Tests at paper scale (thousands of lines, many simulated hours) are
//! `#[ignore]`d so tier-1 `cargo test -q` stays fast; the CI `validation`
//! job runs them with `SCRUBSIM_FULL_TEST=1 cargo test -q --
//! --include-ignored`. Each has a `quick_` variant at reduced scale that
//! keeps the same assertion in tier-1.

use scrubsim::prelude::*;

fn full() -> bool {
    std::env::var("SCRUBSIM_FULL_TEST").as_deref() == Ok("1")
}

fn base_config() -> scrubsim::scrub::SimConfigBuilder {
    let mut b = SimConfig::builder();
    b.num_lines(2048)
        .traffic(DemandTraffic::suite(WorkloadId::KvCache))
        .horizon_s(6.0 * 3600.0)
        .seed(1234);
    b
}

fn quick_config(num_lines: u32, horizon_h: f64) -> scrubsim::scrub::SimConfigBuilder {
    let mut b = SimConfig::builder();
    b.num_lines(num_lines)
        .traffic(DemandTraffic::suite(WorkloadId::KvCache))
        .horizon_s(horizon_h * 3600.0)
        .seed(1234);
    b
}

#[test]
fn energy_ledger_is_conserved() {
    // Structural invariant, independent of scale: run it quick.
    let report = Simulation::new(
        quick_config(512, 3.0)
            .code(CodeSpec::bch_line(6))
            .policy(PolicyKind::combined_default(900.0))
            .build(),
    )
    .run();
    // Scrub + demand components are the only energy sinks; both nonzero.
    assert!(report.scrub_energy_uj > 0.0);
    assert!(report.demand_energy_uj > 0.0);
}

#[test]
fn probes_match_engine_slots() {
    // Exact bookkeeping identities hold at any scale: run it quick.
    let report = Simulation::new(
        quick_config(512, 3.0)
            .code(CodeSpec::bch_line(6))
            .policy(PolicyKind::Basic { interval_s: 900.0 })
            .build(),
    )
    .run();
    // Basic never idles: every engine probe slot is a memory probe.
    assert_eq!(report.engine.idle_slots, 0);
    assert_eq!(report.engine.probe_slots, report.stats.scrub_probes);
    // Write-backs recorded by the engine equal the memory's count.
    assert_eq!(
        report.engine.policy_writebacks + report.engine.forced_writebacks,
        report.stats.scrub_writebacks
    );
}

#[test]
#[ignore = "paper-scale run: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn no_scrub_accumulates_more_demand_ues_than_scrubbed() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let unscrubbed = Simulation::new(
        base_config()
            .code(CodeSpec::secded_line())
            .policy(PolicyKind::None)
            .horizon_s(12.0 * 3600.0)
            .build(),
    )
    .run();
    let scrubbed = Simulation::new(
        base_config()
            .code(CodeSpec::secded_line())
            .policy(PolicyKind::Basic { interval_s: 900.0 })
            .horizon_s(12.0 * 3600.0)
            .build(),
    )
    .run();
    assert!(
        scrubbed.stats.demand_ue < unscrubbed.stats.demand_ue.max(1),
        "scrubbed {} vs unscrubbed {} demand UEs",
        scrubbed.stats.demand_ue,
        unscrubbed.stats.demand_ue
    );
}

#[test]
#[ignore = "paper-scale run: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn policy_ladder_improves_write_traffic_monotonically() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    // basic -> threshold -> combined must strictly shrink scrub writes.
    let run = |code: CodeSpec, policy: PolicyKind| {
        Simulation::new(base_config().code(code).policy(policy).build())
            .run()
            .scrub_writes()
    };
    let basic = run(
        CodeSpec::bch_line(6),
        PolicyKind::Basic { interval_s: 900.0 },
    );
    let threshold = run(
        CodeSpec::bch_line(6),
        PolicyKind::Threshold {
            interval_s: 900.0,
            theta: 4,
        },
    );
    let combined = run(CodeSpec::bch_line(6), PolicyKind::combined_default(900.0));
    assert!(
        basic > threshold,
        "threshold ({threshold}) must write less than basic ({basic})"
    );
    assert!(
        combined <= threshold,
        "combined ({combined}) must not write more than threshold ({threshold})"
    );
}

#[test]
#[ignore = "paper-scale run: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn stronger_code_reduces_ues_at_same_policy() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let run = |code: CodeSpec| {
        Simulation::new(
            base_config()
                .code(code)
                .policy(PolicyKind::Basic { interval_s: 1800.0 })
                .build(),
        )
        .run()
        .uncorrectable()
    };
    let secded = run(CodeSpec::secded_line());
    let bch2 = run(CodeSpec::bch_line(2));
    let bch6 = run(CodeSpec::bch_line(6));
    assert!(secded > bch2, "SECDED {secded} vs BCH-2 {bch2}");
    assert!(bch2 >= bch6, "BCH-2 {bch2} vs BCH-6 {bch6}");
}

#[test]
#[ignore = "paper-scale run: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn reports_are_deterministic_and_seed_sensitive() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let mk = |seed: u64| {
        Simulation::new(
            base_config()
                .code(CodeSpec::bch_line(4))
                .policy(PolicyKind::combined_default(900.0))
                .seed(seed)
                .build(),
        )
        .run()
    };
    let a = mk(7);
    let b = mk(7);
    let c = mk(8);
    assert_eq!(a.stats, b.stats, "same seed, same result");
    assert_ne!(
        (a.stats.scrub_writebacks, a.stats.corrected_bits),
        (c.stats.scrub_writebacks, c.stats.corrected_bits),
        "different seed should perturb stochastic outcomes"
    );
}

#[test]
#[ignore = "paper-scale run: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn archive_workload_is_drifts_worst_case() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let run = |id: WorkloadId| {
        Simulation::new(
            base_config()
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::None)
                .traffic(DemandTraffic::suite(id))
                .horizon_s(12.0 * 3600.0)
                .build(),
        )
        .run()
    };
    let archive = run(WorkloadId::Archive);
    let logging = run(WorkloadId::Logging);
    // Logging's write churn refreshes drift clocks; archive's doesn't.
    // Compare per-demand-read UE discovery rates.
    let archive_rate = archive.stats.demand_ue as f64 / archive.stats.demand_reads.max(1) as f64;
    let logging_rate = logging.stats.demand_ue as f64 / logging.stats.demand_reads.max(1) as f64;
    assert!(
        archive_rate > logging_rate,
        "archive {archive_rate} vs logging {logging_rate}"
    );
}

#[test]
#[ignore = "paper-scale run: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn slc_memory_is_effectively_drift_immune() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    // SLC's two levels sit 3 decades apart: drift cannot bridge them in
    // any realistic horizon, so even unscrubbed SLC stays clean where
    // MLC-2 is riddled with errors.
    let mk = |stack: LevelStack| {
        Simulation::new(
            base_config()
                .device(DeviceConfig::builder().stack(stack).build())
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::None)
                .horizon_s(24.0 * 3600.0)
                .build(),
        )
        .run()
    };
    let slc = mk(LevelStack::standard_slc());
    let mlc = mk(LevelStack::standard_mlc2());
    assert_eq!(slc.uncorrectable(), 0, "SLC should never UE from drift");
    assert!(mlc.uncorrectable() > 100, "MLC control must show drift UEs");
}

#[test]
#[ignore = "paper-scale run: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn scrub_utilization_scales_with_rate() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let run = |interval_s: f64| {
        Simulation::new(
            base_config()
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::Basic { interval_s })
                .build(),
        )
        .run()
        .scrub_utilization
    };
    let fast = run(300.0);
    let slow = run(3600.0);
    assert!(fast > slow * 2.0, "fast {fast} vs slow {slow}");
}

// ---------------------------------------------------------------------------
// Quick variants: the same conclusions at reduced scale, cheap enough for
// tier-1. Scales were chosen so each assertion holds with a wide margin at
// the fixed seed while the whole file stays well under a second of runtime.
// ---------------------------------------------------------------------------

#[test]
fn quick_no_scrub_accumulates_more_demand_ues_than_scrubbed() {
    let run = |policy: PolicyKind| {
        Simulation::new(
            quick_config(512, 6.0)
                .code(CodeSpec::secded_line())
                .policy(policy)
                .build(),
        )
        .run()
    };
    let unscrubbed = run(PolicyKind::None);
    let scrubbed = run(PolicyKind::Basic { interval_s: 900.0 });
    assert!(
        scrubbed.stats.demand_ue < unscrubbed.stats.demand_ue.max(1),
        "scrubbed {} vs unscrubbed {} demand UEs",
        scrubbed.stats.demand_ue,
        unscrubbed.stats.demand_ue
    );
}

#[test]
fn quick_policy_ladder_improves_write_traffic() {
    let run = |policy: PolicyKind| {
        Simulation::new(
            quick_config(1024, 4.0)
                .code(CodeSpec::bch_line(6))
                .policy(policy)
                .build(),
        )
        .run()
        .scrub_writes()
    };
    let basic = run(PolicyKind::Basic { interval_s: 900.0 });
    let threshold = run(PolicyKind::Threshold {
        interval_s: 900.0,
        theta: 4,
    });
    let combined = run(PolicyKind::combined_default(900.0));
    assert!(
        basic > threshold,
        "threshold ({threshold}) must write less than basic ({basic})"
    );
    assert!(
        combined <= threshold,
        "combined ({combined}) must not write more than threshold ({threshold})"
    );
}

#[test]
fn quick_stronger_code_reduces_ues() {
    let run = |code: CodeSpec| {
        Simulation::new(
            quick_config(512, 6.0)
                .code(code)
                .policy(PolicyKind::Basic { interval_s: 1800.0 })
                .build(),
        )
        .run()
        .uncorrectable()
    };
    let secded = run(CodeSpec::secded_line());
    let bch6 = run(CodeSpec::bch_line(6));
    assert!(secded > bch6, "SECDED {secded} vs BCH-6 {bch6}");
}

#[test]
fn quick_reports_are_deterministic_and_seed_sensitive() {
    let mk = |seed: u64| {
        Simulation::new(
            quick_config(256, 2.0)
                .code(CodeSpec::bch_line(4))
                .policy(PolicyKind::combined_default(900.0))
                .seed(seed)
                .build(),
        )
        .run()
    };
    let a = mk(7);
    let b = mk(7);
    let c = mk(8);
    assert_eq!(a.stats, b.stats, "same seed, same result");
    assert_ne!(
        (a.stats.scrub_writebacks, a.stats.corrected_bits),
        (c.stats.scrub_writebacks, c.stats.corrected_bits),
        "different seed should perturb stochastic outcomes"
    );
}

#[test]
fn quick_archive_workload_is_drifts_worst_case() {
    let run = |id: WorkloadId| {
        Simulation::new(
            quick_config(512, 8.0)
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::None)
                .traffic(DemandTraffic::suite(id))
                .build(),
        )
        .run()
    };
    let archive = run(WorkloadId::Archive);
    let logging = run(WorkloadId::Logging);
    let archive_rate = archive.stats.demand_ue as f64 / archive.stats.demand_reads.max(1) as f64;
    let logging_rate = logging.stats.demand_ue as f64 / logging.stats.demand_reads.max(1) as f64;
    assert!(
        archive_rate > logging_rate,
        "archive {archive_rate} vs logging {logging_rate}"
    );
}

#[test]
fn quick_slc_memory_is_effectively_drift_immune() {
    let mk = |stack: LevelStack| {
        Simulation::new(
            quick_config(512, 8.0)
                .device(DeviceConfig::builder().stack(stack).build())
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::None)
                .build(),
        )
        .run()
    };
    let slc = mk(LevelStack::standard_slc());
    let mlc = mk(LevelStack::standard_mlc2());
    assert_eq!(slc.uncorrectable(), 0, "SLC should never UE from drift");
    assert!(mlc.uncorrectable() > 10, "MLC control must show drift UEs");
}

#[test]
fn quick_scrub_utilization_scales_with_rate() {
    let run = |interval_s: f64| {
        Simulation::new(
            quick_config(512, 1.0)
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::Basic { interval_s })
                .build(),
        )
        .run()
        .scrub_utilization
    };
    let fast = run(300.0);
    let slow = run(3600.0);
    assert!(fast > slow * 2.0, "fast {fast} vs slow {slow}");
}
