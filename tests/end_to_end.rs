//! Cross-crate integration tests: whole simulations, conservation laws,
//! and policy orderings the paper's conclusions rest on.

use scrubsim::prelude::*;

fn base_config() -> scrubsim::scrub::SimConfigBuilder {
    let mut b = SimConfig::builder();
    b.num_lines(2048)
        .traffic(DemandTraffic::suite(WorkloadId::KvCache))
        .horizon_s(6.0 * 3600.0)
        .seed(1234);
    b
}

#[test]
fn energy_ledger_is_conserved() {
    let report = Simulation::new(
        base_config()
            .code(CodeSpec::bch_line(6))
            .policy(PolicyKind::combined_default(900.0))
            .build(),
    )
    .run();
    // Scrub + demand components are the only energy sinks; both nonzero.
    assert!(report.scrub_energy_uj > 0.0);
    assert!(report.demand_energy_uj > 0.0);
}

#[test]
fn probes_match_engine_slots() {
    let report = Simulation::new(
        base_config()
            .code(CodeSpec::bch_line(6))
            .policy(PolicyKind::Basic { interval_s: 900.0 })
            .build(),
    )
    .run();
    // Basic never idles: every engine probe slot is a memory probe.
    assert_eq!(report.engine.idle_slots, 0);
    assert_eq!(report.engine.probe_slots, report.stats.scrub_probes);
    // Write-backs recorded by the engine equal the memory's count.
    assert_eq!(
        report.engine.policy_writebacks + report.engine.forced_writebacks,
        report.stats.scrub_writebacks
    );
}

#[test]
fn no_scrub_accumulates_more_demand_ues_than_scrubbed() {
    let unscrubbed = Simulation::new(
        base_config()
            .code(CodeSpec::secded_line())
            .policy(PolicyKind::None)
            .horizon_s(12.0 * 3600.0)
            .build(),
    )
    .run();
    let scrubbed = Simulation::new(
        base_config()
            .code(CodeSpec::secded_line())
            .policy(PolicyKind::Basic { interval_s: 900.0 })
            .horizon_s(12.0 * 3600.0)
            .build(),
    )
    .run();
    assert!(
        scrubbed.stats.demand_ue < unscrubbed.stats.demand_ue.max(1),
        "scrubbed {} vs unscrubbed {} demand UEs",
        scrubbed.stats.demand_ue,
        unscrubbed.stats.demand_ue
    );
}

#[test]
fn policy_ladder_improves_write_traffic_monotonically() {
    // basic -> threshold -> combined must strictly shrink scrub writes.
    let run = |code: CodeSpec, policy: PolicyKind| {
        Simulation::new(base_config().code(code).policy(policy).build())
            .run()
            .scrub_writes()
    };
    let basic = run(
        CodeSpec::bch_line(6),
        PolicyKind::Basic { interval_s: 900.0 },
    );
    let threshold = run(
        CodeSpec::bch_line(6),
        PolicyKind::Threshold {
            interval_s: 900.0,
            theta: 4,
        },
    );
    let combined = run(CodeSpec::bch_line(6), PolicyKind::combined_default(900.0));
    assert!(
        basic > threshold,
        "threshold ({threshold}) must write less than basic ({basic})"
    );
    assert!(
        combined <= threshold,
        "combined ({combined}) must not write more than threshold ({threshold})"
    );
}

#[test]
fn stronger_code_reduces_ues_at_same_policy() {
    let run = |code: CodeSpec| {
        Simulation::new(
            base_config()
                .code(code)
                .policy(PolicyKind::Basic { interval_s: 1800.0 })
                .build(),
        )
        .run()
        .uncorrectable()
    };
    let secded = run(CodeSpec::secded_line());
    let bch2 = run(CodeSpec::bch_line(2));
    let bch6 = run(CodeSpec::bch_line(6));
    assert!(secded > bch2, "SECDED {secded} vs BCH-2 {bch2}");
    assert!(bch2 >= bch6, "BCH-2 {bch2} vs BCH-6 {bch6}");
}

#[test]
fn reports_are_deterministic_and_seed_sensitive() {
    let mk = |seed: u64| {
        Simulation::new(
            base_config()
                .code(CodeSpec::bch_line(4))
                .policy(PolicyKind::combined_default(900.0))
                .seed(seed)
                .build(),
        )
        .run()
    };
    let a = mk(7);
    let b = mk(7);
    let c = mk(8);
    assert_eq!(a.stats, b.stats, "same seed, same result");
    assert_ne!(
        (a.stats.scrub_writebacks, a.stats.corrected_bits),
        (c.stats.scrub_writebacks, c.stats.corrected_bits),
        "different seed should perturb stochastic outcomes"
    );
}

#[test]
fn archive_workload_is_drifts_worst_case() {
    let run = |id: WorkloadId| {
        Simulation::new(
            base_config()
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::None)
                .traffic(DemandTraffic::suite(id))
                .horizon_s(12.0 * 3600.0)
                .build(),
        )
        .run()
    };
    let archive = run(WorkloadId::Archive);
    let logging = run(WorkloadId::Logging);
    // Logging's write churn refreshes drift clocks; archive's doesn't.
    // Compare per-demand-read UE discovery rates.
    let archive_rate = archive.stats.demand_ue as f64 / archive.stats.demand_reads.max(1) as f64;
    let logging_rate = logging.stats.demand_ue as f64 / logging.stats.demand_reads.max(1) as f64;
    assert!(
        archive_rate > logging_rate,
        "archive {archive_rate} vs logging {logging_rate}"
    );
}

#[test]
fn slc_memory_is_effectively_drift_immune() {
    // SLC's two levels sit 3 decades apart: drift cannot bridge them in
    // any realistic horizon, so even unscrubbed SLC stays clean where
    // MLC-2 is riddled with errors.
    let mk = |stack: LevelStack| {
        Simulation::new(
            base_config()
                .device(DeviceConfig::builder().stack(stack).build())
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::None)
                .horizon_s(24.0 * 3600.0)
                .build(),
        )
        .run()
    };
    let slc = mk(LevelStack::standard_slc());
    let mlc = mk(LevelStack::standard_mlc2());
    assert_eq!(slc.uncorrectable(), 0, "SLC should never UE from drift");
    assert!(mlc.uncorrectable() > 100, "MLC control must show drift UEs");
}

#[test]
fn scrub_utilization_scales_with_rate() {
    let run = |interval_s: f64| {
        Simulation::new(
            base_config()
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::Basic { interval_s })
                .build(),
        )
        .run()
        .scrub_utilization
    };
    let fast = run(300.0);
    let slow = run(3600.0);
    assert!(fast > slow * 2.0, "fast {fast} vs slow {slow}");
}
