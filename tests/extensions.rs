//! End-to-end tests of the extension mechanisms (DESIGN.md "Extension
//! mechanisms"): time-aware sensing, CRC-first probes, wear leveling,
//! in-band scrub, the budget controller, and temperature scaling.
//!
//! Paper-scale runs are `#[ignore]`d behind `SCRUBSIM_FULL_TEST=1` (see
//! `end_to_end.rs`); each keeps a `quick_` variant in tier-1.

use scrubsim::prelude::*;

fn full() -> bool {
    std::env::var("SCRUBSIM_FULL_TEST").as_deref() == Ok("1")
}

fn base(seed: u64) -> scrubsim::scrub::SimConfigBuilder {
    let mut b = SimConfig::builder();
    b.num_lines(2048)
        .code(CodeSpec::bch_line(6))
        .policy(PolicyKind::combined_default(900.0))
        .traffic(DemandTraffic::suite(WorkloadId::WebServe))
        .horizon_s(8.0 * 3600.0)
        .seed(seed);
    b
}

#[test]
#[ignore = "paper-scale run: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn time_aware_sensing_reduces_writebacks_end_to_end() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let fixed = Simulation::new(base(31).build()).run();
    let compensated = Simulation::new(
        base(31)
            .device(
                DeviceConfig::builder()
                    .sensing(SensingMode::AgeCompensated)
                    .build(),
            )
            .build(),
    )
    .run();
    // Compensated sensing sees far fewer persistent errors, so the lazy
    // threshold triggers far less often.
    assert!(
        compensated.scrub_writes() * 2 < fixed.scrub_writes().max(2),
        "compensated {} vs fixed {} write-backs",
        compensated.scrub_writes(),
        fixed.scrub_writes()
    );
    assert!(compensated.uncorrectable() <= fixed.uncorrectable());
}

#[test]
#[ignore = "paper-scale run: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn crc_probes_cut_scrub_energy_end_to_end() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let full = Simulation::new(base(32).build()).run();
    let crc = Simulation::new(base(32).probe_kind(ProbeKind::CrcThenDecode).build()).run();
    assert!(
        crc.scrub_energy_uj < full.scrub_energy_uj,
        "crc {} vs full {} uJ",
        crc.scrub_energy_uj,
        full.scrub_energy_uj
    );
    // Same policy decisions: identical probes and write-backs.
    assert_eq!(crc.stats.scrub_probes, full.stats.scrub_probes);
    assert_eq!(crc.stats.scrub_writebacks, full.stats.scrub_writebacks);
}

#[test]
#[ignore = "paper-scale run: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn wear_leveling_flattens_wear_under_skewed_writes() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let mk = |leveled: bool, seed: u64| {
        let mut b = SimConfig::builder();
        b.num_lines(1024)
            .code(CodeSpec::bch_line(4))
            .policy(PolicyKind::None)
            .traffic(DemandTraffic::suite(WorkloadId::Logging)) // zipf writes
            .horizon_s(24.0 * 3600.0)
            .seed(seed);
        if leveled {
            b.wear_leveling(16);
        }
        Simulation::new(b.build()).run()
    };
    let plain = mk(false, 33);
    let leveled = mk(true, 33);
    assert!(
        (leveled.max_wear as f64) < plain.max_wear as f64 * 0.7,
        "leveled max wear {} vs plain {}",
        leveled.max_wear,
        plain.max_wear
    );
    assert!(leveled.stats.wear_level_writes > 0);
}

#[test]
#[ignore = "paper-scale run: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn budget_policy_spends_less_than_fixed_when_target_is_loose() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let fixed = Simulation::new(
        base(34)
            .policy(PolicyKind::Threshold {
                interval_s: 900.0,
                theta: 4,
            })
            .build(),
    )
    .run();
    let budget = Simulation::new(
        base(34)
            .policy(PolicyKind::Budget {
                interval_s: 900.0,
                theta: 4,
                target_ue_per_gib_day: 1e6, // effectively "anything goes"
                window_s: 1800.0,
            })
            .build(),
    )
    .run();
    // With a loose budget the controller relaxes the sweep and probes less.
    assert!(
        budget.stats.scrub_probes < fixed.stats.scrub_probes,
        "budget {} vs fixed {} probes",
        budget.stats.scrub_probes,
        fixed.stats.scrub_probes
    );
}

#[test]
#[ignore = "paper-scale run: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn budget_policy_tightens_under_strict_target() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let loose = Simulation::new(
        base(35)
            .code(CodeSpec::secded_line())
            .policy(PolicyKind::Budget {
                interval_s: 3600.0,
                theta: 1,
                // 2048 lines is ~1e-4 GiB, so even one UE per window is a
                // ~4e5/GiB-day rate; "loose" must sit far above that.
                target_ue_per_gib_day: 1e10,
                window_s: 1800.0,
            })
            .build(),
    )
    .run();
    let strict = Simulation::new(
        base(35)
            .code(CodeSpec::secded_line())
            .policy(PolicyKind::Budget {
                interval_s: 3600.0,
                theta: 1,
                target_ue_per_gib_day: 0.5,
                window_s: 1800.0,
            })
            .build(),
    )
    .run();
    assert!(
        strict.stats.scrub_probes > loose.stats.scrub_probes,
        "strict {} vs loose {} probes",
        strict.stats.scrub_probes,
        loose.stats.scrub_probes
    );
    assert!(strict.uncorrectable() <= loose.uncorrectable());
}

#[test]
fn temperature_scales_error_rates_end_to_end() {
    let at = |temp_c: f64, seed: u64| {
        let mut b = SimConfig::builder();
        b.num_lines(2048)
            .device(
                DeviceConfig::builder()
                    .drift(DriftParams::default().with_temperature_c(temp_c))
                    .build(),
            )
            .code(CodeSpec::secded_line())
            .policy(PolicyKind::None)
            .traffic(DemandTraffic::suite(WorkloadId::Archive))
            .horizon_s(12.0 * 3600.0)
            .seed(seed);
        Simulation::new(b.build()).run()
    };
    let cool = at(0.0, 36);
    let hot = at(85.0, 36);
    assert!(
        hot.stats.demand_ue > cool.stats.demand_ue,
        "hot {} vs cool {} demand UEs",
        hot.stats.demand_ue,
        cool.stats.demand_ue
    );
}

// ---------------------------------------------------------------------------
// Quick variants at reduced scale for tier-1.
// ---------------------------------------------------------------------------

fn quick(seed: u64) -> scrubsim::scrub::SimConfigBuilder {
    let mut b = SimConfig::builder();
    b.num_lines(512)
        .code(CodeSpec::bch_line(6))
        .policy(PolicyKind::combined_default(900.0))
        .traffic(DemandTraffic::suite(WorkloadId::WebServe))
        .horizon_s(4.0 * 3600.0)
        .seed(seed);
    b
}

#[test]
fn quick_time_aware_sensing_reduces_writebacks() {
    let fixed = Simulation::new(quick(31).build()).run();
    let compensated = Simulation::new(
        quick(31)
            .device(
                DeviceConfig::builder()
                    .sensing(SensingMode::AgeCompensated)
                    .build(),
            )
            .build(),
    )
    .run();
    assert!(
        compensated.scrub_writes() * 2 < fixed.scrub_writes().max(2),
        "compensated {} vs fixed {} write-backs",
        compensated.scrub_writes(),
        fixed.scrub_writes()
    );
}

#[test]
fn quick_crc_probes_cut_scrub_energy() {
    let full = Simulation::new(quick(32).build()).run();
    let crc = Simulation::new(quick(32).probe_kind(ProbeKind::CrcThenDecode).build()).run();
    assert!(
        crc.scrub_energy_uj < full.scrub_energy_uj,
        "crc {} vs full {} uJ",
        crc.scrub_energy_uj,
        full.scrub_energy_uj
    );
    assert_eq!(crc.stats.scrub_probes, full.stats.scrub_probes);
    assert_eq!(crc.stats.scrub_writebacks, full.stats.scrub_writebacks);
}

#[test]
fn quick_wear_leveling_flattens_wear() {
    let mk = |leveled: bool| {
        let mut b = SimConfig::builder();
        b.num_lines(512)
            .code(CodeSpec::bch_line(4))
            .policy(PolicyKind::None)
            .traffic(DemandTraffic::suite(WorkloadId::Logging)) // zipf writes
            .horizon_s(8.0 * 3600.0)
            .seed(33);
        if leveled {
            b.wear_leveling(16);
        }
        Simulation::new(b.build()).run()
    };
    let plain = mk(false);
    let leveled = mk(true);
    assert!(
        (leveled.max_wear as f64) < plain.max_wear as f64 * 0.8,
        "leveled max wear {} vs plain {}",
        leveled.max_wear,
        plain.max_wear
    );
    assert!(leveled.stats.wear_level_writes > 0);
}

#[test]
fn quick_budget_policy_spends_less_when_target_is_loose() {
    let fixed = Simulation::new(
        quick(34)
            .policy(PolicyKind::Threshold {
                interval_s: 900.0,
                theta: 4,
            })
            .build(),
    )
    .run();
    let budget = Simulation::new(
        quick(34)
            .policy(PolicyKind::Budget {
                interval_s: 900.0,
                theta: 4,
                target_ue_per_gib_day: 1e6,
                window_s: 1800.0,
            })
            .build(),
    )
    .run();
    assert!(
        budget.stats.scrub_probes < fixed.stats.scrub_probes,
        "budget {} vs fixed {} probes",
        budget.stats.scrub_probes,
        fixed.stats.scrub_probes
    );
}

#[test]
fn quick_budget_policy_tightens_under_strict_target() {
    let run = |target_ue_per_gib_day: f64| {
        Simulation::new(
            quick(35)
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::Budget {
                    interval_s: 3600.0,
                    theta: 1,
                    target_ue_per_gib_day,
                    window_s: 1800.0,
                })
                .build(),
        )
        .run()
    };
    let loose = run(1e10);
    let strict = run(0.5);
    assert!(
        strict.stats.scrub_probes > loose.stats.scrub_probes,
        "strict {} vs loose {} probes",
        strict.stats.scrub_probes,
        loose.stats.scrub_probes
    );
}
