//! Validates that the statistical `CodeSpec` layer (used on the simulator
//! hot path) agrees with the bit-exact codecs it models.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use scrubsim::ecc::{
    BchCode, BitBuf, ClassifyOutcome, CodeSpec, DecodeOutcome, LineCode, SecdedLine,
};

fn random_data<R: Rng>(rng: &mut R, bits: usize) -> BitBuf {
    let mut b = BitBuf::zeros(bits);
    for i in 0..bits {
        if rng.gen::<bool>() {
            b.set(i, true);
        }
    }
    b
}

fn inject_errors<R: Rng>(cw: &mut BitBuf, count: usize, rng: &mut R) {
    let mut chosen = std::collections::HashSet::new();
    while chosen.len() < count {
        let pos = rng.gen_range(0..cw.len());
        if chosen.insert(pos) {
            cw.flip(pos);
        }
    }
}

#[test]
fn bch_spec_matches_codec_within_capability() {
    // For e <= t both layers must say "corrected with e bits", always.
    let mut rng = StdRng::seed_from_u64(1);
    for t in [2u32, 4, 6] {
        let spec = CodeSpec::bch_line(t);
        let codec = BchCode::new(10, t, 512);
        assert_eq!(spec.total_bits() as usize, codec.n(), "t={t} size mismatch");
        for e in 0..=t {
            let spec_outcome = spec.classify(e, &mut rng);
            let data = random_data(&mut rng, 512);
            let mut cw = codec.encode(&data);
            inject_errors(&mut cw, e as usize, &mut rng);
            let codec_outcome = codec.decode(&mut cw);
            match (e, spec_outcome, codec_outcome) {
                (0, ClassifyOutcome::Clean, DecodeOutcome::Clean) => {}
                (
                    _,
                    ClassifyOutcome::Corrected { bits: sb },
                    DecodeOutcome::Corrected { bits: cb },
                ) => {
                    assert_eq!(sb, e);
                    assert_eq!(cb, e);
                }
                other => panic!("t={t} e={e}: mismatch {other:?}"),
            }
        }
    }
}

#[test]
fn bch_spec_matches_codec_beyond_capability() {
    // For e = t+1 both layers must report an uncorrectable outcome
    // (modulo the rare miscorrection alias, which both layers model).
    let mut rng = StdRng::seed_from_u64(2);
    let t = 3u32;
    let spec = CodeSpec::bch_line(t);
    let codec = BchCode::new(10, t, 512);
    let mut codec_ue = 0;
    let trials = 60;
    for _ in 0..trials {
        let data = random_data(&mut rng, 512);
        let mut cw = codec.encode(&data);
        inject_errors(&mut cw, t as usize + 1, &mut rng);
        match codec.decode(&mut cw) {
            DecodeOutcome::Uncorrectable => codec_ue += 1,
            DecodeOutcome::Corrected { .. } => {} // miscorrection alias
            DecodeOutcome::Clean => panic!("t+1 errors decoded clean"),
        }
        assert!(spec.classify(t + 1, &mut rng).is_uncorrectable());
    }
    // Alias probability is a few percent for BCH-3: most trials detect.
    assert!(
        codec_ue >= trials * 8 / 10,
        "only {codec_ue}/{trials} detected"
    );
}

#[test]
fn secded_spec_matches_codec_statistically() {
    // Same error counts through both layers; UE frequencies must agree
    // within sampling noise. This validates the spread-errors +
    // per-word-outcome model against the real interleaved decoder.
    let mut rng = StdRng::seed_from_u64(3);
    let spec = CodeSpec::secded_line();
    let codec = SecdedLine::new();
    let trials = 600;
    for e in [1usize, 2, 3, 5] {
        let mut codec_ue = 0;
        let mut spec_ue = 0;
        for _ in 0..trials {
            let data = random_data(&mut rng, 512);
            let mut cw = codec.encode(&data);
            inject_errors(&mut cw, e, &mut rng);
            match codec.decode(&mut cw) {
                DecodeOutcome::Uncorrectable => codec_ue += 1,
                DecodeOutcome::Corrected { .. } => {
                    // May be a silent miscorrection (odd >= 3 in a word);
                    // count it as UE if data was actually corrupted.
                    if codec.extract_data(&cw) != data {
                        codec_ue += 1;
                    }
                }
                DecodeOutcome::Clean => panic!("{e} errors decoded clean"),
            }
            if spec.classify(e as u32, &mut rng).is_uncorrectable() {
                spec_ue += 1;
            }
        }
        let cf = codec_ue as f64 / trials as f64;
        let sf = spec_ue as f64 / trials as f64;
        assert!(
            (cf - sf).abs() < 0.07,
            "e={e}: codec UE rate {cf} vs spec UE rate {sf}"
        );
    }
}

#[test]
fn secded_spec_and_codec_agree_on_singles() {
    let mut rng = StdRng::seed_from_u64(4);
    let spec = CodeSpec::secded_line();
    let codec = SecdedLine::new();
    for _ in 0..100 {
        let data = random_data(&mut rng, 512);
        let mut cw = codec.encode(&data);
        inject_errors(&mut cw, 1, &mut rng);
        assert_eq!(codec.decode(&mut cw), DecodeOutcome::Corrected { bits: 1 });
        assert_eq!(codec.extract_data(&cw), data);
        assert_eq!(
            spec.classify(1, &mut rng),
            ClassifyOutcome::Corrected { bits: 1 }
        );
    }
}

#[test]
fn parity_sizes_agree_across_layers() {
    assert_eq!(
        CodeSpec::secded_line().parity_bits() as usize,
        SecdedLine::new().parity_bits()
    );
    for t in 1..=6 {
        assert_eq!(
            CodeSpec::bch_line(t).parity_bits() as usize,
            BchCode::new(10, t, 512).parity_bits(),
            "t={t}"
        );
    }
}
