//! Oracle-vs-simulator agreement suite (DESIGN.md, "Validation
//! methodology").
//!
//! Each test pits a closed-form prediction from `scrub-oracle` against a
//! Monte-Carlo measurement from the simulator and accepts or rejects with
//! a calibrated statistical test from `pcm-analysis`. Quick variants run
//! in tier-1; the heavyweight versions are `#[ignore]`d and run in the CI
//! `validation` job with `SCRUBSIM_FULL_TEST=1 cargo test -q --
//! --include-ignored`.
//!
//! Acceptance bands combine two sources of slack:
//! * **statistical** — a Wilson/exact interval at the stated confidence,
//!   from the finite Monte-Carlo sample; and
//! * **model** — the simulator evaluates drift through lookup tables
//!   whose documented error bounds the oracle converts into a bracket
//!   `[q_lo, q_hi]` on the per-cell error probability
//!   (`DriftOracle::mean_cell_error_bounds`).
//!
//! A failure therefore means a *real* disagreement, not noise — see the
//! tripwire test at the bottom, which proves a 5% perturbation of the
//! drift constant is caught.

use pcm_analysis::{chi_square_gof, wilson_interval, TestBattery};
use pcm_ecc::ClassifyOutcome;
use pcm_memsim::{LineAddr, MemGeometry, Memory, SimTime};
use pcm_model::{CellArray, DeviceConfig, DriftParams};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scrub_oracle::num::{binom_tail_ge, binom_tail_le};
use scrub_oracle::{symbol_ue_tail, ue_probability, BasicScrubOracle, DriftOracle};
use scrubsim::prelude::*;

fn full() -> bool {
    std::env::var("SCRUBSIM_FULL_TEST").as_deref() == Ok("1")
}

/// Two-sided exact binomial p-value for `k` successes in `n` trials under
/// null proportion `p`.
fn binom_p_value(k: u64, n: u64, p: f64) -> f64 {
    let lo = binom_tail_le(n, k, p);
    let hi = binom_tail_ge(n, k, p);
    (2.0 * lo.min(hi)).min(1.0)
}

// ---------------------------------------------------------------------------
// Drift misread probability: oracle quadrature vs cell-exact Monte Carlo.
// The cell array carries no lookup tables, so the only slack here is
// statistical.
// ---------------------------------------------------------------------------

/// One measured misread proportion: cells programmed to `level`, read at
/// `age_s`.
struct MisreadPoint {
    level: usize,
    age_s: f64,
    k: u64,
    n: u64,
}

/// Selects (level, age, sample-size) cases that carry real statistical
/// power: sample sizes are sized from the *nominal* oracle so each case
/// expects ≥ 30 events (some levels barely misread at all — the top level
/// drifts *away* from its only boundary — and testing them would only
/// dilute the battery).
fn select_misread_cases(oracle: &DriftOracle, n_cap: usize) -> Vec<(usize, f64, usize)> {
    let mut cases = Vec::new();
    for &age_s in &[600.0, 3600.0, 86_400.0] {
        for level in 0..oracle.num_levels() {
            let p = oracle.p_misread(level, age_s);
            if p * n_cap as f64 >= 30.0 {
                cases.push((level, age_s, ((200.0 / p).ceil() as usize).min(n_cap)));
            }
        }
    }
    assert!(cases.len() >= 3, "expected several informative cases");
    cases
}

fn measure_misreads(cases: &[(usize, f64, usize)], seed: u64) -> Vec<MisreadPoint> {
    let dev = DeviceConfig::default();
    cases
        .iter()
        .enumerate()
        .map(|(i, &(level, age_s, n))| {
            let mut rng =
                StdRng::seed_from_u64(seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let mut arr = CellArray::new(dev.clone(), n);
            arr.program_all(level, 0.0, &mut rng);
            let frac = arr.misread_fraction_for_level(level, age_s, &mut rng);
            MisreadPoint {
                level,
                age_s,
                k: (frac * n as f64).round() as u64,
                n: n as u64,
            }
        })
        .collect()
}

/// The shared Monte-Carlo measurement (quick size), evaluated once and
/// reused by the agreement test and the tripwire.
fn quick_misread_points() -> &'static [MisreadPoint] {
    use std::sync::OnceLock;
    static POINTS: OnceLock<Vec<MisreadPoint>> = OnceLock::new();
    POINTS.get_or_init(|| {
        let oracle = DriftOracle::new(&DeviceConfig::default());
        measure_misreads(&select_misread_cases(&oracle, 150_000), 0xD41F7)
    })
}

fn misread_battery(points: &[MisreadPoint], oracle: &DriftOracle) -> TestBattery {
    let mut battery = TestBattery::new(0.01);
    for pt in points {
        let p_pred = oracle.p_misread(pt.level, pt.age_s);
        battery.record(
            &format!("misread-l{}-t{}", pt.level, pt.age_s),
            binom_p_value(pt.k, pt.n, p_pred),
        );
    }
    battery
}

#[test]
fn drift_misread_matches_cell_monte_carlo() {
    let oracle = DriftOracle::new(&DeviceConfig::default());
    let battery = misread_battery(quick_misread_points(), &oracle);
    assert!(
        battery.rejections().is_empty(),
        "oracle disagrees with cell-exact Monte Carlo:\n{}",
        battery.report()
    );
}

#[test]
#[ignore = "full agreement suite: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn drift_misread_matches_cell_monte_carlo_full() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let oracle = DriftOracle::new(&DeviceConfig::default());
    let points = measure_misreads(&select_misread_cases(&oracle, 600_000), 0xF0312);
    let battery = misread_battery(&points, &oracle);
    assert!(
        battery.rejections().is_empty(),
        "oracle disagrees with cell-exact Monte Carlo (full):\n{}",
        battery.report()
    );
}

// ---------------------------------------------------------------------------
// Post-ECC UE probability: binomial-through-code-marginal vs one simulator
// probe per fresh line.
// ---------------------------------------------------------------------------

struct UeRun {
    ue: u64,
    lines: u64,
    age_s: f64,
}

/// Probes `lines` fresh lines once each at an age chosen (from the oracle
/// alone) so the UE probability is comfortably measurable, and counts
/// uncorrectable outcomes.
fn ue_experiment(code: CodeSpec, oracle: &DriftOracle, lines: u32, seed: u64) -> UeRun {
    let dev = DeviceConfig::default();
    let cells = code.total_bits().div_ceil(dev.stack().bits_per_cell());
    let age_s = [300.0, 900.0, 1800.0, 3600.0, 7200.0, 14_400.0, 28_800.0]
        .into_iter()
        .find(|&t| {
            let p = ue_probability(&code, cells, oracle.mean_cell_error_prob(t));
            (0.05..=0.6).contains(&p)
        })
        .unwrap_or(28_800.0);
    let mut mem = Memory::new(MemGeometry::new(lines, 4), dev, code, seed);
    let now = SimTime::from_secs(age_s);
    for addr in 0..lines {
        mem.scrub_probe(LineAddr(addr), now);
    }
    let stats = mem.stats();
    UeRun {
        ue: stats.detected_ue + stats.miscorrections,
        lines: lines as u64,
        age_s,
    }
}

/// Accepts iff the Wilson interval on the measured UE fraction overlaps
/// the oracle bracket `[ue(q_lo), ue(q_hi)]` induced by the simulator's
/// documented LUT error bounds.
fn assert_ue_agreement(code: CodeSpec, oracle: &DriftOracle, lines: u32, label: &str) {
    let dev = DeviceConfig::default();
    let cells = code.total_bits().div_ceil(dev.stack().bits_per_cell());
    let run = ue_experiment(code.clone(), oracle, lines, 0xECC0 + lines as u64);
    let (q_lo, q_hi) = oracle.mean_cell_error_bounds(run.age_s);
    let (ue_lo, ue_hi) = (
        ue_probability(&code, cells, q_lo),
        ue_probability(&code, cells, q_hi),
    );
    let ci = wilson_interval(run.ue, run.lines, 0.01);
    assert!(
        ci.lo <= ue_hi && ue_lo <= ci.hi,
        "{label}: measured UE CI [{:.4}, {:.4}] misses oracle bracket \
         [{ue_lo:.4}, {ue_hi:.4}] at age {}s ({}/{} lines)",
        ci.lo,
        ci.hi,
        run.age_s,
        run.ue,
        run.lines
    );
}

#[test]
fn post_ecc_ue_rate_matches_closed_form_secded() {
    let oracle = DriftOracle::new(&DeviceConfig::default());
    assert_ue_agreement(CodeSpec::secded_line(), &oracle, 2048, "secded");
}

#[test]
fn post_ecc_ue_rate_matches_closed_form_bch4() {
    let oracle = DriftOracle::new(&DeviceConfig::default());
    assert_ue_agreement(CodeSpec::bch_line(4), &oracle, 2048, "bch4");
}

#[test]
#[ignore = "full agreement suite: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn post_ecc_ue_rate_matches_closed_form_full() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let oracle = DriftOracle::new(&DeviceConfig::default());
    assert_ue_agreement(CodeSpec::secded_line(), &oracle, 16_384, "secded-full");
    assert_ue_agreement(CodeSpec::bch_line(4), &oracle, 16_384, "bch4-full");
    assert_ue_agreement(CodeSpec::bch_line(6), &oracle, 16_384, "bch6-full");
}

// ---------------------------------------------------------------------------
// Line error-count histogram: the whole Bin(cells, q̄) law, not just its
// UE tail, via chi-square goodness of fit.
// ---------------------------------------------------------------------------

#[test]
fn line_error_histogram_matches_binomial_law() {
    let dev = DeviceConfig::default();
    let oracle = DriftOracle::new(&dev);
    let code = CodeSpec::bch_line(6);
    let cells = code.total_bits().div_ceil(dev.stack().bits_per_cell());
    let t = code.guaranteed_t();
    // Pick an age (oracle-only) where the mean error count sits in the
    // correctable range so every histogram bin gets mass.
    let age_s = [300.0, 900.0, 1800.0, 3600.0, 7200.0, 14_400.0]
        .into_iter()
        .find(|&t_s| {
            let m = scrub_oracle::expected_errors(cells, oracle.mean_cell_error_prob(t_s));
            (1.5..=5.0).contains(&m)
        })
        .unwrap_or(3600.0);

    let lines: u32 = if full() { 16_384 } else { 2048 };
    let mut mem = Memory::new(MemGeometry::new(lines, 4), dev, code, 0xB19);
    let now = SimTime::from_secs(age_s);
    let mut observed = vec![0u64; t as usize + 2]; // 0..=t errors, then UE
    for addr in 0..lines {
        let r = mem.scrub_probe(LineAddr(addr), now);
        let bin = match r.outcome {
            ClassifyOutcome::Clean => 0,
            ClassifyOutcome::Corrected { bits } => (bits as usize).min(t as usize),
            _ => t as usize + 1,
        };
        observed[bin] += 1;
    }

    let q = oracle.mean_cell_error_prob(age_s);
    let pmf = scrub_oracle::line_error_pmf(cells, q, t);
    let mut expected: Vec<f64> = pmf.iter().map(|p| p * lines as f64).collect();
    expected.push(binom_tail_ge(cells as u64, t as u64 + 1, q) * lines as f64);

    let (p_value, dof) = chi_square_gof(&observed, &expected, 5.0);
    assert!(
        p_value > 1e-3,
        "line error histogram rejects Bin({cells}, {q:.5}) at age {age_s}s: \
         p = {p_value:.2e} (dof {dof}), observed {observed:?}"
    );
}

// ---------------------------------------------------------------------------
// Basic-scrub writes and energy: renewal DP vs a full simulation run.
// ---------------------------------------------------------------------------

struct ScrubCase {
    num_lines: u32,
    interval_s: f64,
    horizon_s: f64,
    seed: u64,
    /// Oracle age-grid resolution. The quick case runs at 40 pts/decade
    /// (~2e-3 relative interpolation error, far inside the 3% model
    /// slack) to keep tier-1 fast; the full cases use the 160-pt default.
    points_per_decade: usize,
}

fn assert_scrub_agreement(case: &ScrubCase) {
    let dev = DeviceConfig::default();
    let code = CodeSpec::bch_line(4);
    let oracle = DriftOracle::new(&dev);
    let model = BasicScrubOracle::with_grid_resolution(
        &dev,
        &code,
        &oracle,
        case.num_lines,
        case.interval_s,
        case.horizon_s,
        case.points_per_decade,
    );
    let pred = model.predict();

    let report = Simulation::new(
        SimConfig::builder()
            .num_lines(case.num_lines)
            .code(code)
            .policy(PolicyKind::Basic {
                interval_s: case.interval_s,
            })
            .traffic(DemandTraffic::Idle)
            .horizon_s(case.horizon_s)
            .seed(case.seed)
            .build(),
    )
    .run();

    // Probe counts are deterministic: the oracle replicates the engine's
    // slot accumulation, so this must be *exact*.
    assert_eq!(
        report.stats.scrub_probes, pred.probes,
        "probe count mismatch: sim {} vs oracle {}",
        report.stats.scrub_probes, pred.probes
    );

    // Write-backs: statistical band (3.3σ ≈ 99.9% two-sided under CLT over
    // hundreds of independent lines) plus 3% model slack for the LUT error
    // bounds propagated through the hazards.
    let w = report.stats.scrub_writebacks as f64;
    let slack = 3.3 * pred.writebacks_sd + 0.03 * pred.writebacks_mean + 1.0;
    assert!(
        (w - pred.writebacks_mean).abs() <= slack,
        "write-backs {} vs predicted {:.1} ± {:.1} (sd {:.1})",
        w,
        pred.writebacks_mean,
        slack,
        pred.writebacks_sd
    );

    // Energy decomposes exactly: probes·probe_uj + writes·write_uj. Check
    // the affine identity against the simulator's ledger with the
    // *observed* write count (tests the energy accounting itself), then
    // the predicted mean within the write-band slack.
    let ledger_identity =
        pred.probes as f64 * model.probe_energy_uj() + w * model.writeback_energy_uj();
    assert!(
        (report.scrub_energy_uj - ledger_identity).abs() <= 1e-6 * ledger_identity.max(1.0),
        "scrub energy ledger {} µJ diverges from affine identity {} µJ",
        report.scrub_energy_uj,
        ledger_identity
    );
    let e_slack = 3.3 * pred.scrub_energy_uj_sd + 0.03 * pred.scrub_energy_uj_mean;
    assert!(
        (report.scrub_energy_uj - pred.scrub_energy_uj_mean).abs() <= e_slack,
        "scrub energy {} µJ vs predicted {:.2} ± {:.2} µJ",
        report.scrub_energy_uj,
        pred.scrub_energy_uj_mean,
        e_slack
    );
}

#[test]
fn basic_scrub_writes_and_energy_match_renewal_model() {
    assert_scrub_agreement(&ScrubCase {
        num_lines: 64,
        interval_s: 900.0,
        horizon_s: 3600.0,
        seed: 41,
        points_per_decade: 40,
    });
}

#[test]
#[ignore = "full agreement suite: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn basic_scrub_writes_and_energy_match_renewal_model_full() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    assert_scrub_agreement(&ScrubCase {
        num_lines: 512,
        interval_s: 900.0,
        horizon_s: 6.0 * 3600.0,
        seed: 42,
        points_per_decade: 160,
    });
    assert_scrub_agreement(&ScrubCase {
        num_lines: 256,
        interval_s: 1800.0,
        horizon_s: 12.0 * 3600.0,
        seed: 43,
        points_per_decade: 160,
    });
}

// ---------------------------------------------------------------------------
// Reed–Solomon symbol-UE tail: the surjection-counting oracle
// (`symbol_ue_tail`) vs one simulator probe per fresh line. Same shape as
// the bit-code UE agreement above, but the law under test is the symbol
// occupancy distribution, not a bit-count threshold.
// ---------------------------------------------------------------------------

/// RS(72,64) over GF(2^8): 72 byte symbols, t = 4. Kept in one place so
/// the oracle calls and the simulator config cannot drift apart.
const RS_SYMBOLS: u32 = 72;
const RS_SYMBOL_BITS: u32 = 8;

fn rs_code() -> CodeSpec {
    let code = CodeSpec::rs_line(72, 64);
    assert_eq!(code.guaranteed_t(), 4, "RS(72,64) corrects 4 symbols");
    assert_eq!(code.total_bits(), RS_SYMBOLS * RS_SYMBOL_BITS);
    code
}

/// Probes `lines` fresh RS lines once each at an age chosen (from the
/// oracle alone) so the symbol-UE probability is comfortably measurable.
fn rs_ue_experiment(oracle: &DriftOracle, lines: u32, seed: u64) -> UeRun {
    let code = rs_code();
    let dev = DeviceConfig::default();
    let cells = code.total_bits().div_ceil(dev.stack().bits_per_cell());
    let t = code.guaranteed_t();
    let age_s = [300.0, 900.0, 1800.0, 3600.0, 7200.0, 14_400.0, 28_800.0]
        .into_iter()
        .find(|&t_s| {
            let p = symbol_ue_tail(
                RS_SYMBOLS,
                RS_SYMBOL_BITS,
                t,
                cells,
                oracle.mean_cell_error_prob(t_s),
            );
            (0.05..=0.6).contains(&p)
        })
        .unwrap_or(28_800.0);
    let mut mem = Memory::new(MemGeometry::new(lines, 4), dev, code, seed);
    let now = SimTime::from_secs(age_s);
    for addr in 0..lines {
        mem.scrub_probe(LineAddr(addr), now);
    }
    let stats = mem.stats();
    UeRun {
        ue: stats.detected_ue + stats.miscorrections,
        lines: lines as u64,
        age_s,
    }
}

/// Accepts iff the Wilson interval on the measured symbol-UE fraction
/// overlaps the oracle bracket induced by the LUT error bounds.
fn assert_rs_ue_agreement(oracle: &DriftOracle, lines: u32, label: &str) {
    let code = rs_code();
    let dev = DeviceConfig::default();
    let cells = code.total_bits().div_ceil(dev.stack().bits_per_cell());
    let t = code.guaranteed_t();
    let run = rs_ue_experiment(oracle, lines, 0x5272 + lines as u64);
    let (q_lo, q_hi) = oracle.mean_cell_error_bounds(run.age_s);
    let (ue_lo, ue_hi) = (
        symbol_ue_tail(RS_SYMBOLS, RS_SYMBOL_BITS, t, cells, q_lo),
        symbol_ue_tail(RS_SYMBOLS, RS_SYMBOL_BITS, t, cells, q_hi),
    );
    let ci = wilson_interval(run.ue, run.lines, 0.01);
    assert!(
        ci.lo <= ue_hi && ue_lo <= ci.hi,
        "{label}: measured symbol-UE CI [{:.4}, {:.4}] misses oracle bracket \
         [{ue_lo:.4}, {ue_hi:.4}] at age {}s ({}/{} lines)",
        ci.lo,
        ci.hi,
        run.age_s,
        run.ue,
        run.lines
    );
}

#[test]
fn post_ecc_symbol_ue_rate_matches_closed_form_rs() {
    let oracle = DriftOracle::new(&DeviceConfig::default());
    assert_rs_ue_agreement(&oracle, 2048, "rs72-64");
}

#[test]
#[ignore = "full agreement suite: SCRUBSIM_FULL_TEST=1 cargo test -- --include-ignored"]
fn post_ecc_symbol_ue_rate_matches_closed_form_rs_full() {
    if !full() {
        eprintln!("skipped: set SCRUBSIM_FULL_TEST=1");
        return;
    }
    let oracle = DriftOracle::new(&DeviceConfig::default());
    assert_rs_ue_agreement(&oracle, 16_384, "rs72-64-full");
}

// ---------------------------------------------------------------------------
// Profiled-scrub cold schedule: with an ample budget and every probe
// reporting clean, the profiled policy's probe stream is pure arithmetic
// (tour interleaving + seeded quiet-stretch stripes). An independent
// replay — splitmix64, origin, and phase derivations reimplemented here,
// not imported — must reproduce it slot-for-slot.
// ---------------------------------------------------------------------------

/// Independent SplitMix64 (the same published finalizer the policy
/// documents), deliberately *not* imported from scrub-core.
fn replay_splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Arithmetic replay of the cold-table profiled schedule: per-bank tour
/// interleaving from seeded origins, quiet lines due only on their
/// phase-striped tours. `phase_seed` is the seed used for the stripe
/// derivation (== `seed` for a faithful replay; anything else models a
/// silently perturbed scheduler).
fn replay_cold_schedule(
    lines: u32,
    banks: u32,
    stretch: u32,
    seed: u64,
    phase_seed: u64,
    slots: u64,
) -> Vec<Option<u32>> {
    let count = |b: u32| lines / banks + u32::from(b < lines % banks);
    let origins: Vec<u32> = (0..banks)
        .map(|b| {
            (replay_splitmix64(seed ^ 0x0070_5246 ^ u64::from(b)) % u64::from(count(b))) as u32
        })
        .collect();
    let mut out = Vec::with_capacity(slots as usize);
    let (mut pos, mut tours) = (0u32, 0u64);
    for _ in 0..slots {
        let b = pos % banks;
        let j = pos / banks;
        let addr = b + ((origins[b as usize] + j) % count(b)) * banks;
        let due = tours % u64::from(stretch);
        pos += 1;
        if pos == lines {
            pos = 0;
            tours += 1;
        }
        let phase =
            replay_splitmix64(phase_seed ^ 0x7052_4f46 ^ u64::from(addr)) % u64::from(stretch);
        out.push((stretch == 1 || phase == due).then_some(addr));
    }
    out
}

/// Drives a generously budgeted profiled policy through `slots`
/// all-clean slots and returns its probe stream.
fn drive_cold_profiled(
    lines: u32,
    banks: u32,
    stretch: u32,
    seed: u64,
    slots: u64,
) -> Vec<Option<u32>> {
    use scrubsim::memsim::AccessResult;
    use scrubsim::scrub::{ProfileParams, ProfiledScrub, ScrubAction, ScrubContext, TourBudget};

    let mem = Memory::new(
        MemGeometry::new(lines, banks),
        DeviceConfig::default(),
        CodeSpec::bch_line(6),
        5,
    );
    let mut policy = ProfiledScrub::new(
        600.0,
        lines,
        banks,
        3,
        // Ample budget: refill far outpaces one probe per slot, so the
        // token bucket never throttles and the schedule is pure.
        TourBudget {
            iops: 50.0,
            burst: 16.0,
            max_defer: 4,
        },
        ProfileParams {
            capacity: 16,
            hot_stride: 4,
            stretch,
            risk: 2,
        },
        seed,
    );
    let clean = AccessResult {
        outcome: ClassifyOutcome::Clean,
        persistent_bits: 0,
        new_ue: false,
    };
    (0..slots)
        .map(|s| {
            let ctx = ScrubContext {
                now: SimTime::from_secs(s as f64 * 2.5),
                mem: &mem,
            };
            match policy.next_action(&ctx) {
                ScrubAction::Probe(p) => {
                    // Clean feedback keeps the table cold: nothing is ever
                    // inserted, so the hot interleave stays a no-op.
                    assert!(!policy.wants_writeback(p, &clean, &ctx));
                    Some(p.0)
                }
                _ => None,
            }
        })
        .collect()
}

#[test]
fn profiled_cold_probe_schedule_matches_arithmetic_replay() {
    for (lines, banks, stretch, seed) in [
        (96u32, 8u32, 1u32, 0xA11CEu64),
        (96, 8, 2, 0xB0B),
        (97, 5, 3, 0xC0FFEE),
        (64, 1, 2, 7),
    ] {
        let slots = u64::from(lines * stretch) * 3 + 17;
        let sim = drive_cold_profiled(lines, banks, stretch, seed, slots);
        let replay = replay_cold_schedule(lines, banks, stretch, seed, seed, slots);
        assert_eq!(
            sim, replay,
            "cold profiled schedule diverged from arithmetic replay \
             (lines {lines}, banks {banks}, stretch {stretch}, seed {seed})"
        );
        let probes = sim.iter().flatten().count() as u64;
        // Each of the `3 * stretch` whole tours probes every line exactly
        // once per stretch cycle; the +17 tail adds a bounded remainder.
        assert!(
            probes >= u64::from(lines) * 3 && probes <= u64::from(lines) * 3 + 17,
            "cold probe count {probes} outside [{}, {}]",
            lines * 3,
            u64::from(lines) * 3 + 17
        );
    }
}

#[test]
fn tripwire_perturbed_stripe_seed_fails_schedule_replay() {
    let (lines, banks, stretch, seed) = (96u32, 8u32, 2u32, 0xB0Bu64);
    let slots = u64::from(lines * stretch) * 3 + 17;
    let sim = drive_cold_profiled(lines, banks, stretch, seed, slots);
    // A scheduler whose stripe derivation silently changed (here: a
    // different phase seed) must be caught by the slot-for-slot
    // comparison the agreement test runs.
    let perturbed = replay_cold_schedule(lines, banks, stretch, seed, seed ^ 1, slots);
    assert_ne!(
        sim, perturbed,
        "a perturbed stripe seed reproduced the cold schedule — the \
         replay has no teeth"
    );
}

// ---------------------------------------------------------------------------
// Tripwire: the suite must have teeth. A 5% perturbation of the drift
// constant (the kind of silent regression the suite exists to catch) must
// push predictions outside the acceptance bands.
// ---------------------------------------------------------------------------

#[test]
fn tripwire_perturbed_drift_constant_fails_agreement() {
    let dev = DeviceConfig::default();
    let perturbed = DriftOracle::with_drift_params(&dev, DriftParams::default().with_scale(1.05));
    let battery = misread_battery(quick_misread_points(), &perturbed);
    assert!(
        !battery.rejections().is_empty(),
        "a 5% drift-constant perturbation sailed through the misread \
         agreement test — the suite has no teeth:\n{}",
        battery.report()
    );

    // The UE acceptance bracket must also exclude the perturbed
    // prediction: same measurement, same statistical band, shifted oracle.
    let nominal = DriftOracle::new(&dev);
    let code = CodeSpec::bch_line(4);
    let cells = code.total_bits().div_ceil(dev.stack().bits_per_cell());
    let run = ue_experiment(code.clone(), &nominal, 2048, 0xECC0 + 2048);
    let ci = wilson_interval(run.ue, run.lines, 0.01);
    let (q_lo, q_hi) = perturbed.mean_cell_error_bounds(run.age_s);
    let (ue_lo, ue_hi) = (
        ue_probability(&code, cells, q_lo),
        ue_probability(&code, cells, q_hi),
    );
    assert!(
        ci.hi < ue_lo || ue_hi < ci.lo,
        "perturbed UE bracket [{ue_lo:.4}, {ue_hi:.4}] still overlaps the \
         measured CI [{:.4}, {:.4}]",
        ci.lo,
        ci.hi
    );

    // Same teeth for the symbol-UE path: the RS measurement's CI must
    // exclude the perturbed oracle's bracket too.
    let code = rs_code();
    let cells = code.total_bits().div_ceil(dev.stack().bits_per_cell());
    let t = code.guaranteed_t();
    let run = rs_ue_experiment(&nominal, 2048, 0x5272 + 2048);
    let ci = wilson_interval(run.ue, run.lines, 0.01);
    let (q_lo, q_hi) = perturbed.mean_cell_error_bounds(run.age_s);
    let (ue_lo, ue_hi) = (
        symbol_ue_tail(RS_SYMBOLS, RS_SYMBOL_BITS, t, cells, q_lo),
        symbol_ue_tail(RS_SYMBOLS, RS_SYMBOL_BITS, t, cells, q_hi),
    );
    assert!(
        ci.hi < ue_lo || ue_hi < ci.lo,
        "perturbed symbol-UE bracket [{ue_lo:.4}, {ue_hi:.4}] still \
         overlaps the measured CI [{:.4}, {:.4}]",
        ci.lo,
        ci.hi
    );
}
