//! Negative-path coverage for the tour/budget CLI flags.
//!
//! Every malformed invocation must die with exit code 2 and a one-line
//! stderr naming the offending flag — the same contract the campaign and
//! checkpoint flags follow — and never start a simulation. One positive
//! case pins the happy path so these tests cannot all pass vacuously.

use std::process::{Command, Output};

fn scrubsim(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scrubsim"))
        .args(args)
        .output()
        .expect("spawn scrubsim")
}

/// Asserts the invocation failed with exit 2 and exactly one stderr line
/// mentioning `needle`.
fn assert_rejected(args: &[&str], needle: &str) {
    let out = scrubsim(args);
    assert_eq!(
        out.status.code(),
        Some(2),
        "{args:?} should exit 2, got {:?}\nstderr: {}",
        out.status.code(),
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(
        stderr.trim_end().lines().count(),
        1,
        "{args:?} should print one line, got:\n{stderr}"
    );
    assert!(
        stderr.contains(needle),
        "{args:?} stderr should mention {needle:?}:\n{stderr}"
    );
    assert!(
        out.stdout.is_empty(),
        "{args:?} must not start simulating before validation"
    );
}

#[test]
fn scrub_iops_rejects_zero() {
    assert_rejected(&["--policy", "tour", "--scrub-iops", "0"], "--scrub-iops");
}

#[test]
fn scrub_iops_rejects_negative() {
    assert_rejected(&["--policy", "tour", "--scrub-iops", "-3"], "--scrub-iops");
}

#[test]
fn scrub_iops_rejects_nan_and_infinity() {
    assert_rejected(&["--policy", "tour", "--scrub-iops", "NaN"], "--scrub-iops");
    assert_rejected(&["--policy", "tour", "--scrub-iops", "inf"], "--scrub-iops");
}

#[test]
fn scrub_iops_rejects_garbage() {
    assert_rejected(
        &["--policy", "tour", "--scrub-iops", "fast"],
        "--scrub-iops",
    );
}

#[test]
fn scrub_burst_rejects_sub_token_bucket() {
    assert_rejected(
        &["--policy", "tour", "--scrub-burst", "0.5"],
        "--scrub-burst",
    );
    assert_rejected(&["--policy", "tour", "--scrub-burst", "0"], "--scrub-burst");
    assert_rejected(
        &["--policy", "tour", "--scrub-burst", "NaN"],
        "--scrub-burst",
    );
}

#[test]
fn max_defer_rejects_non_integers() {
    assert_rejected(&["--policy", "tour", "--max-defer", "2.5"], "--max-defer");
    assert_rejected(&["--policy", "tour", "--max-defer", "-1"], "--max-defer");
    assert_rejected(&["--policy", "tour", "--max-defer", "many"], "--max-defer");
}

#[test]
fn tour_flags_require_the_tour_policy() {
    for flags in [
        vec!["--policy", "basic", "--scrub-iops", "5"],
        vec!["--policy", "threshold", "--scrub-burst", "32"],
        vec!["--policy", "combined", "--max-defer", "4"],
    ] {
        assert_rejected(&flags, "require --policy tour");
    }
}

#[test]
fn unknown_policy_still_rejected_with_tour_flags_present() {
    assert_rejected(
        &["--policy", "grand-tour", "--scrub-iops", "5"],
        "unknown policy",
    );
}

#[test]
fn rs_code_rejects_malformed_shapes() {
    // Zero total symbols.
    assert_rejected(&["--code", "rs:0,5"], "--code");
    // k >= n (no parity at all, or negative).
    assert_rejected(&["--ecc", "rs:80,96"], "--code");
    assert_rejected(&["--code", "rs:72,72"], "--code");
    // Odd parity symbol count (no integer t).
    assert_rejected(&["--code", "rs:71,64"], "--code");
    // Payload does not cover a 512-bit line.
    assert_rejected(&["--code", "rs:40,32"], "--code");
    // Symbols beyond GF(2^8)'s 255-symbol limit.
    assert_rejected(&["--code", "rs:300,64"], "--code");
    // Plain garbage.
    assert_rejected(&["--code", "rs:a,b"], "--code");
    assert_rejected(&["--ecc", "rs:"], "--code");
}

#[test]
fn profiler_flags_reject_garbage_values() {
    let p = ["--policy", "profiled"];
    assert_rejected(
        &[&p[..], &["--profile-capacity", "0"]].concat(),
        "--profile-capacity",
    );
    assert_rejected(
        &[&p[..], &["--profile-capacity", "lots"]].concat(),
        "--profile-capacity",
    );
    assert_rejected(
        &[&p[..], &["--profile-stride", "1"]].concat(),
        "--profile-stride",
    );
    assert_rejected(
        &[&p[..], &["--profile-stride", "-2"]].concat(),
        "--profile-stride",
    );
    assert_rejected(
        &[&p[..], &["--profile-stretch", "0"]].concat(),
        "--profile-stretch",
    );
    assert_rejected(
        &[&p[..], &["--profile-risk", "0"]].concat(),
        "--profile-risk",
    );
    assert_rejected(
        &[&p[..], &["--profile-risk", "high"]].concat(),
        "--profile-risk",
    );
}

#[test]
fn profiler_flags_require_the_profiled_policy() {
    for flags in [
        vec!["--policy", "tour", "--profile-capacity", "64"],
        vec!["--policy", "combined", "--profile-stride", "6"],
        vec!["--policy", "basic", "--profile-stretch", "3"],
        vec!["--policy", "threshold", "--profile-risk", "4"],
    ] {
        assert_rejected(&flags, "require --policy profiled");
    }
}

/// Happy path for the new surfaces: a tiny profiled run under RS(72,64)
/// completes and reports, proving the rejections above come from
/// validation, not a broken policy or code path.
#[test]
fn valid_profiled_rs_invocation_runs() {
    let out = scrubsim(&[
        "--lines",
        "256",
        "--hours",
        "0.1",
        "--policy",
        "profiled",
        "--ecc",
        "rs:72,64",
        "--scrub-iops",
        "2",
        "--profile-capacity",
        "32",
        "--profile-stride",
        "4",
        "--profile-stretch",
        "2",
        "--profile-risk",
        "2",
        "--workload",
        "idle",
        "--threads",
        "1",
    ]);
    assert!(
        out.status.success(),
        "valid profiled+rs invocation failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("profiled"),
        "report should name the policy:\n{stdout}"
    );
}

/// Happy path: a tiny budgeted tour run completes, prints a report, and
/// exits 0 — proving the rejection tests fail on validation, not on some
/// unrelated breakage.
#[test]
fn valid_tour_invocation_runs() {
    let out = scrubsim(&[
        "--lines",
        "256",
        "--hours",
        "0.1",
        "--policy",
        "tour",
        "--scrub-iops",
        "2",
        "--scrub-burst",
        "8",
        "--max-defer",
        "4",
        "--workload",
        "idle",
        "--threads",
        "1",
    ]);
    assert!(
        out.status.success(),
        "valid invocation failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("tour"),
        "report should name the policy:\n{stdout}"
    );
}
