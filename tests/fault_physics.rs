//! Integration tests tying the statistical fault engine back to the
//! cell-exact Monte-Carlo device model: the two implementations of the
//! same physics must agree.

use rand::rngs::StdRng;
use rand::SeedableRng;

use scrubsim::device::{CellArray, DeviceConfig, EnduranceSpec};
use scrubsim::memsim::{FaultEngine, SimTime};

#[test]
fn engine_mean_errors_match_cell_exact_model() {
    // Program a cell-exact array and an engine-modelled population with
    // the same device, age both a day, compare mean bit errors per line.
    let dev = DeviceConfig::default();
    let mut rng = StdRng::seed_from_u64(41);
    let cells_per_line = 288usize;
    let lines = 400usize;

    // Cell-exact: one big array, uniform data.
    let mut arr = CellArray::new(dev.clone(), cells_per_line * lines);
    arr.program_uniform(0.0, &mut rng);
    let report = arr.read_all(86_400.0, &mut rng);
    let mc_mean = report.bit_errors as f64 / lines as f64;

    // Engine: the same population as per-line states.
    let engine = FaultEngine::new(&dev, cells_per_line as u32);
    let mut total = 0u64;
    for _ in 0..lines {
        let mut line = engine.fresh_line(SimTime::ZERO, &mut rng);
        total += engine.read_errors(&mut line, SimTime::from_secs(86_400.0), &mut rng) as u64;
    }
    let engine_mean = total as f64 / lines as f64;

    let rel = (mc_mean - engine_mean).abs() / mc_mean.max(1e-9);
    assert!(
        rel < 0.15,
        "cell-exact mean {mc_mean} vs engine mean {engine_mean} (rel {rel})"
    );
}

#[test]
fn engine_wear_failures_match_endurance_cdf() {
    // After W writes, the worn-cell fraction must track F(W).
    let spec = EnduranceSpec::new(200.0, 0.3);
    let dev = DeviceConfig::builder().endurance(spec).build();
    let engine = FaultEngine::new(&dev, 288);
    let mut rng = StdRng::seed_from_u64(42);
    let writes = 260u32;
    let lines = 300;
    let mut worn = 0u64;
    for _ in 0..lines {
        let mut line = engine.fresh_line(SimTime::ZERO, &mut rng);
        for w in 0..writes {
            engine.on_write(&mut line, SimTime::from_secs(w as f64 + 1.0), &mut rng);
        }
        worn += line.worn_cells as u64;
    }
    let measured = worn as f64 / (lines * 288) as f64;
    let expected = spec.fail_cdf(writes as u64 + 1);
    assert!(
        (measured - expected).abs() < 0.05,
        "worn fraction {measured} vs F({writes}) = {expected}"
    );
}

#[test]
fn hot_lines_do_not_spuriously_wear_out() {
    // Regression for the subnormal-binomial bug: a line written tens of
    // thousands of times against 1e6-median endurance must stay intact.
    let dev = DeviceConfig::default(); // accelerated: 1e6 median
    let engine = FaultEngine::new(&dev, 288);
    let mut rng = StdRng::seed_from_u64(43);
    let mut line = engine.fresh_line(SimTime::ZERO, &mut rng);
    for w in 0..20_000u32 {
        engine.on_write(&mut line, SimTime::from_secs(w as f64), &mut rng);
    }
    assert_eq!(
        line.worn_cells, 0,
        "20k writes against 1e6-median endurance wore out {} cells",
        line.worn_cells
    );
    assert_eq!(line.worn_conflict_bits, 0);
}

#[test]
fn rewrite_brings_line_back_to_clean_distribution() {
    let dev = DeviceConfig::default();
    let engine = FaultEngine::new(&dev, 288);
    let mut rng = StdRng::seed_from_u64(44);
    let week = SimTime::from_secs(604_800.0);
    let mut dirty = 0u64;
    for _ in 0..200 {
        let mut line = engine.fresh_line(SimTime::ZERO, &mut rng);
        engine.advance(&mut line, week, &mut rng);
        engine.on_write(&mut line, week, &mut rng);
        // Immediately after rewrite: persistent errors must be zero.
        assert_eq!(line.persistent_bit_errors(), 0);
        // And shortly after, still (almost always) clean.
        dirty += u64::from(engine.read_errors(&mut line, week + 10.0, &mut rng) > 0);
    }
    assert!(
        dirty <= 5,
        "{dirty}/200 freshly rewritten lines showed errors"
    );
}

#[test]
fn drift_aware_thresholds_help_in_the_engine_too() {
    use scrubsim::device::ThresholdPlacement;
    let mut rng = StdRng::seed_from_u64(45);
    let day = SimTime::from_secs(86_400.0);
    let mut means = Vec::new();
    for placement in [
        ThresholdPlacement::Midpoint,
        ThresholdPlacement::drift_aware_default(),
    ] {
        let dev = DeviceConfig::builder()
            .threshold_placement(placement)
            .build();
        let engine = FaultEngine::new(&dev, 288);
        let mut total = 0u64;
        for _ in 0..300 {
            let mut line = engine.fresh_line(SimTime::ZERO, &mut rng);
            total += engine.advance(&mut line, day, &mut rng) as u64;
        }
        means.push(total as f64 / 300.0);
    }
    assert!(
        means[1] < means[0] / 2.0,
        "drift-aware {means:?} should at least halve day-old errors"
    );
}
