//! Tour of the extension mechanisms built on top of the paper's combined
//! scrub: time-aware sensing, CRC-first probes, Start-Gap wear leveling,
//! in-band scrub, the UE-budget controller, and temperature scaling.
//!
//! ```bash
//! cargo run --release --example extensions_tour
//! ```

use scrubsim::analysis::{fmt_count, Table};
use scrubsim::prelude::*;

fn run(label: &str, cfg: SimConfig, table: &mut Table) {
    let r = Simulation::new(cfg).run();
    table.row(vec![
        label.to_string(),
        fmt_count(r.uncorrectable() as f64),
        fmt_count(r.scrub_writes() as f64),
        fmt_count(r.scrub_energy_uj),
        r.max_wear.to_string(),
    ]);
}

fn main() {
    let mut table = Table::new(vec![
        "config",
        "UEs",
        "scrub_writes",
        "energy_uJ",
        "max_wear",
    ]);
    let base = || {
        let mut b = SimConfig::builder();
        b.num_lines(1 << 13)
            .code(CodeSpec::bch_line(6))
            .policy(PolicyKind::combined_default(900.0))
            .traffic(DemandTraffic::suite(WorkloadId::WebServe))
            .horizon_s(12.0 * 3600.0)
            .seed(99);
        b
    };

    run("combined (paper)", base().build(), &mut table);
    run(
        "+time-aware sensing",
        base()
            .device(
                DeviceConfig::builder()
                    .sensing(SensingMode::AgeCompensated)
                    .build(),
            )
            .build(),
        &mut table,
    );
    run(
        "+CRC-first probes",
        base().probe_kind(ProbeKind::CrcThenDecode).build(),
        &mut table,
    );
    run(
        "+start-gap leveling",
        base().wear_leveling(64).build(),
        &mut table,
    );
    run(
        "+in-band scrub",
        base().inband_writeback(4).build(),
        &mut table,
    );
    run(
        "budget controller (10 UE/GiB-day)",
        base()
            .policy(PolicyKind::Budget {
                interval_s: 900.0,
                theta: 4,
                target_ue_per_gib_day: 10.0,
                window_s: 3600.0,
            })
            .build(),
        &mut table,
    );
    run(
        "combined @85C",
        base()
            .device(
                DeviceConfig::builder()
                    .drift(DriftParams::default().with_temperature_c(85.0))
                    .build(),
            )
            .build(),
        &mut table,
    );

    println!("extension mechanisms on web-serve, 8Ki lines, 12 simulated hours\n");
    println!("{}", table.render());
}
