//! Diurnal traffic study: when demand follows a day/night cycle, adaptive
//! scrub pacing tracks the drift pressure (which builds during the write
//! lull) while fixed-rate scrub wastes energy by day and under-protects by
//! night.
//!
//! ```bash
//! cargo run --release --example diurnal_adaptive
//! ```

use scrubsim::analysis::{fmt_count, Table};
use scrubsim::prelude::*;
use scrubsim::scrub::Simulation as Sim;
use scrubsim::workloads::DiurnalTrace;

fn main() {
    let num_lines = 1 << 13;
    let horizon_s = 24.0 * 3600.0;
    // 6h busy / 6h nearly-idle cycle on an OLTP-like workload.
    let make_trace =
        || DiurnalTrace::day_night(WorkloadId::DbOltp, num_lines, 77, 6.0 * 3600.0, 0.05);

    let mut table = Table::new(vec!["policy", "UEs", "scrub_writes", "probes", "energy_uJ"]);
    let configs: Vec<(&str, PolicyKind)> = vec![
        ("basic @15min", PolicyKind::Basic { interval_s: 900.0 }),
        (
            "threshold @15min",
            PolicyKind::Threshold {
                interval_s: 900.0,
                theta: 4,
            },
        ),
        (
            "adaptive @15min",
            PolicyKind::Adaptive {
                interval_s: 900.0,
                theta: 4,
                regions: 64,
            },
        ),
        ("combined @15min", PolicyKind::combined_default(900.0)),
    ];
    for (label, policy) in configs {
        let mut b = SimConfig::builder();
        b.num_lines(num_lines)
            .code(CodeSpec::bch_line(6))
            .policy(policy)
            .horizon_s(horizon_s)
            .seed(77);
        let report = Sim::with_trace(b.build(), Box::new(make_trace())).run();
        table.row(vec![
            label.to_string(),
            fmt_count(report.uncorrectable() as f64),
            fmt_count(report.scrub_writes() as f64),
            fmt_count(report.stats.scrub_probes as f64),
            fmt_count(report.scrub_energy_uj),
        ]);
    }
    println!("day/night db-oltp (6h cycle, night at 5% rate), 8Ki lines, 1 day\n");
    println!("{}", table.render());
    println!(
        "Adaptive/combined shave probes during the busy phase (lines are\n\
         demand-refreshed anyway) and concentrate effort on the idle phase\n\
         where drift accumulates unchecked."
    );
}
