//! Drift playground: poke the device model directly — print misread
//! probabilities over time for each level and threshold placement, and
//! cross-check against a Monte-Carlo cell array.
//!
//! ```bash
//! cargo run --release --example drift_playground
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;

use scrubsim::analysis::Table;
use scrubsim::device::{CellArray, DeviceConfig, ThresholdPlacement};

fn main() {
    let ages: [(f64, &str); 6] = [
        (1.0, "1s"),
        (60.0, "1min"),
        (3600.0, "1h"),
        (21_600.0, "6h"),
        (86_400.0, "1d"),
        (604_800.0, "1w"),
    ];

    for (placement, label) in [
        (ThresholdPlacement::Midpoint, "midpoint thresholds"),
        (
            ThresholdPlacement::drift_aware_default(),
            "drift-aware thresholds",
        ),
    ] {
        let dev = DeviceConfig::builder()
            .threshold_placement(placement)
            .build();
        let model = dev.drift_model();
        println!("== {label} (bounds {:?}) ==\n", model.thresholds().bounds());
        let mut table = Table::new(vec!["age", "L0", "L1", "L2", "L3", "line_exp_errors"]);
        for (age, age_label) in ages {
            let probs: Vec<f64> = (0..4).map(|lv| model.p_misread(lv, age)).collect();
            // Expected persistent+transient errors on a 288-cell line with
            // uniform data.
            let expected: f64 = probs.iter().map(|p| p * 72.0).sum();
            table.row(vec![
                age_label.to_string(),
                format!("{:.2e}", probs[0]),
                format!("{:.2e}", probs[1]),
                format!("{:.2e}", probs[2]),
                format!("{:.2e}", probs[3]),
                format!("{expected:.2}"),
            ]);
        }
        println!("{}", table.render());
    }

    // Monte-Carlo sanity check at one point.
    println!("Monte-Carlo cross-check (level 2, one day, 100k cells):");
    let dev = DeviceConfig::default();
    let model = dev.drift_model();
    let mut rng = StdRng::seed_from_u64(1);
    let mut arr = CellArray::new(dev, 100_000);
    arr.program_all(2, 0.0, &mut rng);
    let mc = arr.misread_fraction_for_level(2, 86_400.0, &mut rng);
    let analytic = model.p_misread(2, 86_400.0);
    println!("  analytic {analytic:.4e}   monte-carlo {mc:.4e}");
}
