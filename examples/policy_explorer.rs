//! Policy explorer: sweep every scrub mechanism over a chosen workload
//! and print a comparison table — the interactive version of the paper's
//! policy-comparison experiment.
//!
//! ```bash
//! cargo run --release --example policy_explorer [workload]
//! ```
//!
//! `workload` is one of `db-oltp`, `db-olap`, `web-serve`, `logging`,
//! `stream`, `batch`, `kv-cache`, `archive` (default: `db-oltp`).

use scrubsim::analysis::{fmt_count, Table};
use scrubsim::prelude::*;

fn parse_workload(arg: Option<&str>) -> WorkloadId {
    let name = arg.unwrap_or("db-oltp");
    WorkloadId::all()
        .into_iter()
        .find(|w| w.name() == name)
        .unwrap_or_else(|| {
            eprintln!("unknown workload {name:?}; using db-oltp");
            WorkloadId::DbOltp
        })
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload = parse_workload(args.get(1).map(String::as_str));

    let interval = 900.0;
    let theta = 4;
    let configs: Vec<(&str, CodeSpec, PolicyKind)> = vec![
        ("no scrub", CodeSpec::secded_line(), PolicyKind::None),
        (
            "basic+SECDED",
            CodeSpec::secded_line(),
            PolicyKind::Basic {
                interval_s: interval,
            },
        ),
        (
            "basic+BCH6",
            CodeSpec::bch_line(6),
            PolicyKind::Basic {
                interval_s: interval,
            },
        ),
        (
            "threshold+BCH6",
            CodeSpec::bch_line(6),
            PolicyKind::Threshold {
                interval_s: interval,
                theta,
            },
        ),
        (
            "age-aware+BCH6",
            CodeSpec::bch_line(6),
            PolicyKind::AgeAware {
                interval_s: interval,
                theta,
                min_age_s: interval * 2.0 / 3.0,
            },
        ),
        (
            "adaptive+BCH6",
            CodeSpec::bch_line(6),
            PolicyKind::Adaptive {
                interval_s: interval,
                theta,
                regions: 64,
            },
        ),
        (
            "combined+BCH6",
            CodeSpec::bch_line(6),
            PolicyKind::combined_default(interval),
        ),
    ];

    println!("policy comparison on {workload} (16Ki lines, 1 simulated day)\n");
    let mut table = Table::new(vec![
        "policy",
        "UEs",
        "demand_UEs",
        "scrub_writes",
        "energy_uJ",
        "wear",
    ]);
    for (label, code, policy) in configs {
        let report = Simulation::new(
            SimConfig::builder()
                .num_lines(1 << 14)
                .code(code)
                .policy(policy)
                .traffic(DemandTraffic::suite(workload))
                .horizon_s(86_400.0)
                .seed(7)
                .build(),
        )
        .run();
        table.row(vec![
            label.to_string(),
            fmt_count(report.uncorrectable() as f64),
            fmt_count(report.stats.demand_ue as f64),
            fmt_count(report.scrub_writes() as f64),
            fmt_count(report.scrub_energy_uj),
            format!("{:.2}", report.mean_wear),
        ]);
    }
    println!("{}", table.render());
}
