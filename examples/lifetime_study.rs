//! Lifetime study: how scrub policy choices shift the soft-vs-hard error
//! balance over a device's life — the interactive version of the paper's
//! soft/hard tradeoff experiment.
//!
//! Uses an accelerated-endurance device (documented substitution: real PCM
//! endures ~10^8 writes; scaling endurance down makes wear-out observable
//! in a day of simulated time without changing the tradeoff's shape).
//!
//! ```bash
//! cargo run --release --example lifetime_study
//! ```

use scrubsim::analysis::{fmt_count, Table};
use scrubsim::prelude::*;

fn main() {
    let horizon_s = 86_400.0;
    // Median endurance ~216 writes: an eager every-minute scrubber writes
    // each line ~140 times a day under nominal drift (it only writes back
    // probes that find errors) and the write-back spiral does the rest,
    // so only the aggressive end wears out.
    let device = DeviceConfig::builder()
        .endurance(EnduranceSpec::new(horizon_s / 400.0, 0.25))
        .build();

    println!("soft vs hard errors over one simulated day (accelerated endurance)\n");
    let mut table = Table::new(vec![
        "policy",
        "UEs",
        "worn cells (hard)",
        "scrub writes",
        "mean wear",
    ]);
    let configs: Vec<(&str, PolicyKind)> = vec![
        ("basic @1min", PolicyKind::Basic { interval_s: 60.0 }),
        ("basic @15min", PolicyKind::Basic { interval_s: 900.0 }),
        (
            "basic @4h",
            PolicyKind::Basic {
                interval_s: 14_400.0,
            },
        ),
        (
            "threshold @15min",
            PolicyKind::Threshold {
                interval_s: 900.0,
                theta: 3,
            },
        ),
        (
            "adaptive @15min",
            PolicyKind::Adaptive {
                interval_s: 900.0,
                theta: 3,
                regions: 64,
            },
        ),
    ];
    for (label, policy) in configs {
        let report = Simulation::new(
            SimConfig::builder()
                .num_lines(1 << 14)
                .device(device.clone())
                .code(CodeSpec::bch_line(4))
                .policy(policy)
                .traffic(DemandTraffic::suite(WorkloadId::KvCache))
                .horizon_s(horizon_s)
                .seed(3)
                .build(),
        )
        .run();
        table.row(vec![
            label.to_string(),
            fmt_count(report.uncorrectable() as f64),
            fmt_count(report.worn_cells as f64),
            fmt_count(report.scrub_writes() as f64),
            format!("{:.1}", report.mean_wear),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Reading the table: a U-curve. At 1-minute sweeps wear-out dominates\n\
         (stuck cells trigger a write-back spiral and UEs explode); at 4-hour\n\
         sweeps drift dominates. Lazy and adaptive mechanisms get soft-error\n\
         protection near the fixed optimum with 20x fewer writes."
    );
}
