//! Quickstart: simulate a PCM memory under the paper's combined scrub
//! mechanism and print the report.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

use scrubsim::prelude::*;

fn main() {
    // A 16 MiB MLC-PCM memory (262144 64-byte lines), BCH-6 per line,
    // the paper's combined scrub mechanism, serving a key-value-cache
    // workload for one simulated day.
    let config = SimConfig::builder()
        .num_lines(1 << 16)
        .code(CodeSpec::bch_line(6))
        .policy(PolicyKind::combined_default(900.0))
        .traffic(DemandTraffic::suite(WorkloadId::KvCache))
        .horizon_s(86_400.0)
        .seed(42)
        .build();

    println!("simulating one day of kv-cache traffic with combined scrub...\n");
    let report = Simulation::new(config).run();
    println!("{report}");

    println!(
        "\nuncorrectable-error rate: {:.3} per GiB-day",
        report.ue_per_gib_day()
    );
    println!(
        "scrub energy: {:.2} nJ per line per day",
        report.scrub_energy_nj_per_line_day()
    );
}
