//! Vendored, API-compatible subset of `criterion`.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of the criterion API the workspace's benches use:
//! [`Criterion::bench_function`], [`Bencher::iter`] / [`Bencher::iter_batched`],
//! [`BatchSize`], and the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple — per sample it times a fixed batch
//! of iterations with `std::time::Instant` and reports the median ns/iter —
//! but it is a real wall-clock harness, good enough to compare before/after
//! for order-of-magnitude optimisations. There is no HTML report, no
//! statistical regression machinery, and no CLI argument parsing.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How batched setup output is sized; accepted for API compatibility,
/// measurement treats all variants the same.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Benchmark driver: collects samples and prints a one-line summary.
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measure: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 20,
            warm_up: Duration::from_millis(200),
            measure: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(3);
        self
    }

    /// Sets the warm-up time before samples are taken.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up = d;
        self
    }

    /// Sets the target total measurement time.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measure = d;
        self
    }

    /// Runs `f` against a [`Bencher`] and prints `id: median ns/iter`.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
            warm_up: self.warm_up,
            measure: self.measure,
        };
        f(&mut b);
        let mut ns = b.samples;
        if ns.is_empty() {
            println!("bench {id:<40} (no samples)");
            return self;
        }
        ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = ns[ns.len() / 2];
        let lo = ns[0];
        let hi = ns[ns.len() - 1];
        println!("bench {id:<40} median {median:>12.1} ns/iter  (min {lo:.1}, max {hi:.1})");
        self
    }

    /// Upstream calls this at the end of `criterion_main!`; a no-op here.
    pub fn final_summary(&mut self) {}
}

/// Passed to the closure given to [`Criterion::bench_function`].
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
    warm_up: Duration,
    measure: Duration,
}

impl Bencher {
    /// Times `routine` in a loop; each sample is ns/iter over a batch.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm up and size the batch so one sample is neither trivially
        // short (timer noise) nor longer than the measurement budget.
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measure.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter) as u64).clamp(1, 1 << 24);

        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples.push(ns);
        }
    }

    /// Times `routine` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let start = Instant::now();
        let mut warm_iters: u64 = 0;
        while start.elapsed() < self.warm_up {
            let input = setup();
            black_box(routine(input));
            warm_iters += 1;
        }
        // Setup time is inside the warm-up clock, so the derived batch size
        // is conservative; each measured sample times only the routine.
        let per_iter = self.warm_up.as_secs_f64() / warm_iters.max(1) as f64;
        let budget = self.measure.as_secs_f64() / self.sample_size as f64;
        let batch = ((budget / per_iter) as u64).clamp(1, 1 << 20);

        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                black_box(routine(input));
            }
            let ns = t0.elapsed().as_secs_f64() * 1e9 / batch as f64;
            self.samples.push(ns);
        }
    }
}

/// Declares a benchmark group; supports both the simple form and the
/// `name = ...; config = ...; targets = ...` form.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Emits `main` running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        let mut x = 0u64;
        c.bench_function("smoke", |b| {
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                x
            })
        });
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15));
        c.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1u8; 64],
                |v| v.iter().map(|&b| b as u64).sum::<u64>(),
                BatchSize::SmallInput,
            )
        });
    }
}
