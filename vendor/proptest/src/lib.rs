//! Vendored, API-compatible subset of `proptest`.
//!
//! The build environment has no registry access, so this crate implements
//! the slice of proptest the workspace's property tests use: the
//! [`proptest!`] macro over `name in strategy` arguments, numeric-range
//! and `collection::vec` strategies, `prop_assert!`/`prop_assert_eq!`/
//! `prop_assume!`, and [`ProptestConfig::with_cases`].
//!
//! Semantics differ from upstream in two deliberate ways: case generation
//! is **deterministic** (seeded from the test function's name, so failures
//! reproduce without a persistence file), and there is **no shrinking** —
//! a failing case reports its inputs via the panic message instead.

use rand::rngs::StdRng;
use rand::{Rng, SampleUniform, SeedableRng};

/// Per-test configuration; only `cases` is honored.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

/// A generator of random test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draws one case.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;
}

impl<T: SampleUniform> Strategy for core::ops::Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.start..self.end)
    }
}

impl<T: SampleUniform> Strategy for core::ops::RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.gen_range(*self.start()..=*self.end())
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Rng, StdRng, Strategy};

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements are drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, size }
    }

    /// Strategy produced by [`vec`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.start..self.size.end);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything the test files import.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy,
    };
}

/// Stable per-test seed derived from the test path (FNV-1a).
pub fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Makes the per-case RNG for `case` of the test seeded by `base`.
pub fn case_rng(base: u64, case: u32) -> StdRng {
    StdRng::seed_from_u64(base ^ (case as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

#[doc(hidden)]
pub use rand as __rand;

/// Outcome of one generated case: pass, fail, or rejected assumption.
#[doc(hidden)]
pub enum CaseResult {
    Pass,
    Reject,
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::ProptestConfig = $cfg;
                let base = $crate::seed_for(concat!(module_path!(), "::", stringify!($name)));
                let mut ran = 0u32;
                let mut case = 0u32;
                // Cap total draws so a rejecting prop_assume! cannot spin
                // forever: proptest's default global rejection budget.
                while ran < cfg.cases && case < cfg.cases.saturating_mul(16).max(1024) {
                    let mut __proptest_rng = $crate::case_rng(base, case);
                    case += 1;
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut __proptest_rng);)*
                    #[allow(clippy::redundant_closure_call)]
                    let outcome = (|| -> $crate::CaseResult {
                        $body
                        #[allow(unreachable_code)]
                        $crate::CaseResult::Pass
                    })();
                    if let $crate::CaseResult::Pass = outcome {
                        ran += 1;
                    }
                }
                assert!(
                    ran >= cfg.cases / 2,
                    "prop_assume! rejected too many cases ({ran}/{} ran)",
                    cfg.cases
                );
            }
        )*
    };
}

/// Asserts a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return $crate::CaseResult::Reject;
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 0u32..10, y in -1.0f64..1.0) {
            prop_assert!(x < 10);
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_size(xs in collection::vec(0usize..5, 2..6)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 6);
            prop_assert!(xs.iter().all(|&v| v < 5));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0u32..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn seeds_are_stable_per_name() {
        assert_eq!(seed_for("a::b"), seed_for("a::b"));
        assert_ne!(seed_for("a::b"), seed_for("a::c"));
    }
}
