//! Vendored, API-compatible subset of `rand` 0.8.
//!
//! The build environment has no registry access, so the workspace ships
//! this minimal implementation of the slice of the `rand` API the
//! simulator actually uses: the [`Rng`]/[`RngCore`]/[`SeedableRng`]
//! traits, [`rngs::StdRng`], uniform `gen`/`gen_range`/`gen_bool`
//! sampling, and nothing else.
//!
//! `StdRng` here is **xoshiro256\*\*** seeded through SplitMix64 — a
//! high-quality, fast, deterministic generator (it is *not* the
//! cryptographic ChaCha12 generator upstream `rand` uses, which the
//! simulator does not need). Streams are stable across platforms and
//! releases: every simulation seed reproduces bit-identically.

/// The core of a random number generator: raw word output.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// A generator constructible from a seed.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full-entropy seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded via SplitMix64 (the
    /// same convention as upstream `rand` for non-crypto generators).
    fn seed_from_u64(state: u64) -> Self {
        let mut sm = SplitMix64::new(state);
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types sampleable from the "standard" distribution (`Rng::gen`).
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types uniformly sampleable over a range (`Rng::gen_range`).
pub trait SampleUniform: Sized + PartialOrd + Copy {
    /// Uniform draw from `[lo, hi)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;

    /// Uniform draw from `[lo, hi]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased uniform draw from `[0, span)` by rejection.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Top of the largest multiple of `span` that fits in u64.
    let zone = u64::MAX
        - u64::MAX
            .wrapping_rem(span)
            .wrapping_add(1)
            .wrapping_rem(span);
    loop {
        let v = rng.next_u64();
        if v <= zone || zone == u64::MAX {
            return v % span;
        }
    }
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                lo.wrapping_add(uniform_u64(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as $wide).wrapping_sub(lo as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

macro_rules! impl_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range: empty range");
                let u = <$t as StandardSample>::sample(rng);
                lo + u * (hi - lo)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                Self::sample_half_open(rng, lo, hi)
            }
        }
    )*};
}
impl_uniform_float!(f32, f64);

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws from the standard distribution of `T` (`f64` in `[0,1)`,
    /// full-range integers, fair `bool`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform draw from a range, e.g. `rng.gen_range(0..10)` or
    /// `rng.gen_range(-1.0..1.0)`.
    fn gen_range<T: SampleUniform, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Bernoulli draw with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        <f64 as StandardSample>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// SplitMix64: seed expander and counter-derived stream generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Starts the sequence at `seed`.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

impl SeedableRng for SplitMix64 {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        Self::new(u64::from_le_bytes(seed))
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256\*\*.
    ///
    /// # Examples
    ///
    /// ```
    /// use rand::rngs::StdRng;
    /// use rand::{Rng, SeedableRng};
    /// let mut a = StdRng::seed_from_u64(7);
    /// let mut b = StdRng::seed_from_u64(7);
    /// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
    /// ```
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256\*\* state words, for checkpointing. Feeding
        /// them back through [`StdRng::from_state`] resumes the stream at
        /// exactly the next draw.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from a state captured by
        /// [`StdRng::state`]. An all-zero state (a xoshiro fixed point,
        /// unreachable from seeding) is nudged the same way `from_seed`
        /// nudges it, so restoring can never produce a stuck generator.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return <Self as SeedableRng>::from_seed([0u8; 32]);
            }
            Self { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_near_half() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let x = rng.gen_range(0..7usize);
            assert!(x < 7);
            seen_lo |= x == 0;
            seen_hi |= x == 6;
            let y = rng.gen_range(0..=3u32);
            assert!(y <= 3);
            let z = rng.gen_range(-1.0..1.0f64);
            assert!((-1.0..1.0).contains(&z));
        }
        assert!(seen_lo && seen_hi, "range endpoints never sampled");
    }

    #[test]
    fn gen_range_uniformity_rough() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "bucket count {c}");
        }
    }

    #[test]
    fn bool_is_fair() {
        let mut rng = StdRng::seed_from_u64(5);
        let trues = (0..100_000).filter(|_| rng.gen::<bool>()).count();
        assert!((45_000..55_000).contains(&trues), "trues {trues}");
    }

    #[test]
    fn works_through_unsized_refs() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut rng = StdRng::seed_from_u64(6);
        let x = draw(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }

    #[test]
    fn splitmix_streams_decorrelate() {
        let mut a = SplitMix64::new(0);
        let mut b = SplitMix64::new(1);
        let same = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
