//! Exhaustive small-model checking of the tour scheduler's liveness
//! properties, after kimberlite's `specs/tla/Scrubbing.tla`.
//!
//! The three properties carry the TLA names:
//!
//! * **`ScrubProgress`** — under any demand interleaving, every line is
//!   probed within `lines * (max_defer + 1)` scheduler slots (the
//!   anti-starvation boost makes the bound unconditional).
//! * **`CorruptionDetected`** — a corruption injected at any time on any
//!   line is detected (probed) within the same bound.
//! * **`RepairTriggered`** — every detection triggers the repair chain in
//!   the same step; no detected-but-unrepaired line ever persists.
//!
//! The model is a tiny abstraction of `scrub_core::TourScrub`: integer
//! token bucket, one abstract slot per transition, and an *adversary*
//! that both drains demand tokens and injects corruptions, explored
//! exhaustively by BFS over the full reachable state space. Each
//! property also has a deliberately broken scheduler variant (a
//! *tripwire*) proving the harness can catch a seeded violation; the
//! stateful proptests in `scrub-core` check the same properties against
//! the real implementation.

use std::collections::{HashMap, VecDeque};

/// Size knobs for the abstract model. Keep them tiny: the state space is
/// exponential in `lines`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelParams {
    /// Lines in the abstract memory (= tour length).
    pub lines: u8,
    /// Token-bucket capacity.
    pub capacity: u8,
    /// Tokens refilled per slot.
    pub refill: u8,
    /// Most tokens the demand adversary may drain per slot (at or above
    /// `refill`, demand can starve the bucket indefinitely).
    pub demand_max: u8,
    /// Throttled slots tolerated before a probe is forced.
    pub max_defer: u8,
}

impl ModelParams {
    /// The default small model: 3 lines, bucket of 2, refill 1, demand up
    /// to 2/slot (so demand can outpace refill), `max_defer` 2.
    pub fn tiny() -> Self {
        Self {
            lines: 3,
            capacity: 2,
            refill: 1,
            demand_max: 2,
            max_defer: 2,
        }
    }

    /// The `ScrubProgress` bound, in slots: `lines * (max_defer + 1)`.
    pub fn progress_bound(&self) -> u32 {
        u32::from(self.lines) * (u32::from(self.max_defer) + 1)
    }
}

/// The TLA-style property under check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Property {
    /// Every line probed within the progress bound.
    ScrubProgress,
    /// Every injected corruption probed within the progress bound.
    CorruptionDetected,
    /// Every detection repaired in the same step.
    RepairTriggered,
}

impl Property {
    /// All properties, in check order.
    pub const ALL: [Property; 3] = [
        Property::ScrubProgress,
        Property::CorruptionDetected,
        Property::RepairTriggered,
    ];

    /// The TLA property name (matches `Scrubbing.tla`).
    pub fn name(self) -> &'static str {
        match self {
            Property::ScrubProgress => "ScrubProgress",
            Property::CorruptionDetected => "CorruptionDetected",
            Property::RepairTriggered => "RepairTriggered",
        }
    }
}

/// Which scheduler the model runs: the faithful abstraction, or one of
/// the deliberately broken tripwire variants the harness must catch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// The faithful abstraction of `TourScrub`. All properties hold.
    Fair,
    /// Anti-starvation boost disabled: demand at 100% of budget starves
    /// the tour forever. Violates `ScrubProgress` (and therefore
    /// `CorruptionDetected`).
    Unfair,
    /// Probes run but never detect. Violates `CorruptionDetected`.
    BlindProbe,
    /// Detections are queued, never repaired. Violates `RepairTriggered`.
    DeferredRepair,
}

impl Variant {
    /// The tripwire variant that seeds a violation of `p`.
    pub fn tripwire_for(p: Property) -> Variant {
        match p {
            Property::ScrubProgress => Variant::Unfair,
            Property::CorruptionDetected => Variant::BlindProbe,
            Property::RepairTriggered => Variant::DeferredRepair,
        }
    }
}

/// A counterexample: the sequence of slot descriptions from an initial
/// state to the violating state.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong, e.g. `"line 2 unprobed for 10 slots (bound 9)"`.
    pub reason: String,
    /// Human-readable transition trace, initial state first.
    pub trace: Vec<String>,
}

/// Result of exhaustively checking one property.
#[derive(Debug)]
pub struct CheckOutcome {
    /// The property checked.
    pub property: Property,
    /// The scheduler variant it ran against.
    pub variant: Variant,
    /// Distinct reachable states explored.
    pub states_explored: usize,
    /// `None` when the property holds over the whole reachable space.
    pub violation: Option<Violation>,
}

/// Abstract model state. Per-property payload lives in `per_line`
/// (`ScrubProgress`: slots since last probe; `CorruptionDetected`:
/// 0 = clean, `v` = corrupted for `v - 1` slots; `RepairTriggered`:
/// 0/1 corruption flag) and `pending` (`RepairTriggered` only:
/// detected-but-unrepaired).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct St {
    pos: u8,
    tokens: u8,
    defer: u8,
    per_line: Vec<u8>,
    pending: Vec<bool>,
}

/// The scheduler core, shared by every property model: returns
/// `(probe_fires, tokens', defer', forced)`.
fn sched_step(tokens: u8, defer: u8, max_defer: u8, fair: bool) -> (bool, u8, u8, bool) {
    if tokens >= 1 {
        (true, tokens - 1, 0, false)
    } else if fair && defer >= max_defer {
        (true, 0, 0, true)
    } else {
        // Cap the streak one past the threshold so the (unfair) state
        // space stays finite without changing scheduler behavior.
        (false, tokens, (defer + 1).min(max_defer + 1), false)
    }
}

/// Exhaustively checks `property` against `variant` by BFS over every
/// reachable state from every initial state (all tour origins × all
/// initial bucket levels).
pub fn check(property: Property, params: ModelParams, variant: Variant) -> CheckOutcome {
    assert!(params.lines >= 1, "need at least one line");
    assert!(params.refill >= 1, "need a positive refill");
    let l = params.lines as usize;
    let bound = params.progress_bound();
    // Ages cap one past the bound: reaching the cap IS the violation, so
    // nothing is lost by not counting further.
    let age_cap = (bound + 1).min(u32::from(u8::MAX)) as u8;
    let fair = variant != Variant::Unfair;

    let mut states: Vec<St> = Vec::new();
    let mut meta: Vec<(usize, String)> = Vec::new(); // (parent, step description)
    let mut seen: HashMap<St, usize> = HashMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();

    let push = |st: St,
                parent: usize,
                desc: String,
                states: &mut Vec<St>,
                meta: &mut Vec<(usize, String)>,
                seen: &mut HashMap<St, usize>,
                queue: &mut VecDeque<usize>| {
        if seen.contains_key(&st) {
            return None;
        }
        let id = states.len();
        seen.insert(st.clone(), id);
        states.push(st);
        meta.push((parent, desc));
        queue.push_back(id);
        Some(id)
    };

    // Initial states: every per-bank origin (abstracted as every tour
    // position) × every initial bucket level, memory clean.
    for pos in 0..params.lines {
        for tokens in 0..=params.capacity {
            let st = St {
                pos,
                tokens,
                defer: 0,
                per_line: vec![0; l],
                pending: if property == Property::RepairTriggered {
                    vec![false; l]
                } else {
                    Vec::new()
                },
            };
            push(
                st,
                usize::MAX,
                format!("init: origin {pos}, {tokens} tokens"),
                &mut states,
                &mut meta,
                &mut seen,
                &mut queue,
            );
        }
    }

    let violated = |st: &St| -> Option<String> {
        match property {
            Property::ScrubProgress => st.per_line.iter().enumerate().find_map(|(i, &lag)| {
                (u32::from(lag) > bound)
                    .then(|| format!("line {i} unprobed for {lag} slots (bound {bound})"))
            }),
            Property::CorruptionDetected => st.per_line.iter().enumerate().find_map(|(i, &v)| {
                (v > 0 && u32::from(v - 1) > bound).then(|| {
                    format!(
                        "corruption on line {i} undetected for {} slots (bound {bound})",
                        v - 1
                    )
                })
            }),
            Property::RepairTriggered => st.pending.iter().enumerate().find_map(|(i, &p)| {
                p.then(|| format!("line {i} detected uncorrectable but repair never triggered"))
            }),
        }
    };

    let trace_to = |id: usize, states: &[St], meta: &[(usize, String)]| -> Vec<String> {
        let mut steps = Vec::new();
        let mut cur = id;
        loop {
            let (parent, ref desc) = meta[cur];
            steps.push(format!("{desc}  [{}]", fmt_state(&states[cur])));
            if parent == usize::MAX {
                break;
            }
            cur = parent;
        }
        steps.reverse();
        steps
    };

    while let Some(id) = queue.pop_front() {
        let st = states[id].clone();
        // One slot = refill, adversary demand, adversary corruption,
        // scheduler decision, aging. Branch over every adversary choice.
        let refilled = (st.tokens + params.refill).min(params.capacity);
        for drain in 0..=params.demand_max.min(refilled) {
            let tokens = refilled - drain;
            // Corruption choices: none, or any currently-clean line
            // (only meaningful to the corruption properties).
            let corrupt_choices: Vec<Option<usize>> = match property {
                Property::ScrubProgress => vec![None],
                _ => std::iter::once(None)
                    .chain((0..l).filter(|&i| st.per_line[i] == 0).map(Some))
                    .collect(),
            };
            for corrupt in corrupt_choices {
                let mut nx = st.clone();
                nx.tokens = tokens;
                if let Some(i) = corrupt {
                    nx.per_line[i] = 1;
                }
                let (probe, tokens2, defer2, forced) =
                    sched_step(nx.tokens, nx.defer, params.max_defer, fair);
                nx.tokens = tokens2;
                nx.defer = defer2;
                let mut probed: Option<usize> = None;
                if probe {
                    let t = nx.pos as usize;
                    probed = Some(t);
                    nx.pos = (nx.pos + 1) % params.lines;
                    match property {
                        Property::ScrubProgress => {}
                        Property::CorruptionDetected => {
                            if variant != Variant::BlindProbe {
                                nx.per_line[t] = 0; // detected
                            }
                        }
                        Property::RepairTriggered => {
                            if nx.per_line[t] == 1 {
                                nx.per_line[t] = 0; // detected ...
                                if variant == Variant::DeferredRepair {
                                    nx.pending[t] = true; // ... never repaired
                                }
                            }
                        }
                    }
                }
                // Aging.
                match property {
                    Property::ScrubProgress => {
                        for (i, lag) in nx.per_line.iter_mut().enumerate() {
                            *lag = if probed == Some(i) {
                                0
                            } else {
                                (*lag + 1).min(age_cap)
                            };
                        }
                    }
                    Property::CorruptionDetected | Property::RepairTriggered => {
                        if property == Property::CorruptionDetected {
                            for v in nx.per_line.iter_mut() {
                                if *v > 0 {
                                    *v = (*v + 1).min(age_cap.saturating_add(1));
                                }
                            }
                        }
                    }
                }
                let desc = format!(
                    "slot: drain {drain}{}{}",
                    match corrupt {
                        Some(i) => format!(", corrupt line {i}"),
                        None => String::new(),
                    },
                    match probed {
                        Some(t) if forced => format!(", probe line {t} (forced)"),
                        Some(t) => format!(", probe line {t}"),
                        None => ", throttled".to_string(),
                    }
                );
                if let Some(nid) = push(nx, id, desc, &mut states, &mut meta, &mut seen, &mut queue)
                {
                    if let Some(reason) = violated(&states[nid]) {
                        return CheckOutcome {
                            property,
                            variant,
                            states_explored: states.len(),
                            violation: Some(Violation {
                                reason,
                                trace: trace_to(nid, &states, &meta),
                            }),
                        };
                    }
                }
            }
        }
    }

    CheckOutcome {
        property,
        variant,
        states_explored: states.len(),
        violation: None,
    }
}

fn fmt_state(st: &St) -> String {
    let mut s = format!(
        "pos={} tokens={} defer={} lines={:?}",
        st.pos, st.tokens, st.defer, st.per_line
    );
    if !st.pending.is_empty() {
        s.push_str(&format!(" pending={:?}", st.pending));
    }
    s
}

/// Checks all three properties against the faithful scheduler. Every
/// outcome should report `violation: None`.
pub fn check_all(params: ModelParams) -> Vec<CheckOutcome> {
    Property::ALL
        .iter()
        .map(|&p| check(p, params, Variant::Fair))
        .collect()
}

/// Checks each property against its tripwire variant. Every outcome
/// should report a violation — proving the harness catches seeded bugs.
pub fn check_tripwires(params: ModelParams) -> Vec<CheckOutcome> {
    Property::ALL
        .iter()
        .map(|&p| check(p, params, Variant::tripwire_for(p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_scheduler_satisfies_all_properties() {
        for out in check_all(ModelParams::tiny()) {
            assert!(
                out.violation.is_none(),
                "{} violated: {:?}",
                out.property.name(),
                out.violation
            );
            assert!(out.states_explored > 50, "suspiciously small space");
        }
    }

    #[test]
    fn unfair_scheduler_violates_progress_with_counterexample() {
        let out = check(
            Property::ScrubProgress,
            ModelParams::tiny(),
            Variant::Unfair,
        );
        let v = out.violation.expect("starvation must be found");
        assert!(v.reason.contains("unprobed"), "reason: {}", v.reason);
        // The counterexample is a genuine trace: starts at an init state,
        // and is long enough to exceed the bound.
        assert!(v.trace[0].starts_with("init:"));
        assert!(v.trace.len() as u32 > ModelParams::tiny().progress_bound());
    }

    #[test]
    fn blind_probe_violates_detection() {
        let out = check(
            Property::CorruptionDetected,
            ModelParams::tiny(),
            Variant::BlindProbe,
        );
        assert!(out.violation.is_some(), "blind probes must be caught");
    }

    #[test]
    fn deferred_repair_violates_repair_triggered() {
        let out = check(
            Property::RepairTriggered,
            ModelParams::tiny(),
            Variant::DeferredRepair,
        );
        let v = out.violation.expect("deferred repair must be caught");
        assert!(v.reason.contains("repair never triggered"));
    }

    #[test]
    fn progress_bound_is_tight_in_the_model() {
        // A lag of exactly `bound` is reachable (demand pinning the
        // bucket empty makes every probe a forced one), so the bound
        // cannot be lowered: checking against bound-1 must fail.
        let params = ModelParams {
            lines: 2,
            capacity: 1,
            refill: 1,
            demand_max: 1,
            max_defer: 1,
        };
        let out = check(Property::ScrubProgress, params, Variant::Fair);
        assert!(out.violation.is_none());
        // Tightness witness: with the boost, a full starvation round
        // costs max_defer+1 slots per line; the model must actually
        // reach lags of exactly the bound somewhere in the space.
        // (Exhaustiveness means absence of violation at the bound plus
        // presence of forced probes implies the bound is achieved.)
        let trip = check(Property::ScrubProgress, params, Variant::Unfair);
        assert!(trip.violation.is_some());
    }

    #[test]
    fn single_line_model_degenerates_sanely() {
        let params = ModelParams {
            lines: 1,
            capacity: 1,
            refill: 1,
            demand_max: 2,
            max_defer: 0,
        };
        for out in check_all(params) {
            assert!(out.violation.is_none(), "{}", out.property.name());
        }
    }
}
