//! `scrub_modelcheck` — exhaustive small-model check of the tour
//! scheduler's liveness properties.
//!
//! ```bash
//! scrub_modelcheck [--lines N] [--capacity N] [--refill N]
//!                  [--demand-max N] [--max-defer N] [--tripwire] [--json OUT]
//! ```
//!
//! Default mode checks `ScrubProgress`, `CorruptionDetected`, and
//! `RepairTriggered` against the faithful scheduler abstraction and
//! exits non-zero (printing the counterexample trace) if any property is
//! violated. `--tripwire` instead runs each property against its
//! deliberately broken scheduler variant and exits non-zero if any
//! seeded violation goes *undetected* — the harness checking itself.

use pcm_analysis::modelcheck::{check, CheckOutcome, ModelParams, Property, Variant};

fn usage() -> ! {
    eprintln!(
        "usage: scrub_modelcheck [--lines N] [--capacity N] [--refill N]\n\
         \x20                       [--demand-max N] [--max-defer N]\n\
         \x20                       [--tripwire] [--json OUT]"
    );
    std::process::exit(2);
}

fn fail(msg: &str) -> ! {
    eprintln!("scrub_modelcheck: {msg}");
    std::process::exit(2);
}

fn parse_u8(flag: &str, raw: &str, min: u8) -> u8 {
    match raw.parse::<u8>() {
        Ok(n) if n >= min => n,
        _ => fail(&format!("{flag} must be an integer >= {min}, got {raw:?}")),
    }
}

fn json_outcome(out: &CheckOutcome) -> String {
    let violation = match &out.violation {
        None => "null".to_string(),
        Some(v) => format!(
            "{{\"reason\": {:?}, \"trace_len\": {}}}",
            v.reason,
            v.trace.len()
        ),
    };
    format!(
        "    {{\"property\": \"{}\", \"variant\": \"{:?}\", \"states\": {}, \"violation\": {}}}",
        out.property.name(),
        out.variant,
        out.states_explored,
        violation
    )
}

fn main() {
    let mut params = ModelParams::tiny();
    let mut tripwire = false;
    let mut json_out: Option<String> = None;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value = || it.next().cloned().unwrap_or_else(|| usage());
        match flag.as_str() {
            "--lines" => params.lines = parse_u8("--lines", &value(), 1),
            "--capacity" => params.capacity = parse_u8("--capacity", &value(), 1),
            "--refill" => params.refill = parse_u8("--refill", &value(), 1),
            "--demand-max" => params.demand_max = parse_u8("--demand-max", &value(), 0),
            "--max-defer" => params.max_defer = parse_u8("--max-defer", &value(), 0),
            "--tripwire" => tripwire = true,
            "--json" => json_out = Some(value()),
            _ => usage(),
        }
    }
    if params.lines > 4 {
        fail("--lines > 4 explodes the state space; keep the model small");
    }

    let outcomes: Vec<CheckOutcome> = Property::ALL
        .iter()
        .map(|&p| {
            let variant = if tripwire {
                Variant::tripwire_for(p)
            } else {
                Variant::Fair
            };
            check(p, params, variant)
        })
        .collect();

    let mode = if tripwire { "tripwire" } else { "verify" };
    let mut failures = 0;
    for out in &outcomes {
        let caught = out.violation.is_some();
        let ok = if tripwire { caught } else { !caught };
        println!(
            "{} {:<19} variant={:<14} states={:<7} {}",
            if ok { "PASS" } else { "FAIL" },
            out.property.name(),
            format!("{:?}", out.variant),
            out.states_explored,
            match &out.violation {
                Some(v) if tripwire => format!("violation caught: {}", v.reason),
                Some(v) => format!("VIOLATION: {}", v.reason),
                None if tripwire => "seeded violation NOT caught".to_string(),
                None => "holds over full reachable space".to_string(),
            }
        );
        if let (Some(v), false) = (&out.violation, tripwire) {
            for step in &v.trace {
                println!("    {step}");
            }
        }
        if !ok {
            failures += 1;
        }
    }

    let bound = params.progress_bound();
    println!(
        "mode={mode} lines={} capacity={} refill={} demand_max={} max_defer={} bound={bound}",
        params.lines, params.capacity, params.refill, params.demand_max, params.max_defer
    );

    if let Some(path) = json_out {
        let body = outcomes
            .iter()
            .map(json_outcome)
            .collect::<Vec<_>>()
            .join(",\n");
        let json = format!(
            "{{\n  \"mode\": \"{mode}\",\n  \"progress_bound\": {bound},\n  \
             \"failures\": {failures},\n  \"checks\": [\n{body}\n  ]\n}}\n"
        );
        if let Err(e) = std::fs::write(&path, json) {
            fail(&format!("cannot write {path:?}: {e}"));
        }
    }

    if failures > 0 {
        std::process::exit(1);
    }
}
