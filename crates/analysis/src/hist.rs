//! Histograms and percentiles for experiment distributions (per-line wear,
//! error counts, latencies).

/// A fixed-bin histogram over `[lo, hi)` with an overflow bucket.
///
/// # Examples
///
/// ```
/// use pcm_analysis::Histogram;
/// let mut h = Histogram::new(0.0, 10.0, 5);
/// for x in [0.5, 1.5, 1.7, 9.9, 42.0] {
///     h.add(x);
/// }
/// assert_eq!(h.count(), 5);
/// assert_eq!(h.overflow(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width buckets over `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi` or `bins == 0`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(lo < hi, "histogram range must be nonempty");
        assert!(bins > 0, "histogram needs at least one bin");
        Self {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Total observations recorded (including under/overflow).
    pub fn count(&self) -> u64 {
        self.bins.iter().sum::<u64>() + self.underflow + self.overflow
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the range's top.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Per-bin counts.
    pub fn bins(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_center, count)` pairs for plotting/tabulating.
    pub fn series(&self) -> Vec<(f64, u64)> {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * (i as f64 + 0.5), c))
            .collect()
    }

    /// Simple ASCII rendering, one line per bin.
    pub fn render(&self, width: usize) -> String {
        let max = self.bins.iter().copied().max().unwrap_or(0).max(1);
        let mut out = String::new();
        for (center, count) in self.series() {
            let bar = "#".repeat((count as usize * width).div_ceil(max as usize).min(width));
            out.push_str(&format!("{center:>10.2} | {bar} {count}\n"));
        }
        out
    }
}

/// The `q`-quantile (0 ≤ q ≤ 1) of a sample, by linear interpolation on
/// the sorted order statistics.
///
/// # Panics
///
/// Panics if `xs` is empty or `q` is outside `[0, 1]`.
pub fn percentile(xs: &[f64], q: f64) -> f64 {
    assert!(!xs.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0,1]");
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
    let pos = q * (v.len() - 1) as f64;
    let i = pos.floor() as usize;
    let frac = pos - i as f64;
    if i + 1 < v.len() {
        v[i] * (1.0 - frac) + v[i + 1] * frac
    } else {
        v[i]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_fill_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for i in 0..10 {
            h.add(i as f64 + 0.5);
        }
        assert!(h.bins().iter().all(|&c| c == 1));
        assert_eq!(h.underflow(), 0);
        assert_eq!(h.overflow(), 0);
    }

    #[test]
    fn edge_cases_route_to_flows() {
        let mut h = Histogram::new(0.0, 1.0, 2);
        h.add(-0.1);
        h.add(1.0); // hi is exclusive
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 1);
    }

    #[test]
    fn series_centers() {
        let h = Histogram::new(0.0, 4.0, 4);
        let centers: Vec<f64> = h.series().iter().map(|&(c, _)| c).collect();
        assert_eq!(centers, vec![0.5, 1.5, 2.5, 3.5]);
    }

    #[test]
    fn percentile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 1.0), 4.0);
        assert!((percentile(&xs, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn render_is_nonempty() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.add(0.5);
        let s = h.render(10);
        assert!(s.contains('#'));
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn percentile_rejects_empty() {
        percentile(&[], 0.5);
    }
}
