//! Summary statistics for experiment outputs.

/// Summary of a sample: mean, standard deviation, and a normal-theory 95%
/// confidence interval on the mean.
///
/// # Examples
///
/// ```
/// use pcm_analysis::Summary;
/// let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(s.mean, 2.5);
/// assert_eq!(s.n, 4);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Sample size.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n−1 denominator; 0 for n < 2).
    pub std_dev: f64,
    /// Half-width of the 95% CI on the mean.
    pub ci95_half_width: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Summarizes a sample.
    ///
    /// # Panics
    ///
    /// Panics if `xs` is empty or contains non-finite values.
    pub fn of(xs: &[f64]) -> Self {
        assert!(!xs.is_empty(), "cannot summarize an empty sample");
        assert!(
            xs.iter().all(|x| x.is_finite()),
            "sample contains non-finite values"
        );
        let n = xs.len();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = if n < 2 {
            0.0
        } else {
            xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1) as f64
        };
        let std_dev = var.sqrt();
        let ci = 1.96 * std_dev / (n as f64).sqrt();
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev,
            ci95_half_width: ci,
            min,
            max,
        }
    }

    /// Formats as `mean ± ci`.
    pub fn display_ci(&self) -> String {
        format!("{:.3} ± {:.3}", self.mean, self.ci95_half_width)
    }
}

/// Geometric mean (for speedup-style ratios).
///
/// # Panics
///
/// Panics if `xs` is empty or any value is not strictly positive.
pub fn geometric_mean(xs: &[f64]) -> f64 {
    assert!(!xs.is_empty(), "geometric mean of empty sample");
    assert!(
        xs.iter().all(|&x| x > 0.0 && x.is_finite()),
        "geometric mean needs positive finite values"
    );
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// Percentage reduction of `new` relative to `baseline`
/// (e.g. 96.5 means "96.5% fewer").
pub fn percent_reduction(baseline: f64, new: f64) -> f64 {
    if baseline == 0.0 {
        0.0
    } else {
        (1.0 - new / baseline) * 100.0
    }
}

/// Improvement ratio `baseline / new` (e.g. 24.4 means "24.4× fewer"),
/// saturating when `new` is zero.
/// Event proportion `hits / (hits + misses)`, or `None` when nothing was
/// observed — for counter-derived rates (profiler hit rates, dirty-probe
/// fractions) where a zero denominator means "no data", not "rate zero".
pub fn event_rate(hits: u64, misses: u64) -> Option<f64> {
    let total = hits + misses;
    (total > 0).then(|| hits as f64 / total as f64)
}

pub fn improvement_ratio(baseline: f64, new: f64) -> f64 {
    if new == 0.0 {
        if baseline == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        baseline / new
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_rate_guards_empty_denominators() {
        assert_eq!(event_rate(0, 0), None);
        assert_eq!(event_rate(3, 1), Some(0.75));
        assert_eq!(event_rate(0, 5), Some(0.0));
    }

    #[test]
    fn summary_basics() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.138).abs() < 0.01);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
        assert!(s.ci95_half_width > 0.0);
    }

    #[test]
    fn singleton_has_zero_spread() {
        let s = Summary::of(&[3.0]);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.ci95_half_width, 0.0);
    }

    #[test]
    fn geo_mean() {
        assert!((geometric_mean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reduction_and_ratio() {
        assert!((percent_reduction(200.0, 7.0) - 96.5).abs() < 1e-12);
        assert!((improvement_ratio(244.0, 10.0) - 24.4).abs() < 1e-12);
        assert_eq!(improvement_ratio(5.0, 0.0), f64::INFINITY);
        assert_eq!(improvement_ratio(0.0, 0.0), 1.0);
        assert_eq!(percent_reduction(0.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty sample")]
    fn empty_summary_panics() {
        Summary::of(&[]);
    }
}
