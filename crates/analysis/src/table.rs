//! Fixed-width table rendering (and CSV export) for experiment output.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use pcm_analysis::Table;
/// let mut t = Table::new(vec!["policy", "UEs", "writes"]);
/// t.row(vec!["basic".into(), "5806".into(), "9.4e6".into()]);
/// t.row(vec!["combined".into(), "203".into(), "3.9e5".into()]);
/// let s = t.render();
/// assert!(s.contains("combined"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `headers` is empty.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the arity does not match the headers.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity {} != {} columns",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
        self
    }

    /// Number of data rows.
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders with padded columns: first column left-aligned, the rest
    /// right-aligned (numbers).
    pub fn render(&self) -> String {
        let ncols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                if i == 0 {
                    let _ = write!(out, "{cell:<w$}");
                } else {
                    let _ = write!(out, "{cell:>w$}");
                }
            }
            out.push('\n');
        };
        write_row(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (ncols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders as CSV (naive quoting: cells containing commas are
    /// double-quoted).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_string()
            }
        };
        let mut out = String::new();
        let header_line: Vec<String> = self.headers.iter().map(|h| esc(h)).collect();
        out.push_str(&header_line.join(","));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row.iter().map(|c| esc(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        }
        out
    }
}

/// Compact scientific/engineering formatting for counts and rates.
pub fn fmt_count(x: f64) -> String {
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e6 || x.abs() < 1e-3 {
        format!("{x:.2e}")
    } else if x.fract() == 0.0 && x.abs() < 1e6 {
        format!("{x:.0}")
    } else {
        format!("{x:.3}")
    }
}

/// Formats an improvement ratio like `24.4x` (or `inf`).
pub fn fmt_ratio(r: f64) -> String {
    if r.is_infinite() {
        "inf".to_string()
    } else {
        format!("{r:.1}x")
    }
}

/// Formats a percentage like `96.5%`.
pub fn fmt_percent(p: f64) -> String {
    format!("{p:.1}%")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_alignment() {
        let mut t = Table::new(vec!["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "12345".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert_eq!(lines[0].len(), lines[2].len());
        assert!(lines[3].ends_with("12345"));
    }

    #[test]
    fn csv_quotes_commas() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["x,y".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\",2"));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_count(0.0), "0");
        assert_eq!(fmt_count(42.0), "42");
        assert_eq!(fmt_count(2.71548), "2.715");
        assert_eq!(fmt_count(1.5e7), "1.50e7");
        assert_eq!(fmt_ratio(24.42), "24.4x");
        assert_eq!(fmt_ratio(f64::INFINITY), "inf");
        assert_eq!(fmt_percent(96.53), "96.5%");
    }
}
