//! Statistical inference for oracle-vs-simulator agreement testing.
//!
//! Everything here is dependency-free and exact enough for validation
//! work: binomial proportion intervals (Wilson and Clopper–Pearson),
//! chi-square and Kolmogorov–Smirnov goodness-of-fit p-values, and a
//! [`TestBattery`] that applies a familywise multiple-comparison
//! correction (Holm–Bonferroni) so an agreement suite with a dozen
//! checks still has a calibrated overall false-alarm rate.
//!
//! The special functions (regularized incomplete beta and gamma) use
//! standard continued-fraction/series evaluations — accurate to ~1e-10
//! over the ranges these tests exercise, which is far below any α anyone
//! sets.

/// A two-sided confidence interval for a proportion.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Lower confidence bound.
    pub lo: f64,
    /// Upper confidence bound.
    pub hi: f64,
}

impl Interval {
    /// Whether `p` lies inside the (closed) interval.
    pub fn contains(&self, p: f64) -> bool {
        self.lo <= p && p <= self.hi
    }

    /// Interval width.
    pub fn width(&self) -> f64 {
        self.hi - self.lo
    }
}

/// Upper α/2 standard-normal quantile via bisection on the tail.
fn z_quantile_two_sided(alpha: f64) -> f64 {
    let target = alpha / 2.0;
    let (mut lo, mut hi) = (0.0f64, 40.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if normal_tail(mid) > target {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// Standard normal upper tail P(Z > z) for z ≥ 0.
fn normal_tail(z: f64) -> f64 {
    // erfc via the regularized incomplete gamma: P(Z>z) = Q(1/2, z²/2)/2.
    if z <= 0.0 {
        return 0.5;
    }
    0.5 * gamma_q(0.5, 0.5 * z * z)
}

/// Wilson score interval for a binomial proportion at two-sided
/// confidence `1 − alpha`.
///
/// # Examples
///
/// ```
/// let ci = pcm_analysis::wilson_interval(42, 1000, 0.05);
/// assert!(ci.contains(0.042));
/// assert!(ci.lo > 0.0 && ci.hi < 0.07);
/// ```
///
/// # Panics
///
/// Panics if `successes > trials`, `trials == 0`, or `alpha` is not in
/// (0, 1).
pub fn wilson_interval(successes: u64, trials: u64, alpha: f64) -> Interval {
    assert!(trials > 0 && successes <= trials);
    assert!(alpha > 0.0 && alpha < 1.0);
    let n = trials as f64;
    let p = successes as f64 / n;
    let z = z_quantile_two_sided(alpha);
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
    Interval {
        lo: (center - half).max(0.0),
        hi: (center + half).min(1.0),
    }
}

/// Clopper–Pearson ("exact") interval for a binomial proportion at
/// two-sided confidence `1 − alpha`. Conservative: coverage is at least
/// the nominal level for every true p, which makes it the right choice
/// for the tripwire tests where a false alarm blocks CI.
///
/// # Examples
///
/// ```
/// let ci = pcm_analysis::clopper_pearson_interval(0, 500, 0.05);
/// assert_eq!(ci.lo, 0.0);
/// assert!(ci.hi < 0.01); // rule-of-three scale
/// ```
///
/// # Panics
///
/// Panics on the same degenerate inputs as [`wilson_interval`].
pub fn clopper_pearson_interval(successes: u64, trials: u64, alpha: f64) -> Interval {
    assert!(trials > 0 && successes <= trials);
    assert!(alpha > 0.0 && alpha < 1.0);
    let (k, n) = (successes, trials);
    let lo = if k == 0 {
        0.0
    } else {
        // Smallest p with P(X >= k | p) = alpha/2: quantile of
        // Beta(k, n-k+1).
        beta_quantile(alpha / 2.0, k as f64, (n - k + 1) as f64)
    };
    let hi = if k == n {
        1.0
    } else {
        beta_quantile(1.0 - alpha / 2.0, (k + 1) as f64, (n - k) as f64)
    };
    Interval { lo, hi }
}

/// Chi-square goodness-of-fit p-value for observed counts against
/// expected counts. Bins with expected mass below `min_expected` are
/// pooled into their right neighbour (standard practice to keep the
/// asymptotic χ² approximation honest). Returns the p-value and the
/// degrees of freedom actually used.
///
/// # Panics
///
/// Panics if lengths differ, fewer than two effective bins remain, or
/// expected counts are not finite and non-negative.
pub fn chi_square_gof(observed: &[u64], expected: &[f64], min_expected: f64) -> (f64, usize) {
    assert_eq!(observed.len(), expected.len());
    // Pool sparse bins left-to-right.
    let mut obs_pooled: Vec<f64> = Vec::new();
    let mut exp_pooled: Vec<f64> = Vec::new();
    let (mut o_acc, mut e_acc) = (0.0f64, 0.0f64);
    for (&o, &e) in observed.iter().zip(expected) {
        assert!(e.is_finite() && e >= 0.0, "bad expected count {e}");
        o_acc += o as f64;
        e_acc += e;
        if e_acc >= min_expected {
            obs_pooled.push(o_acc);
            exp_pooled.push(e_acc);
            o_acc = 0.0;
            e_acc = 0.0;
        }
    }
    // Trailing remainder joins the last bin.
    if e_acc > 0.0 || o_acc > 0.0 {
        if let (Some(o), Some(e)) = (obs_pooled.last_mut(), exp_pooled.last_mut()) {
            *o += o_acc;
            *e += e_acc;
        } else {
            obs_pooled.push(o_acc);
            exp_pooled.push(e_acc);
        }
    }
    assert!(
        obs_pooled.len() >= 2,
        "need at least two effective bins after pooling"
    );
    let stat: f64 = obs_pooled
        .iter()
        .zip(&exp_pooled)
        .map(|(o, e)| (o - e) * (o - e) / e.max(1e-300))
        .sum();
    let dof = obs_pooled.len() - 1;
    (gamma_q(dof as f64 / 2.0, stat / 2.0), dof)
}

/// One-sample Kolmogorov–Smirnov test p-value (asymptotic) for sorted-able
/// samples against a CDF. Suitable for n ≳ 50; for validation suites the
/// asymptotic approximation errs slightly conservative.
///
/// # Panics
///
/// Panics if `samples` is empty or contains non-finite values.
pub fn ks_test<F: Fn(f64) -> f64>(samples: &mut [f64], cdf: F) -> f64 {
    assert!(!samples.is_empty());
    assert!(samples.iter().all(|x| x.is_finite()));
    samples.sort_by(|a, b| a.total_cmp(b));
    let n = samples.len() as f64;
    let mut d = 0.0f64;
    for (i, &x) in samples.iter().enumerate() {
        let f = cdf(x).clamp(0.0, 1.0);
        let lo = i as f64 / n;
        let hi = (i + 1) as f64 / n;
        d = d.max((f - lo).abs()).max((hi - f).abs());
    }
    ks_p_value(d, samples.len())
}

/// Asymptotic p-value for a KS statistic `d` on `n` samples, using the
/// Kolmogorov series with the Stephens small-sample adjustment.
pub fn ks_p_value(d: f64, n: usize) -> f64 {
    let n = n as f64;
    let t = (n.sqrt() + 0.12 + 0.11 / n.sqrt()) * d;
    if t < 1e-3 {
        return 1.0;
    }
    let mut sum = 0.0;
    let mut sign = 1.0;
    for j in 1..=100 {
        let term = sign * (-2.0 * (j as f64) * (j as f64) * t * t).exp();
        sum += term;
        sign = -sign;
        if term.abs() < 1e-14 {
            break;
        }
    }
    (2.0 * sum).clamp(0.0, 1.0)
}

/// One named p-value inside a [`TestBattery`].
#[derive(Debug, Clone)]
pub struct TestOutcome {
    /// Test label (reported on failure).
    pub name: String,
    /// Raw (uncorrected) p-value.
    pub p_value: f64,
}

/// A family of goodness-of-fit tests evaluated jointly under
/// Holm–Bonferroni correction at familywise level `alpha`.
///
/// # Examples
///
/// ```
/// let mut battery = pcm_analysis::TestBattery::new(0.05);
/// battery.record("drift", 0.40);
/// battery.record("ue-rate", 0.73);
/// assert!(battery.rejections().is_empty());
/// battery.record("writes", 1e-9);
/// assert_eq!(battery.rejections(), vec!["writes".to_string()]);
/// ```
#[derive(Debug, Clone)]
pub struct TestBattery {
    alpha: f64,
    outcomes: Vec<TestOutcome>,
}

impl TestBattery {
    /// Creates an empty battery at familywise significance `alpha`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0);
        Self {
            alpha,
            outcomes: Vec::new(),
        }
    }

    /// The familywise significance level.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Records one raw p-value.
    pub fn record(&mut self, name: &str, p_value: f64) {
        self.outcomes.push(TestOutcome {
            name: name.to_string(),
            p_value: p_value.clamp(0.0, 1.0),
        });
    }

    /// All recorded outcomes in insertion order.
    pub fn outcomes(&self) -> &[TestOutcome] {
        &self.outcomes
    }

    /// Names of tests rejected under Holm–Bonferroni at the familywise
    /// level: sort p-values ascending, reject while
    /// `p_(i) <= alpha / (m - i)`, stop at the first survivor.
    pub fn rejections(&self) -> Vec<String> {
        let m = self.outcomes.len();
        let mut order: Vec<usize> = (0..m).collect();
        order.sort_by(|&a, &b| {
            self.outcomes[a]
                .p_value
                .total_cmp(&self.outcomes[b].p_value)
        });
        let mut rejected = Vec::new();
        for (i, &idx) in order.iter().enumerate() {
            if self.outcomes[idx].p_value <= self.alpha / (m - i) as f64 {
                rejected.push(self.outcomes[idx].name.clone());
            } else {
                break;
            }
        }
        rejected
    }

    /// Human-readable verdict line for test output.
    pub fn report(&self) -> String {
        let rejected = self.rejections();
        let mut out = format!(
            "battery: {} tests at familywise alpha = {}\n",
            self.outcomes.len(),
            self.alpha
        );
        for o in &self.outcomes {
            let mark = if rejected.contains(&o.name) {
                "REJECT"
            } else {
                "ok"
            };
            out.push_str(&format!(
                "  [{mark:>6}] {:<32} p = {:.4e}\n",
                o.name, o.p_value
            ));
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Special functions: regularized incomplete gamma Q(a, x) and incomplete
// beta I_x(a, b), plus a beta quantile by bisection.
// ---------------------------------------------------------------------------

// Canonical Lanczos coefficients, kept digit-for-digit as published.
#[allow(clippy::excessive_precision, clippy::inconsistent_digit_grouping)]
fn ln_gamma(x: f64) -> f64 {
    // Lanczos, g = 7, 9 coefficients.
    const G: f64 = 7.0;
    const C: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        let pi = std::f64::consts::PI;
        return pi.ln() - (pi * x).sin().ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = C[0];
    for (i, &c) in C.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized upper incomplete gamma Q(a, x) = Γ(a, x)/Γ(a).
fn gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0);
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// P(a, x) by power series (x < a + 1).
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..500 {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * 1e-15 {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp().min(1.0)
}

/// Q(a, x) by continued fraction, modified Lentz (x ≥ a + 1).
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b.max(TINY);
    let mut h = d;
    for i in 1..500 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = (an * d + b).abs().max(TINY).copysign(an * d + b);
        d = 1.0 / d;
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY.copysign(c);
        }
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    (a * x.ln() - x - ln_gamma(a)).exp() * h
}

/// Regularized incomplete beta I_x(a, b) via the standard continued
/// fraction with the symmetry flip for convergence.
fn inc_beta(x: f64, a: f64, b: f64) -> f64 {
    assert!((0.0..=1.0).contains(&x) && a > 0.0 && b > 0.0);
    if x == 0.0 {
        return 0.0;
    }
    if x == 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    if x < (a + 1.0) / (a + b + 2.0) {
        (ln_front.exp() * beta_cf(x, a, b) / a).clamp(0.0, 1.0)
    } else {
        (1.0 - ln_front.exp() * beta_cf(1.0 - x, b, a) / b).clamp(0.0, 1.0)
    }
}

fn beta_cf(x: f64, a: f64, b: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < TINY {
        d = TINY;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..500 {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < TINY {
            d = TINY;
        }
        c = 1.0 + aa / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < 1e-15 {
            break;
        }
    }
    h
}

/// Quantile of Beta(a, b) by bisection on the regularized incomplete
/// beta — 200 iterations give ~1e-60 interval width, far below f64 ulp.
fn beta_quantile(p: f64, a: f64, b: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p));
    let (mut lo, mut hi) = (0.0f64, 1.0f64);
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if inc_beta(mid, a, b) < p {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn z_quantile_matches_references() {
        // Two-sided: alpha = 0.05 -> 1.959964, alpha = 0.01 -> 2.575829.
        assert!((z_quantile_two_sided(0.05) - 1.959_963_985).abs() < 1e-6);
        assert!((z_quantile_two_sided(0.01) - 2.575_829_304).abs() < 1e-6);
    }

    #[test]
    fn wilson_covers_and_shrinks() {
        let wide = wilson_interval(5, 50, 0.05);
        let narrow = wilson_interval(500, 5000, 0.05);
        assert!(wide.contains(0.1) && narrow.contains(0.1));
        assert!(narrow.width() < wide.width());
        // Edge cases stay in [0, 1].
        assert_eq!(wilson_interval(0, 10, 0.05).lo, 0.0);
        assert_eq!(wilson_interval(10, 10, 0.05).hi, 1.0);
    }

    #[test]
    fn clopper_pearson_reference_values() {
        // Bounds solve the defining tail equations exactly:
        // P(X >= 8 | lo) = P(X <= 8 | hi) = 0.025 for n = 100.
        let ci = clopper_pearson_interval(8, 100, 0.05);
        assert!((ci.lo - 0.035_171_56).abs() < 1e-6, "lo = {}", ci.lo);
        assert!((ci.hi - 0.151_557_64).abs() < 1e-6, "hi = {}", ci.hi);
        // k = 0 upper bound is 1 - (alpha/2)^(1/n) (rule-of-three scale).
        let ci0 = clopper_pearson_interval(0, 1000, 0.05);
        let exact = 1.0 - (0.025f64).powf(1.0 / 1000.0);
        assert!((ci0.hi - exact).abs() < 1e-9, "hi = {}", ci0.hi);
    }

    #[test]
    fn clopper_pearson_is_wider_than_wilson() {
        for &(k, n) in &[(3u64, 40u64), (50, 200), (400, 1000)] {
            let cp = clopper_pearson_interval(k, n, 0.05);
            let w = wilson_interval(k, n, 0.05);
            assert!(cp.width() >= w.width() - 1e-12, "k={k} n={n}");
        }
    }

    #[test]
    fn chi_square_calibration() {
        // Perfect fit -> p near 1; gross misfit -> p near 0.
        let expected = [100.0, 100.0, 100.0, 100.0];
        let (p_good, dof) = chi_square_gof(&[101, 99, 102, 98], &expected, 5.0);
        assert_eq!(dof, 3);
        assert!(p_good > 0.9, "p_good = {p_good}");
        let (p_bad, _) = chi_square_gof(&[160, 40, 150, 50], &expected, 5.0);
        assert!(p_bad < 1e-6, "p_bad = {p_bad}");
    }

    #[test]
    fn chi_square_pools_sparse_bins() {
        // Last bins have tiny expectation; pooling keeps dof honest.
        let expected = [50.0, 50.0, 1.0, 0.5, 0.1];
        let (_, dof) = chi_square_gof(&[48, 52, 1, 0, 0], &expected, 5.0);
        // The sparse tail (total expectation 1.6 < 5) merges into the
        // second bin: two effective bins, one degree of freedom.
        assert_eq!(dof, 1);
    }

    #[test]
    fn chi_square_reference_value() {
        // stat = 4, dof = 1 -> p = 0.0455.
        let (p, dof) = chi_square_gof(&[60, 40], &[50.0, 50.0], 5.0);
        assert_eq!(dof, 1);
        assert!((p - 0.045_500_26).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn ks_calibration() {
        // Uniform grid against the uniform CDF fits well.
        let mut good: Vec<f64> = (0..200).map(|i| (i as f64 + 0.5) / 200.0).collect();
        assert!(ks_test(&mut good, |x| x) > 0.99);
        // Squashed samples against uniform fail hard.
        let mut bad: Vec<f64> = (0..200).map(|i| (i as f64 / 200.0).powi(3)).collect();
        assert!(ks_test(&mut bad, |x| x) < 1e-10);
    }

    #[test]
    fn ks_p_value_reference() {
        // Kolmogorov distribution: P(sqrt(n) D > 1.36) ~ 0.0505 for large n.
        let p = ks_p_value(1.36 / (10_000.0f64).sqrt(), 10_000);
        assert!((p - 0.0505).abs() < 2e-3, "p = {p}");
    }

    #[test]
    fn holm_correction_orders_rejections() {
        let mut b = TestBattery::new(0.05);
        b.record("tiny", 1e-8);
        b.record("borderline", 0.03); // survives: 0.03 > 0.05/2
        b.record("clean", 0.8);
        assert_eq!(b.rejections(), vec!["tiny".to_string()]);
        assert!(b.report().contains("REJECT"));
        // Without correction, "borderline" alone would reject at 0.05 —
        // a singleton battery shows that.
        let mut solo = TestBattery::new(0.05);
        solo.record("borderline", 0.03);
        assert_eq!(solo.rejections().len(), 1);
    }

    #[test]
    fn empty_battery_is_quiet() {
        let b = TestBattery::new(0.05);
        assert!(b.rejections().is_empty());
        assert!(b.outcomes().is_empty());
    }

    #[test]
    fn incomplete_beta_reference_values() {
        // I_0.5(2, 3) = 0.6875 (closed form).
        assert!((inc_beta(0.5, 2.0, 3.0) - 0.6875).abs() < 1e-12);
        // Symmetry: I_x(a, b) = 1 - I_{1-x}(b, a).
        let x = 0.37;
        let lhs = inc_beta(x, 4.5, 2.2);
        let rhs = 1.0 - inc_beta(1.0 - x, 2.2, 4.5);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn gamma_q_reference_values() {
        // Q(1/2, z²/2) = erfc(z/sqrt 2): z = 1.96 -> 0.0499958.
        let q = gamma_q(0.5, 0.5 * 1.96 * 1.96);
        assert!((q - 0.049_995_8).abs() < 1e-6, "q = {q}");
        // Q(k, x) for integer k: Q(3, 2) = e^-2 (1 + 2 + 2) = 0.676676.
        let q3 = gamma_q(3.0, 2.0);
        assert!((q3 - 0.676_676_4).abs() < 1e-6, "q3 = {q3}");
    }
}
