//! # pcm-analysis — statistics and report rendering for scrub experiments
//!
//! Small, dependency-free helpers the benchmark harness uses to turn
//! simulation reports into the paper's tables:
//!
//! * [`Summary`] — mean/σ/95% CI of repeated runs;
//! * [`percent_reduction`] / [`improvement_ratio`] — the paper's headline
//!   metrics ("96.5% fewer UEs", "24.4× fewer scrub writes");
//! * [`Table`] — fixed-width table and CSV rendering;
//! * [`wilson_interval`] / [`clopper_pearson_interval`] /
//!   [`chi_square_gof`] / [`ks_test`] / [`TestBattery`] — the statistical
//!   machinery behind the oracle-vs-simulator agreement suite (see
//!   `DESIGN.md`, "Validation methodology");
//! * [`modelcheck`] — exhaustive small-model BFS for the tour scheduler's
//!   TLA-style liveness properties (`ScrubProgress`,
//!   `CorruptionDetected`, `RepairTriggered`), with the
//!   `scrub_modelcheck` binary as its CLI front end.
//!
//! # Quick start
//!
//! ```
//! use pcm_analysis::{improvement_ratio, percent_reduction, Table};
//!
//! let mut t = Table::new(vec!["metric", "basic", "combined", "improvement"]);
//! t.row(vec![
//!     "scrub writes".into(),
//!     "9.4e6".into(),
//!     "3.9e5".into(),
//!     format!("{:.1}x", improvement_ratio(9.4e6, 3.9e5)),
//! ]);
//! assert!(t.render().contains("24.1x"));
//! assert!((percent_reduction(100.0, 3.5) - 96.5).abs() < 1e-9);
//! ```

mod hist;
mod infer;
pub mod modelcheck;
mod stats;
mod table;

pub use hist::{percentile, Histogram};
pub use infer::{
    chi_square_gof, clopper_pearson_interval, ks_p_value, ks_test, wilson_interval, Interval,
    TestBattery, TestOutcome,
};
pub use modelcheck::{
    check, check_all, check_tripwires, CheckOutcome, ModelParams, Property, Variant, Violation,
};
pub use stats::{event_rate, geometric_mean, improvement_ratio, percent_reduction, Summary};
pub use table::{fmt_count, fmt_percent, fmt_ratio, Table};
