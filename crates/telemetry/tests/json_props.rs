//! Property tests for the telemetry JSON layer: arbitrary documents
//! round-trip bit-exactly through `to_json` → `from_json`, and the parser
//! returns errors (never panics) on malformed or truncated input.
//!
//! The vendored proptest subset only draws primitives, so documents are
//! derived from vectors of `u64` seeds through a small splitmix-style
//! expander — every field is still a pure function of the drawn seeds.

use proptest::collection;
use proptest::prelude::*;
use scrub_telemetry::{Document, Event, EventKind, PhaseRecord};

/// Splitmix64 step: turns one seed into a stream of well-mixed words.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A finite f64 derived from a seed word; mixes magnitudes, fractions,
/// negatives, and exact zero so shortest-round-trip formatting is pushed
/// through all its shapes.
fn finite_f64(w: u64) -> f64 {
    match w % 5 {
        0 => 0.0,
        1 => (w >> 8) as f64,
        2 => -((w >> 40) as f64) / 3.0,
        3 => (w >> 12) as f64 * 1e-9,
        _ => f64::from_bits(w & 0x7FEF_FFFF_FFFF_FFFF).abs(), // clamp exp below inf
    }
}

/// A string containing escape-worthy characters (quotes, backslashes,
/// control bytes, non-ASCII) as a pure function of the seed.
fn wild_string(w: u64) -> String {
    const ALPHABET: &[char] = &[
        'a', 'Z', '0', '_', '.', '"', '\\', '\n', '\t', '\r', '\u{1}', '\u{7f}', 'é', '→', '🦀',
        ' ', '/', '{', '}', '[', ']',
    ];
    let mut state = w;
    let len = (mix(&mut state) % 12) as usize;
    (0..len)
        .map(|_| ALPHABET[(mix(&mut state) as usize) % ALPHABET.len()])
        .collect()
}

/// One event of any kind, derived from a seed word.
fn event_from_seed(w: u64) -> Event {
    let mut s = w;
    let addr = (mix(&mut s) % 100_000) as u32;
    let kind = match mix(&mut s) % 15 {
        0 => EventKind::ScrubProbe {
            addr,
            persistent_bits: (mix(&mut s) % 64) as u32,
            clean: mix(&mut s).is_multiple_of(2),
            energy_pj: finite_f64(mix(&mut s)),
        },
        1 => EventKind::Corrected {
            addr,
            bits: (mix(&mut s) % 8) as u32,
            demand: mix(&mut s).is_multiple_of(2),
        },
        2 => EventKind::Uncorrectable {
            addr,
            demand: mix(&mut s).is_multiple_of(2),
            miscorrected: mix(&mut s).is_multiple_of(2),
        },
        3 => EventKind::ScrubWriteback {
            addr,
            energy_pj: finite_f64(mix(&mut s)),
        },
        4 => EventKind::DemandWrite {
            addr,
            energy_pj: finite_f64(mix(&mut s)),
        },
        5 => EventKind::WritebackDecision {
            addr,
            observed_bits: (mix(&mut s) % 64) as u32,
            fired: mix(&mut s).is_multiple_of(2),
            forced: mix(&mut s).is_multiple_of(2),
        },
        6 => EventKind::RateChange {
            region: addr,
            mult: finite_f64(mix(&mut s)),
            next_interval_s: finite_f64(mix(&mut s)),
        },
        7 => EventKind::DemandWriteNotify { addr },
        8 => EventKind::WearLevelRotate { addr },
        9 => EventKind::ExecWorker {
            worker: (mix(&mut s) % 64) as u32,
            tasks: mix(&mut s) % 1_000_000,
            steals: mix(&mut s) % 1_000,
        },
        10 => EventKind::SimDone {
            policy: wild_string(mix(&mut s)),
            workload: wild_string(mix(&mut s)),
            seed: mix(&mut s) % (1 << 53),
            scrub_probes: mix(&mut s) % 1_000_000,
            scrub_writes: mix(&mut s) % 1_000_000,
            ue: mix(&mut s) % 1_000,
            demand_ue: mix(&mut s) % 1_000,
            scrub_energy_uj: finite_f64(mix(&mut s)),
            mean_wear: finite_f64(mix(&mut s)),
        },
        11 => EventKind::EcpRepair {
            addr,
            cells_patched: (mix(&mut s) % 8) as u32,
            free_after: (mix(&mut s) % 8) as u32,
        },
        12 => EventKind::LineRetired {
            addr,
            spare: (mix(&mut s) % 64) as u32,
        },
        13 => EventKind::BankDegraded {
            bank: (mix(&mut s) % 16) as u32,
        },
        _ => EventKind::UeRecovered {
            addr,
            demand: mix(&mut s).is_multiple_of(2),
        },
    };
    Event {
        t_s: finite_f64(mix(&mut s)).abs(),
        seq: mix(&mut s) % (1 << 40),
        worker: (mix(&mut s) % 32) as u32,
        kind,
    }
}

/// A whole document as a pure function of the drawn seeds.
fn document_from_seeds(seeds: &[u64]) -> Document {
    let mut doc = Document::default();
    for &w in seeds {
        let mut s = w;
        match mix(&mut s) % 6 {
            0 => {
                doc.meta
                    .insert(wild_string(mix(&mut s)), wild_string(mix(&mut s)));
            }
            // Integer values stay below 2^53: the parser goes through f64,
            // so larger u64s cannot round-trip exactly by construction.
            1 => {
                doc.counters
                    .insert(wild_string(mix(&mut s)), mix(&mut s) % (1 << 53));
            }
            2 => {
                doc.gauges
                    .insert(wild_string(mix(&mut s)), mix(&mut s) % (1 << 53));
            }
            3 => {
                doc.values
                    .insert(wild_string(mix(&mut s)), finite_f64(mix(&mut s)));
            }
            4 => doc.phases.push(PhaseRecord {
                name: wild_string(mix(&mut s)),
                count: mix(&mut s) % 1_000,
                wall_s: finite_f64(mix(&mut s)).abs(),
                sim_span_s: finite_f64(mix(&mut s)).abs(),
            }),
            _ => doc.events.push(event_from_seed(mix(&mut s))),
        }
        doc.events_dropped = mix(&mut s) % 100;
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_documents_round_trip_bit_exactly(
        seeds in collection::vec(0u64..=u64::MAX, 0..24),
    ) {
        let doc = document_from_seeds(&seeds);
        let text = doc.to_json();
        let back = Document::from_json(&text).expect("emitted document parses");
        prop_assert_eq!(&back, &doc);
        // Idempotence: a second emit of the parsed document is the same text.
        prop_assert_eq!(back.to_json(), text);
    }

    #[test]
    fn parser_never_panics_on_arbitrary_input(
        codes in collection::vec(0u32..0x300, 0..64),
    ) {
        let text: String = codes
            .iter()
            .filter_map(|&c| char::from_u32(c))
            .collect();
        // Must return (Ok or Err), never panic.
        let _ = scrub_telemetry::json::parse(&text);
        let _ = Document::from_json(&text);
    }

    #[test]
    fn parser_never_panics_on_json_shaped_input(
        picks in collection::vec(0usize..32, 0..64),
    ) {
        // Draw from a JSON-flavored alphabet so the parser's deeper states
        // (nesting, escapes, number tails) are actually reached.
        const ALPHABET: &[u8; 32] = br#"{}[]",:0123456789.eE+-trufalsn \"#;
        let text: String = picks.iter().map(|&i| ALPHABET[i] as char).collect();
        let _ = scrub_telemetry::json::parse(&text);
        let _ = Document::from_json(&text);
    }

    #[test]
    fn truncated_documents_error_instead_of_panicking(
        seeds in collection::vec(0u64..=u64::MAX, 1..12),
        cut_sel in 0usize..10_000,
    ) {
        let text = document_from_seeds(&seeds).to_json();
        let mut cut = cut_sel % text.len();
        while !text.is_char_boundary(cut) {
            cut -= 1;
        }
        let prefix = &text[..cut];
        // A prefix may only parse when everything chopped off was
        // whitespace (the emitter's trailing newline).
        if scrub_telemetry::json::parse(prefix).is_ok() {
            prop_assert!(text[cut..].trim().is_empty());
        }
    }
}
