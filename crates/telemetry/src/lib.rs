//! Observability for the scrub simulator: typed counters and gauges, a
//! bounded per-worker event journal, named f64 values, and RAII phase
//! scopes — all behind one global recorder that is a no-op until
//! explicitly installed.
//!
//! # Zero cost when disabled
//!
//! Every recording entry point starts with a single relaxed atomic load
//! of the global enable flag and returns immediately when it is off. No
//! allocation, no locking, no clock reads happen on the disabled path,
//! so instrumented code keeps its determinism and performance guarantees
//! when telemetry is not requested (the simulator's byte-identical
//! output contract is tested against this).
//!
//! # Determinism of the record
//!
//! Counters are relaxed atomic integer adds: totals are exact and
//! independent of thread scheduling. Events go to per-thread journals
//! and are merged into one global order sorted by simulated time, then
//! per-journal sequence, then worker id, so the merged stream is a pure
//! function of what was recorded. Floating-point metrics are *set once*
//! (never accumulated across threads), keeping them bit-exact.
//!
//! # Usage
//!
//! ```
//! use scrub_telemetry as tel;
//!
//! tel::install(tel::Config::default());
//! tel::counter_add(tel::Counter::ScrubProbes, 3);
//! {
//!     let mut scope = tel::phase("example.work");
//!     scope.add_sim_span(900.0);
//! }
//! let doc = tel::snapshot();
//! assert_eq!(doc.counters["scrub_probes"], 3);
//! tel::set_enabled(false);
//! ```

mod counter;
mod document;
mod journal;
pub mod json;
mod phase;

/// Canonical names for the fleet-service health counters and gauges
/// carried in string-keyed [`Document`]s (the `scrubd` supervision layer
/// publishes these in `health.json` and merges them through
/// [`Document::merge_segments`], so counters sum and gauges keep their
/// maximum across shards). Centralized here so the daemon, the client,
/// the experiments, and CI jq assertions all agree on the spelling.
pub mod keys {
    /// Failed round attempts (panic or corrupt checkpoint) that entered
    /// the retry path. Counter; sums across shards.
    pub const FLEET_RETRIES: &str = "fleet.retries";
    /// Shards currently quarantined after exhausting their retry budget.
    /// Counter; sums across shards (each shard reports 0 or 1).
    pub const FLEET_QUARANTINED: &str = "fleet.quarantined";
    /// Successful recoveries (a retry that returned the shard to
    /// healthy). Counter; sums across shards.
    pub const FLEET_RECOVERIES: &str = "fleet.recoveries";
    /// Simulated cadence rounds re-executed from a last-good checkpoint
    /// while recovering. Counter; sums across shards.
    pub const FLEET_RECOVERY_ROUNDS: &str = "fleet.recovery_rounds";
    /// Worst observed time-to-recovery in simulated milliseconds (from
    /// the round a shard failed to the round it was healthy again).
    /// Gauge; the merged document keeps the fleet-wide maximum.
    pub const FLEET_MTTR_MS: &str = "fleet.mttr_ms";
}

pub use counter::{Counter, Gauge};
pub use document::{Document, PhaseRecord, SCHEMA_VERSION};
pub use journal::{merge_journals, Event, EventClass, EventKind, Journal};
pub use phase::PhaseScope;

use phase::PhaseAgg;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Recorder configuration, fixed at [`install`] time.
#[derive(Debug, Clone, Copy)]
pub struct Config {
    /// Events retained per worker journal (oldest evicted beyond this).
    pub journal_capacity: usize,
    /// Bitmask of [`EventClass`] bits a journal accepts.
    pub event_mask: u32,
}

impl Default for Config {
    fn default() -> Self {
        Self {
            journal_capacity: 4096,
            event_mask: EventClass::ALL,
        }
    }
}

struct Collector {
    config: Mutex<Config>,
    /// Bumped on every reset; invalidates thread-local journal handles.
    epoch: AtomicU64,
    counters: [AtomicU64; Counter::COUNT],
    gauges: [AtomicU64; Gauge::COUNT],
    meta: Mutex<BTreeMap<String, String>>,
    values: Mutex<BTreeMap<String, f64>>,
    phases: Mutex<BTreeMap<String, PhaseAgg>>,
    journals: Mutex<Vec<Arc<Mutex<Journal>>>>,
    next_worker: AtomicU32,
}

impl Collector {
    fn new() -> Self {
        Self {
            config: Mutex::new(Config::default()),
            epoch: AtomicU64::new(0),
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            gauges: std::array::from_fn(|_| AtomicU64::new(0)),
            meta: Mutex::new(BTreeMap::new()),
            values: Mutex::new(BTreeMap::new()),
            phases: Mutex::new(BTreeMap::new()),
            journals: Mutex::new(Vec::new()),
            next_worker: AtomicU32::new(0),
        }
    }

    fn clear(&self) {
        // Bump the epoch first so racing threads re-register instead of
        // writing into journals we are about to drop.
        self.epoch.fetch_add(1, Ordering::SeqCst);
        self.journals.lock().unwrap().clear();
        self.next_worker.store(0, Ordering::SeqCst);
        for c in &self.counters {
            c.store(0, Ordering::SeqCst);
        }
        for g in &self.gauges {
            g.store(0, Ordering::SeqCst);
        }
        self.meta.lock().unwrap().clear();
        self.values.lock().unwrap().clear();
        self.phases.lock().unwrap().clear();
    }
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static COLLECTOR: OnceLock<Collector> = OnceLock::new();

thread_local! {
    /// (epoch, journal) — the handle is stale once the epoch moves on.
    static LOCAL_JOURNAL: RefCell<Option<(u64, Arc<Mutex<Journal>>)>> = const { RefCell::new(None) };
}

fn collector() -> &'static Collector {
    COLLECTOR.get_or_init(Collector::new)
}

/// Whether the recorder is currently accepting measurements.
///
/// This is the one branch instrumented code pays when telemetry is off:
/// a single relaxed atomic load.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns recording on or off without clearing anything already recorded.
pub fn set_enabled(on: bool) {
    if on {
        // Make sure the collector exists before any recording race.
        let _ = collector();
    }
    ENABLED.store(on, Ordering::SeqCst);
}

/// Installs the recorder: applies `config`, clears all prior state, and
/// enables recording.
pub fn install(config: Config) {
    let c = collector();
    *c.config.lock().unwrap() = config;
    c.clear();
    ENABLED.store(true, Ordering::SeqCst);
}

/// Clears every recorded measurement and invalidates per-thread journal
/// handles. Recording stays in whatever enabled state it was.
pub fn reset() {
    if let Some(c) = COLLECTOR.get() {
        c.clear();
    }
}

/// Adds `n` to a counter. No-op while disabled.
#[inline]
pub fn counter_add(counter: Counter, n: u64) {
    if !enabled() {
        return;
    }
    collector().counters[counter as usize].fetch_add(n, Ordering::Relaxed);
}

/// Current value of a counter (0 when nothing was recorded).
pub fn counter_value(counter: Counter) -> u64 {
    COLLECTOR
        .get()
        .map(|c| c.counters[counter as usize].load(Ordering::SeqCst))
        .unwrap_or(0)
}

/// Raises a high-water gauge to at least `value`. No-op while disabled.
#[inline]
pub fn gauge_max(gauge: Gauge, value: u64) {
    if !enabled() {
        return;
    }
    collector().gauges[gauge as usize].fetch_max(value, Ordering::Relaxed);
}

/// Sets a named f64 value (last write wins; values are set, never
/// accumulated, so they stay bit-exact). No-op while disabled.
#[inline]
pub fn set_value(key: &str, value: f64) {
    if !enabled() {
        return;
    }
    collector()
        .values
        .lock()
        .unwrap()
        .insert(key.to_string(), value);
}

/// Sets a free-form metadata string. No-op while disabled.
#[inline]
pub fn set_meta(key: &str, value: &str) {
    if !enabled() {
        return;
    }
    collector()
        .meta
        .lock()
        .unwrap()
        .insert(key.to_string(), value.to_string());
}

/// Records an event at simulated time `t_s` into this thread's journal.
/// No-op while disabled.
#[inline]
pub fn event(t_s: f64, kind: EventKind) {
    if !enabled() {
        return;
    }
    let c = collector();
    let epoch = c.epoch.load(Ordering::SeqCst);
    LOCAL_JOURNAL.with(|slot| {
        let mut slot = slot.borrow_mut();
        let stale = match &*slot {
            Some((e, _)) => *e != epoch,
            None => true,
        };
        if stale {
            let config = *c.config.lock().unwrap();
            let worker = c.next_worker.fetch_add(1, Ordering::SeqCst);
            let journal = Arc::new(Mutex::new(Journal::new(
                config.journal_capacity,
                config.event_mask,
                worker,
            )));
            c.journals.lock().unwrap().push(Arc::clone(&journal));
            *slot = Some((epoch, journal));
        }
        let (_, journal) = slot.as_ref().expect("journal registered above");
        journal.lock().unwrap().push(t_s, kind);
    });
}

/// Opens a named phase scope; its wall-clock time (and any simulated
/// span added via [`PhaseScope::add_sim_span`]) commits when it drops.
/// Returns an inert scope while disabled.
pub fn phase(name: &str) -> PhaseScope {
    if !enabled() {
        return PhaseScope::inert();
    }
    PhaseScope::live(name.to_string())
}

pub(crate) fn record_phase(name: &str, wall_s: f64, sim_span_s: f64) {
    if !enabled() {
        return;
    }
    let mut phases = collector().phases.lock().unwrap();
    let agg = phases.entry(name.to_string()).or_default();
    agg.count += 1;
    agg.wall_s += wall_s;
    agg.sim_span_s += sim_span_s;
}

/// Snapshots everything recorded so far into a [`Document`]. All counter
/// and gauge slots are always present (zero-valued when untouched) so
/// the document schema is stable.
pub fn snapshot() -> Document {
    let mut doc = Document::default();
    let Some(c) = COLLECTOR.get() else {
        for counter in Counter::ALL {
            doc.counters.insert(counter.name().to_string(), 0);
        }
        for gauge in Gauge::ALL {
            doc.gauges.insert(gauge.name().to_string(), 0);
        }
        return doc;
    };
    for counter in Counter::ALL {
        doc.counters.insert(
            counter.name().to_string(),
            c.counters[counter as usize].load(Ordering::SeqCst),
        );
    }
    for gauge in Gauge::ALL {
        doc.gauges.insert(
            gauge.name().to_string(),
            c.gauges[gauge as usize].load(Ordering::SeqCst),
        );
    }
    doc.meta = c.meta.lock().unwrap().clone();
    doc.values = c.values.lock().unwrap().clone();
    doc.phases = c
        .phases
        .lock()
        .unwrap()
        .iter()
        .map(|(name, agg)| PhaseRecord {
            name: name.clone(),
            count: agg.count,
            wall_s: agg.wall_s,
            sim_span_s: agg.sim_span_s,
        })
        .collect();
    let journals = c.journals.lock().unwrap();
    let guards: Vec<_> = journals.iter().map(|j| j.lock().unwrap()).collect();
    doc.events_dropped = guards.iter().map(|j| j.dropped()).sum();
    doc.events = merge_journals(guards.iter().map(|g| &**g));
    doc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers the whole global lifecycle: the recorder is
    /// process-global state, so splitting this into several parallel
    /// tests would race.
    #[test]
    fn recorder_lifecycle_end_to_end() {
        // Disabled: everything is a no-op and snapshots are all-zero.
        assert!(!enabled());
        counter_add(Counter::ScrubProbes, 5);
        gauge_max(Gauge::ExecJobsHighWater, 9);
        set_value("x", 1.5);
        event(1.0, EventKind::DemandWriteNotify { addr: 1 });
        drop(phase("off"));
        let doc = snapshot();
        assert_eq!(doc.counters["scrub_probes"], 0);
        assert!(doc.values.is_empty());
        assert!(doc.events.is_empty());
        assert!(doc.phases.is_empty());

        // Installed: measurements land.
        install(Config {
            journal_capacity: 2,
            event_mask: EventClass::ALL,
        });
        assert!(enabled());
        counter_add(Counter::ScrubProbes, 5);
        counter_add(Counter::ScrubProbes, 2);
        gauge_max(Gauge::ExecJobsHighWater, 9);
        gauge_max(Gauge::ExecJobsHighWater, 4);
        set_value("e6.basic.ue", 4506.375);
        set_meta("experiment", "e6");
        for i in 0..3u32 {
            event(i as f64, EventKind::DemandWriteNotify { addr: i });
        }
        {
            let mut scope = phase("suite");
            scope.add_sim_span(900.0);
        }
        let doc = snapshot();
        assert_eq!(doc.counters["scrub_probes"], 7);
        assert_eq!(doc.gauges["exec_jobs_high_water"], 9);
        assert_eq!(doc.values["e6.basic.ue"], 4506.375);
        assert_eq!(doc.meta["experiment"], "e6");
        // Ring capacity 2: oldest of the 3 events evicted.
        assert_eq!(doc.events.len(), 2);
        assert_eq!(doc.events_dropped, 1);
        assert_eq!(doc.phases.len(), 1);
        assert_eq!(doc.phases[0].name, "suite");
        assert_eq!(doc.phases[0].count, 1);
        assert_eq!(doc.phases[0].sim_span_s, 900.0);
        assert!(doc.phases[0].wall_s >= 0.0);

        // The snapshot round-trips through its JSON form.
        let back = Document::from_json(&doc.to_json()).expect("parses");
        assert_eq!(back, doc);

        // Reset clears measurements and invalidates journal handles.
        reset();
        let doc = snapshot();
        assert_eq!(doc.counters["scrub_probes"], 0);
        assert!(doc.events.is_empty());
        event(5.0, EventKind::DemandWriteNotify { addr: 9 });
        let doc = snapshot();
        assert_eq!(doc.events.len(), 1, "journal re-registers after reset");

        // Disable again: back to no-ops.
        set_enabled(false);
        counter_add(Counter::ScrubProbes, 1);
        assert_eq!(counter_value(Counter::ScrubProbes), 0);
    }
}
