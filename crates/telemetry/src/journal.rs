//! The event journal: a bounded ring buffer of typed simulation events.
//!
//! Each worker thread appends to its own journal (no cross-thread
//! contention); a snapshot merges every per-worker journal into one
//! deterministic global order — sorted by simulated time, then by
//! per-journal sequence number, then by worker id — so the merged stream
//! is a pure function of the recorded events, not of thread scheduling.

use std::collections::VecDeque;

/// Coarse event families, used as journal filter bits: a mask of classes
/// selects which events a journal accepts, so a caller interested only in
/// (say) per-simulation summaries is not flooded out of the ring by
/// high-volume probe events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Scrub probes.
    Probe,
    /// Correctable / uncorrectable error observations.
    Error,
    /// Demand and scrub writes (incl. wear-level rotation copies).
    Write,
    /// Policy write-back decisions.
    Decision,
    /// Adaptive-region rate changes.
    Rate,
    /// Demand-write notifications to policies.
    Demand,
    /// Execution-pool worker summaries.
    Exec,
    /// Whole-simulation completion summaries.
    Sim,
    /// Repair-hierarchy transitions (ECP patch, retirement, degradation).
    Repair,
}

impl EventClass {
    /// The class's bit in an event mask.
    pub fn bit(self) -> u32 {
        1 << (self as u32)
    }

    /// Mask accepting every class.
    pub const ALL: u32 = 0x1FF;
}

/// What happened. Payloads carry enough to reconstruct the decision or
/// reconcile against reports; addresses are line numbers.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A scrub probe checked a line.
    ScrubProbe {
        /// Probed line.
        addr: u32,
        /// Persistent errors resident on the line.
        persistent_bits: u32,
        /// Whether the decode came back clean.
        clean: bool,
        /// Energy charged for the probe (read + decode), pJ.
        energy_pj: f64,
    },
    /// ECC corrected errors on a decode.
    Corrected {
        /// Decoded line.
        addr: u32,
        /// Bits corrected.
        bits: u32,
        /// Whether a demand read (vs. a scrub probe) saw it.
        demand: bool,
    },
    /// A new uncorrectable error was recorded.
    Uncorrectable {
        /// Failing line.
        addr: u32,
        /// Whether a demand read hit it.
        demand: bool,
        /// Whether it was a silent miscorrection.
        miscorrected: bool,
    },
    /// A scrub write-back rewrote a line.
    ScrubWriteback {
        /// Rewritten line.
        addr: u32,
        /// Energy charged (write + encode), pJ.
        energy_pj: f64,
    },
    /// A demand write reprogrammed a line.
    DemandWrite {
        /// Written line (physical).
        addr: u32,
        /// Energy charged (write + encode), pJ.
        energy_pj: f64,
    },
    /// The engine decided whether a probed line earns a write-back.
    WritebackDecision {
        /// Probed line.
        addr: u32,
        /// Persistent errors the probe observed.
        observed_bits: u32,
        /// Whether a write-back was issued.
        fired: bool,
        /// Whether it was forced by an uncorrectable outcome.
        forced: bool,
    },
    /// An adaptive region finished a pass and re-paced itself.
    RateChange {
        /// Region index.
        region: u32,
        /// New interval multiplier (AIMD state).
        mult: f64,
        /// Seconds until the region's next pass.
        next_interval_s: f64,
    },
    /// A demand write was forwarded to the scrub policy.
    DemandWriteNotify {
        /// Refreshed line.
        addr: u32,
    },
    /// Start-Gap rotated: a displaced line was copied into the old gap.
    WearLevelRotate {
        /// Copy destination (the old gap slot).
        addr: u32,
    },
    /// One pool worker's lifetime summary.
    ExecWorker {
        /// Worker index within its pool invocation.
        worker: u32,
        /// Tasks it executed.
        tasks: u64,
        /// Tasks it stole from other workers' ranges.
        steals: u64,
    },
    /// A whole simulation finished; payload mirrors the report fields the
    /// experiment tables print, for exact reconciliation.
    SimDone {
        /// Policy label (with parameters).
        policy: String,
        /// Workload label.
        workload: String,
        /// Master seed of the run.
        seed: u64,
        /// Scrub probes issued.
        scrub_probes: u64,
        /// Scrub write-backs issued.
        scrub_writes: u64,
        /// Uncorrectable errors (detected + silent).
        ue: u64,
        /// Uncorrectable errors hit by demand reads.
        demand_ue: u64,
        /// Scrub-attributed energy, µJ.
        scrub_energy_uj: f64,
        /// Mean line wear.
        mean_wear: f64,
    },
    /// ECP entries were assigned to patch a line's stuck cells.
    EcpRepair {
        /// Patched line (physical).
        addr: u32,
        /// Stuck cells newly covered by ECP entries.
        cells_patched: u32,
        /// ECP entries still free on the line afterwards.
        free_after: u32,
    },
    /// A line was retired and remapped to a spare.
    LineRetired {
        /// Retired line (physical).
        addr: u32,
        /// Slot index of the spare line it now maps to.
        spare: u32,
    },
    /// A bank exhausted its spare pool and entered degraded mode.
    BankDegraded {
        /// Degraded bank.
        bank: u32,
    },
    /// A failed decode was recovered by the shifted-threshold retry.
    UeRecovered {
        /// Recovered line.
        addr: u32,
        /// Whether a demand read (vs. a scrub probe) hit it.
        demand: bool,
    },
    /// The simulation crossed a fault-campaign boundary (SEU injection
    /// window closing, burst firing, intermittent-fault period tick).
    /// A marker, not a state change: the injector itself is exact
    /// independent of these events.
    CampaignBoundary {
        /// Which boundary was crossed.
        label: String,
    },
}

impl EventKind {
    /// The event's class (for mask filtering).
    pub fn class(&self) -> EventClass {
        match self {
            EventKind::ScrubProbe { .. } => EventClass::Probe,
            EventKind::Corrected { .. } | EventKind::Uncorrectable { .. } => EventClass::Error,
            EventKind::ScrubWriteback { .. }
            | EventKind::DemandWrite { .. }
            | EventKind::WearLevelRotate { .. } => EventClass::Write,
            EventKind::WritebackDecision { .. } => EventClass::Decision,
            EventKind::RateChange { .. } => EventClass::Rate,
            EventKind::DemandWriteNotify { .. } => EventClass::Demand,
            EventKind::ExecWorker { .. } => EventClass::Exec,
            EventKind::SimDone { .. } | EventKind::CampaignBoundary { .. } => EventClass::Sim,
            EventKind::EcpRepair { .. }
            | EventKind::LineRetired { .. }
            | EventKind::BankDegraded { .. }
            | EventKind::UeRecovered { .. } => EventClass::Repair,
        }
    }

    /// The JSON tag naming this variant.
    pub fn tag(&self) -> &'static str {
        match self {
            EventKind::ScrubProbe { .. } => "scrub_probe",
            EventKind::Corrected { .. } => "corrected",
            EventKind::Uncorrectable { .. } => "uncorrectable",
            EventKind::ScrubWriteback { .. } => "scrub_writeback",
            EventKind::DemandWrite { .. } => "demand_write",
            EventKind::WritebackDecision { .. } => "writeback_decision",
            EventKind::RateChange { .. } => "rate_change",
            EventKind::DemandWriteNotify { .. } => "demand_write_notify",
            EventKind::WearLevelRotate { .. } => "wear_level_rotate",
            EventKind::ExecWorker { .. } => "exec_worker",
            EventKind::SimDone { .. } => "sim_done",
            EventKind::EcpRepair { .. } => "ecp_repair",
            EventKind::LineRetired { .. } => "line_retired",
            EventKind::BankDegraded { .. } => "bank_degraded",
            EventKind::UeRecovered { .. } => "ue_recovered",
            EventKind::CampaignBoundary { .. } => "campaign_boundary",
        }
    }
}

/// One journal entry: simulated timestamp, merge keys, payload.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Simulated time of the event, seconds (0 for events outside
    /// simulated time, e.g. pool-worker summaries).
    pub t_s: f64,
    /// Per-journal sequence number (assigned at push).
    pub seq: u64,
    /// Id of the worker thread that recorded it.
    pub worker: u32,
    /// Payload.
    pub kind: EventKind,
}

/// A bounded ring buffer of events. When full, the *oldest* entry is
/// dropped, so the journal always holds the newest `capacity` events it
/// accepted; `dropped` counts the evictions.
#[derive(Debug, Clone)]
pub struct Journal {
    capacity: usize,
    mask: u32,
    worker: u32,
    next_seq: u64,
    dropped: u64,
    buf: VecDeque<Event>,
}

impl Journal {
    /// Creates a journal keeping at most `capacity` events whose class is
    /// selected by `mask` (see [`EventClass::bit`]).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize, mask: u32, worker: u32) -> Self {
        assert!(capacity > 0, "journal capacity must be positive");
        Self {
            capacity,
            mask,
            worker,
            next_seq: 0,
            dropped: 0,
            buf: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Records an event at simulated time `t_s`, unless its class is
    /// filtered out. Returns whether the event was accepted.
    pub fn push(&mut self, t_s: f64, kind: EventKind) -> bool {
        if kind.class().bit() & self.mask == 0 {
            return false;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(Event {
            t_s,
            seq: self.next_seq,
            worker: self.worker,
            kind,
        });
        self.next_seq += 1;
        true
    }

    /// Events currently retained, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.buf.iter()
    }

    /// Retained event count.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events evicted by the ring bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The journal's worker id.
    pub fn worker(&self) -> u32 {
        self.worker
    }
}

/// Merges per-worker journals into one deterministic global order: sorted
/// by simulated time, then per-journal sequence, then worker id. The
/// result depends only on the recorded events, never on iteration order.
pub fn merge_journals<'a>(journals: impl IntoIterator<Item = &'a Journal>) -> Vec<Event> {
    let mut all: Vec<Event> = journals
        .into_iter()
        .flat_map(|j| j.events().cloned())
        .collect();
    all.sort_by(|a, b| {
        a.t_s
            .total_cmp(&b.t_s)
            .then(a.seq.cmp(&b.seq))
            .then(a.worker.cmp(&b.worker))
    });
    all
}

#[cfg(test)]
mod tests {
    use super::*;

    fn probe(addr: u32) -> EventKind {
        EventKind::ScrubProbe {
            addr,
            persistent_bits: 0,
            clean: true,
            energy_pj: 1.0,
        }
    }

    #[test]
    fn ring_keeps_newest_n_and_counts_drops() {
        let mut j = Journal::new(3, EventClass::ALL, 0);
        for i in 0..10u32 {
            assert!(j.push(i as f64, probe(i)));
        }
        assert_eq!(j.len(), 3);
        assert_eq!(j.dropped(), 7);
        let addrs: Vec<u32> = j
            .events()
            .map(|e| match e.kind {
                EventKind::ScrubProbe { addr, .. } => addr,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(addrs, vec![7, 8, 9], "oldest entries evicted first");
        // Sequence numbers keep counting across evictions.
        assert_eq!(j.events().last().unwrap().seq, 9);
    }

    #[test]
    fn mask_filters_classes_without_consuming_capacity() {
        let mut j = Journal::new(2, EventClass::Sim.bit(), 0);
        assert!(!j.push(1.0, probe(0)));
        assert!(j.push(
            2.0,
            EventKind::SimDone {
                policy: "basic".into(),
                workload: "idle".into(),
                seed: 1,
                scrub_probes: 0,
                scrub_writes: 0,
                ue: 0,
                demand_ue: 0,
                scrub_energy_uj: 0.0,
                mean_wear: 0.0,
            }
        ));
        assert_eq!(j.len(), 1);
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn merge_orders_by_time_then_seq_then_worker() {
        let mut a = Journal::new(8, EventClass::ALL, 0);
        let mut b = Journal::new(8, EventClass::ALL, 1);
        a.push(5.0, probe(50));
        a.push(1.0, probe(10));
        b.push(1.0, probe(11));
        b.push(3.0, probe(31));
        // Worker 1 pushed its t=1.0 event as seq 0; worker 0's t=1.0 event
        // is seq 1, so worker 1's sorts first at the tie.
        let merged = merge_journals([&a, &b]);
        let keys: Vec<(f64, u64, u32)> = merged.iter().map(|e| (e.t_s, e.seq, e.worker)).collect();
        assert_eq!(
            keys,
            vec![(1.0, 0, 1), (1.0, 1, 0), (3.0, 1, 1), (5.0, 0, 0)]
        );
    }

    #[test]
    fn merge_is_independent_of_journal_iteration_order() {
        let mut a = Journal::new(8, EventClass::ALL, 0);
        let mut b = Journal::new(8, EventClass::ALL, 1);
        for i in 0..5u32 {
            a.push(i as f64 * 2.0, probe(i));
            b.push(i as f64 * 2.0 + 1.0, probe(100 + i));
        }
        assert_eq!(merge_journals([&a, &b]), merge_journals([&b, &a]));
    }
}
