//! Typed counters and gauges: fixed enums, so every metric has one
//! canonical name, one storage slot, and no string hashing on the hot
//! path.

/// Monotonic event counters, one slot per variant. Additions are relaxed
/// atomic adds, so totals are exact and independent of thread scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Demand line reads served by the memory.
    DemandReads,
    /// Demand line writes served by the memory.
    DemandWrites,
    /// Scrub probes (read + syndrome check) issued by the memory.
    ScrubProbes,
    /// Scrub write-backs issued by the memory.
    ScrubWritebacks,
    /// Bit errors corrected by ECC across all decodes.
    CorrectedBits,
    /// Detected-uncorrectable error events.
    DetectedUe,
    /// Silent-miscorrection events.
    Miscorrections,
    /// Uncorrectable errors first hit by demand reads.
    DemandUe,
    /// Wear-leveling rotation copies.
    WearLevelWrites,
    /// Engine slots spent probing.
    EngineProbeSlots,
    /// Engine slots spent idle.
    EngineIdleSlots,
    /// Write-backs requested by policy decisions.
    EnginePolicyWritebacks,
    /// Write-backs forced by uncorrectable outcomes.
    EngineForcedWritebacks,
    /// Demand-write notifications forwarded to policies.
    DemandWriteNotifies,
    /// Adaptive-region passes completed.
    RegionPasses,
    /// Adaptive-region interval halvings (error pressure).
    RegionSpeedups,
    /// Adaptive-region interval doublings (clean passes).
    RegionSlowdowns,
    /// Parallel pool invocations.
    ExecPools,
    /// Tasks executed by pool workers (including the inline path).
    ExecTasks,
    /// Tasks obtained by stealing from another worker's range.
    ExecSteals,
    /// Scrub probes as summed from finished simulation reports (should
    /// reconcile exactly with [`Counter::ScrubProbes`]).
    ReportScrubProbes,
    /// Scrub write-backs as summed from finished simulation reports.
    ReportScrubWritebacks,
    /// Uncorrectable errors as summed from finished simulation reports.
    ReportUncorrectable,
    /// Lines patched by assigning ECP entries to stuck cells.
    EcpRepairs,
    /// Individual stuck cells patched by ECP entries.
    EcpCellsPatched,
    /// Lines retired into the spare pool.
    LinesRetired,
    /// Uncorrectable errors the repair hierarchy could not absorb.
    UnrepairableUe,
    /// Failed decodes recovered by the shifted-threshold retry path.
    UeRecoveries,
    /// Pool jobs that panicked (counted once per panicking attempt).
    ExecPanics,
    /// Pool jobs retried after a panic.
    ExecRetries,
    /// Pool jobs lost without a result (worker died mid-job).
    ExecLostJobs,
    /// Fault-campaign boundaries crossed (SEU window end, burst,
    /// intermittent period) — identical under both simulation cores.
    CampaignBoundaries,
    /// Scrub slots deferred because the IOPS token bucket was empty.
    BudgetThrottled,
    /// Probes forced by the anti-starvation boost after `max_defer`
    /// consecutive throttled slots.
    BudgetForcedProbes,
    /// Complete tours (every line probed once) finished by a tour policy.
    ToursCompleted,
    /// Probes of lines resident in the profiler's risk table at probe
    /// time that reported a nonzero persistent error count (the profile
    /// predicted correctly).
    ProfilerHits,
    /// Probes of profiled lines that came back clean (stale profile).
    ProfilerMisses,
    /// Risk-table evictions (lowest-score entry displaced at capacity).
    ProfilerEvictions,
    /// Extra probes granted to hot lines by the profiler's interleave.
    ProfilerHotProbes,
    /// Probes issued by a profiled policy that found at least one
    /// persistent error (profiled or not) — the base dirty rate the
    /// profiler's hit rate is judged against.
    ProfilerDirtyProbes,
}

impl Counter {
    /// Every counter, in slot order.
    pub const ALL: [Counter; 40] = [
        Counter::DemandReads,
        Counter::DemandWrites,
        Counter::ScrubProbes,
        Counter::ScrubWritebacks,
        Counter::CorrectedBits,
        Counter::DetectedUe,
        Counter::Miscorrections,
        Counter::DemandUe,
        Counter::WearLevelWrites,
        Counter::EngineProbeSlots,
        Counter::EngineIdleSlots,
        Counter::EnginePolicyWritebacks,
        Counter::EngineForcedWritebacks,
        Counter::DemandWriteNotifies,
        Counter::RegionPasses,
        Counter::RegionSpeedups,
        Counter::RegionSlowdowns,
        Counter::ExecPools,
        Counter::ExecTasks,
        Counter::ExecSteals,
        Counter::ReportScrubProbes,
        Counter::ReportScrubWritebacks,
        Counter::ReportUncorrectable,
        Counter::EcpRepairs,
        Counter::EcpCellsPatched,
        Counter::LinesRetired,
        Counter::UnrepairableUe,
        Counter::UeRecoveries,
        Counter::ExecPanics,
        Counter::ExecRetries,
        Counter::ExecLostJobs,
        Counter::CampaignBoundaries,
        Counter::BudgetThrottled,
        Counter::BudgetForcedProbes,
        Counter::ToursCompleted,
        Counter::ProfilerHits,
        Counter::ProfilerMisses,
        Counter::ProfilerEvictions,
        Counter::ProfilerHotProbes,
        Counter::ProfilerDirtyProbes,
    ];

    /// Number of counter slots.
    pub const COUNT: usize = Counter::ALL.len();

    /// The canonical (JSON) name.
    pub fn name(self) -> &'static str {
        match self {
            Counter::DemandReads => "demand_reads",
            Counter::DemandWrites => "demand_writes",
            Counter::ScrubProbes => "scrub_probes",
            Counter::ScrubWritebacks => "scrub_writebacks",
            Counter::CorrectedBits => "corrected_bits",
            Counter::DetectedUe => "detected_ue",
            Counter::Miscorrections => "miscorrections",
            Counter::DemandUe => "demand_ue",
            Counter::WearLevelWrites => "wear_level_writes",
            Counter::EngineProbeSlots => "engine_probe_slots",
            Counter::EngineIdleSlots => "engine_idle_slots",
            Counter::EnginePolicyWritebacks => "engine_policy_writebacks",
            Counter::EngineForcedWritebacks => "engine_forced_writebacks",
            Counter::DemandWriteNotifies => "demand_write_notifies",
            Counter::RegionPasses => "region_passes",
            Counter::RegionSpeedups => "region_speedups",
            Counter::RegionSlowdowns => "region_slowdowns",
            Counter::ExecPools => "exec_pools",
            Counter::ExecTasks => "exec_tasks",
            Counter::ExecSteals => "exec_steals",
            Counter::ReportScrubProbes => "report_scrub_probes",
            Counter::ReportScrubWritebacks => "report_scrub_writebacks",
            Counter::ReportUncorrectable => "report_uncorrectable",
            Counter::EcpRepairs => "ecp_repairs",
            Counter::EcpCellsPatched => "ecp_cells_patched",
            Counter::LinesRetired => "lines_retired",
            Counter::UnrepairableUe => "unrepairable_ue",
            Counter::UeRecoveries => "ue_recoveries",
            Counter::ExecPanics => "exec_panics",
            Counter::ExecRetries => "exec_retries",
            Counter::ExecLostJobs => "exec_lost_jobs",
            Counter::CampaignBoundaries => "campaign_boundaries",
            Counter::BudgetThrottled => "budget_throttled",
            Counter::BudgetForcedProbes => "budget_forced_probes",
            Counter::ToursCompleted => "tours_completed",
            Counter::ProfilerHits => "profiler_hits",
            Counter::ProfilerMisses => "profiler_misses",
            Counter::ProfilerEvictions => "profiler_evictions",
            Counter::ProfilerHotProbes => "profiler_hot_probes",
            Counter::ProfilerDirtyProbes => "profiler_dirty_probes",
        }
    }
}

/// High-water-mark gauges: `record` keeps the maximum value observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Largest job list handed to one pool invocation.
    ExecJobsHighWater,
    /// Largest worker count spawned by one pool invocation.
    ExecWorkersHighWater,
    /// Deepest pending-work queue observed by a stealing worker.
    ExecQueueDepthHighWater,
    /// Longest observed tour (in scrub slots) for a budgeted tour policy;
    /// the `ScrubProgress` bound caps this at `lines * (max_defer + 1)`.
    StarvationMaxLag,
    /// Largest number of lines resident in a profiler's risk table.
    ProfilerOccupancy,
}

impl Gauge {
    /// Every gauge, in slot order.
    pub const ALL: [Gauge; 5] = [
        Gauge::ExecJobsHighWater,
        Gauge::ExecWorkersHighWater,
        Gauge::ExecQueueDepthHighWater,
        Gauge::StarvationMaxLag,
        Gauge::ProfilerOccupancy,
    ];

    /// Number of gauge slots.
    pub const COUNT: usize = Gauge::ALL.len();

    /// The canonical (JSON) name.
    pub fn name(self) -> &'static str {
        match self {
            Gauge::ExecJobsHighWater => "exec_jobs_high_water",
            Gauge::ExecWorkersHighWater => "exec_workers_high_water",
            Gauge::ExecQueueDepthHighWater => "exec_queue_depth_high_water",
            Gauge::StarvationMaxLag => "starvation_max_lag",
            Gauge::ProfilerOccupancy => "profiler_occupancy",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn counter_slots_and_names_are_unique() {
        let names: HashSet<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names.len(), Counter::COUNT);
        let slots: HashSet<usize> = Counter::ALL.iter().map(|&c| c as usize).collect();
        assert_eq!(slots.len(), Counter::COUNT);
        assert_eq!(slots.iter().max(), Some(&(Counter::COUNT - 1)));
    }

    #[test]
    fn gauge_slots_and_names_are_unique() {
        let names: HashSet<&str> = Gauge::ALL.iter().map(|g| g.name()).collect();
        assert_eq!(names.len(), Gauge::COUNT);
    }
}
