//! The versioned telemetry document: everything one run recorded, as a
//! plain value that serializes to JSON and parses back losslessly.

use std::collections::BTreeMap;

use crate::journal::{Event, EventKind};
use crate::json::{self, escape, fmt_f64, Value};

/// Schema version emitted in every document.
pub const SCHEMA_VERSION: u64 = 1;

/// Aggregated wall-clock / simulated-time span for one named phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseRecord {
    /// Phase name (e.g. `"e6.basic_suite"`).
    pub name: String,
    /// Times the phase was entered.
    pub count: u64,
    /// Total wall-clock seconds spent inside.
    pub wall_s: f64,
    /// Total simulated seconds covered (0 when no sim span was set).
    pub sim_span_s: f64,
}

/// One run's telemetry: counters, gauges, named f64 values, phase
/// profile, and the merged event journal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Document {
    /// Free-form string metadata (experiment id, thread count, …).
    pub meta: BTreeMap<String, String>,
    /// Monotonic counters by canonical name.
    pub counters: BTreeMap<String, u64>,
    /// High-water gauges by canonical name.
    pub gauges: BTreeMap<String, u64>,
    /// Named f64 values (headline metrics recorded by experiments).
    pub values: BTreeMap<String, f64>,
    /// Phase profile, sorted by name.
    pub phases: Vec<PhaseRecord>,
    /// Events evicted from per-worker ring buffers.
    pub events_dropped: u64,
    /// Merged event journal in deterministic global order.
    pub events: Vec<Event>,
}

fn kv_u64(map: &BTreeMap<String, u64>) -> String {
    map.iter()
        .map(|(k, v)| format!("    \"{}\": {}", escape(k), v))
        .collect::<Vec<_>>()
        .join(",\n")
}

impl Document {
    /// Renders the document as pretty-printed JSON (schema version
    /// [`SCHEMA_VERSION`]; top-level keys: `version`, `meta`, `counters`,
    /// `gauges`, `values`, `phases`, `events`).
    pub fn to_json(&self) -> String {
        let meta = self
            .meta
            .iter()
            .map(|(k, v)| format!("    \"{}\": \"{}\"", escape(k), escape(v)))
            .collect::<Vec<_>>()
            .join(",\n");
        let values = self
            .values
            .iter()
            .map(|(k, v)| format!("    \"{}\": {}", escape(k), fmt_f64(*v)))
            .collect::<Vec<_>>()
            .join(",\n");
        let phases = self
            .phases
            .iter()
            .map(|p| {
                format!(
                    "    {{\"name\": \"{}\", \"count\": {}, \"wall_s\": {}, \"sim_span_s\": {}}}",
                    escape(&p.name),
                    p.count,
                    fmt_f64(p.wall_s),
                    fmt_f64(p.sim_span_s)
                )
            })
            .collect::<Vec<_>>()
            .join(",\n");
        let events = self
            .events
            .iter()
            .map(|e| format!("      {}", event_to_json(e)))
            .collect::<Vec<_>>()
            .join(",\n");
        format!(
            "{{\n  \"version\": {},\n  \"meta\": {{\n{}\n  }},\n  \"counters\": {{\n{}\n  }},\n  \
             \"gauges\": {{\n{}\n  }},\n  \"values\": {{\n{}\n  }},\n  \"phases\": [\n{}\n  ],\n  \
             \"events\": {{\n    \"dropped\": {},\n    \"entries\": [\n{}\n    ]\n  }}\n}}\n",
            SCHEMA_VERSION,
            meta,
            kv_u64(&self.counters),
            kv_u64(&self.gauges),
            values,
            phases,
            self.events_dropped,
            events
        )
    }

    /// Parses a document back from its JSON form.
    ///
    /// Rejects unknown schema versions and malformed events, so a drifted
    /// writer fails loudly instead of round-tripping garbage.
    pub fn from_json(text: &str) -> Result<Document, String> {
        let v = json::parse(text)?;
        let version = v
            .get("version")
            .and_then(Value::as_u64)
            .ok_or("missing version")?;
        if version != SCHEMA_VERSION {
            return Err(format!("unsupported schema version {version}"));
        }
        let str_map = |key: &str| -> Result<BTreeMap<String, String>, String> {
            let obj = v.get(key).and_then(Value::as_obj).ok_or("missing map")?;
            obj.iter()
                .map(|(k, val)| {
                    val.as_str()
                        .map(|s| (k.clone(), s.to_string()))
                        .ok_or_else(|| format!("{key}.{k} is not a string"))
                })
                .collect()
        };
        let u64_map = |key: &str| -> Result<BTreeMap<String, u64>, String> {
            let obj = v
                .get(key)
                .and_then(Value::as_obj)
                .ok_or_else(|| format!("missing {key}"))?;
            obj.iter()
                .map(|(k, val)| {
                    val.as_u64()
                        .map(|n| (k.clone(), n))
                        .ok_or_else(|| format!("{key}.{k} is not a u64"))
                })
                .collect()
        };
        let values_obj = v
            .get("values")
            .and_then(Value::as_obj)
            .ok_or("missing values")?;
        let values = values_obj
            .iter()
            .map(|(k, val)| {
                val.as_f64()
                    .map(|x| (k.clone(), x))
                    .ok_or_else(|| format!("values.{k} is not a number"))
            })
            .collect::<Result<_, _>>()?;
        let phases = v
            .get("phases")
            .and_then(Value::as_arr)
            .ok_or("missing phases")?
            .iter()
            .map(|p| {
                Ok(PhaseRecord {
                    name: p
                        .get("name")
                        .and_then(Value::as_str)
                        .ok_or("phase without name")?
                        .to_string(),
                    count: p
                        .get("count")
                        .and_then(Value::as_u64)
                        .ok_or("phase count")?,
                    wall_s: p
                        .get("wall_s")
                        .and_then(Value::as_f64)
                        .ok_or("phase wall")?,
                    sim_span_s: p
                        .get("sim_span_s")
                        .and_then(Value::as_f64)
                        .ok_or("phase sim span")?,
                })
            })
            .collect::<Result<Vec<_>, String>>()?;
        let events_obj = v.get("events").ok_or("missing events")?;
        let events_dropped = events_obj
            .get("dropped")
            .and_then(Value::as_u64)
            .ok_or("missing events.dropped")?;
        let events = events_obj
            .get("entries")
            .and_then(Value::as_arr)
            .ok_or("missing events.entries")?
            .iter()
            .map(event_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Document {
            meta: str_map("meta")?,
            counters: u64_map("counters")?,
            gauges: u64_map("gauges")?,
            values,
            phases,
            events_dropped,
            events,
        })
    }

    /// Folds the documents of a segmented (checkpoint/resume) run into
    /// the one document the run would have produced in a single process:
    /// counters and `events_dropped` sum, gauges keep their high-water
    /// maximum, `meta`/`values` take the latest segment's word, phases
    /// aggregate by name, and the event journals concatenate into one
    /// stream re-sorted by simulated time (stable, so same-time events
    /// keep segment order) with `seq` renumbered globally.
    ///
    /// Merging a single document is the identity up to `seq` renumbering,
    /// so `merge_segments(&[continuous])` is the canonical form to diff a
    /// merged split run against.
    pub fn merge_segments(segments: &[Document]) -> Document {
        let mut out = Document::default();
        for seg in segments {
            for (k, v) in &seg.meta {
                out.meta.insert(k.clone(), v.clone());
            }
            for (k, v) in &seg.counters {
                *out.counters.entry(k.clone()).or_insert(0) += v;
            }
            for (k, v) in &seg.gauges {
                let slot = out.gauges.entry(k.clone()).or_insert(0);
                *slot = (*slot).max(*v);
            }
            for (k, v) in &seg.values {
                out.values.insert(k.clone(), *v);
            }
            for p in &seg.phases {
                match out.phases.iter_mut().find(|q| q.name == p.name) {
                    Some(q) => {
                        q.count += p.count;
                        q.wall_s += p.wall_s;
                        q.sim_span_s += p.sim_span_s;
                    }
                    None => out.phases.push(p.clone()),
                }
            }
            out.events_dropped += seg.events_dropped;
            out.events.extend(seg.events.iter().cloned());
        }
        out.phases.sort_by(|a, b| a.name.cmp(&b.name));
        out.events.sort_by(|a, b| a.t_s.total_cmp(&b.t_s));
        for (i, e) in out.events.iter_mut().enumerate() {
            e.seq = i as u64;
        }
        out
    }
}

fn event_to_json(e: &Event) -> String {
    let payload = match &e.kind {
        EventKind::ScrubProbe {
            addr,
            persistent_bits,
            clean,
            energy_pj,
        } => format!(
            "\"addr\": {addr}, \"persistent_bits\": {persistent_bits}, \"clean\": {clean}, \
             \"energy_pj\": {}",
            fmt_f64(*energy_pj)
        ),
        EventKind::Corrected { addr, bits, demand } => {
            format!("\"addr\": {addr}, \"bits\": {bits}, \"demand\": {demand}")
        }
        EventKind::Uncorrectable {
            addr,
            demand,
            miscorrected,
        } => format!("\"addr\": {addr}, \"demand\": {demand}, \"miscorrected\": {miscorrected}"),
        EventKind::ScrubWriteback { addr, energy_pj } => {
            format!("\"addr\": {addr}, \"energy_pj\": {}", fmt_f64(*energy_pj))
        }
        EventKind::DemandWrite { addr, energy_pj } => {
            format!("\"addr\": {addr}, \"energy_pj\": {}", fmt_f64(*energy_pj))
        }
        EventKind::WritebackDecision {
            addr,
            observed_bits,
            fired,
            forced,
        } => format!(
            "\"addr\": {addr}, \"observed_bits\": {observed_bits}, \"fired\": {fired}, \
             \"forced\": {forced}"
        ),
        EventKind::RateChange {
            region,
            mult,
            next_interval_s,
        } => format!(
            "\"region\": {region}, \"mult\": {}, \"next_interval_s\": {}",
            fmt_f64(*mult),
            fmt_f64(*next_interval_s)
        ),
        EventKind::DemandWriteNotify { addr } => format!("\"addr\": {addr}"),
        EventKind::WearLevelRotate { addr } => format!("\"addr\": {addr}"),
        EventKind::ExecWorker {
            worker,
            tasks,
            steals,
        } => format!("\"worker_id\": {worker}, \"tasks\": {tasks}, \"steals\": {steals}"),
        EventKind::SimDone {
            policy,
            workload,
            seed,
            scrub_probes,
            scrub_writes,
            ue,
            demand_ue,
            scrub_energy_uj,
            mean_wear,
        } => format!(
            "\"policy\": \"{}\", \"workload\": \"{}\", \"seed\": {seed}, \
             \"scrub_probes\": {scrub_probes}, \"scrub_writes\": {scrub_writes}, \"ue\": {ue}, \
             \"demand_ue\": {demand_ue}, \"scrub_energy_uj\": {}, \"mean_wear\": {}",
            escape(policy),
            escape(workload),
            fmt_f64(*scrub_energy_uj),
            fmt_f64(*mean_wear)
        ),
        EventKind::EcpRepair {
            addr,
            cells_patched,
            free_after,
        } => format!(
            "\"addr\": {addr}, \"cells_patched\": {cells_patched}, \"free_after\": {free_after}"
        ),
        EventKind::LineRetired { addr, spare } => {
            format!("\"addr\": {addr}, \"spare\": {spare}")
        }
        EventKind::BankDegraded { bank } => format!("\"bank\": {bank}"),
        EventKind::UeRecovered { addr, demand } => {
            format!("\"addr\": {addr}, \"demand\": {demand}")
        }
        EventKind::CampaignBoundary { label } => {
            format!("\"label\": \"{}\"", escape(label))
        }
    };
    format!(
        "{{\"t_s\": {}, \"seq\": {}, \"worker\": {}, \"kind\": \"{}\", {payload}}}",
        fmt_f64(e.t_s),
        e.seq,
        e.worker,
        e.kind.tag()
    )
}

fn event_from_json(v: &Value) -> Result<Event, String> {
    let u64_of = |k: &str| v.get(k).and_then(Value::as_u64).ok_or(format!("event {k}"));
    let u32_of = |k: &str| u64_of(k).map(|n| n as u32);
    let f64_of = |k: &str| v.get(k).and_then(Value::as_f64).ok_or(format!("event {k}"));
    let bool_of = |k: &str| {
        v.get(k)
            .and_then(Value::as_bool)
            .ok_or(format!("event {k}"))
    };
    let str_of = |k: &str| {
        v.get(k)
            .and_then(Value::as_str)
            .map(str::to_string)
            .ok_or(format!("event {k}"))
    };
    let tag = str_of("kind")?;
    let kind = match tag.as_str() {
        "scrub_probe" => EventKind::ScrubProbe {
            addr: u32_of("addr")?,
            persistent_bits: u32_of("persistent_bits")?,
            clean: bool_of("clean")?,
            energy_pj: f64_of("energy_pj")?,
        },
        "corrected" => EventKind::Corrected {
            addr: u32_of("addr")?,
            bits: u32_of("bits")?,
            demand: bool_of("demand")?,
        },
        "uncorrectable" => EventKind::Uncorrectable {
            addr: u32_of("addr")?,
            demand: bool_of("demand")?,
            miscorrected: bool_of("miscorrected")?,
        },
        "scrub_writeback" => EventKind::ScrubWriteback {
            addr: u32_of("addr")?,
            energy_pj: f64_of("energy_pj")?,
        },
        "demand_write" => EventKind::DemandWrite {
            addr: u32_of("addr")?,
            energy_pj: f64_of("energy_pj")?,
        },
        "writeback_decision" => EventKind::WritebackDecision {
            addr: u32_of("addr")?,
            observed_bits: u32_of("observed_bits")?,
            fired: bool_of("fired")?,
            forced: bool_of("forced")?,
        },
        "rate_change" => EventKind::RateChange {
            region: u32_of("region")?,
            mult: f64_of("mult")?,
            next_interval_s: f64_of("next_interval_s")?,
        },
        "demand_write_notify" => EventKind::DemandWriteNotify {
            addr: u32_of("addr")?,
        },
        "wear_level_rotate" => EventKind::WearLevelRotate {
            addr: u32_of("addr")?,
        },
        "exec_worker" => EventKind::ExecWorker {
            worker: u32_of("worker_id")?,
            tasks: u64_of("tasks")?,
            steals: u64_of("steals")?,
        },
        "sim_done" => EventKind::SimDone {
            policy: str_of("policy")?,
            workload: str_of("workload")?,
            seed: u64_of("seed")?,
            scrub_probes: u64_of("scrub_probes")?,
            scrub_writes: u64_of("scrub_writes")?,
            ue: u64_of("ue")?,
            demand_ue: u64_of("demand_ue")?,
            scrub_energy_uj: f64_of("scrub_energy_uj")?,
            mean_wear: f64_of("mean_wear")?,
        },
        "ecp_repair" => EventKind::EcpRepair {
            addr: u32_of("addr")?,
            cells_patched: u32_of("cells_patched")?,
            free_after: u32_of("free_after")?,
        },
        "line_retired" => EventKind::LineRetired {
            addr: u32_of("addr")?,
            spare: u32_of("spare")?,
        },
        "bank_degraded" => EventKind::BankDegraded {
            bank: u32_of("bank")?,
        },
        "ue_recovered" => EventKind::UeRecovered {
            addr: u32_of("addr")?,
            demand: bool_of("demand")?,
        },
        "campaign_boundary" => EventKind::CampaignBoundary {
            label: str_of("label")?,
        },
        other => return Err(format!("unknown event kind {other:?}")),
    };
    Ok(Event {
        t_s: f64_of("t_s")?,
        seq: u64_of("seq")?,
        worker: u32_of("worker")?,
        kind,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_doc() -> Document {
        let mut doc = Document::default();
        doc.meta.insert("experiment".into(), "e6".into());
        doc.counters.insert("scrub_probes".into(), 12345);
        doc.counters.insert("scrub_writebacks".into(), 67);
        doc.gauges.insert("exec_jobs_high_water".into(), 16);
        doc.values.insert("e6.basic.ue".into(), 4506.375);
        doc.phases.push(PhaseRecord {
            name: "e6.basic_suite".into(),
            count: 1,
            wall_s: 1.25,
            sim_span_s: 43_200.0,
        });
        doc.events_dropped = 3;
        doc.events = vec![
            Event {
                t_s: 900.0,
                seq: 0,
                worker: 0,
                kind: EventKind::ScrubProbe {
                    addr: 17,
                    persistent_bits: 2,
                    clean: false,
                    energy_pj: 41.5,
                },
            },
            Event {
                t_s: 901.0,
                seq: 1,
                worker: 0,
                kind: EventKind::WritebackDecision {
                    addr: 17,
                    observed_bits: 2,
                    fired: false,
                    forced: false,
                },
            },
            Event {
                t_s: 43_200.0,
                seq: 2,
                worker: 1,
                kind: EventKind::SimDone {
                    policy: "combined(i=900s)".into(),
                    workload: "db-oltp".into(),
                    seed: 0xE6,
                    scrub_probes: 12345,
                    scrub_writes: 67,
                    ue: 2,
                    demand_ue: 1,
                    scrub_energy_uj: 12.3456789,
                    mean_wear: 1.0625,
                },
            },
        ];
        doc
    }

    #[test]
    fn document_round_trips_through_json() {
        let doc = sample_doc();
        let text = doc.to_json();
        let back = Document::from_json(&text).expect("round trip parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn every_event_kind_round_trips() {
        let kinds = vec![
            EventKind::Corrected {
                addr: 1,
                bits: 2,
                demand: true,
            },
            EventKind::Uncorrectable {
                addr: 3,
                demand: false,
                miscorrected: true,
            },
            EventKind::ScrubWriteback {
                addr: 4,
                energy_pj: 1000.5,
            },
            EventKind::DemandWrite {
                addr: 5,
                energy_pj: 0.25,
            },
            EventKind::RateChange {
                region: 6,
                mult: 0.5,
                next_interval_s: 450.0,
            },
            EventKind::DemandWriteNotify { addr: 7 },
            EventKind::WearLevelRotate { addr: 8 },
            EventKind::ExecWorker {
                worker: 2,
                tasks: 100,
                steals: 7,
            },
            EventKind::EcpRepair {
                addr: 9,
                cells_patched: 3,
                free_after: 1,
            },
            EventKind::LineRetired { addr: 10, spare: 2 },
            EventKind::BankDegraded { bank: 1 },
            EventKind::UeRecovered {
                addr: 11,
                demand: true,
            },
        ];
        let doc = Document {
            events: kinds
                .into_iter()
                .enumerate()
                .map(|(i, kind)| Event {
                    t_s: i as f64,
                    seq: i as u64,
                    worker: 0,
                    kind,
                })
                .collect(),
            ..Document::default()
        };
        let back = Document::from_json(&doc.to_json()).expect("parses");
        assert_eq!(back, doc);
    }

    #[test]
    fn schema_has_required_top_level_keys() {
        let text = sample_doc().to_json();
        let v = crate::json::parse(&text).unwrap();
        for key in ["version", "counters", "phases", "events"] {
            assert!(v.get(key).is_some(), "missing required key {key}");
        }
        assert_eq!(v.get("version").unwrap().as_u64(), Some(SCHEMA_VERSION));
        assert!(v.get("events").unwrap().get("dropped").is_some());
    }

    #[test]
    fn merge_of_one_document_is_identity_up_to_seq() {
        let doc = sample_doc();
        let merged = Document::merge_segments(std::slice::from_ref(&doc));
        // sample_doc's events are already time-ordered with seq 0..n.
        assert_eq!(merged, doc);
    }

    #[test]
    fn merge_sums_counters_maxes_gauges_and_interleaves_events() {
        let mut a = Document::default();
        a.meta.insert("experiment".into(), "e13".into());
        a.counters.insert("scrub_probes".into(), 100);
        a.gauges.insert("exec_jobs_high_water".into(), 8);
        a.values.insert("x".into(), 1.0);
        a.phases.push(PhaseRecord {
            name: "exp.e13".into(),
            count: 1,
            wall_s: 2.0,
            sim_span_s: 100.0,
        });
        a.events_dropped = 1;
        a.events.push(Event {
            t_s: 5.0,
            seq: 0,
            worker: 0,
            kind: EventKind::WearLevelRotate { addr: 1 },
        });
        let mut b = Document::default();
        b.counters.insert("scrub_probes".into(), 50);
        b.counters.insert("demand_reads".into(), 7);
        b.gauges.insert("exec_jobs_high_water".into(), 4);
        b.values.insert("x".into(), 2.0);
        b.phases.push(PhaseRecord {
            name: "exp.e13".into(),
            count: 1,
            wall_s: 3.0,
            sim_span_s: 200.0,
        });
        b.events_dropped = 2;
        b.events.push(Event {
            t_s: 2.0,
            seq: 0,
            worker: 1,
            kind: EventKind::WearLevelRotate { addr: 2 },
        });
        let merged = Document::merge_segments(&[a, b]);
        assert_eq!(merged.counters["scrub_probes"], 150);
        assert_eq!(merged.counters["demand_reads"], 7);
        assert_eq!(merged.gauges["exec_jobs_high_water"], 8);
        assert_eq!(merged.values["x"], 2.0, "later segment wins");
        assert_eq!(merged.phases.len(), 1);
        assert_eq!(merged.phases[0].count, 2);
        assert_eq!(merged.phases[0].wall_s, 5.0);
        assert_eq!(merged.events_dropped, 3);
        // Events re-sorted by time, seq renumbered globally.
        assert_eq!(merged.events[0].t_s, 2.0);
        assert_eq!(merged.events[0].seq, 0);
        assert_eq!(merged.events[1].t_s, 5.0);
        assert_eq!(merged.events[1].seq, 1);
    }

    #[test]
    fn rejects_future_schema_version() {
        let text = sample_doc().to_json().replace(
            &format!("\"version\": {SCHEMA_VERSION}"),
            "\"version\": 999",
        );
        assert!(Document::from_json(&text).is_err());
    }
}
