//! Minimal JSON support for the telemetry document: an emitter producing
//! the versioned schema and a small recursive-descent parser so documents
//! round-trip in tests and downstream tooling without external crates.
//!
//! Numbers are written with Rust's shortest-round-trip float formatting,
//! so every finite `f64` survives emit → parse bit-for-bit. Non-finite
//! values are emitted as `null` and parse back as NaN.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also the emitted form of non-finite numbers).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; key order is preserved by the sorted map.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            Value::Null => Some(f64::NAN),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is a whole number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an object, if it is one.
    pub fn as_obj(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Looks up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_obj().and_then(|m| m.get(key))
    }
}

/// Escapes a string into a JSON string literal (without quotes).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders one f64 as JSON: shortest-round-trip for finite values, `null`
/// otherwise.
pub fn fmt_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Parses a JSON text into a [`Value`].
///
/// Supports the full JSON grammar the emitter produces: objects, arrays,
/// strings with the common escapes (incl. `\uXXXX`), numbers, booleans,
/// and null. Trailing garbage is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected '{}' at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                other => return Err(format!("expected ',' or '}}', found {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => return Err(format!("expected ',' or ']', found {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("bad utf-8 in string: {e}"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|_| "bad \\u escape")?,
                                16,
                            )
                            .map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                other => return Err(format!("unterminated string, found {other:?}")),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, 2.5, "x\n", true, null], "b": {"c": -3e2}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_f64(), Some(-300.0));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(arr[3].as_bool(), Some(true));
        assert_eq!(arr[4], Value::Null);
    }

    #[test]
    fn rejects_trailing_garbage_and_bad_syntax() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\": }").is_err());
        assert!(parse("[1, 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn floats_round_trip_exactly() {
        for x in [
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1.23456789012345e300,
            -0.0,
            41.39401363,
        ] {
            let text = fmt_f64(x);
            let back = parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{text}");
        }
    }

    #[test]
    fn escape_round_trips() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let text = format!("\"{}\"", escape(s));
        assert_eq!(parse(&text).unwrap().as_str(), Some(s));
    }
}
