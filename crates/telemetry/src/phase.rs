//! RAII phase scopes: wrap a region of work in a named scope and its
//! wall-clock duration (plus an optional simulated-time span) is folded
//! into the collector when the scope drops. Disabled recorders hand out
//! inert scopes that never touch a clock.

use std::time::Instant;

/// Aggregate for one phase name across all of its scopes.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub(crate) struct PhaseAgg {
    pub count: u64,
    pub wall_s: f64,
    pub sim_span_s: f64,
}

/// A live phase scope. Create via [`crate::phase`]; the measurement is
/// committed when the scope is dropped.
#[derive(Debug)]
pub struct PhaseScope {
    name: Option<String>,
    start: Option<Instant>,
    sim_span_s: f64,
}

impl PhaseScope {
    /// A scope that records nothing (telemetry disabled).
    pub(crate) fn inert() -> Self {
        Self {
            name: None,
            start: None,
            sim_span_s: 0.0,
        }
    }

    /// A scope that will commit under `name` on drop.
    pub(crate) fn live(name: String) -> Self {
        Self {
            name: Some(name),
            start: Some(Instant::now()),
            sim_span_s: 0.0,
        }
    }

    /// Attributes `span_s` seconds of simulated time to this scope
    /// (accumulates across calls within one scope).
    pub fn add_sim_span(&mut self, span_s: f64) {
        if self.name.is_some() {
            self.sim_span_s += span_s;
        }
    }
}

impl Drop for PhaseScope {
    fn drop(&mut self) {
        if let Some(name) = self.name.take() {
            let wall_s = self.start.map(|t| t.elapsed().as_secs_f64()).unwrap_or(0.0);
            crate::record_phase(&name, wall_s, self.sim_span_s);
        }
    }
}
