//! Negative-path codec tests: what the decoders do with errors *beyond*
//! their guarantees. A bounded-distance BCH decoder faced with t+1 errors
//! must overwhelmingly reject (`Uncorrectable`), aliasing into a silent
//! miscorrection only at the combinatorial rate the statistical layer
//! models (`CodeSpec::alias_prob`). The CRC-32 detector must catch every
//! burst up to its 32-bit guarantee, whatever the burst's interior.

use pcm_ecc::{BchCode, BitBuf, CodeSpec, Crc32, DecodeOutcome, LineCode, RsCode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Flips `count` distinct random positions of `cw`, returning them.
fn flip_random(cw: &mut BitBuf, count: usize, rng: &mut StdRng) -> Vec<usize> {
    let n = cw.len();
    let mut picked = Vec::with_capacity(count);
    while picked.len() < count {
        let i = rng.gen_range(0..n);
        if !picked.contains(&i) {
            picked.push(i);
            cw.flip(i);
        }
    }
    picked
}

fn random_data(bits: usize, rng: &mut StdRng) -> BitBuf {
    let mut data = BitBuf::zeros(bits);
    for i in 0..bits {
        if rng.gen_bool(0.5) {
            data.set(i, true);
        }
    }
    data
}

/// t+1 random errors: the decoder must reject, except for the rare alias
/// into another codeword's correction sphere — and even then it must
/// report a plausible correction (≤ t bits), never a clean line.
fn bch_overload_rejects(m: u32, t: u32, data_bits: usize, trials: u32, seed: u64) {
    let code = BchCode::new(m, t, data_bits);
    let spec = CodeSpec::bch_line(t);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut miscorrections = 0u32;
    for _ in 0..trials {
        let data = random_data(data_bits, &mut rng);
        let clean = code.encode(&data);
        let mut received = clean.clone();
        flip_random(&mut received, t as usize + 1, &mut rng);
        match code.decode(&mut received) {
            DecodeOutcome::Uncorrectable => {}
            DecodeOutcome::Clean => {
                panic!("decoder called a corrupted word clean (t = {t})")
            }
            DecodeOutcome::Corrected { bits } => {
                // Aliased into a different codeword: must have "corrected"
                // within its bounded distance, and must NOT have silently
                // restored the original data (that would mean it fixed
                // t+1 errors, beyond the guaranteed radius in a way
                // bounded-distance decoding cannot).
                assert!(bits <= t, "claimed {bits} corrections with capability {t}");
                assert_ne!(
                    code.extract_data(&received).to_bools(),
                    data.to_bools(),
                    "decoder claimed to correct t+1 = {} errors",
                    t + 1
                );
                miscorrections += 1;
            }
        }
    }
    // The statistical layer models aliasing as `alias_prob` per
    // uncorrectable pattern. The measured rate must be consistent with
    // that bound: allow 3 binomial sigmas plus a unit of slack so the
    // test has teeth (a decoder miscorrecting even a few percent of
    // overload patterns fails) without flaking.
    let p_bound = spec.alias_prob();
    let limit =
        trials as f64 * p_bound + 3.0 * (trials as f64 * p_bound * (1.0 - p_bound)).sqrt() + 1.0;
    assert!(
        (miscorrections as f64) <= limit,
        "BCH-{t}: {miscorrections}/{trials} miscorrections exceeds alias \
         bound {p_bound:.2e} (limit {limit:.1})"
    );
}

#[test]
fn bch4_rejects_overload_patterns() {
    bch_overload_rejects(10, 4, 512, 600, 0xB04);
}

#[test]
fn bch2_rejects_overload_patterns() {
    bch_overload_rejects(10, 2, 512, 600, 0xB02);
}

#[test]
fn bch6_rejects_overload_patterns() {
    bch_overload_rejects(10, 6, 512, 400, 0xB06);
}

/// Exhaustive small-field overload sweep: RS(7,3) over GF(2^3) corrects
/// t = 2 symbols. Every pattern of exactly 3 symbol errors — all C(7,3)
/// position triples × all 7³ nonzero value combinations — must be
/// rejected or alias into a *different* codeword's sphere (≤ t claimed
/// corrections, data ≠ original). Never `Clean`, never a silent return of
/// the original data (that would mean it corrected t+1 errors, beyond the
/// bounded-distance radius).
#[test]
fn rs_small_field_overload_exhaustive() {
    let code = RsCode::new(3, 7, 3);
    let spec_alias = {
        // Same combinatorial bound CodeSpec uses: correctable-coset
        // coverage of the syndrome space.
        let covered: f64 = (0..=2u32)
            .map(|i| {
                let choose = match i {
                    0 => 1.0,
                    1 => 7.0,
                    _ => 21.0,
                };
                choose * 7f64.powi(i as i32)
            })
            .sum();
        covered / 2f64.powi(12)
    };
    let mut rng = StdRng::seed_from_u64(0x2503);
    for _ in 0..4 {
        let data: Vec<u16> = (0..3).map(|_| rng.gen_range(0..8u16)).collect();
        let clean = code.encode_symbols(&data);
        let mut trials = 0u64;
        let mut miscorrections = 0u64;
        for a in 0..7usize {
            for b in (a + 1)..7 {
                for c in (b + 1)..7 {
                    for va in 1..8u16 {
                        for vb in 1..8u16 {
                            for vc in 1..8u16 {
                                let mut cw = clean.clone();
                                cw[a] ^= va;
                                cw[b] ^= vb;
                                cw[c] ^= vc;
                                trials += 1;
                                match code.decode_symbols(&mut cw) {
                                    None => {}
                                    Some(0) => {
                                        panic!("3 symbol errors at ({a},{b},{c}) decoded as clean")
                                    }
                                    Some(e) => {
                                        assert!(e <= 2, "claimed {e} > t corrections");
                                        assert_ne!(
                                            &cw[4..],
                                            &data[..],
                                            "silently corrected t+1 errors at ({a},{b},{c})"
                                        );
                                        miscorrections += 1;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        assert_eq!(trials, 35 * 343);
        // The exhaustive miscorrection fraction must sit under the
        // coset-coverage bound (it's a subset of the covered patterns).
        let frac = miscorrections as f64 / trials as f64;
        assert!(
            frac <= spec_alias,
            "RS(7,3): miscorrection fraction {frac:.4} exceeds alias bound {spec_alias:.4}"
        );
        // And it must not be vacuously zero across the board — bounded
        // distance decoders *do* alias (sanity that the sweep has teeth).
        assert!(miscorrections > 0, "no aliasing in 12005 overload patterns");
    }
}

/// Exhaustive small-field positive complement: every pattern of ≤ t
/// symbol errors on RS(7,3) must be corrected back to the original data.
#[test]
fn rs_small_field_corrects_all_within_t() {
    let code = RsCode::new(3, 7, 3);
    let mut rng = StdRng::seed_from_u64(0x2504);
    let data: Vec<u16> = (0..3).map(|_| rng.gen_range(0..8u16)).collect();
    let clean = code.encode_symbols(&data);
    let mut trials = 0u64;
    for a in 0..7usize {
        for va in 1..8u16 {
            let mut cw = clean.clone();
            cw[a] ^= va;
            assert_eq!(code.decode_symbols(&mut cw), Some(1), "single at {a}");
            assert_eq!(&cw[4..], &data[..]);
            trials += 1;
            for b in (a + 1)..7 {
                for vb in 1..8u16 {
                    let mut cw = clean.clone();
                    cw[a] ^= va;
                    cw[b] ^= vb;
                    assert_eq!(code.decode_symbols(&mut cw), Some(2), "double ({a},{b})");
                    assert_eq!(&cw[4..], &data[..]);
                    trials += 1;
                }
            }
        }
    }
    assert_eq!(trials, 7 * 7 + 21 * 49);
}

/// Burst-span guarantee, mirroring the CRC sweep: RS(72,64) (t = 4 eight-
/// bit symbols) must correct *every* contiguous burst of up to
/// (t−1)·8 + 1 = 25 bits with arbitrary interior, at every alignment —
/// such a span touches at most t symbols regardless of phase.
#[test]
fn rs_corrects_all_bursts_within_symbol_guarantee() {
    let code = RsCode::new(8, 72, 64);
    let mut rng = StdRng::seed_from_u64(0x2505);
    let mut data = BitBuf::zeros(512);
    for i in 0..512 {
        if rng.gen_bool(0.5) {
            data.set(i, true);
        }
    }
    let clean = code.encode(&data);
    let len = clean.len();
    let mut checked = 0u64;
    for burst_len in [1usize, 2, 8, 9, 17, 24, 25] {
        for start in 0..=(len - burst_len) {
            let mut corrupted = clean.clone();
            corrupted.flip(start);
            if burst_len > 1 {
                corrupted.flip(start + burst_len - 1);
                for i in 1..burst_len - 1 {
                    if rng.gen_bool(0.5) {
                        corrupted.flip(start + i);
                    }
                }
            }
            match code.decode(&mut corrupted) {
                DecodeOutcome::Corrected { .. } => {}
                other => panic!("RS missed a {burst_len}-bit burst at {start}: {other:?}"),
            }
            assert_eq!(
                code.extract_data(&corrupted),
                data,
                "{burst_len}-bit burst at {start} corrected to wrong data"
            );
            checked += 1;
        }
    }
    assert!(checked > 3500, "sweep unexpectedly small: {checked}");
}

/// Bursts spanning more than t symbols must never decode as clean or
/// silently restore the original data — the same no-silent-miscorrect
/// contract the BCH overload sweep pins.
#[test]
fn rs_wide_bursts_never_silently_pass() {
    let code = RsCode::new(8, 72, 64);
    let mut rng = StdRng::seed_from_u64(0x2506);
    let mut data = BitBuf::zeros(512);
    for i in 0..512 {
        if rng.gen_bool(0.5) {
            data.set(i, true);
        }
    }
    let clean = code.encode(&data);
    let len = clean.len();
    for _ in 0..500 {
        // ≥ 33 bits guarantees > 4 touched symbols at any alignment; flip
        // at least one bit in every symbol the span covers.
        let burst_len = rng.gen_range(41..120usize);
        let start = rng.gen_range(0..=(len - burst_len));
        let mut corrupted = clean.clone();
        for sym in start / 8..=(start + burst_len - 1) / 8 {
            corrupted.flip(sym * 8 + rng.gen_range(0..8));
        }
        match code.decode(&mut corrupted) {
            DecodeOutcome::Uncorrectable => {}
            DecodeOutcome::Clean => panic!("wide burst at {start} decoded as clean"),
            DecodeOutcome::Corrected { .. } => {
                assert_ne!(
                    code.extract_data(&corrupted),
                    data,
                    "silently corrected a {burst_len}-bit burst"
                );
            }
        }
    }
}

/// Exhaustive burst sweep: every (start, length ≤ 32) burst with random
/// interior bits must change the CRC-32 checksum. This is the algebraic
/// guarantee the CRC-first probe path (DESIGN.md "CRC-first probes")
/// leans on: a degree-32 polynomial detects any single burst of length
/// ≤ 32 with certainty, not just with probability 1 − 2⁻³².
#[test]
fn crc32_detects_all_single_bursts_within_guarantee() {
    let crc = Crc32::new();
    let len = 544; // a BCH-ish codeword length, not byte-aligned phases
    let mut rng = StdRng::seed_from_u64(0xC4C);
    let message = random_data(len, &mut rng);
    let stored = crc.checksum(&message);
    let mut checked = 0u64;
    for burst_len in 1..=32usize {
        for start in 0..=(len - burst_len) {
            let mut corrupted = message.clone();
            // A burst of length L flips its two endpoints (defining the
            // span) and an arbitrary interior pattern.
            corrupted.flip(start);
            if burst_len > 1 {
                corrupted.flip(start + burst_len - 1);
                for i in 1..burst_len - 1 {
                    if rng.gen_bool(0.5) {
                        corrupted.flip(start + i);
                    }
                }
            }
            assert!(
                !crc.verify(&corrupted, stored),
                "CRC-32 missed a {burst_len}-bit burst at {start}"
            );
            checked += 1;
        }
    }
    assert!(checked > 16_000, "sweep unexpectedly small: {checked}");
}

/// Bursts *beyond* the guarantee are only probabilistically detected —
/// sanity-check the detector still catches nearly all of them (the
/// residual rate is ~2⁻³², far below what this sample could hit).
#[test]
fn crc32_still_catches_wide_random_bursts() {
    let crc = Crc32::new();
    let len = 544;
    let mut rng = StdRng::seed_from_u64(0xC4D);
    let message = random_data(len, &mut rng);
    let stored = crc.checksum(&message);
    for _ in 0..2000 {
        let burst_len = rng.gen_range(33..200usize);
        let start = rng.gen_range(0..=(len - burst_len));
        let mut corrupted = message.clone();
        corrupted.flip(start);
        corrupted.flip(start + burst_len - 1);
        for i in 1..burst_len - 1 {
            if rng.gen_bool(0.5) {
                corrupted.flip(start + i);
            }
        }
        assert!(
            !crc.verify(&corrupted, stored),
            "CRC-32 missed a {burst_len}-bit burst at {start} (p ~ 2^-32 event: suspicious)"
        );
    }
}
