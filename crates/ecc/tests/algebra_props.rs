//! Property-based tests of the finite-field and polynomial algebra the
//! BCH codec rests on.

use proptest::prelude::*;

use pcm_ecc::{BinPoly, GfPoly, GfTable};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Field axioms on random triples for a mid-sized field.
    #[test]
    fn gf_field_axioms(a in 0u16..1024, b in 0u16..1024, c in 0u16..1024) {
        let gf = GfTable::new(10);
        // Associativity and commutativity of multiplication.
        prop_assert_eq!(gf.mul(a, gf.mul(b, c)), gf.mul(gf.mul(a, b), c));
        prop_assert_eq!(gf.mul(a, b), gf.mul(b, a));
        // Distributivity.
        prop_assert_eq!(gf.mul(a, b ^ c), gf.mul(a, b) ^ gf.mul(a, c));
        // Multiplicative inverses.
        if a != 0 {
            prop_assert_eq!(gf.mul(a, gf.inv(a)), 1);
            prop_assert_eq!(gf.div(gf.mul(a, b), a), b);
        }
    }

    /// Frobenius: squaring is a field automorphism in characteristic 2.
    #[test]
    fn gf_frobenius(a in 0u16..256, b in 0u16..256) {
        let gf = GfTable::new(8);
        let sq = |x: u16| gf.mul(x, x);
        prop_assert_eq!(sq(a ^ b), sq(a) ^ sq(b));
    }

    /// Binary polynomial ring laws on random supports.
    #[test]
    fn binpoly_ring_laws(
        xs in proptest::collection::vec(0usize..128, 0..12),
        ys in proptest::collection::vec(0usize..128, 0..12),
        zs in proptest::collection::vec(0usize..64, 1..8),
    ) {
        let a = BinPoly::from_coeffs(&xs);
        let b = BinPoly::from_coeffs(&ys);
        let d = BinPoly::from_coeffs(&zs);
        // Addition is commutative and self-inverse.
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert!(a.add(&a).is_zero());
        // Multiplication commutes and distributes.
        prop_assert_eq!(a.mul(&b), b.mul(&a));
        prop_assert_eq!(a.mul(&b.add(&d)), a.mul(&b).add(&a.mul(&d)));
    }

    /// Division law: (q·d + r) mod d == r mod d.
    #[test]
    fn binpoly_remainder_law(
        qs in proptest::collection::vec(0usize..100, 0..10),
        ds in proptest::collection::vec(0usize..40, 1..8),
        rs in proptest::collection::vec(0usize..39, 0..6),
    ) {
        let q = BinPoly::from_coeffs(&qs);
        let d = BinPoly::from_coeffs(&ds);
        prop_assume!(!d.is_zero());
        let r = BinPoly::from_coeffs(&rs);
        let p = q.mul(&d).add(&r);
        prop_assert_eq!(p.rem(&d), r.rem(&d));
    }

    /// Evaluation is a ring homomorphism: (f·g)(x) = f(x)·g(x) and
    /// (f+g)(x) = f(x)+g(x).
    #[test]
    fn gfpoly_eval_homomorphism(
        fs in proptest::collection::vec(0u16..64, 0..6),
        gs in proptest::collection::vec(0u16..64, 0..6),
        x in 0u16..64,
    ) {
        let gf = GfTable::new(6);
        let f = GfPoly::from_coeffs(fs);
        let g = GfPoly::from_coeffs(gs);
        prop_assert_eq!(
            f.mul(&g, &gf).eval(x, &gf),
            gf.mul(f.eval(x, &gf), g.eval(x, &gf))
        );
        prop_assert_eq!(
            f.add(&g, &gf).eval(x, &gf),
            f.eval(x, &gf) ^ g.eval(x, &gf)
        );
    }
}
