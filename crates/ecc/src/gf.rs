//! Finite-field arithmetic over GF(2^m), 3 ≤ m ≤ 13, via log/antilog tables.

/// Primitive polynomials for GF(2^m), index = m (entries below 3 unused).
const PRIMITIVE_POLYS: [u32; 14] = [
    0, 0, 0, 0b1011, 0x13, 0x25, 0x43, 0x89, 0x11D, 0x211, 0x409, 0x805, 0x1053, 0x201B,
];

/// Arithmetic tables for GF(2^m).
///
/// Elements are represented as `u16` polynomial-basis values in
/// `0..2^m`; addition is XOR, multiplication goes through log/antilog
/// tables built from a primitive element α.
///
/// # Examples
///
/// ```
/// use pcm_ecc::GfTable;
/// let gf = GfTable::new(4);
/// let a = 0b0110;
/// let inv = gf.inv(a);
/// assert_eq!(gf.mul(a, inv), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfTable {
    m: u32,
    size: usize,
    /// `exp[i] = α^i`, doubled so `mul` skips a modulo.
    exp: Vec<u16>,
    /// `log[x]` for x in 1..2^m; log[0] is a sentinel.
    log: Vec<u32>,
}

impl GfTable {
    /// Builds tables for GF(2^m).
    ///
    /// # Panics
    ///
    /// Panics unless `3 <= m <= 13`.
    pub fn new(m: u32) -> Self {
        assert!(
            (3..=13).contains(&m),
            "GF(2^m) supported for m in 3..=13, got {m}"
        );
        let size = 1usize << m;
        let poly = PRIMITIVE_POLYS[m as usize];
        let order = size - 1;
        let mut exp = vec![0u16; 2 * order];
        let mut log = vec![0u32; size];
        let mut x = 1u32;
        // The exp table is doubled so alpha_pow can skip a modulo: fill
        // both halves in one pass.
        let (lo, hi) = exp.split_at_mut(order);
        for (i, (e_lo, e_hi)) in lo.iter_mut().zip(hi.iter_mut()).enumerate() {
            *e_lo = x as u16;
            *e_hi = x as u16;
            log[x as usize] = i as u32;
            x <<= 1;
            if x & (1 << m) != 0 {
                x ^= poly;
            }
        }
        Self { m, size, exp, log }
    }

    /// Field extension degree m.
    pub fn m(&self) -> u32 {
        self.m
    }

    /// Multiplicative order `2^m − 1`.
    pub fn order(&self) -> usize {
        self.size - 1
    }

    /// `α^i` for `i` taken modulo the group order.
    #[inline]
    pub fn alpha_pow(&self, i: usize) -> u16 {
        self.exp[i % self.order()]
    }

    /// Discrete log of a nonzero element.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    #[inline]
    pub fn log(&self, x: u16) -> u32 {
        assert!(x != 0, "log of zero");
        self.log[x as usize]
    }

    /// Field addition (= subtraction) is XOR.
    #[inline]
    pub fn add(&self, a: u16, b: u16) -> u16 {
        a ^ b
    }

    /// Field multiplication.
    #[inline]
    pub fn mul(&self, a: u16, b: u16) -> u16 {
        if a == 0 || b == 0 {
            0
        } else {
            self.exp[(self.log[a as usize] + self.log[b as usize]) as usize]
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics on zero.
    #[inline]
    pub fn inv(&self, a: u16) -> u16 {
        assert!(a != 0, "inverse of zero");
        self.exp[self.order() - self.log[a as usize] as usize]
    }

    /// Division `a / b`.
    ///
    /// # Panics
    ///
    /// Panics if `b == 0`.
    #[inline]
    pub fn div(&self, a: u16, b: u16) -> u16 {
        assert!(b != 0, "division by zero");
        if a == 0 {
            0
        } else {
            let diff = self.order() as u32 + self.log[a as usize] - self.log[b as usize];
            self.exp[(diff as usize) % self.order()]
        }
    }

    /// `a^e` with exponent reduced modulo the group order.
    pub fn pow(&self, a: u16, e: u64) -> u16 {
        if a == 0 {
            return if e == 0 { 1 } else { 0 };
        }
        let l = (self.log[a as usize] as u64 * (e % self.order() as u64)) % self.order() as u64;
        self.exp[l as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exp_log_roundtrip_all_ms() {
        for m in 3..=13u32 {
            let gf = GfTable::new(m);
            for x in 1..(1u32 << m) as u16 {
                assert_eq!(gf.alpha_pow(gf.log(x) as usize), x, "m={m} x={x}");
            }
        }
    }

    #[test]
    fn alpha_generates_whole_group() {
        // Primitivity check: α^i distinct for i < 2^m − 1.
        for m in [3u32, 8, 10, 13] {
            let gf = GfTable::new(m);
            let mut seen = vec![false; 1 << m];
            for i in 0..gf.order() {
                let v = gf.alpha_pow(i) as usize;
                assert!(!seen[v], "m={m}: repeat at i={i}");
                seen[v] = true;
            }
        }
    }

    #[test]
    fn mul_inverse_identity() {
        let gf = GfTable::new(10);
        for x in 1..1024u16 {
            assert_eq!(gf.mul(x, gf.inv(x)), 1, "x={x}");
        }
    }

    #[test]
    fn mul_is_commutative_and_distributive() {
        let gf = GfTable::new(6);
        for a in 0..64u16 {
            for b in 0..64u16 {
                assert_eq!(gf.mul(a, b), gf.mul(b, a));
                let c = 37;
                assert_eq!(
                    gf.mul(a, gf.add(b, c)),
                    gf.add(gf.mul(a, b), gf.mul(a, c)),
                    "a={a} b={b}"
                );
            }
        }
    }

    #[test]
    fn pow_matches_repeated_mul() {
        let gf = GfTable::new(8);
        let a = 0x53;
        let mut acc = 1u16;
        for e in 0..20u64 {
            assert_eq!(gf.pow(a, e), acc, "e={e}");
            acc = gf.mul(acc, a);
        }
    }

    #[test]
    fn div_roundtrip() {
        let gf = GfTable::new(5);
        for a in 0..32u16 {
            for b in 1..32u16 {
                assert_eq!(gf.mul(gf.div(a, b), b), a);
            }
        }
    }

    #[test]
    fn zero_absorbs() {
        let gf = GfTable::new(4);
        for x in 0..16u16 {
            assert_eq!(gf.mul(x, 0), 0);
        }
    }

    #[test]
    #[should_panic(expected = "inverse of zero")]
    fn inv_zero_panics() {
        GfTable::new(4).inv(0);
    }
}
