//! # pcm-ecc — error-correcting codes for memory lines
//!
//! The "strong ECC + lightweight error detection" substrate of the
//! HPCA 2012 scrub-mechanisms reproduction:
//!
//! * bit-exact codecs — [`BchCode`] (GF(2^m) arithmetic, generator
//!   construction from minimal polynomials, Berlekamp–Massey + Chien
//!   decoding) and [`Secded72`]/[`SecdedLine`] (extended Hamming, the
//!   DRAM-heritage baseline);
//! * the statistical [`CodeSpec`] layer the memory simulator uses on its
//!   hot path (count-level decode semantics, validated against the
//!   bit-exact codecs);
//! * lightweight detection — syndrome-only probes
//!   ([`LineCode::syndromes_clean`]) whose cost is a read plus a syndrome
//!   check, with no write-back.
//!
//! # Quick start
//!
//! ```
//! use pcm_ecc::{BchCode, BitBuf, DecodeOutcome, LineCode};
//!
//! let code = BchCode::new(10, 4, 512); // BCH-4 over a 64-byte line
//! let data = BitBuf::zeros(512);
//! let mut cw = code.encode(&data);
//! cw.flip(3);
//! cw.flip(77);
//! cw.flip(401);
//! assert_eq!(code.decode(&mut cw), DecodeOutcome::Corrected { bits: 3 });
//! ```

mod bch;
mod bits;
mod code;
mod crc;
mod gf;
mod hamming;
mod interleave;
mod poly;
mod rs;

pub use bch::BchCode;
pub use bits::BitBuf;
pub use code::{
    standard_code_ladder, symbol_occupancy_pmf, ClassifyOutcome, CodeSpec, CorrectionSemantics,
    DecodeOutcome, LineCode, LINE_DATA_BITS,
};
pub use crc::Crc32;
pub use gf::GfTable;
pub use hamming::{Secded72, SecdedLine};
pub use interleave::Interleaved;
pub use poly::{BinPoly, GfPoly};
pub use rs::RsCode;
