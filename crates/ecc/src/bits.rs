//! Compact bit buffer used for codewords and error patterns.

/// A fixed-length bit vector backed by `u64` words.
///
/// # Examples
///
/// ```
/// use pcm_ecc::BitBuf;
/// let mut b = BitBuf::zeros(130);
/// b.set(129, true);
/// assert!(b.get(129));
/// assert_eq!(b.count_ones(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BitBuf {
    words: Vec<u64>,
    len: usize,
}

impl BitBuf {
    /// An all-zero buffer of `len` bits.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// Builds a buffer from a boolean slice.
    pub fn from_bits(bits: &[bool]) -> Self {
        let mut b = Self::zeros(bits.len());
        for (i, &v) in bits.iter().enumerate() {
            if v {
                b.set(i, true);
            }
        }
        b
    }

    /// Builds a buffer of `len` bits from little-endian bytes.
    ///
    /// # Panics
    ///
    /// Panics if `bytes` holds fewer than `len` bits.
    pub fn from_bytes(bytes: &[u8], len: usize) -> Self {
        assert!(bytes.len() * 8 >= len, "byte slice shorter than len");
        let mut b = Self::zeros(len);
        for i in 0..len {
            if (bytes[i / 8] >> (i % 8)) & 1 == 1 {
                b.set(i, true);
            }
        }
        b
    }

    /// Length in bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the buffer has zero length.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Writes bit `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len`.
    #[inline]
    pub fn set(&mut self, i: usize, v: bool) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        let mask = 1u64 << (i % 64);
        if v {
            self.words[i / 64] |= mask;
        } else {
            self.words[i / 64] &= !mask;
        }
    }

    /// Flips bit `i`.
    pub fn flip(&mut self, i: usize) {
        assert!(i < self.len, "bit index {i} out of range {}", self.len);
        self.words[i / 64] ^= 1u64 << (i % 64);
    }

    /// XORs `other` into `self`.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn xor_with(&mut self, other: &BitBuf) {
        assert_eq!(self.len, other.len, "xor length mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Population count.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// Indices of set bits, ascending.
    pub fn ones(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                out.push(wi * 64 + b);
                bits &= bits - 1;
            }
        }
        out
    }

    /// Copies bits `[start, start+len)` into a new buffer.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds the buffer.
    pub fn slice(&self, start: usize, len: usize) -> BitBuf {
        assert!(start + len <= self.len, "slice out of range");
        let mut out = BitBuf::zeros(len);
        for i in 0..len {
            if self.get(start + i) {
                out.set(i, true);
            }
        }
        out
    }

    /// Fills a boolean vector with the bit values.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_roundtrip() {
        let mut b = BitBuf::zeros(200);
        for i in (0..200).step_by(7) {
            b.set(i, true);
        }
        for i in 0..200 {
            assert_eq!(b.get(i), i % 7 == 0);
        }
    }

    #[test]
    fn ones_enumeration() {
        let mut b = BitBuf::zeros(129);
        b.set(0, true);
        b.set(63, true);
        b.set(64, true);
        b.set(128, true);
        assert_eq!(b.ones(), vec![0, 63, 64, 128]);
        assert_eq!(b.count_ones(), 4);
    }

    #[test]
    fn xor_and_flip() {
        let mut a = BitBuf::zeros(70);
        let mut b = BitBuf::zeros(70);
        a.set(5, true);
        b.set(5, true);
        b.set(69, true);
        a.xor_with(&b);
        assert_eq!(a.ones(), vec![69]);
        a.flip(69);
        assert_eq!(a.count_ones(), 0);
    }

    #[test]
    fn slice_copies_range() {
        let mut b = BitBuf::zeros(100);
        b.set(10, true);
        b.set(20, true);
        let s = b.slice(10, 11);
        assert_eq!(s.ones(), vec![0, 10]);
    }

    #[test]
    fn bytes_roundtrip() {
        let bytes = [0b1010_0001u8, 0xFF];
        let b = BitBuf::from_bytes(&bytes, 12);
        assert!(b.get(0));
        assert!(!b.get(1));
        assert!(b.get(5));
        assert!(b.get(8) && b.get(11));
        assert_eq!(b.count_ones(), 3 + 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        BitBuf::zeros(10).get(10);
    }
}
