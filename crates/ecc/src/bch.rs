//! Bit-exact binary BCH codec: generator construction from minimal
//! polynomials, systematic encoding, and syndrome → Berlekamp–Massey →
//! Chien-search decoding. Supports shortened codes so a 512-bit memory
//! line plus `10·t` parity bits rides on GF(2^10).

use crate::bits::BitBuf;
use crate::code::{DecodeOutcome, LineCode};
use crate::gf::GfTable;
use crate::poly::{BinPoly, GfPoly};

/// Largest correction capability the stack-allocated decode path
/// supports. The scrub simulator's strongest line code is BCH-16.
const MAX_T: usize = 16;

/// Syndrome scratch: `2t` entries used.
type SyndBuf = [u16; 2 * MAX_T];

/// Error-locator scratch. Berlekamp–Massey keeps `deg σ ≤ n_iter + 1 ≤ 2t`
/// even on uncorrectable inputs (each update's shift term has degree
/// `deg(prev) + m_gap ≤ n_iter`), so `2·MAX_T + 1` coefficients suffice.
const SIGMA_LEN: usize = 2 * MAX_T + 1;

/// A (possibly shortened) binary BCH code over GF(2^m).
///
/// Codeword layout is systematic with parity in the low positions:
/// bit `i` is the coefficient of `x^i`; parity occupies `0..parity_bits`
/// and data occupies `parity_bits..n`.
///
/// # Examples
///
/// ```
/// use pcm_ecc::{BchCode, BitBuf, DecodeOutcome, LineCode};
/// let code = BchCode::new(10, 4, 512);
/// let mut data = BitBuf::zeros(512);
/// data.set(17, true);
/// let mut cw = code.encode(&data);
/// cw.flip(100);
/// cw.flip(333);
/// assert_eq!(code.decode(&mut cw), DecodeOutcome::Corrected { bits: 2 });
/// assert_eq!(code.extract_data(&cw), data);
/// ```
#[derive(Debug, Clone)]
pub struct BchCode {
    gf: GfTable,
    t: u32,
    /// Shortened code length (data + parity).
    n: usize,
    data_bits: usize,
    parity_bits: usize,
    gen: BinPoly,
}

impl BchCode {
    /// Constructs a `t`-error-correcting BCH code over GF(2^m), shortened
    /// to carry `data_bits` of payload.
    ///
    /// # Panics
    ///
    /// Panics if the field cannot host the requested payload
    /// (`data_bits + deg g > 2^m − 1`) or `t == 0`.
    pub fn new(m: u32, t: u32, data_bits: usize) -> Self {
        assert!(t >= 1, "BCH needs t >= 1");
        assert!(
            t as usize <= MAX_T,
            "BCH t={t} exceeds the decoder's stack scratch (MAX_T={MAX_T})"
        );
        let gf = GfTable::new(m);
        let n_full = gf.order();
        let gen = generator_poly(&gf, t);
        let parity_bits = gen.degree().expect("nonzero generator");
        assert!(
            data_bits + parity_bits <= n_full,
            "payload {data_bits} + parity {parity_bits} exceeds code length {n_full}"
        );
        Self {
            gf,
            t,
            n: data_bits + parity_bits,
            data_bits,
            parity_bits,
            gen,
        }
    }

    /// Codeword length in bits (shortened).
    pub fn n(&self) -> usize {
        self.n
    }

    /// Computes the 2t syndromes of a received word into stack scratch;
    /// returns `None` when all are zero (apparently clean). This is the
    /// decode hot path — every scrub probe lands here — so it must not
    /// touch the heap.
    fn syndromes(&self, recv: &BitBuf) -> Option<SyndBuf> {
        let mut synd: SyndBuf = [0; 2 * MAX_T];
        let two_t = 2 * self.t as usize;
        for pos in recv.ones() {
            for (j, s) in synd[..two_t].iter_mut().enumerate() {
                *s ^= self.gf.alpha_pow(pos * (j + 1));
            }
        }
        if synd[..two_t].iter().any(|&s| s != 0) {
            Some(synd)
        } else {
            None
        }
    }

    /// Berlekamp–Massey over fixed stack arrays: error-locator polynomial
    /// σ from syndromes, returned as `(coefficients, degree)`. σ(0) = 1
    /// always, so the degree is well defined. Bit-identical to the
    /// polynomial formulation (GF arithmetic is exact); allocation-free.
    fn berlekamp_massey(&self, synd: &[u16]) -> ([u16; SIGMA_LEN], usize) {
        let gf = &self.gf;
        let mut sigma = [0u16; SIGMA_LEN];
        let mut prev = [0u16; SIGMA_LEN];
        sigma[0] = 1;
        prev[0] = 1;
        let mut l = 0usize;
        let mut m_gap = 1usize;
        let mut b = 1u16;
        for n_iter in 0..synd.len() {
            let mut d = synd[n_iter];
            for i in 1..=l {
                d ^= gf.mul(sigma[i], synd[n_iter - i]);
            }
            if d == 0 {
                m_gap += 1;
                continue;
            }
            let scale = gf.div(d, b);
            // σ ← σ + scale · x^m_gap · prev, in place. The tail of `prev`
            // beyond SIGMA_LEN - m_gap is provably zero (see SIGMA_LEN).
            debug_assert!(prev[SIGMA_LEN - m_gap.min(SIGMA_LEN)..]
                .iter()
                .all(|&c| c == 0));
            if 2 * l <= n_iter {
                let old_sigma = sigma;
                for i in 0..SIGMA_LEN - m_gap {
                    sigma[i + m_gap] ^= gf.mul(prev[i], scale);
                }
                l = n_iter + 1 - l;
                prev = old_sigma;
                b = d;
                m_gap = 1;
            } else {
                for i in 0..SIGMA_LEN - m_gap {
                    sigma[i + m_gap] ^= gf.mul(prev[i], scale);
                }
                m_gap += 1;
            }
        }
        let deg = (0..SIGMA_LEN).rev().find(|&i| sigma[i] != 0).unwrap_or(0);
        (sigma, deg)
    }

    /// Chien search: positions `i` with `σ(α^{-i}) = 0`, over the *full*
    /// (unshortened) length so errors "in" the shortened-away region are
    /// caught as uncorrectable. Fills `roots` and returns the root count;
    /// a degree-`deg` polynomial over a field has at most `deg ≤ t` roots,
    /// so the fixed-size scratch cannot overflow.
    fn chien_search(
        &self,
        sigma: &[u16; SIGMA_LEN],
        deg: usize,
        roots: &mut [usize; MAX_T],
    ) -> usize {
        let order = self.gf.order();
        let mut n_roots = 0usize;
        for i in 0..order {
            let x = self.gf.alpha_pow(order - (i % order)); // α^{-i}
                                                            // Horner evaluation of σ at x.
            let mut acc = sigma[deg];
            for k in (0..deg).rev() {
                acc = self.gf.mul(acc, x) ^ sigma[k];
            }
            if acc == 0 {
                debug_assert!(n_roots < MAX_T, "degree-{deg} σ yielded > t roots");
                roots[n_roots] = i;
                n_roots += 1;
            }
        }
        n_roots
    }
}

/// Builds the BCH generator polynomial: LCM of the minimal polynomials of
/// `α, α³, …, α^{2t−1}` (even powers are conjugates of odd ones).
fn generator_poly(gf: &GfTable, t: u32) -> BinPoly {
    let order = gf.order();
    let mut covered = vec![false; order + 1];
    let mut gen = BinPoly::one();
    for s in (1..2 * t as usize).step_by(2) {
        if covered[s] {
            continue;
        }
        // Conjugacy class of s under doubling mod (2^m - 1).
        let mut class = Vec::new();
        let mut e = s;
        loop {
            class.push(e);
            if e <= order {
                covered[e] = true;
            }
            e = (e * 2) % order;
            if e == s {
                break;
            }
        }
        // Minimal polynomial: ∏ (x − α^e) — lands in GF(2).
        let mut min_poly = GfPoly::one();
        for &e in &class {
            let factor = GfPoly::from_coeffs(vec![gf.alpha_pow(e), 1]);
            min_poly = min_poly.mul(&factor, gf);
        }
        let mut bits = Vec::new();
        for (i, &c) in min_poly.coeffs().iter().enumerate() {
            assert!(c <= 1, "minimal polynomial has non-binary coefficient {c}");
            if c == 1 {
                bits.push(i);
            }
        }
        gen = gen.mul(&BinPoly::from_coeffs(&bits));
    }
    gen
}

impl LineCode for BchCode {
    fn data_bits(&self) -> usize {
        self.data_bits
    }

    fn parity_bits(&self) -> usize {
        self.parity_bits
    }

    fn t(&self) -> u32 {
        self.t
    }

    fn name(&self) -> String {
        format!("BCH-{} ({},{})", self.t, self.n, self.data_bits)
    }

    fn encode(&self, data: &BitBuf) -> BitBuf {
        assert_eq!(data.len(), self.data_bits, "payload length mismatch");
        // c(x) = d(x)·x^r + (d(x)·x^r mod g(x))
        let mut shifted = BinPoly::zero();
        for pos in data.ones() {
            shifted = shifted.add(&BinPoly::monomial(pos + self.parity_bits));
        }
        let rem = shifted.rem(&self.gen);
        let mut cw = BitBuf::zeros(self.n);
        for pos in data.ones() {
            cw.set(pos + self.parity_bits, true);
        }
        for e in rem.support() {
            debug_assert!(e < self.parity_bits);
            cw.set(e, true);
        }
        cw
    }

    fn decode(&self, received: &mut BitBuf) -> DecodeOutcome {
        assert_eq!(received.len(), self.n, "codeword length mismatch");
        let Some(synd) = self.syndromes(received) else {
            return DecodeOutcome::Clean;
        };
        let (sigma, deg) = self.berlekamp_massey(&synd[..2 * self.t as usize]);
        if deg > self.t as usize {
            return DecodeOutcome::Uncorrectable;
        }
        let mut roots = [0usize; MAX_T];
        let n_roots = self.chien_search(&sigma, deg, &mut roots);
        if n_roots != deg {
            return DecodeOutcome::Uncorrectable;
        }
        // Any root pointing into the shortened-away region means the true
        // error pattern was beyond capability.
        if roots[..n_roots].iter().any(|&pos| pos >= self.n) {
            return DecodeOutcome::Uncorrectable;
        }
        for &pos in &roots[..n_roots] {
            received.flip(pos);
        }
        DecodeOutcome::Corrected {
            bits: n_roots as u32,
        }
    }

    fn extract_data(&self, codeword: &BitBuf) -> BitBuf {
        codeword.slice(self.parity_bits, self.data_bits)
    }

    fn syndromes_clean(&self, received: &BitBuf) -> bool {
        self.syndromes(received).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data<R: Rng>(rng: &mut R, bits: usize) -> BitBuf {
        let mut b = BitBuf::zeros(bits);
        for i in 0..bits {
            if rng.gen::<bool>() {
                b.set(i, true);
            }
        }
        b
    }

    #[test]
    fn parity_bits_are_m_times_t_for_small_t() {
        for t in 1..=6u32 {
            let code = BchCode::new(10, t, 512);
            assert_eq!(code.parity_bits(), 10 * t as usize, "t={t}");
        }
    }

    #[test]
    fn clean_roundtrip() {
        let mut rng = StdRng::seed_from_u64(21);
        let code = BchCode::new(10, 3, 512);
        for _ in 0..10 {
            let data = random_data(&mut rng, 512);
            let mut cw = code.encode(&data);
            assert_eq!(code.decode(&mut cw), DecodeOutcome::Clean);
            assert_eq!(code.extract_data(&cw), data);
        }
    }

    #[test]
    fn encoded_word_is_multiple_of_generator() {
        let mut rng = StdRng::seed_from_u64(22);
        let code = BchCode::new(8, 2, 100);
        let data = random_data(&mut rng, 100);
        let cw = code.encode(&data);
        let mut poly = BinPoly::zero();
        for pos in cw.ones() {
            poly = poly.add(&BinPoly::monomial(pos));
        }
        assert!(poly.rem(&code.gen).is_zero());
    }

    #[test]
    fn corrects_up_to_t_random_errors() {
        let mut rng = StdRng::seed_from_u64(23);
        for t in [1u32, 2, 4, 6] {
            let code = BchCode::new(10, t, 512);
            for trial in 0..15 {
                let data = random_data(&mut rng, 512);
                let clean = code.encode(&data);
                for e in 1..=t {
                    let mut cw = clean.clone();
                    let mut flipped = std::collections::HashSet::new();
                    while flipped.len() < e as usize {
                        let pos = rng.gen_range(0..code.n());
                        if flipped.insert(pos) {
                            cw.flip(pos);
                        }
                    }
                    assert_eq!(
                        code.decode(&mut cw),
                        DecodeOutcome::Corrected { bits: e },
                        "t={t} e={e} trial={trial}"
                    );
                    assert_eq!(code.extract_data(&cw), data);
                }
            }
        }
    }

    #[test]
    fn never_corrupts_beyond_capability_silently_claiming_clean() {
        // t+1 errors: outcome may be Uncorrectable (usual) or a
        // miscorrection, but never Clean and never a "corrected" word that
        // still fails the syndrome check.
        let mut rng = StdRng::seed_from_u64(24);
        let code = BchCode::new(10, 2, 512);
        for _ in 0..40 {
            let data = random_data(&mut rng, 512);
            let mut cw = code.encode(&data);
            let mut flipped = std::collections::HashSet::new();
            while flipped.len() < 3 {
                let pos = rng.gen_range(0..code.n());
                if flipped.insert(pos) {
                    cw.flip(pos);
                }
            }
            match code.decode(&mut cw) {
                DecodeOutcome::Clean => panic!("3 errors decoded as clean"),
                DecodeOutcome::Uncorrectable => {}
                DecodeOutcome::Corrected { .. } => {
                    // Miscorrection: must at least be a valid codeword now.
                    assert!(code.syndromes_clean(&cw));
                    assert_ne!(code.extract_data(&cw), data);
                }
            }
        }
    }

    #[test]
    fn lightweight_detection_flags_any_single_error() {
        let mut rng = StdRng::seed_from_u64(25);
        let code = BchCode::new(10, 4, 512);
        let data = random_data(&mut rng, 512);
        let clean = code.encode(&data);
        assert!(code.syndromes_clean(&clean));
        for _ in 0..30 {
            let mut cw = clean.clone();
            cw.flip(rng.gen_range(0..code.n()));
            assert!(!code.syndromes_clean(&cw));
        }
    }

    #[test]
    fn shortened_code_smaller_field() {
        // (63, 45) t=3 code on GF(2^6), shortened to 20 data bits.
        let code = BchCode::new(6, 3, 20);
        let mut rng = StdRng::seed_from_u64(26);
        let data = random_data(&mut rng, 20);
        let mut cw = code.encode(&data);
        cw.flip(0);
        cw.flip(10);
        cw.flip(25);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Corrected { bits: 3 });
        assert_eq!(code.extract_data(&cw), data);
    }

    #[test]
    fn all_zero_data_roundtrip() {
        let code = BchCode::new(10, 1, 512);
        let data = BitBuf::zeros(512);
        let mut cw = code.encode(&data);
        assert_eq!(cw.count_ones(), 0); // zero word is a codeword
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Clean);
    }

    #[test]
    #[should_panic(expected = "payload length mismatch")]
    fn encode_rejects_wrong_length() {
        let code = BchCode::new(10, 1, 512);
        code.encode(&BitBuf::zeros(100));
    }
}
