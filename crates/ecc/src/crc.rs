//! CRC-32 line checksum: the cheapest possible "is anything wrong here?"
//! probe.
//!
//! A scrub probe that only needs *detection* can check a 32-bit CRC
//! instead of running the full BCH syndrome/locator pipeline; the full
//! decoder is invoked only when the CRC trips. This is the "lightweight
//! error detection operation" lever of the paper's abstract, taken to its
//! cheapest point.

use crate::bits::BitBuf;

/// Reflected CRC-32 (IEEE 802.3, polynomial `0xEDB88320`).
///
/// # Examples
///
/// ```
/// use pcm_ecc::Crc32;
/// let crc = Crc32::new();
/// // The classical check value for "123456789".
/// assert_eq!(crc.checksum_bytes(b"123456789"), 0xCBF4_3926);
/// ```
#[derive(Debug, Clone)]
pub struct Crc32 {
    table: [u32; 256],
}

impl Crc32 {
    /// Builds the byte-wise lookup table.
    pub fn new() -> Self {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *entry = c;
        }
        Self { table }
    }

    /// CRC-32 of a byte slice.
    pub fn checksum_bytes(&self, bytes: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in bytes {
            c = self.table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
        }
        !c
    }

    /// CRC-32 of a bit buffer (bits packed little-endian into bytes; a
    /// trailing partial byte is zero-padded).
    pub fn checksum(&self, bits: &BitBuf) -> u32 {
        let mut bytes = vec![0u8; bits.len().div_ceil(8)];
        for i in 0..bits.len() {
            if bits.get(i) {
                bytes[i / 8] |= 1 << (i % 8);
            }
        }
        self.checksum_bytes(&bytes)
    }

    /// Whether `received` still matches a stored checksum.
    pub fn verify(&self, received: &BitBuf, stored: u32) -> bool {
        self.checksum(received) == stored
    }
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn reference_vectors() {
        let crc = Crc32::new();
        assert_eq!(crc.checksum_bytes(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc.checksum_bytes(b""), 0x0000_0000);
        assert_eq!(crc.checksum_bytes(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_every_single_bit_flip() {
        let crc = Crc32::new();
        let mut rng = StdRng::seed_from_u64(1);
        let mut data = BitBuf::zeros(512);
        for i in 0..512 {
            if rng.gen::<bool>() {
                data.set(i, true);
            }
        }
        let stored = crc.checksum(&data);
        assert!(crc.verify(&data, stored));
        for pos in (0..512).step_by(17) {
            let mut dirty = data.clone();
            dirty.flip(pos);
            assert!(!crc.verify(&dirty, stored), "missed flip at {pos}");
        }
    }

    #[test]
    fn detects_random_multibit_patterns() {
        let crc = Crc32::new();
        let mut rng = StdRng::seed_from_u64(2);
        let data = BitBuf::zeros(576);
        let stored = crc.checksum(&data);
        for _ in 0..500 {
            let mut dirty = data.clone();
            let e = rng.gen_range(1..10);
            let mut seen = std::collections::HashSet::new();
            while seen.len() < e {
                let pos = rng.gen_range(0..576);
                if seen.insert(pos) {
                    dirty.flip(pos);
                }
            }
            assert!(!crc.verify(&dirty, stored));
        }
    }

    #[test]
    fn bitbuf_and_byte_paths_agree() {
        let crc = Crc32::new();
        let bytes = [0xDE, 0xAD, 0xBE, 0xEF];
        let bits = BitBuf::from_bytes(&bytes, 32);
        assert_eq!(crc.checksum(&bits), crc.checksum_bytes(&bytes));
    }
}
