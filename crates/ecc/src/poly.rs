//! Polynomial algebra: binary polynomials (for BCH generators and
//! systematic encoding) and polynomials over GF(2^m) (for decoding).

use crate::gf::GfTable;

/// A polynomial over GF(2), little-endian bit-packed (bit `i` of word
/// `i/64` is the coefficient of `x^i`).
///
/// Equality ignores trailing zero words, so values produced by different
/// operation chains compare by mathematical value.
///
/// # Examples
///
/// ```
/// use pcm_ecc::BinPoly;
/// let a = BinPoly::from_coeffs(&[0, 1]);   // x
/// let b = BinPoly::from_coeffs(&[0, 1, 3]); // x^3 + x + 1
/// let p = a.mul(&b);
/// assert_eq!(p.degree(), Some(4));
/// ```
#[derive(Debug, Clone, Eq)]
pub struct BinPoly {
    words: Vec<u64>,
}

impl PartialEq for BinPoly {
    fn eq(&self, other: &Self) -> bool {
        let n = self.words.len().max(other.words.len());
        (0..n).all(|i| {
            self.words.get(i).copied().unwrap_or(0) == other.words.get(i).copied().unwrap_or(0)
        })
    }
}

impl BinPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { words: vec![] }
    }

    /// The constant polynomial 1.
    pub fn one() -> Self {
        Self { words: vec![1] }
    }

    /// Builds a polynomial with coefficients at the given exponents.
    pub fn from_coeffs(exps: &[usize]) -> Self {
        let mut p = Self::zero();
        for &e in exps {
            p.set(e);
        }
        p
    }

    /// `x^e`.
    pub fn monomial(e: usize) -> Self {
        let mut p = Self::zero();
        p.set(e);
        p
    }

    fn set(&mut self, e: usize) {
        let w = e / 64;
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        self.words[w] ^= 1u64 << (e % 64);
    }

    /// Coefficient of `x^e`.
    pub fn coeff(&self, e: usize) -> bool {
        let w = e / 64;
        w < self.words.len() && (self.words[w] >> (e % 64)) & 1 == 1
    }

    /// Degree, or `None` for the zero polynomial.
    pub fn degree(&self) -> Option<usize> {
        for (i, &w) in self.words.iter().enumerate().rev() {
            if w != 0 {
                return Some(i * 64 + 63 - w.leading_zeros() as usize);
            }
        }
        None
    }

    /// Whether this is the zero polynomial.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Sum (= difference) over GF(2).
    pub fn add(&self, other: &BinPoly) -> BinPoly {
        let n = self.words.len().max(other.words.len());
        let mut words = vec![0u64; n];
        for (i, w) in words.iter_mut().enumerate() {
            *w = self.words.get(i).copied().unwrap_or(0) ^ other.words.get(i).copied().unwrap_or(0);
        }
        BinPoly { words }
    }

    /// Carry-less product.
    pub fn mul(&self, other: &BinPoly) -> BinPoly {
        let (Some(da), Some(db)) = (self.degree(), other.degree()) else {
            return BinPoly::zero();
        };
        let mut out = BinPoly::zero();
        out.words.resize((da + db) / 64 + 1, 0);
        for ea in 0..=da {
            if !self.coeff(ea) {
                continue;
            }
            // XOR `other` shifted left by `ea` into `out`.
            let word_shift = ea / 64;
            let bit_shift = ea % 64;
            for (i, &w) in other.words.iter().enumerate() {
                if w == 0 {
                    continue;
                }
                out.words[i + word_shift] ^= w << bit_shift;
                if bit_shift != 0 && i + word_shift + 1 < out.words.len() {
                    out.words[i + word_shift + 1] ^= w >> (64 - bit_shift);
                }
            }
        }
        out
    }

    /// Remainder of `self` modulo `divisor`.
    ///
    /// # Panics
    ///
    /// Panics if `divisor` is zero.
    pub fn rem(&self, divisor: &BinPoly) -> BinPoly {
        let dd = divisor.degree().expect("division by zero polynomial");
        let mut r = self.clone();
        while let Some(dr) = r.degree() {
            if dr < dd {
                break;
            }
            let shift = dr - dd;
            // r ^= divisor << shift
            let word_shift = shift / 64;
            let bit_shift = shift % 64;
            let needed = (dr / 64) + 1;
            if r.words.len() < needed {
                r.words.resize(needed, 0);
            }
            for (i, &w) in divisor.words.iter().enumerate() {
                if w == 0 {
                    continue;
                }
                r.words[i + word_shift] ^= w << bit_shift;
                if bit_shift != 0 && i + word_shift + 1 < r.words.len() {
                    r.words[i + word_shift + 1] ^= w >> (64 - bit_shift);
                }
            }
        }
        r
    }

    /// Exponents with nonzero coefficients, ascending.
    pub fn support(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (wi, &w) in self.words.iter().enumerate() {
            let mut bits = w;
            while bits != 0 {
                out.push(wi * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        out
    }
}

/// A polynomial over GF(2^m), coefficients little-endian
/// (`coeffs[i]` multiplies `x^i`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GfPoly {
    coeffs: Vec<u16>,
}

impl GfPoly {
    /// The zero polynomial.
    pub fn zero() -> Self {
        Self { coeffs: vec![] }
    }

    /// The constant polynomial 1.
    pub fn one() -> Self {
        Self { coeffs: vec![1] }
    }

    /// Builds from explicit coefficients (little-endian); trailing zeros
    /// are trimmed.
    pub fn from_coeffs(coeffs: Vec<u16>) -> Self {
        let mut p = Self { coeffs };
        p.trim();
        p
    }

    fn trim(&mut self) {
        while self.coeffs.last() == Some(&0) {
            self.coeffs.pop();
        }
    }

    /// Degree, or `None` for zero.
    pub fn degree(&self) -> Option<usize> {
        if self.coeffs.is_empty() {
            None
        } else {
            Some(self.coeffs.len() - 1)
        }
    }

    /// Coefficient of `x^i` (zero beyond the stored length).
    pub fn coeff(&self, i: usize) -> u16 {
        self.coeffs.get(i).copied().unwrap_or(0)
    }

    /// The coefficient slice (little-endian, trimmed).
    pub fn coeffs(&self) -> &[u16] {
        &self.coeffs
    }

    /// Polynomial sum.
    pub fn add(&self, other: &GfPoly, _gf: &GfTable) -> GfPoly {
        let n = self.coeffs.len().max(other.coeffs.len());
        let mut coeffs = vec![0u16; n];
        for (i, c) in coeffs.iter_mut().enumerate() {
            *c = self.coeff(i) ^ other.coeff(i);
        }
        GfPoly::from_coeffs(coeffs)
    }

    /// Polynomial product.
    pub fn mul(&self, other: &GfPoly, gf: &GfTable) -> GfPoly {
        let (Some(da), Some(db)) = (self.degree(), other.degree()) else {
            return GfPoly::zero();
        };
        let mut coeffs = vec![0u16; da + db + 1];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                if b != 0 {
                    coeffs[i + j] ^= gf.mul(a, b);
                }
            }
        }
        GfPoly::from_coeffs(coeffs)
    }

    /// Multiplies every coefficient by a scalar.
    pub fn scale(&self, s: u16, gf: &GfTable) -> GfPoly {
        GfPoly::from_coeffs(self.coeffs.iter().map(|&c| gf.mul(c, s)).collect())
    }

    /// Evaluates at `x` by Horner's rule.
    pub fn eval(&self, x: u16, gf: &GfTable) -> u16 {
        let mut acc = 0u16;
        for &c in self.coeffs.iter().rev() {
            acc = gf.mul(acc, x) ^ c;
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binpoly_mul_known_product() {
        // (x+1)(x^2+x+1) = x^3 + 1 over GF(2)
        let a = BinPoly::from_coeffs(&[0, 1]);
        let b = BinPoly::from_coeffs(&[0, 1, 2]);
        let p = a.mul(&b);
        assert_eq!(p.support(), vec![0, 3]);
    }

    #[test]
    fn binpoly_mul_across_word_boundary() {
        let a = BinPoly::monomial(63);
        let b = BinPoly::from_coeffs(&[0, 1]);
        let p = a.mul(&b); // x^64 + x^63
        assert_eq!(p.support(), vec![63, 64]);
    }

    #[test]
    fn binpoly_rem_basic() {
        // x^3 + 1 mod (x+1) = 0 since x+1 divides it.
        let p = BinPoly::from_coeffs(&[0, 3]);
        let d = BinPoly::from_coeffs(&[0, 1]);
        assert!(p.rem(&d).is_zero());
        // x^2 mod (x+1): x^2 = (x+1)(x+1) + 1 -> remainder 1.
        let r = BinPoly::monomial(2).rem(&d);
        assert_eq!(r.support(), vec![0]);
    }

    #[test]
    fn binpoly_rem_matches_mul_roundtrip() {
        // (q*d + r) mod d == r for r with deg < deg d.
        let d = BinPoly::from_coeffs(&[0, 2, 5]);
        let q = BinPoly::from_coeffs(&[1, 3, 70]);
        let r = BinPoly::from_coeffs(&[0, 4]);
        let p = q.mul(&d).add(&r);
        assert_eq!(p.rem(&d), r);
    }

    #[test]
    fn binpoly_degree_and_zero() {
        assert_eq!(BinPoly::zero().degree(), None);
        assert_eq!(BinPoly::monomial(100).degree(), Some(100));
        assert!(BinPoly::from_coeffs(&[5, 5]).is_zero());
    }

    #[test]
    fn gfpoly_eval_horner() {
        let gf = GfTable::new(4);
        // p(x) = x^2 + 3x + 5 at x=2: 4 ^ mul(3,2) ^ 5
        let p = GfPoly::from_coeffs(vec![5, 3, 1]);
        let want = gf.mul(2, 2) ^ gf.mul(3, 2) ^ 5;
        assert_eq!(p.eval(2, &gf), want);
    }

    #[test]
    fn gfpoly_mul_degree_adds() {
        let gf = GfTable::new(6);
        let a = GfPoly::from_coeffs(vec![1, 7, 0, 9]);
        let b = GfPoly::from_coeffs(vec![3, 0, 5]);
        let p = a.mul(&b, &gf);
        assert_eq!(p.degree(), Some(5));
    }

    #[test]
    fn gfpoly_root_product_form() {
        // (x - α)(x - α²) has roots α, α².
        let gf = GfTable::new(5);
        let a1 = gf.alpha_pow(1);
        let a2 = gf.alpha_pow(2);
        let f1 = GfPoly::from_coeffs(vec![a1, 1]);
        let f2 = GfPoly::from_coeffs(vec![a2, 1]);
        let p = f1.mul(&f2, &gf);
        assert_eq!(p.eval(a1, &gf), 0);
        assert_eq!(p.eval(a2, &gf), 0);
        assert_ne!(p.eval(gf.alpha_pow(3), &gf), 0);
    }

    #[test]
    fn gfpoly_trim() {
        let p = GfPoly::from_coeffs(vec![1, 2, 0, 0]);
        assert_eq!(p.degree(), Some(1));
        assert_eq!(p.coeffs(), &[1, 2]);
    }
}
