//! Bit-exact extended Hamming SECDED (72,64) — the DRAM-heritage baseline
//! code — and its eight-word 64-byte line wrapper.

use crate::bits::BitBuf;
use crate::code::{DecodeOutcome, LineCode};

const WORD_DATA: usize = 64;
const WORD_CODED: usize = 72;
/// Hamming syndrome bits (positions 1..=71 need 7 bits).
const SYND_BITS: usize = 7;

/// Extended Hamming (72,64): corrects one bit error per word, detects two.
///
/// Layout (classical): position 0 holds the overall parity; positions
/// `2^j` for `j < 7` hold the Hamming parity bits; the remaining 64
/// positions hold data in ascending order.
///
/// # Examples
///
/// ```
/// use pcm_ecc::{BitBuf, DecodeOutcome, LineCode, Secded72};
/// let code = Secded72::new();
/// let mut data = BitBuf::zeros(64);
/// data.set(5, true);
/// let mut cw = code.encode(&data);
/// cw.flip(40);
/// assert_eq!(code.decode(&mut cw), DecodeOutcome::Corrected { bits: 1 });
/// assert_eq!(code.extract_data(&cw), data);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Secded72;

impl Secded72 {
    /// Creates the code (stateless).
    pub fn new() -> Self {
        Secded72
    }

    /// Positions 1..=71 that are not powers of two, in ascending order:
    /// where the 64 data bits live.
    fn data_positions() -> impl Iterator<Item = usize> {
        (1..WORD_CODED).filter(|p| !p.is_power_of_two())
    }

    /// Hamming syndrome over positions 1..=71 plus the overall parity of
    /// all 72 bits.
    fn syndrome(cw: &BitBuf) -> (usize, bool) {
        let mut s = 0usize;
        let mut overall = false;
        for pos in 0..WORD_CODED {
            if cw.get(pos) {
                s ^= pos;
                overall = !overall;
            }
        }
        (s, overall)
    }
}

impl LineCode for Secded72 {
    fn data_bits(&self) -> usize {
        WORD_DATA
    }

    fn parity_bits(&self) -> usize {
        WORD_CODED - WORD_DATA
    }

    fn t(&self) -> u32 {
        1
    }

    fn name(&self) -> String {
        "SECDED (72,64)".to_string()
    }

    fn encode(&self, data: &BitBuf) -> BitBuf {
        assert_eq!(data.len(), WORD_DATA, "payload length mismatch");
        let mut cw = BitBuf::zeros(WORD_CODED);
        for (i, pos) in Self::data_positions().enumerate() {
            if data.get(i) {
                cw.set(pos, true);
            }
        }
        // Hamming parity bits: p_j makes the XOR of positions with bit j
        // set equal zero.
        let (s0, _) = Self::syndrome(&cw);
        for j in 0..SYND_BITS {
            if (s0 >> j) & 1 == 1 {
                cw.set(1 << j, true);
            }
        }
        // Overall parity makes the whole word even.
        let (_, overall) = Self::syndrome(&cw);
        if overall {
            cw.set(0, true);
        }
        debug_assert_eq!(Self::syndrome(&cw), (0, false));
        cw
    }

    fn decode(&self, received: &mut BitBuf) -> DecodeOutcome {
        assert_eq!(received.len(), WORD_CODED, "codeword length mismatch");
        let (s, overall) = Self::syndrome(received);
        match (s, overall) {
            (0, false) => DecodeOutcome::Clean,
            (0, true) => {
                // Error in the overall parity bit itself.
                received.flip(0);
                DecodeOutcome::Corrected { bits: 1 }
            }
            (s, true) => {
                if s < WORD_CODED {
                    received.flip(s);
                    DecodeOutcome::Corrected { bits: 1 }
                } else {
                    // Syndrome points outside the word: >=3 errors.
                    DecodeOutcome::Uncorrectable
                }
            }
            (_, false) => DecodeOutcome::Uncorrectable, // double error
        }
    }

    fn extract_data(&self, codeword: &BitBuf) -> BitBuf {
        let mut data = BitBuf::zeros(WORD_DATA);
        for (i, pos) in Self::data_positions().enumerate() {
            if codeword.get(pos) {
                data.set(i, true);
            }
        }
        data
    }

    fn syndromes_clean(&self, received: &BitBuf) -> bool {
        Self::syndrome(received) == (0, false)
    }
}

/// Eight concatenated SECDED (72,64) words protecting one 64-byte line —
/// the "basic scrub" baseline's code organization.
///
/// # Examples
///
/// ```
/// use pcm_ecc::{BitBuf, DecodeOutcome, LineCode, SecdedLine};
/// let code = SecdedLine::new();
/// assert_eq!(code.data_bits(), 512);
/// assert_eq!(code.parity_bits(), 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SecdedLine {
    word: Secded72,
}

const LINE_WORDS: usize = 8;

impl SecdedLine {
    /// Creates the line code.
    pub fn new() -> Self {
        SecdedLine { word: Secded72 }
    }
}

impl LineCode for SecdedLine {
    fn data_bits(&self) -> usize {
        WORD_DATA * LINE_WORDS
    }

    fn parity_bits(&self) -> usize {
        (WORD_CODED - WORD_DATA) * LINE_WORDS
    }

    fn t(&self) -> u32 {
        1 // guaranteed only one per line (two may collide in one word)
    }

    fn name(&self) -> String {
        "SECDED 8x(72,64)".to_string()
    }

    fn encode(&self, data: &BitBuf) -> BitBuf {
        assert_eq!(data.len(), self.data_bits(), "payload length mismatch");
        let mut cw = BitBuf::zeros(WORD_CODED * LINE_WORDS);
        for w in 0..LINE_WORDS {
            let word_data = data.slice(w * WORD_DATA, WORD_DATA);
            let word_cw = self.word.encode(&word_data);
            for i in 0..WORD_CODED {
                if word_cw.get(i) {
                    cw.set(w * WORD_CODED + i, true);
                }
            }
        }
        cw
    }

    fn decode(&self, received: &mut BitBuf) -> DecodeOutcome {
        assert_eq!(
            received.len(),
            WORD_CODED * LINE_WORDS,
            "codeword length mismatch"
        );
        let mut total = 0u32;
        let mut any_uncorrectable = false;
        for w in 0..LINE_WORDS {
            let mut word_cw = received.slice(w * WORD_CODED, WORD_CODED);
            match self.word.decode(&mut word_cw) {
                DecodeOutcome::Clean => {}
                DecodeOutcome::Corrected { bits } => {
                    total += bits;
                    for i in 0..WORD_CODED {
                        let v = word_cw.get(i);
                        if received.get(w * WORD_CODED + i) != v {
                            received.set(w * WORD_CODED + i, v);
                        }
                    }
                }
                DecodeOutcome::Uncorrectable => any_uncorrectable = true,
            }
        }
        if any_uncorrectable {
            DecodeOutcome::Uncorrectable
        } else if total == 0 {
            DecodeOutcome::Clean
        } else {
            DecodeOutcome::Corrected { bits: total }
        }
    }

    fn extract_data(&self, codeword: &BitBuf) -> BitBuf {
        let mut data = BitBuf::zeros(self.data_bits());
        for w in 0..LINE_WORDS {
            let word_cw = codeword.slice(w * WORD_CODED, WORD_CODED);
            let word_data = self.word.extract_data(&word_cw);
            for i in 0..WORD_DATA {
                if word_data.get(i) {
                    data.set(w * WORD_DATA + i, true);
                }
            }
        }
        data
    }

    fn syndromes_clean(&self, received: &BitBuf) -> bool {
        (0..LINE_WORDS).all(|w| {
            self.word
                .syndromes_clean(&received.slice(w * WORD_CODED, WORD_CODED))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data<R: Rng>(rng: &mut R, bits: usize) -> BitBuf {
        let mut b = BitBuf::zeros(bits);
        for i in 0..bits {
            if rng.gen::<bool>() {
                b.set(i, true);
            }
        }
        b
    }

    #[test]
    fn clean_roundtrip_word() {
        let code = Secded72::new();
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..50 {
            let data = random_data(&mut rng, 64);
            let mut cw = code.encode(&data);
            assert_eq!(code.decode(&mut cw), DecodeOutcome::Clean);
            assert_eq!(code.extract_data(&cw), data);
        }
    }

    #[test]
    fn corrects_every_single_bit_position() {
        let code = Secded72::new();
        let mut rng = StdRng::seed_from_u64(32);
        let data = random_data(&mut rng, 64);
        let clean = code.encode(&data);
        for pos in 0..72 {
            let mut cw = clean.clone();
            cw.flip(pos);
            assert_eq!(
                code.decode(&mut cw),
                DecodeOutcome::Corrected { bits: 1 },
                "pos {pos}"
            );
            assert_eq!(code.extract_data(&cw), data, "pos {pos}");
        }
    }

    #[test]
    fn detects_every_double_error() {
        let code = Secded72::new();
        let mut rng = StdRng::seed_from_u64(33);
        let data = random_data(&mut rng, 64);
        let clean = code.encode(&data);
        for a in 0..72 {
            for b in (a + 1)..72 {
                let mut cw = clean.clone();
                cw.flip(a);
                cw.flip(b);
                assert_eq!(
                    code.decode(&mut cw),
                    DecodeOutcome::Uncorrectable,
                    "pair ({a},{b})"
                );
            }
        }
    }

    #[test]
    fn line_corrects_one_error_per_word() {
        let code = SecdedLine::new();
        let mut rng = StdRng::seed_from_u64(34);
        let data = random_data(&mut rng, 512);
        let mut cw = code.encode(&data);
        // One error in each of the 8 words: all corrected.
        for w in 0..8 {
            cw.flip(w * 72 + 7 * w + 3);
        }
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Corrected { bits: 8 });
        assert_eq!(code.extract_data(&cw), data);
    }

    #[test]
    fn line_fails_on_same_word_double() {
        let code = SecdedLine::new();
        let mut rng = StdRng::seed_from_u64(35);
        let data = random_data(&mut rng, 512);
        let mut cw = code.encode(&data);
        cw.flip(144 + 3);
        cw.flip(144 + 40);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Uncorrectable);
    }

    #[test]
    fn line_lightweight_detection() {
        let code = SecdedLine::new();
        let mut rng = StdRng::seed_from_u64(36);
        let data = random_data(&mut rng, 512);
        let clean = code.encode(&data);
        assert!(code.syndromes_clean(&clean));
        let mut dirty = clean.clone();
        dirty.flip(500);
        assert!(!code.syndromes_clean(&dirty));
    }

    #[test]
    fn sizes() {
        let w = Secded72::new();
        assert_eq!(w.data_bits(), 64);
        assert_eq!(w.parity_bits(), 8);
        let l = SecdedLine::new();
        assert_eq!(l.data_bits(), 512);
        assert_eq!(l.parity_bits(), 64);
        assert_eq!(l.t(), 1);
    }
}
