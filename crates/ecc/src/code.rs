//! Code-level abstractions: the bit-exact [`LineCode`] trait and the
//! statistical [`CodeSpec`] used by the memory simulator's fault engine.
//!
//! The simulator tracks error *counts* per line, not bit positions, so its
//! hot path uses [`CodeSpec::classify`] — count-level semantics that are
//! validated against the bit-exact codecs by cross-tests.

use rand::Rng;

use crate::bits::BitBuf;

/// Result of decoding one memory line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DecodeOutcome {
    /// Syndromes were zero: nothing to do.
    Clean,
    /// Errors found and corrected in place.
    Corrected {
        /// Number of bit errors corrected.
        bits: u32,
    },
    /// Errors detected but beyond the correction capability.
    Uncorrectable,
}

/// A bit-exact error-correcting code over a memory line.
pub trait LineCode {
    /// Payload size in bits.
    fn data_bits(&self) -> usize;
    /// Check/parity size in bits.
    fn parity_bits(&self) -> usize;
    /// Guaranteed correction capability (bit errors per line for
    /// line-granularity codes; see the concrete type for interleaved
    /// semantics).
    fn t(&self) -> u32;
    /// Human-readable code name, e.g. `"BCH-4 (552,512)"`.
    fn name(&self) -> String;
    /// Encodes `data` (length [`LineCode::data_bits`]) into a codeword of
    /// length `data_bits + parity_bits`.
    fn encode(&self, data: &BitBuf) -> BitBuf;
    /// Decodes a received codeword in place, correcting what it can.
    fn decode(&self, received: &mut BitBuf) -> DecodeOutcome;
    /// Extracts the payload from a (corrected) codeword.
    fn extract_data(&self, codeword: &BitBuf) -> BitBuf;
    /// Lightweight detection: recomputes syndromes without attempting
    /// correction. `true` means the word is (apparently) clean.
    fn syndromes_clean(&self, received: &BitBuf) -> bool;
}

/// Count-level outcome of error classification on one line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassifyOutcome {
    /// No errors present.
    Clean,
    /// All errors correctable.
    Corrected {
        /// Number of bit errors corrected.
        bits: u32,
    },
    /// Errors detected but not correctable (a *detected* uncorrectable
    /// error, DUE).
    DetectedUncorrectable,
    /// Decoder silently produced wrong data (silent data corruption, SDC).
    Miscorrected,
}

impl ClassifyOutcome {
    /// Whether the line's data survives intact after decode.
    pub fn data_intact(self) -> bool {
        matches!(
            self,
            ClassifyOutcome::Clean | ClassifyOutcome::Corrected { .. }
        )
    }

    /// Whether this counts as an uncorrectable error (DUE or SDC).
    pub fn is_uncorrectable(self) -> bool {
        !self.data_intact()
    }
}

/// How a code's correction capability applies across a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CorrectionSemantics {
    /// One code over the whole line correcting up to `t` bit errors
    /// (BCH-style).
    PerLine {
        /// Correction capability in bit errors per line.
        t: u32,
    },
    /// The line is split into `words` interleaved SECDED words; each word
    /// corrects 1 and detects 2 (DRAM-heritage (72,64) layout).
    PerWord {
        /// Number of independently-coded words in the line.
        words: u32,
        /// Total coded bits per word (data + parity).
        word_bits: u32,
    },
    /// One symbol code (Reed–Solomon-style) over the whole line: `symbols`
    /// symbols of `symbol_bits` bits each, correcting up to `t` *symbol*
    /// errors however many bits each holds — the burst/MLC-correlated
    /// tolerance bit-budget codes lack.
    PerSymbol {
        /// Codeword length in symbols (n).
        symbols: u32,
        /// Correction capability in symbol errors, `t = (n − k)/2`.
        t: u32,
        /// Bits per symbol (the field degree m).
        symbol_bits: u32,
    },
}

/// Statistical description of a line code: sizes plus count-level decode
/// semantics. This is what the memory simulator carries around.
///
/// # Examples
///
/// ```
/// use pcm_ecc::CodeSpec;
/// use rand::SeedableRng;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let bch4 = CodeSpec::bch_line(4);
/// assert!(bch4.classify(4, &mut rng).data_intact());
/// assert!(bch4.classify(5, &mut rng).is_uncorrectable());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CodeSpec {
    name: String,
    data_bits: u32,
    parity_bits: u32,
    semantics: CorrectionSemantics,
    alias_prob: f64,
}

/// Data payload per memory line used throughout the evaluation (64 B).
pub const LINE_DATA_BITS: u32 = 512;

impl CodeSpec {
    /// DRAM-heritage SECDED: eight interleaved (72,64) extended-Hamming
    /// words per 64-byte line. 12.5% storage overhead.
    pub fn secded_line() -> Self {
        let words = LINE_DATA_BITS / 64;
        Self {
            name: "SECDED 8x(72,64)".to_string(),
            data_bits: LINE_DATA_BITS,
            parity_bits: words * 8,
            semantics: CorrectionSemantics::PerWord {
                words,
                word_bits: 72,
            },
            // Fraction of the 2^8 syndrome space covered by correctable
            // single-bit patterns: governs 3+ error miscorrection odds.
            alias_prob: 73.0 / 256.0,
        }
    }

    /// BCH-t over the whole 512-bit line, built on GF(2^10)
    /// (shortened from (1023, 1023−10t)); `10·t` parity bits.
    ///
    /// # Panics
    ///
    /// Panics if `t` is 0 or greater than 16.
    pub fn bch_line(t: u32) -> Self {
        assert!((1..=16).contains(&t), "BCH t must be in 1..=16, got {t}");
        let parity_bits = 10 * t;
        let n = LINE_DATA_BITS + parity_bits;
        Self {
            name: format!("BCH-{t} ({n},{LINE_DATA_BITS})"),
            data_bits: LINE_DATA_BITS,
            parity_bits,
            semantics: CorrectionSemantics::PerLine { t },
            alias_prob: bounded_distance_alias_prob(n, t, parity_bits),
        }
    }

    /// Reed–Solomon `(n, k)` over GF(2^8) symbols covering the whole
    /// 512-bit line: `k` must be 64 (eight-bit symbols carrying the 64-byte
    /// payload), `n − k` even, and `n ≤ 255`. Corrects `t = (n − k)/2`
    /// symbol errors; `8·(n − k)` parity bits.
    ///
    /// # Panics
    ///
    /// Panics if `(n, k)` violates any of the above.
    pub fn rs_line(n: u32, k: u32) -> Self {
        const SYMBOL_BITS: u32 = 8;
        assert!(k >= 1 && n > k, "RS needs 1 <= k < n, got ({n},{k})");
        assert!(n <= 255, "RS over GF(2^8) needs n <= 255, got {n}");
        assert!((n - k) % 2 == 0, "RS parity n - k must be even: ({n},{k})");
        assert_eq!(
            k * SYMBOL_BITS,
            LINE_DATA_BITS,
            "RS data symbols must cover the {LINE_DATA_BITS}-bit line (k = 64)"
        );
        let t = (n - k) / 2;
        let parity_bits = (n - k) * SYMBOL_BITS;
        Self {
            name: format!("RS-{t} ({n},{k}) GF(2^8)"),
            data_bits: LINE_DATA_BITS,
            parity_bits,
            semantics: CorrectionSemantics::PerSymbol {
                symbols: n,
                t,
                symbol_bits: SYMBOL_BITS,
            },
            alias_prob: symbol_alias_prob(n, t, SYMBOL_BITS),
        }
    }

    /// Code name for reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Payload bits per line.
    pub fn data_bits(&self) -> u32 {
        self.data_bits
    }

    /// Parity bits per line.
    pub fn parity_bits(&self) -> u32 {
        self.parity_bits
    }

    /// Total stored bits per line.
    pub fn total_bits(&self) -> u32 {
        self.data_bits + self.parity_bits
    }

    /// Storage overhead `parity/data`.
    pub fn storage_overhead(&self) -> f64 {
        self.parity_bits as f64 / self.data_bits as f64
    }

    /// Guaranteed per-line correction capability: the largest `e` such that
    /// *any* pattern of `e` bit errors is corrected.
    pub fn guaranteed_t(&self) -> u32 {
        match self.semantics {
            CorrectionSemantics::PerLine { t } => t,
            // Two errors in the same word defeat SECDED, so only a single
            // error is guaranteed line-wide.
            CorrectionSemantics::PerWord { .. } => 1,
            // Any t bit errors occupy at most t symbols.
            CorrectionSemantics::PerSymbol { t, .. } => t,
        }
    }

    /// The semantics enum (for callers that want to branch on structure).
    pub fn semantics(&self) -> CorrectionSemantics {
        self.semantics
    }

    /// Probability that an uncorrectable pattern aliases into a
    /// miscorrection rather than a detected failure.
    pub fn alias_prob(&self) -> f64 {
        self.alias_prob
    }

    /// Classifies `errors` random bit errors on the line.
    ///
    /// Randomness covers (a) the placement of errors into interleaved words
    /// and (b) bounded-distance miscorrection aliasing.
    pub fn classify<R: Rng + ?Sized>(&self, errors: u32, rng: &mut R) -> ClassifyOutcome {
        if errors == 0 {
            return ClassifyOutcome::Clean;
        }
        match self.semantics {
            CorrectionSemantics::PerLine { t } => {
                if errors <= t {
                    ClassifyOutcome::Corrected { bits: errors }
                } else if rng.gen::<f64>() < self.alias_prob {
                    ClassifyOutcome::Miscorrected
                } else {
                    ClassifyOutcome::DetectedUncorrectable
                }
            }
            CorrectionSemantics::PerWord { words, word_bits } => {
                let counts = spread_errors(errors, words, word_bits, rng);
                let mut detected = false;
                let mut corrected_bits = 0;
                for &c in &counts {
                    match c {
                        0 => {}
                        1 => corrected_bits += 1,
                        2 => detected = true,
                        n if n % 2 == 1 => {
                            // Odd >= 3: overall parity looks like a single
                            // error; the word usually miscorrects.
                            if rng.gen::<f64>() < self.alias_prob {
                                return ClassifyOutcome::Miscorrected;
                            }
                            detected = true;
                            let _ = n;
                        }
                        _ => detected = true, // even >= 4: parity flags it
                    }
                }
                if detected {
                    ClassifyOutcome::DetectedUncorrectable
                } else {
                    ClassifyOutcome::Corrected {
                        bits: corrected_bits,
                    }
                }
            }
            CorrectionSemantics::PerSymbol {
                symbols,
                t,
                symbol_bits,
            } => {
                let counts = spread_errors(errors, symbols, symbol_bits, rng);
                let occupied = counts.iter().filter(|&&c| c > 0).count() as u32;
                self.judge_symbols(occupied, t, errors, rng)
            }
        }
    }

    /// Classifies a line carrying `random` independently-placed bit errors
    /// plus one contiguous `burst`-bit span (a correlated multi-bit upset).
    ///
    /// For bit-budget codes (per-line BCH, per-word SECDED) the burst is
    /// indistinguishable from random errors at count level, so this is
    /// *exactly* [`CodeSpec::classify`]`(random + burst)` — same outcome,
    /// same RNG draws. Symbol codes see the burst as a contiguous span:
    /// `burst` adjacent bits occupy only `ceil((phase + burst)/s)` symbols
    /// (phase drawn uniformly), which is where Reed–Solomon's burst
    /// tolerance comes from.
    pub fn classify_split<R: Rng + ?Sized>(
        &self,
        random: u32,
        burst: u32,
        rng: &mut R,
    ) -> ClassifyOutcome {
        match self.semantics {
            CorrectionSemantics::PerSymbol {
                symbols,
                t,
                symbol_bits,
            } if burst > 0 => {
                let total_bits = symbols * symbol_bits;
                let b = burst.min(total_bits);
                // Burst alignment within its first symbol.
                let phase = rng.gen_range(0..symbol_bits);
                let mut occupied = (phase + b).div_ceil(symbol_bits).min(symbols);
                // Spread the random errors over the remaining positions,
                // tracking only whether each lands in a fresh symbol —
                // P(fresh) = free-positions-in-untouched-symbols / free.
                let mut chosen = b;
                let extra = random.min(total_bits - b);
                for _ in 0..extra {
                    let free = total_bits - chosen;
                    let free_new = (symbols - occupied) * symbol_bits;
                    if free_new > 0 && rng.gen_range(0..free) < free_new {
                        occupied += 1;
                    }
                    chosen += 1;
                }
                self.judge_symbols(occupied, t, random + burst, rng)
            }
            _ => self.classify(random + burst, rng),
        }
    }

    /// Shared symbol-code verdict: `occupied ≤ t` corrects everything,
    /// beyond that the bounded-distance decoder aliases at `alias_prob`.
    fn judge_symbols<R: Rng + ?Sized>(
        &self,
        occupied: u32,
        t: u32,
        bits: u32,
        rng: &mut R,
    ) -> ClassifyOutcome {
        if occupied <= t {
            ClassifyOutcome::Corrected { bits }
        } else if rng.gen::<f64>() < self.alias_prob {
            ClassifyOutcome::Miscorrected
        } else {
            ClassifyOutcome::DetectedUncorrectable
        }
    }

    /// Whether a lightweight (syndrome-only) probe detects `errors` bit
    /// errors. Misses only when the pattern is itself a codeword —
    /// negligible for the sizes here, so detection is modelled as perfect
    /// for nonzero counts.
    pub fn detects(&self, errors: u32) -> bool {
        errors > 0
    }

    /// Exact probability that [`CodeSpec::classify`] returns an
    /// uncorrectable outcome (DUE or miscorrection) given `errors` random
    /// bit errors on the line — the closed-form marginal of the
    /// classification's placement randomness.
    ///
    /// Per-line codes fail deterministically above `t`. Per-word codes
    /// fail exactly when some word receives ≥ 2 of the `errors` positions
    /// (all the alias branches still end in a UE outcome), so survival is
    /// the all-distinct-words probability under sampling without
    /// replacement: `C(words, e)·word_bits^e / C(words·word_bits, e)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use pcm_ecc::CodeSpec;
    /// let bch4 = CodeSpec::bch_line(4);
    /// assert_eq!(bch4.p_uncorrectable_given_errors(4), 0.0);
    /// assert_eq!(bch4.p_uncorrectable_given_errors(5), 1.0);
    /// let secded = CodeSpec::secded_line();
    /// assert_eq!(secded.p_uncorrectable_given_errors(1), 0.0);
    /// let two = secded.p_uncorrectable_given_errors(2);
    /// assert!((two - 71.0 / 575.0).abs() < 1e-12);
    /// ```
    pub fn p_uncorrectable_given_errors(&self, errors: u32) -> f64 {
        if errors == 0 {
            return 0.0;
        }
        match self.semantics {
            CorrectionSemantics::PerLine { t } => {
                if errors <= t {
                    0.0
                } else {
                    1.0
                }
            }
            CorrectionSemantics::PerWord { words, word_bits } => {
                if errors == 1 {
                    return 0.0;
                }
                if errors > words {
                    return 1.0;
                }
                let total = words * word_bits;
                let survive = (ln_choose(words, errors) + errors as f64 * (word_bits as f64).ln()
                    - ln_choose(total, errors))
                .exp();
                (1.0 - survive).clamp(0.0, 1.0)
            }
            CorrectionSemantics::PerSymbol {
                symbols,
                t,
                symbol_bits,
            } => {
                if errors <= t {
                    return 0.0;
                }
                if errors > t * symbol_bits {
                    // Pigeonhole: e bits occupy at least ceil(e/s) > t
                    // symbols.
                    return 1.0;
                }
                let pmf = symbol_occupancy_pmf(symbols, symbol_bits, errors);
                let survive: f64 = pmf[..=(t as usize).min(pmf.len() - 1)].iter().sum();
                (1.0 - survive).clamp(0.0, 1.0)
            }
        }
    }
}

/// Standard code ladder used by the experiments: SECDED then BCH-1..BCH-6.
pub fn standard_code_ladder() -> Vec<CodeSpec> {
    let mut v = vec![CodeSpec::secded_line()];
    v.extend((1..=6).map(CodeSpec::bch_line));
    v
}

/// Distributes `errors` distinct bit positions over `words` words of
/// `word_bits` bits each (sampling without replacement), returning the
/// per-word counts.
fn spread_errors<R: Rng + ?Sized>(
    errors: u32,
    words: u32,
    word_bits: u32,
    rng: &mut R,
) -> Vec<u32> {
    let total = (words * word_bits) as usize;
    let e = (errors as usize).min(total);
    let mut counts = vec![0u32; words as usize];
    let mut chosen = std::collections::HashSet::with_capacity(e);
    while chosen.len() < e {
        let pos = rng.gen_range(0..total);
        if chosen.insert(pos) {
            counts[pos / word_bits as usize] += 1;
        }
    }
    counts
}

/// Exact distribution of the number of *occupied symbols* when `errors`
/// distinct bit positions are drawn uniformly without replacement from
/// `symbols × symbol_bits` positions: `pmf[m] = P(M = m)`.
///
/// Computed by the exact Markov recurrence over draws — with `i` positions
/// placed occupying `m` symbols, the next draw opens a fresh symbol with
/// probability `(symbols − m)·symbol_bits / (symbols·symbol_bits − i)` —
/// which is precisely the sampling process [`CodeSpec::classify`] uses, so
/// the closed form and the Monte-Carlo agree by construction.
pub fn symbol_occupancy_pmf(symbols: u32, symbol_bits: u32, errors: u32) -> Vec<f64> {
    let n = symbols as usize;
    let s = symbol_bits as usize;
    let total = n * s;
    let e = (errors as usize).min(total);
    let mut pmf = vec![0.0f64; n + 1];
    pmf[0] = 1.0;
    for i in 0..e {
        let mut next = vec![0.0f64; n + 1];
        let free = (total - i) as f64;
        for (m, &p) in pmf.iter().enumerate() {
            if p == 0.0 {
                continue;
            }
            let free_new = ((n - m) * s) as f64;
            // `i ≤ m·s` whenever P(M = m) > 0, so this never underflows.
            let free_old = (m * s - i) as f64;
            if m < n {
                next[m + 1] += p * free_new / free;
            }
            next[m] += p * free_old / free;
        }
        pmf = next;
    }
    pmf
}

/// Bounded-distance miscorrection odds for a symbol code: the fraction of
/// the `2^{s·(n−k)}` syndrome space covered by correctable patterns,
/// `Σ_{i<=t} C(n,i)·(2^s − 1)^i / 2^{s·2t}`.
fn symbol_alias_prob(n: u32, t: u32, symbol_bits: u32) -> f64 {
    let ln_nonzero = ((1u64 << symbol_bits) - 1) as f64;
    let ln_nonzero = ln_nonzero.ln();
    let mut covered = 0.0f64;
    for i in 0..=t {
        covered += (ln_choose(n, i) + i as f64 * ln_nonzero).exp();
    }
    let parity_bits = 2 * t * symbol_bits;
    (covered * (-(parity_bits as f64) * std::f64::consts::LN_2).exp()).min(1.0)
}

/// Estimates the probability that a beyond-capability error pattern lands
/// in some correctable coset (bounded-distance miscorrection):
/// `Σ_{i<=t} C(n,i) / 2^parity`.
fn bounded_distance_alias_prob(n: u32, t: u32, parity_bits: u32) -> f64 {
    let mut covered = 0.0f64;
    for i in 0..=t {
        covered += ln_choose(n, i).exp();
    }
    (covered * (-(parity_bits as f64) * std::f64::consts::LN_2).exp()).min(1.0)
}

fn ln_choose(n: u32, k: u32) -> f64 {
    let mut s = 0.0;
    for i in 0..k {
        s += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn secded_sizes() {
        let s = CodeSpec::secded_line();
        assert_eq!(s.data_bits(), 512);
        assert_eq!(s.parity_bits(), 64);
        assert_eq!(s.total_bits(), 576);
        assert!((s.storage_overhead() - 0.125).abs() < 1e-12);
        assert_eq!(s.guaranteed_t(), 1);
    }

    #[test]
    fn bch_sizes_scale_with_t() {
        for t in 1..=6 {
            let c = CodeSpec::bch_line(t);
            assert_eq!(c.parity_bits(), 10 * t);
            assert_eq!(c.guaranteed_t(), t);
        }
    }

    #[test]
    fn classify_zero_is_clean() {
        let mut rng = StdRng::seed_from_u64(1);
        for c in standard_code_ladder() {
            assert_eq!(c.classify(0, &mut rng), ClassifyOutcome::Clean);
        }
    }

    #[test]
    fn bch_classify_boundary() {
        let mut rng = StdRng::seed_from_u64(2);
        let c = CodeSpec::bch_line(3);
        for e in 1..=3 {
            assert_eq!(
                c.classify(e, &mut rng),
                ClassifyOutcome::Corrected { bits: e }
            );
        }
        for _ in 0..50 {
            assert!(c.classify(4, &mut rng).is_uncorrectable());
        }
    }

    #[test]
    fn bch_alias_prob_is_tiny() {
        // 100 parity bits vs ~2^71 patterns of weight <=10: ~1.6e-9.
        let c = CodeSpec::bch_line(10);
        assert!(c.alias_prob() < 1e-6, "alias {}", c.alias_prob());
        // Weaker codes alias much more readily (BCH-2: ~0.14), and the
        // alias probability falls monotonically with code strength.
        let ladder: Vec<f64> = (1..=8)
            .map(|t| CodeSpec::bch_line(t).alias_prob())
            .collect();
        assert!(
            ladder[1] > 0.05 && ladder[1] < 0.5,
            "BCH-2 alias {}",
            ladder[1]
        );
        for w in ladder.windows(2) {
            assert!(w[1] < w[0], "alias prob not decreasing: {ladder:?}");
        }
    }

    #[test]
    fn secded_single_errors_always_corrected() {
        let mut rng = StdRng::seed_from_u64(3);
        let c = CodeSpec::secded_line();
        for _ in 0..200 {
            assert_eq!(
                c.classify(1, &mut rng),
                ClassifyOutcome::Corrected { bits: 1 }
            );
        }
    }

    #[test]
    fn secded_two_errors_mostly_survive_spread() {
        // Two errors usually land in different words (7/8 of the time
        // roughly) and are each corrected; same-word doubles are detected.
        let mut rng = StdRng::seed_from_u64(4);
        let c = CodeSpec::secded_line();
        let mut corrected = 0;
        let mut detected = 0;
        for _ in 0..4000 {
            match c.classify(2, &mut rng) {
                ClassifyOutcome::Corrected { .. } => corrected += 1,
                ClassifyOutcome::DetectedUncorrectable => detected += 1,
                other => panic!("unexpected {other:?}"),
            }
        }
        let frac_detected = detected as f64 / 4000.0;
        // Same-word probability = 71/575 ≈ 0.1235.
        assert!(
            (frac_detected - 71.0 / 575.0).abs() < 0.03,
            "detected fraction {frac_detected}"
        );
        assert!(corrected > 0);
    }

    #[test]
    fn secded_many_errors_fail() {
        let mut rng = StdRng::seed_from_u64(5);
        let c = CodeSpec::secded_line();
        let mut failures = 0;
        for _ in 0..500 {
            if c.classify(8, &mut rng).is_uncorrectable() {
                failures += 1;
            }
        }
        // With 8 errors over 8 words a same-word pair is very likely.
        assert!(failures > 450, "only {failures}/500 uncorrectable");
    }

    #[test]
    fn ladder_is_ordered_by_strength() {
        let ladder = standard_code_ladder();
        assert_eq!(ladder.len(), 7);
        for w in ladder.windows(2) {
            assert!(w[0].guaranteed_t() <= w[1].guaranteed_t());
        }
    }

    #[test]
    fn spread_conserves_errors() {
        let mut rng = StdRng::seed_from_u64(6);
        for e in [1u32, 3, 8, 20] {
            let counts = spread_errors(e, 8, 72, &mut rng);
            assert_eq!(counts.iter().sum::<u32>(), e);
        }
    }

    /// The closed-form UE marginal must match the Monte-Carlo frequency of
    /// `classify` itself — this is the bridge the oracle crate stands on.
    #[test]
    fn ue_marginal_matches_classify_frequency() {
        let mut rng = StdRng::seed_from_u64(7);
        let secded = CodeSpec::secded_line();
        for e in [2u32, 3, 5, 8] {
            let p = secded.p_uncorrectable_given_errors(e);
            let trials = 6000;
            let mut ue = 0;
            for _ in 0..trials {
                if secded.classify(e, &mut rng).is_uncorrectable() {
                    ue += 1;
                }
            }
            let freq = ue as f64 / trials as f64;
            let sd = (p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (freq - p).abs() < 5.0 * sd + 1e-9,
                "e={e}: classify freq {freq} vs marginal {p}"
            );
        }
        // Degenerate and per-line cases.
        assert_eq!(secded.p_uncorrectable_given_errors(0), 0.0);
        assert_eq!(secded.p_uncorrectable_given_errors(9), 1.0);
        let bch2 = CodeSpec::bch_line(2);
        assert_eq!(bch2.p_uncorrectable_given_errors(2), 0.0);
        assert_eq!(bch2.p_uncorrectable_given_errors(3), 1.0);
    }

    #[test]
    fn ue_marginal_monotone_in_errors() {
        let secded = CodeSpec::secded_line();
        let mut prev = 0.0;
        for e in 0..=10 {
            let p = secded.p_uncorrectable_given_errors(e);
            assert!((0.0..=1.0).contains(&p));
            assert!(p + 1e-12 >= prev, "UE marginal dipped at e={e}");
            prev = p;
        }
    }

    #[test]
    fn rs_sizes_and_capability() {
        let c = CodeSpec::rs_line(72, 64);
        assert_eq!(c.data_bits(), 512);
        assert_eq!(c.parity_bits(), 64);
        assert_eq!(c.total_bits(), 576);
        assert_eq!(c.guaranteed_t(), 4);
        assert!(c.name().starts_with("RS-4"));
        let wide = CodeSpec::rs_line(80, 64);
        assert_eq!(wide.guaranteed_t(), 8);
        assert!(wide.alias_prob() < c.alias_prob());
    }

    #[test]
    #[should_panic(expected = "1 <= k < n")]
    fn rs_rejects_k_ge_n() {
        CodeSpec::rs_line(64, 64);
    }

    #[test]
    fn rs_classify_boundary() {
        let mut rng = StdRng::seed_from_u64(8);
        let c = CodeSpec::rs_line(72, 64);
        for e in 1..=4 {
            assert_eq!(
                c.classify(e, &mut rng),
                ClassifyOutcome::Corrected { bits: e }
            );
        }
        // 5..=32 random bits may or may not hit > 4 symbols; far beyond
        // t·s = 32 they always do.
        for _ in 0..50 {
            assert!(c.classify(33, &mut rng).is_uncorrectable());
        }
    }

    #[test]
    fn rs_ue_marginal_matches_classify_frequency() {
        let mut rng = StdRng::seed_from_u64(9);
        let c = CodeSpec::rs_line(72, 64);
        for e in [5u32, 8, 12, 20] {
            let p = c.p_uncorrectable_given_errors(e);
            let trials = 6000;
            let mut ue = 0;
            for _ in 0..trials {
                if c.classify(e, &mut rng).is_uncorrectable() {
                    ue += 1;
                }
            }
            let freq = ue as f64 / trials as f64;
            let sd = (p * (1.0 - p) / trials as f64).sqrt();
            assert!(
                (freq - p).abs() < 5.0 * sd + 2e-3,
                "e={e}: classify freq {freq} vs marginal {p}"
            );
        }
        assert_eq!(c.p_uncorrectable_given_errors(4), 0.0);
        assert_eq!(c.p_uncorrectable_given_errors(33), 1.0);
    }

    #[test]
    fn rs_ue_marginal_monotone_in_errors() {
        let c = CodeSpec::rs_line(72, 64);
        let mut prev = 0.0;
        for e in 0..=40 {
            let p = c.p_uncorrectable_given_errors(e);
            assert!((0.0..=1.0).contains(&p));
            assert!(p + 1e-12 >= prev, "UE marginal dipped at e={e}");
            prev = p;
        }
    }

    #[test]
    fn symbol_occupancy_pmf_is_a_distribution() {
        for e in [0u32, 1, 5, 16, 40] {
            let pmf = symbol_occupancy_pmf(72, 8, e);
            let total: f64 = pmf.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "e={e}: sums to {total}");
            // Support is exactly ceil(e/s) ..= min(e, n).
            for (m, &p) in pmf.iter().enumerate() {
                let lo = (e as usize).div_ceil(8);
                let hi = (e as usize).min(72);
                if m < lo || m > hi {
                    assert_eq!(p, 0.0, "e={e} m={m}");
                }
            }
        }
    }

    #[test]
    fn classify_split_is_identical_for_bit_codes() {
        // The burst-aware entry point must be *draw-for-draw* identical to
        // plain classify for non-symbol codes — the determinism goldens
        // depend on it.
        for code in [CodeSpec::secded_line(), CodeSpec::bch_line(6)] {
            let mut a = StdRng::seed_from_u64(10);
            let mut b = StdRng::seed_from_u64(10);
            for (random, burst) in [(0u32, 5u32), (3, 0), (2, 7), (9, 1)] {
                assert_eq!(
                    code.classify(random + burst, &mut a),
                    code.classify_split(random, burst, &mut b)
                );
            }
            // RNG streams stayed in lockstep.
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn rs_burst_beats_bch_at_count_level() {
        let mut rng = StdRng::seed_from_u64(11);
        let rs = CodeSpec::rs_line(72, 64);
        let bch = CodeSpec::bch_line(6);
        // A 25-bit contiguous burst: ≤ ceil((7+25)/8) = 4 = t symbols
        // whatever the alignment, so RS always corrects; BCH-6 sees 25 > 6
        // bit errors and always fails.
        for _ in 0..200 {
            assert_eq!(
                rs.classify_split(0, 25, &mut rng),
                ClassifyOutcome::Corrected { bits: 25 }
            );
            assert!(bch.classify_split(0, 25, &mut rng).is_uncorrectable());
        }
        // Burst plus scattered drift: still corrected while the scattered
        // part stays within the leftover symbol budget rarely — just check
        // the verdict is never Clean and bits accounting holds.
        for _ in 0..200 {
            match rs.classify_split(2, 10, &mut rng) {
                ClassifyOutcome::Corrected { bits } => assert_eq!(bits, 12),
                other => assert!(other.is_uncorrectable()),
            }
        }
    }

    #[test]
    fn outcome_predicates() {
        assert!(ClassifyOutcome::Clean.data_intact());
        assert!(ClassifyOutcome::Corrected { bits: 2 }.data_intact());
        assert!(ClassifyOutcome::DetectedUncorrectable.is_uncorrectable());
        assert!(ClassifyOutcome::Miscorrected.is_uncorrectable());
    }
}
