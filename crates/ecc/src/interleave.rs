//! Bit interleaving across multiple codewords: converts burst errors
//! (e.g. a failed column driver clobbering adjacent cells) into isolated
//! errors each sub-code can correct.

use crate::bits::BitBuf;
use crate::code::{DecodeOutcome, LineCode};

/// `k`-way bit interleaving of a base code.
///
/// Data and codeword bits are distributed round-robin over `k` instances
/// of the base code, so a contiguous burst of length `L` lands at most
/// `⌈L/k⌉` errors in any one instance. With a BCH-t base, bursts up to
/// `k·t` are always corrected.
///
/// # Examples
///
/// ```
/// use pcm_ecc::{BchCode, BitBuf, DecodeOutcome, Interleaved, LineCode};
/// let code = Interleaved::new(BchCode::new(8, 2, 128), 4);
/// assert_eq!(code.data_bits(), 512);
/// let data = BitBuf::zeros(512);
/// let mut cw = code.encode(&data);
/// // An 8-bit burst: 2 errors per sub-code, within BCH-2 capability.
/// for i in 100..108 {
///     cw.flip(i);
/// }
/// assert_eq!(code.decode(&mut cw), DecodeOutcome::Corrected { bits: 8 });
/// ```
#[derive(Debug, Clone)]
pub struct Interleaved<C> {
    base: C,
    k: usize,
}

impl<C: LineCode> Interleaved<C> {
    /// Interleaves `k` instances of `base`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(base: C, k: usize) -> Self {
        assert!(k >= 1, "interleaving factor must be at least 1");
        Self { base, k }
    }

    /// The interleaving factor.
    pub fn factor(&self) -> usize {
        self.k
    }

    /// Longest burst guaranteed correctable.
    pub fn burst_capability(&self) -> u32 {
        self.base.t() * self.k as u32
    }

    fn split(&self, whole: &BitBuf, unit: usize) -> Vec<BitBuf> {
        let mut parts = vec![BitBuf::zeros(unit); self.k];
        for i in 0..whole.len() {
            if whole.get(i) {
                parts[i % self.k].set(i / self.k, true);
            }
        }
        parts
    }

    fn join(&self, parts: &[BitBuf], total: usize) -> BitBuf {
        let mut whole = BitBuf::zeros(total);
        for i in 0..total {
            if parts[i % self.k].get(i / self.k) {
                whole.set(i, true);
            }
        }
        whole
    }
}

impl<C: LineCode> LineCode for Interleaved<C> {
    fn data_bits(&self) -> usize {
        self.base.data_bits() * self.k
    }

    fn parity_bits(&self) -> usize {
        self.base.parity_bits() * self.k
    }

    fn t(&self) -> u32 {
        // Guaranteed for arbitrary (non-burst) patterns: t errors could
        // all land in one sub-code.
        self.base.t()
    }

    fn name(&self) -> String {
        format!("{}x interleaved {}", self.k, self.base.name())
    }

    fn encode(&self, data: &BitBuf) -> BitBuf {
        assert_eq!(data.len(), self.data_bits(), "payload length mismatch");
        let parts = self.split(data, self.base.data_bits());
        let coded: Vec<BitBuf> = parts.iter().map(|p| self.base.encode(p)).collect();
        self.join(&coded, self.data_bits() + self.parity_bits())
    }

    fn decode(&self, received: &mut BitBuf) -> DecodeOutcome {
        assert_eq!(
            received.len(),
            self.data_bits() + self.parity_bits(),
            "codeword length mismatch"
        );
        let mut parts = self.split(received, self.base.data_bits() + self.base.parity_bits());
        let mut total = 0u32;
        let mut failed = false;
        for p in &mut parts {
            match self.base.decode(p) {
                DecodeOutcome::Clean => {}
                DecodeOutcome::Corrected { bits } => total += bits,
                DecodeOutcome::Uncorrectable => failed = true,
            }
        }
        *received = self.join(&parts, received.len());
        if failed {
            DecodeOutcome::Uncorrectable
        } else if total == 0 {
            DecodeOutcome::Clean
        } else {
            DecodeOutcome::Corrected { bits: total }
        }
    }

    fn extract_data(&self, codeword: &BitBuf) -> BitBuf {
        let parts = self.split(codeword, self.base.data_bits() + self.base.parity_bits());
        let datas: Vec<BitBuf> = parts.iter().map(|p| self.base.extract_data(p)).collect();
        self.join(&datas, self.data_bits())
    }

    fn syndromes_clean(&self, received: &BitBuf) -> bool {
        self.split(received, self.base.data_bits() + self.base.parity_bits())
            .iter()
            .all(|p| self.base.syndromes_clean(p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bch::BchCode;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_data(rng: &mut StdRng, bits: usize) -> BitBuf {
        let mut b = BitBuf::zeros(bits);
        for i in 0..bits {
            if rng.gen::<bool>() {
                b.set(i, true);
            }
        }
        b
    }

    #[test]
    fn clean_roundtrip() {
        let code = Interleaved::new(BchCode::new(8, 2, 128), 4);
        let mut rng = StdRng::seed_from_u64(1);
        let data = random_data(&mut rng, 512);
        let mut cw = code.encode(&data);
        assert_eq!(code.decode(&mut cw), DecodeOutcome::Clean);
        assert_eq!(code.extract_data(&cw), data);
    }

    #[test]
    fn corrects_max_length_burst() {
        let code = Interleaved::new(BchCode::new(8, 2, 128), 4);
        let mut rng = StdRng::seed_from_u64(2);
        let data = random_data(&mut rng, 512);
        let clean = code.encode(&data);
        let burst = code.burst_capability() as usize; // 8
        for start in [0usize, 77, 500] {
            let mut cw = clean.clone();
            for i in start..start + burst {
                cw.flip(i);
            }
            assert_eq!(
                code.decode(&mut cw),
                DecodeOutcome::Corrected { bits: burst as u32 },
                "burst at {start}"
            );
            assert_eq!(code.extract_data(&cw), data, "burst at {start}");
        }
    }

    #[test]
    fn burst_past_capability_fails_or_detects() {
        let code = Interleaved::new(BchCode::new(8, 1, 128), 2);
        let mut rng = StdRng::seed_from_u64(3);
        let data = random_data(&mut rng, 256);
        let mut cw = code.encode(&data);
        // Burst of 6 > capability 2·1: some sub-code gets 3 errors.
        for i in 10..16 {
            cw.flip(i);
        }
        match code.decode(&mut cw) {
            DecodeOutcome::Clean => panic!("burst decoded clean"),
            DecodeOutcome::Uncorrectable => {}
            DecodeOutcome::Corrected { .. } => {
                assert_ne!(code.extract_data(&cw), data, "silent success impossible");
            }
        }
    }

    #[test]
    fn lightweight_detection_composes() {
        let code = Interleaved::new(BchCode::new(8, 2, 128), 4);
        let mut rng = StdRng::seed_from_u64(4);
        let data = random_data(&mut rng, 512);
        let clean = code.encode(&data);
        assert!(code.syndromes_clean(&clean));
        let mut dirty = clean.clone();
        dirty.flip(3);
        assert!(!code.syndromes_clean(&dirty));
    }

    #[test]
    fn sizes_scale_with_factor() {
        let code = Interleaved::new(BchCode::new(8, 2, 100), 3);
        assert_eq!(code.data_bits(), 300);
        assert_eq!(code.parity_bits(), 3 * 16);
        assert_eq!(code.t(), 2);
        assert_eq!(code.burst_capability(), 6);
        assert!(code.name().contains("3x interleaved"));
    }
}
