//! Bit-exact Reed–Solomon codec over GF(2^m): systematic encoding from
//! the narrow-sense generator, syndrome → Berlekamp–Massey → Chien →
//! Forney decoding with bounded-distance rejection.
//!
//! Symbols are field elements; a `t`-symbol-correcting `(n, k)` code has
//! `n − k = 2t` parity symbols. Because correction is per *symbol*, a
//! contiguous burst of `(t−1)·m + 1` bits can never span more than `t`
//! symbols and is always corrected — the burst tolerance the bit-budget
//! BCH path cannot give.

use crate::bits::BitBuf;
use crate::code::{DecodeOutcome, LineCode};
use crate::gf::GfTable;
use crate::poly::GfPoly;

/// A (possibly shortened) Reed–Solomon code over GF(2^m).
///
/// Codeword layout is systematic with parity in the low positions:
/// symbol `i` is the coefficient of `x^i`; parity occupies `0..2t` and
/// data occupies `2t..n`. The [`LineCode`] impl maps symbol `i` onto bits
/// `i·m .. (i+1)·m` (little-endian within the symbol).
///
/// # Examples
///
/// ```
/// use pcm_ecc::RsCode;
/// let code = RsCode::new(8, 72, 64); // RS(72,64) over GF(2^8), t = 4
/// let data: Vec<u16> = (0..64).map(|i| (i * 7 + 3) % 256).collect();
/// let mut cw = code.encode_symbols(&data);
/// cw[10] ^= 0xA5;
/// cw[63] ^= 0x01;
/// assert_eq!(code.decode_symbols(&mut cw), Some(2));
/// assert_eq!(&cw[8..], &data[..]);
/// ```
#[derive(Debug, Clone)]
pub struct RsCode {
    gf: GfTable,
    t: u32,
    /// Shortened code length in symbols (data + parity).
    n: usize,
    /// Data symbols.
    k: usize,
    /// Generator polynomial `∏_{i=1}^{2t} (x − α^i)`, monic, degree 2t.
    gen: GfPoly,
}

impl RsCode {
    /// Constructs the `(n, k)` Reed–Solomon code over GF(2^m), correcting
    /// `t = (n − k)/2` symbol errors.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k`, `k + 2 ≤ n ≤ 2^m − 1`, and `n − k` is even.
    pub fn new(m: u32, n: usize, k: usize) -> Self {
        let gf = GfTable::new(m);
        assert!(k >= 1, "RS needs k >= 1, got {k}");
        assert!(n > k, "RS needs n > k, got ({n},{k})");
        assert!(
            n <= gf.order(),
            "RS length {n} exceeds field order {}",
            gf.order()
        );
        assert!((n - k) % 2 == 0, "RS parity n - k must be even: ({n},{k})");
        let t = ((n - k) / 2) as u32;
        assert!(t >= 1, "RS needs t >= 1, got ({n},{k})");
        let mut gen = GfPoly::one();
        for i in 1..=(2 * t as usize) {
            gen = gen.mul(&GfPoly::from_coeffs(vec![gf.alpha_pow(i), 1]), &gf);
        }
        debug_assert_eq!(gen.degree(), Some(n - k));
        Self { gf, t, n, k, gen }
    }

    /// Codeword length in symbols.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Data symbols per codeword.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Guaranteed correction capability in symbol errors.
    pub fn t_symbols(&self) -> u32 {
        self.t
    }

    /// Bits per symbol (the field degree m).
    pub fn symbol_bits(&self) -> usize {
        self.gf.m() as usize
    }

    /// Systematic encode: `k` data symbols (each `< 2^m`) into an
    /// `n`-symbol codeword, parity in positions `0..2t`.
    ///
    /// # Panics
    ///
    /// Panics on a wrong-length slice or an out-of-field symbol.
    pub fn encode_symbols(&self, data: &[u16]) -> Vec<u16> {
        assert_eq!(data.len(), self.k, "payload length mismatch");
        let order = self.gf.order() as u16;
        assert!(
            data.iter().all(|&d| d <= order),
            "data symbol out of GF(2^{})",
            self.gf.m()
        );
        let parity = self.n - self.k;
        // c(x) = d(x)·x^{2t} + (d(x)·x^{2t} mod g(x)); g is monic.
        let mut rem = vec![0u16; self.n];
        rem[parity..].copy_from_slice(data);
        for i in (parity..self.n).rev() {
            let lead = rem[i];
            if lead == 0 {
                continue;
            }
            rem[i] = 0;
            for (j, &g) in self.gen.coeffs()[..parity].iter().enumerate() {
                rem[i - parity + j] ^= self.gf.mul(lead, g);
            }
        }
        let mut cw = rem;
        cw[parity..].copy_from_slice(data);
        cw
    }

    /// The 2t syndromes `S_j = r(α^{j+1})`; `None` when all are zero.
    fn syndromes(&self, recv: &[u16]) -> Option<Vec<u16>> {
        let two_t = 2 * self.t as usize;
        let mut synd = vec![0u16; two_t];
        for (j, s) in synd.iter_mut().enumerate() {
            // Horner evaluation of the received polynomial at α^{j+1}.
            let x = self.gf.alpha_pow(j + 1);
            let mut acc = 0u16;
            for &c in recv.iter().rev() {
                acc = self.gf.mul(acc, x) ^ c;
            }
            *s = acc;
        }
        if synd.iter().any(|&s| s != 0) {
            Some(synd)
        } else {
            None
        }
    }

    /// Berlekamp–Massey: error-locator σ from syndromes, `(coeffs, deg)`.
    /// σ(0) = 1 always; general (non-binary) form, same update as the BCH
    /// decoder's.
    fn berlekamp_massey(&self, synd: &[u16]) -> (Vec<u16>, usize) {
        let gf = &self.gf;
        let len = synd.len() + 1;
        let mut sigma = vec![0u16; len];
        let mut prev = vec![0u16; len];
        sigma[0] = 1;
        prev[0] = 1;
        let mut l = 0usize;
        let mut m_gap = 1usize;
        let mut b = 1u16;
        for n_iter in 0..synd.len() {
            let mut d = synd[n_iter];
            for i in 1..=l.min(n_iter) {
                d ^= gf.mul(sigma[i], synd[n_iter - i]);
            }
            if d == 0 {
                m_gap += 1;
                continue;
            }
            let scale = gf.div(d, b);
            if 2 * l <= n_iter {
                let old_sigma = sigma.clone();
                for i in 0..len - m_gap {
                    sigma[i + m_gap] ^= gf.mul(prev[i], scale);
                }
                l = n_iter + 1 - l;
                prev = old_sigma;
                b = d;
                m_gap = 1;
            } else {
                for i in 0..len - m_gap {
                    sigma[i + m_gap] ^= gf.mul(prev[i], scale);
                }
                m_gap += 1;
            }
        }
        let deg = (0..len).rev().find(|&i| sigma[i] != 0).unwrap_or(0);
        (sigma, deg)
    }

    /// Bounded-distance decode in place. Returns `Some(0)` for a clean
    /// word, `Some(e)` after correcting `e ≤ t` symbols, and `None` when
    /// the word is rejected as uncorrectable (the received symbols are
    /// left unmodified in that case).
    pub fn decode_symbols(&self, received: &mut [u16]) -> Option<u32> {
        assert_eq!(received.len(), self.n, "codeword length mismatch");
        let Some(synd) = self.syndromes(received) else {
            return Some(0);
        };
        let (sigma, deg) = self.berlekamp_massey(&synd);
        if deg == 0 || deg > self.t as usize {
            return None;
        }
        // Chien search over the *full* (unshortened) order so roots in the
        // shortened-away region are caught as uncorrectable.
        let gf = &self.gf;
        let order = gf.order();
        let mut roots = Vec::with_capacity(deg);
        for p in 0..order {
            let x = gf.alpha_pow(order - p); // α^{-p}
            let mut acc = sigma[deg];
            for c in sigma[..deg].iter().rev() {
                acc = gf.mul(acc, x) ^ c;
            }
            if acc == 0 {
                roots.push(p);
                if roots.len() > deg {
                    return None;
                }
            }
        }
        if roots.len() != deg || roots.iter().any(|&p| p >= self.n) {
            return None;
        }
        // Forney error values: Ω(x) = S(x)·σ(x) mod x^{2t};
        // Y_p = Ω(X_p^{-1}) / σ'(X_p^{-1}) with X_p = α^p (b = 1).
        let two_t = 2 * self.t as usize;
        let mut omega = vec![0u16; two_t];
        for (i, &s) in synd.iter().enumerate() {
            if s == 0 {
                continue;
            }
            for (j, &c) in sigma[..=deg].iter().enumerate() {
                if i + j < two_t {
                    omega[i + j] ^= gf.mul(s, c);
                }
            }
        }
        let mut fixes = Vec::with_capacity(deg);
        for &p in &roots {
            let x_inv = gf.alpha_pow(order - p);
            let mut om = 0u16;
            for &c in omega.iter().rev() {
                om = gf.mul(om, x_inv) ^ c;
            }
            // Formal derivative in characteristic 2: odd-degree terms only.
            let mut dsig = 0u16;
            for (i, &c) in sigma[..=deg].iter().enumerate() {
                if i % 2 == 1 {
                    dsig ^= gf.mul(c, gf.pow(x_inv, (i - 1) as u64));
                }
            }
            if dsig == 0 || om == 0 {
                return None;
            }
            fixes.push((p, gf.div(om, dsig)));
        }
        for &(p, y) in &fixes {
            received[p] ^= y;
        }
        // Bounded-distance consistency: the corrected word must be a
        // codeword. A failure here means the pattern was inconsistent —
        // revert and reject rather than hand back a corrupted word.
        if self.syndromes(received).is_some() {
            for &(p, y) in &fixes {
                received[p] ^= y;
            }
            return None;
        }
        Some(deg as u32)
    }

    /// Symbol view of a bit buffer (symbol `i` ← bits `i·m..(i+1)·m`).
    fn to_symbols(&self, bits: &BitBuf) -> Vec<u16> {
        let m = self.symbol_bits();
        (0..bits.len() / m)
            .map(|i| {
                let mut sym = 0u16;
                for j in 0..m {
                    if bits.get(i * m + j) {
                        sym |= 1 << j;
                    }
                }
                sym
            })
            .collect()
    }

    fn from_symbols(&self, symbols: &[u16]) -> BitBuf {
        let m = self.symbol_bits();
        let mut bits = BitBuf::zeros(symbols.len() * m);
        for (i, &sym) in symbols.iter().enumerate() {
            for j in 0..m {
                if (sym >> j) & 1 == 1 {
                    bits.set(i * m + j, true);
                }
            }
        }
        bits
    }
}

impl LineCode for RsCode {
    fn data_bits(&self) -> usize {
        self.k * self.symbol_bits()
    }

    fn parity_bits(&self) -> usize {
        (self.n - self.k) * self.symbol_bits()
    }

    /// Guaranteed *bit*-error capability: any `t` bit errors hit at most
    /// `t` symbols, so the symbol capability carries over directly.
    fn t(&self) -> u32 {
        self.t
    }

    fn name(&self) -> String {
        format!(
            "RS-{} ({},{}) GF(2^{})",
            self.t,
            self.n,
            self.k,
            self.gf.m()
        )
    }

    fn encode(&self, data: &BitBuf) -> BitBuf {
        assert_eq!(data.len(), self.data_bits(), "payload length mismatch");
        self.from_symbols(&self.encode_symbols(&self.to_symbols(data)))
    }

    fn decode(&self, received: &mut BitBuf) -> DecodeOutcome {
        assert_eq!(
            received.len(),
            self.n * self.symbol_bits(),
            "codeword length mismatch"
        );
        let mut symbols = self.to_symbols(received);
        match self.decode_symbols(&mut symbols) {
            Some(0) => DecodeOutcome::Clean,
            Some(_) => {
                let corrected = self.from_symbols(&symbols);
                let mut bits = 0u32;
                for i in 0..received.len() {
                    if received.get(i) != corrected.get(i) {
                        received.flip(i);
                        bits += 1;
                    }
                }
                DecodeOutcome::Corrected { bits }
            }
            None => DecodeOutcome::Uncorrectable,
        }
    }

    fn extract_data(&self, codeword: &BitBuf) -> BitBuf {
        codeword.slice((self.n - self.k) * self.symbol_bits(), self.data_bits())
    }

    fn syndromes_clean(&self, received: &BitBuf) -> bool {
        self.syndromes(&self.to_symbols(received)).is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_symbols<R: Rng>(rng: &mut R, code: &RsCode) -> Vec<u16> {
        (0..code.k())
            .map(|_| rng.gen_range(0..=code.gf.order() as u16))
            .collect()
    }

    #[test]
    fn generator_has_prescribed_roots() {
        let code = RsCode::new(8, 72, 64);
        for i in 1..=8usize {
            assert_eq!(code.gen.eval(code.gf.alpha_pow(i), &code.gf), 0, "α^{i}");
        }
        assert_ne!(code.gen.eval(code.gf.alpha_pow(9), &code.gf), 0);
    }

    #[test]
    fn clean_roundtrip() {
        let mut rng = StdRng::seed_from_u64(41);
        let code = RsCode::new(8, 72, 64);
        for _ in 0..10 {
            let data = random_symbols(&mut rng, &code);
            let mut cw = code.encode_symbols(&data);
            assert_eq!(code.decode_symbols(&mut cw), Some(0));
            assert_eq!(&cw[8..], &data[..]);
        }
    }

    #[test]
    fn corrects_up_to_t_symbol_errors() {
        let mut rng = StdRng::seed_from_u64(42);
        for (m, n, k) in [(8usize, 72usize, 64usize), (8, 80, 64), (3, 7, 3)] {
            let code = RsCode::new(m as u32, n, k);
            let t = code.t_symbols() as usize;
            for trial in 0..20 {
                let data = random_symbols(&mut rng, &code);
                let clean = code.encode_symbols(&data);
                for e in 1..=t {
                    let mut cw = clean.clone();
                    let mut hit = std::collections::HashSet::new();
                    while hit.len() < e {
                        let p = rng.gen_range(0..n);
                        if hit.insert(p) {
                            cw[p] ^= rng.gen_range(1..=code.gf.order() as u16);
                        }
                    }
                    assert_eq!(
                        code.decode_symbols(&mut cw),
                        Some(e as u32),
                        "({n},{k}) e={e} trial={trial}"
                    );
                    assert_eq!(&cw[n - k..], &data[..], "({n},{k}) e={e}");
                }
            }
        }
    }

    #[test]
    fn rejection_leaves_word_untouched() {
        let mut rng = StdRng::seed_from_u64(43);
        let code = RsCode::new(8, 72, 64);
        let data = random_symbols(&mut rng, &code);
        let clean = code.encode_symbols(&data);
        let mut corrupted = clean.clone();
        let mut hit = std::collections::HashSet::new();
        while hit.len() < 9 {
            let p = rng.gen_range(0..code.n());
            if hit.insert(p) {
                corrupted[p] ^= rng.gen_range(1..256u16);
            }
        }
        let snapshot = corrupted.clone();
        if code.decode_symbols(&mut corrupted).is_none() {
            assert_eq!(corrupted, snapshot, "rejected word was modified");
        }
    }

    #[test]
    fn bit_interface_round_trips_and_corrects_bursts() {
        let mut rng = StdRng::seed_from_u64(44);
        let code = RsCode::new(8, 72, 64);
        let mut data = BitBuf::zeros(512);
        for i in 0..512 {
            if rng.gen_bool(0.5) {
                data.set(i, true);
            }
        }
        let clean = code.encode(&data);
        assert_eq!(code.decode(&mut clean.clone()), DecodeOutcome::Clean);
        // A 25-bit contiguous burst spans at most ceil(25/8)+1 = 5 symbols
        // only when misaligned past (t-1)*8+1 = 25; at 25 bits it spans at
        // most 4 = t symbols and must always be corrected.
        for start in 0..(clean.len() - 25) {
            let mut cw = clean.clone();
            for i in start..start + 25 {
                cw.flip(i);
            }
            match code.decode(&mut cw) {
                DecodeOutcome::Corrected { bits: 25 } => {}
                other => panic!("25-bit burst at {start}: {other:?}"),
            }
            assert_eq!(code.extract_data(&cw), data);
        }
    }

    #[test]
    fn shortened_region_errors_rejected() {
        // A code shortened far below the field order: locator roots that
        // point past n must be rejected, not applied.
        let code = RsCode::new(8, 20, 16);
        let mut rng = StdRng::seed_from_u64(45);
        for _ in 0..200 {
            let data = random_symbols(&mut rng, &code);
            let mut cw = code.encode_symbols(&data);
            for _ in 0..5 {
                cw[rng.gen_range(0..20)] ^= rng.gen_range(1..256u16);
            }
            if let Some(e) = code.decode_symbols(&mut cw) {
                assert!(e <= 2, "claimed {e} > t corrections");
                assert!(code.syndromes(&cw).is_none());
            }
        }
    }

    #[test]
    #[should_panic(expected = "n - k must be even")]
    fn odd_parity_rejected() {
        RsCode::new(8, 71, 64);
    }

    #[test]
    #[should_panic(expected = "exceeds field order")]
    fn oversized_length_rejected() {
        RsCode::new(3, 8, 4);
    }
}
