//! Property tests for Start-Gap wear leveling: the remap stays a
//! bijection under arbitrary write sequences, logical contents survive
//! gap rotations when the controller performs the prescribed copy, and
//! total wear across a real [`Memory`] is conserved (every write lands
//! on exactly one physical line, no write is lost or double-counted).

use pcm_ecc::CodeSpec;
use pcm_memsim::{LineAddr, MemGeometry, Memory, SimTime, StartGap};
use pcm_model::DeviceConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// After any number of writes (and therefore rotations), the
    /// logical→physical map is injective, in range, and never lands on
    /// the gap line.
    #[test]
    fn map_stays_bijective_under_arbitrary_writes(
        physical in 2u32..64,
        period in 1u32..8,
        writes in 0u32..500,
    ) {
        let mut sg = StartGap::new(physical, period);
        for _ in 0..writes {
            sg.on_write();
        }
        let n = sg.logical_lines();
        let mut seen = vec![false; physical as usize];
        for l in 0..n {
            let p = sg.map(LineAddr(l)).0;
            prop_assert!(p < physical, "phys {} out of range", p);
            prop_assert_ne!(p, sg.gap(), "logical {} mapped onto the gap", l);
            prop_assert!(!seen[p as usize], "phys {} hit twice", p);
            seen[p as usize] = true;
        }
    }

    /// Contents survive remapping: model a physical array where every
    /// rotation copies the line now occupying the new gap slot into the
    /// old gap slot (exactly what `Memory::rotate_wear_leveler` does).
    /// Reading any logical line through `map` must always return the
    /// last value written to that logical line.
    #[test]
    fn contents_survive_remap_round_trips(
        physical in 3u32..48,
        period in 1u32..6,
        // Each entry packs (logical address, value salt) into one u64:
        // the vendored proptest has no tuple strategies.
        writes in proptest::collection::vec(0u64..1_000_000_000, 1..250),
    ) {
        let mut sg = StartGap::new(physical, period);
        let n = sg.logical_lines();
        let mut contents: Vec<u64> = vec![0; physical as usize];
        let mut expected: Vec<u64> = (0..n as u64).map(|l| l + 1).collect();
        for (l, v) in expected.iter().enumerate() {
            contents[sg.map(LineAddr(l as u32)).0 as usize] = *v;
        }
        for (i, packed) in writes.iter().enumerate() {
            let l = (packed % n as u64) as u32;
            let salt = packed / n as u64;
            let v = 1_000_000_000 + (i as u64) * 1_000_000_000 + salt;
            contents[sg.map(LineAddr(l)).0 as usize] = v;
            expected[l as usize] = v;
            if let Some(dest) = sg.on_write() {
                // The gap has moved; the line displaced by the new gap
                // position is copied into the freed old-gap slot.
                contents[dest.0 as usize] = contents[sg.gap() as usize];
            }
            for ll in 0..n {
                prop_assert_eq!(
                    contents[sg.map(LineAddr(ll)).0 as usize],
                    expected[ll as usize],
                    "logical {} lost its contents after write {}",
                    ll,
                    i
                );
            }
        }
    }

    /// Wear conservation on a real `Memory` with wear leveling enabled:
    /// every physical write — the initial fill, demand writes, scrub
    /// write-backs, and rotation copies — bumps exactly one line's wear,
    /// so the totals must reconcile exactly.
    #[test]
    fn wear_is_conserved_across_rotations(
        seed in 0u64..1_000,
        period in 1u32..9,
        // Each entry packs (op kind, address) into one u32.
        ops in proptest::collection::vec(0u32..30_000, 1..120),
    ) {
        let geom = MemGeometry::new(64, 4);
        let mut m = Memory::new(geom, DeviceConfig::default(), CodeSpec::bch_line(2), seed);
        m.enable_wear_leveling(period);
        let demand_lines = m.demand_lines();
        let all_lines = m.geometry().num_lines();
        for (i, packed) in ops.iter().enumerate() {
            let (kind, addr) = (packed % 3, packed / 3);
            let t = SimTime::from_secs(i as f64);
            match kind {
                0 => {
                    m.demand_write(LineAddr(addr % demand_lines), t);
                }
                1 => {
                    // Scrub addresses are physical: the full range is legal.
                    m.scrub_writeback(LineAddr(addr % all_lines), t);
                }
                _ => {
                    m.demand_read(LineAddr(addr % demand_lines), t);
                }
            }
        }
        let stats = m.stats();
        let total_wear: u64 = m.wear_values().iter().map(|&w| w as u64).sum();
        let expected = all_lines as u64          // initial fill: one write per line
            + stats.demand_writes
            + stats.scrub_writebacks
            + stats.wear_level_writes;
        prop_assert_eq!(
            total_wear,
            expected,
            "wear leak: demand {} + writebacks {} + rotations {}",
            stats.demand_writes,
            stats.scrub_writebacks,
            stats.wear_level_writes
        );
    }
}
