//! End-to-end tests of fault-injection campaigns and the repair hierarchy:
//! determinism across thread counts, fault visibility in probe results,
//! ECP sparing → line retirement → bank-degraded escalation, and the
//! shifted-threshold UE recovery retry.

use pcm_ecc::CodeSpec;
use pcm_memsim::{
    CampaignSpec, LineAddr, MemGeometry, Memory, RecoveryConfig, RepairConfig, SimTime, SweepPlan,
    SweepRule,
};
use pcm_model::{DeviceConfig, EnduranceSpec};

fn campaign(spec: &str) -> CampaignSpec {
    spec.parse().expect("valid campaign spec")
}

#[test]
fn fixed_campaign_sweep_is_byte_identical_across_thread_counts() {
    let day = SimTime::from_secs(86_400.0);
    let times: Vec<SimTime> = (0..256).map(|k| day + k as f64).collect();
    let build = || {
        let mut m = Memory::new(
            MemGeometry::new(256, 4),
            DeviceConfig::default(),
            CodeSpec::bch_line(4),
            7,
        );
        m.attach_campaign(&campaign(
            "seed=9;stuck=lines:32,cells:2;seu=lines:64,count:3,window:90000;\
             intermittent=lines:16,cells:1,period:7200;burst=lines:8,bits:6,at:43200",
        ));
        m.enable_repair(RepairConfig::default());
        m.enable_ue_recovery(RecoveryConfig { recover_prob: 0.5 });
        m
    };
    let mut reference = build();
    let plan = SweepPlan {
        first: LineAddr(0),
        times: &times,
        min_age_s: 0.0,
        rule: SweepRule::Threshold { theta: 3 },
    };
    let ref_out = reference.scrub_sweep(&plan, 1);
    for threads in [2, 8] {
        let mut m = build();
        let out = m.scrub_sweep(&plan, threads);
        assert_eq!(out, ref_out, "threads={threads}");
        assert_eq!(m.stats(), reference.stats(), "threads={threads}");
        assert_eq!(m.energy(), reference.energy(), "threads={threads}");
        for i in 0..256 {
            assert_eq!(
                m.line(LineAddr(i)),
                reference.line(LineAddr(i)),
                "threads={threads} line={i}"
            );
        }
    }
}

#[test]
fn seu_campaign_surfaces_in_probes_and_clears_on_rewrite() {
    let mut m = Memory::new(
        MemGeometry::new(256, 4),
        DeviceConfig::default(),
        CodeSpec::bch_line(6),
        3,
    );
    // Every line takes 5 upsets somewhere in the first 100 seconds.
    m.attach_campaign(&campaign("seed=1;seu=lines:256,count:5,window:100"));
    let after = SimTime::from_secs(200.0);
    for i in 0..256 {
        let r = m.scrub_probe(LineAddr(i), after);
        assert!(
            r.persistent_bits >= 5,
            "line {i}: {} bits, expected the 5 SEUs",
            r.persistent_bits
        );
    }
    // A rewrite reprograms the data, clearing the upsets.
    m.scrub_writeback(LineAddr(0), after);
    let r = m.scrub_probe(LineAddr(0), after + 1.0);
    assert!(r.persistent_bits < 5, "rewrite must clear SEUs");
}

#[test]
fn repair_hierarchy_escalates_through_all_three_stages() {
    // Cells die after ~40 writes, so hammering the memory drives lines
    // through: stuck cells → UE → ECP patch → more stuck cells → ECP
    // exhausted → retire to spare → spares exhausted → unrepairable.
    let device = DeviceConfig::builder()
        .endurance(EnduranceSpec::new(40.0, 0.4))
        .build();
    let mut m = Memory::new(MemGeometry::new(16, 2), device, CodeSpec::bch_line(2), 11);
    m.enable_repair(RepairConfig {
        ecp_entries_per_line: 4,
        spare_lines_per_bank: 2,
    });
    for round in 0..400u32 {
        let now = SimTime::from_secs(round as f64);
        for i in 0..16 {
            m.demand_write(LineAddr(i), now);
            m.demand_read(LineAddr(i), now);
        }
    }
    let stats = m.stats();
    assert!(stats.ecp_repairs > 0, "no ECP repairs: {stats:?}");
    assert!(stats.ecp_cells_patched >= stats.ecp_repairs);
    assert!(stats.lines_retired > 0, "no retirements: {stats:?}");
    assert!(stats.unrepairable_ue > 0, "no unrepairable UEs: {stats:?}");
    assert_eq!(m.degraded_banks(), 2, "both banks must exhaust spares");
    let first = m
        .first_unrepairable_s()
        .expect("degraded memory records its first unrepairable error");
    assert!(first > 0.0 && first < 400.0);
}

#[test]
fn retirement_gives_the_address_a_fresh_line() {
    let device = DeviceConfig::builder()
        .endurance(EnduranceSpec::new(30.0, 0.3))
        .build();
    let mut m = Memory::new(MemGeometry::new(8, 2), device, CodeSpec::bch_line(2), 5);
    m.enable_repair(RepairConfig {
        // No ECP entries: the first hard UE on a line goes straight to
        // retirement.
        ecp_entries_per_line: 0,
        spare_lines_per_bank: 8,
    });
    let mut retired_at = None;
    'outer: for round in 0..300u32 {
        let now = SimTime::from_secs(round as f64);
        for i in 0..8 {
            m.demand_write(LineAddr(i), now);
            let r = m.demand_read(LineAddr(i), now);
            if r.new_ue && m.stats().lines_retired > 0 {
                retired_at = Some((i, round));
                break 'outer;
            }
        }
    }
    let (addr, round) = retired_at.expect("a line must retire under this endurance");
    // The address now resolves to the spare: a freshly programmed line
    // with no wear history.
    let line = m.line(LineAddr(addr));
    assert_eq!(line.worn_cells, 0, "spare must be pristine");
    assert!(
        line.wear < round / 2,
        "spare wear {} must be far below the retired line's ~{}",
        line.wear,
        round
    );
}

#[test]
fn ue_recovery_rescues_drift_dominated_failures() {
    let week = SimTime::from_secs(604_800.0);
    let probe_all = |m: &mut Memory| {
        for i in 0..256 {
            m.demand_read(LineAddr(i), week);
        }
    };
    let build = || {
        Memory::new(
            MemGeometry::new(256, 4),
            DeviceConfig::default(),
            CodeSpec::secded_line(),
            13,
        )
    };
    let mut plain = build();
    probe_all(&mut plain);
    let mut recovering = build();
    // recover_prob 1.0: every drift-failed bit reads back correctly on the
    // shifted-threshold retry, so week-old drift UEs all recover.
    recovering.enable_ue_recovery(RecoveryConfig { recover_prob: 1.0 });
    probe_all(&mut recovering);
    assert!(
        plain.stats().uncorrectable() > 100,
        "week-old SECDED drowns"
    );
    assert_eq!(
        recovering.stats().uncorrectable(),
        0,
        "perfect recovery leaves no UEs"
    );
    assert_eq!(
        recovering.stats().recovered_ue,
        plain.stats().uncorrectable()
    );
}
