//! Operation timing and bandwidth/contention accounting.
//!
//! The simulator runs at line granularity, not cycle granularity; demand
//! latency impact of scrubbing (experiment E9) is estimated from channel
//! utilization with an M/M/1-style contention factor, which captures the
//! shape (more scrub traffic → longer demand reads) without a cycle model.

/// Per-operation service times in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TimingModel {
    /// Array read (line burst).
    pub read_ns: f64,
    /// MLC iterative program-and-verify write.
    pub write_mlc_ns: f64,
    /// SLC single-shot write.
    pub write_slc_ns: f64,
    /// Base ECC decode latency.
    pub decode_base_ns: f64,
    /// Extra decode latency per unit of correction capability `t`.
    pub decode_per_t_ns: f64,
}

impl TimingModel {
    /// Decode latency for a code of strength `t`.
    pub fn decode_ns(&self, t: u32) -> f64 {
        self.decode_base_ns + self.decode_per_t_ns * t as f64
    }

    /// Line write latency for the given cell mode.
    pub fn write_ns(&self, mlc: bool) -> f64 {
        if mlc {
            self.write_mlc_ns
        } else {
            self.write_slc_ns
        }
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self {
            read_ns: 120.0,
            write_mlc_ns: 1000.0,
            write_slc_ns: 150.0,
            decode_base_ns: 10.0,
            decode_per_t_ns: 5.0,
        }
    }
}

/// Accumulates channel busy time per traffic class.
///
/// # Examples
///
/// ```
/// use pcm_memsim::BandwidthTracker;
/// let mut bw = BandwidthTracker::default();
/// bw.add_demand_ns(50.0);
/// bw.add_scrub_ns(50.0);
/// // Over a 1 µs window, scrub used 5% of the channel.
/// assert!((bw.scrub_utilization(1_000.0) - 0.05).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BandwidthTracker {
    demand_busy_ns: f64,
    scrub_busy_ns: f64,
}

impl BandwidthTracker {
    /// Adds demand-traffic busy time.
    pub fn add_demand_ns(&mut self, ns: f64) {
        self.demand_busy_ns += ns;
    }

    /// Adds scrub-traffic busy time.
    pub fn add_scrub_ns(&mut self, ns: f64) {
        self.scrub_busy_ns += ns;
    }

    /// Demand busy time so far (ns).
    pub fn demand_busy_ns(&self) -> f64 {
        self.demand_busy_ns
    }

    /// Scrub busy time so far (ns).
    pub fn scrub_busy_ns(&self) -> f64 {
        self.scrub_busy_ns
    }

    /// Rebuilds a tracker from busy times captured by the getters above,
    /// bit-exactly (for checkpointing).
    pub fn from_busy_ns(demand_busy_ns: f64, scrub_busy_ns: f64) -> Self {
        Self {
            demand_busy_ns,
            scrub_busy_ns,
        }
    }

    /// Fraction of a wall-clock window the channel spent on scrub.
    pub fn scrub_utilization(&self, window_ns: f64) -> f64 {
        if window_ns <= 0.0 {
            0.0
        } else {
            (self.scrub_busy_ns / window_ns).min(1.0)
        }
    }

    /// Fraction of the window busy with anything.
    pub fn total_utilization(&self, window_ns: f64) -> f64 {
        if window_ns <= 0.0 {
            0.0
        } else {
            ((self.demand_busy_ns + self.scrub_busy_ns) / window_ns).min(1.0)
        }
    }

    /// Folds another tracker into this one (merging per-bank shards); call
    /// in a fixed shard order to keep float sums bit-deterministic.
    pub fn absorb(&mut self, other: &BandwidthTracker) {
        self.demand_busy_ns += other.demand_busy_ns;
        self.scrub_busy_ns += other.scrub_busy_ns;
    }

    /// Estimated average demand-read latency given scrub contention:
    /// `base / (1 − u_scrub)` (M/M/1-style slowdown, saturating at 10×
    /// base to keep the estimate sane near saturation).
    pub fn demand_read_latency_ns(&self, base_read_ns: f64, window_ns: f64) -> f64 {
        let u = self.scrub_utilization(window_ns);
        let slowdown = if u >= 0.9 { 10.0 } else { 1.0 / (1.0 - u) };
        base_read_ns * slowdown
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_latency_scales() {
        let t = TimingModel::default();
        assert!(t.decode_ns(6) > t.decode_ns(1));
        assert_eq!(t.decode_ns(0), 10.0);
    }

    #[test]
    fn utilization_math() {
        let mut bw = BandwidthTracker::default();
        bw.add_demand_ns(100.0);
        bw.add_scrub_ns(300.0);
        assert!((bw.scrub_utilization(1000.0) - 0.3).abs() < 1e-12);
        assert!((bw.total_utilization(1000.0) - 0.4).abs() < 1e-12);
        assert_eq!(bw.scrub_utilization(0.0), 0.0);
    }

    #[test]
    fn latency_grows_with_scrub_load() {
        let mut light = BandwidthTracker::default();
        light.add_scrub_ns(10.0);
        let mut heavy = BandwidthTracker::default();
        heavy.add_scrub_ns(500.0);
        let window = 1000.0;
        assert!(
            heavy.demand_read_latency_ns(120.0, window)
                > light.demand_read_latency_ns(120.0, window)
        );
    }

    #[test]
    fn latency_saturates() {
        let mut bw = BandwidthTracker::default();
        bw.add_scrub_ns(999.0);
        assert_eq!(bw.demand_read_latency_ns(100.0, 1000.0), 1000.0);
    }
}
