//! Energy accounting, split by traffic class so "scrub energy" can be
//! reported exactly as the paper does.

/// Running energy totals in picojoules.
///
/// # Examples
///
/// ```
/// use pcm_memsim::EnergyLedger;
/// let mut e = EnergyLedger::default();
/// e.add_scrub_probe(100.0);
/// e.add_scrub_writeback(500.0);
/// assert_eq!(e.scrub_total_pj(), 600.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyLedger {
    demand_read_pj: f64,
    demand_write_pj: f64,
    demand_decode_pj: f64,
    scrub_probe_pj: f64,
    scrub_writeback_pj: f64,
    scrub_decode_pj: f64,
}

impl EnergyLedger {
    /// Adds demand-read array energy.
    pub fn add_demand_read(&mut self, pj: f64) {
        self.demand_read_pj += pj;
    }

    /// Adds demand-write array energy.
    pub fn add_demand_write(&mut self, pj: f64) {
        self.demand_write_pj += pj;
    }

    /// Adds decode energy attributed to demand traffic.
    pub fn add_demand_decode(&mut self, pj: f64) {
        self.demand_decode_pj += pj;
    }

    /// Adds scrub-probe (read) array energy.
    pub fn add_scrub_probe(&mut self, pj: f64) {
        self.scrub_probe_pj += pj;
    }

    /// Adds scrub write-back array energy.
    pub fn add_scrub_writeback(&mut self, pj: f64) {
        self.scrub_writeback_pj += pj;
    }

    /// Adds decode energy attributed to scrubbing.
    pub fn add_scrub_decode(&mut self, pj: f64) {
        self.scrub_decode_pj += pj;
    }

    /// Scrub-attributed total (probes + write-backs + decode): the
    /// quantity the paper's "scrub energy" reductions refer to.
    pub fn scrub_total_pj(&self) -> f64 {
        self.scrub_probe_pj + self.scrub_writeback_pj + self.scrub_decode_pj
    }

    /// Demand-attributed total.
    pub fn demand_total_pj(&self) -> f64 {
        self.demand_read_pj + self.demand_write_pj + self.demand_decode_pj
    }

    /// Grand total.
    pub fn total_pj(&self) -> f64 {
        self.scrub_total_pj() + self.demand_total_pj()
    }

    /// Scrub probe (read) component.
    pub fn scrub_probe_pj(&self) -> f64 {
        self.scrub_probe_pj
    }

    /// Scrub write-back component.
    pub fn scrub_writeback_pj(&self) -> f64 {
        self.scrub_writeback_pj
    }

    /// Scrub decode component.
    pub fn scrub_decode_pj(&self) -> f64 {
        self.scrub_decode_pj
    }

    /// The six raw components in declaration order (demand read / write /
    /// decode, scrub probe / write-back / decode), for checkpointing.
    pub fn components(&self) -> [f64; 6] {
        [
            self.demand_read_pj,
            self.demand_write_pj,
            self.demand_decode_pj,
            self.scrub_probe_pj,
            self.scrub_writeback_pj,
            self.scrub_decode_pj,
        ]
    }

    /// Rebuilds a ledger from [`EnergyLedger::components`] output,
    /// bit-exactly.
    pub fn from_components(c: [f64; 6]) -> Self {
        Self {
            demand_read_pj: c[0],
            demand_write_pj: c[1],
            demand_decode_pj: c[2],
            scrub_probe_pj: c[3],
            scrub_writeback_pj: c[4],
            scrub_decode_pj: c[5],
        }
    }

    /// Folds another ledger into this one (merging per-bank shards). Call
    /// in a fixed shard order: float addition is not associative, so the
    /// merge order is part of the determinism contract.
    pub fn absorb(&mut self, other: &EnergyLedger) {
        self.demand_read_pj += other.demand_read_pj;
        self.demand_write_pj += other.demand_write_pj;
        self.demand_decode_pj += other.demand_decode_pj;
        self.scrub_probe_pj += other.scrub_probe_pj;
        self.scrub_writeback_pj += other.scrub_writeback_pj;
        self.scrub_decode_pj += other.scrub_decode_pj;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_conserve_components() {
        let mut e = EnergyLedger::default();
        e.add_demand_read(1.0);
        e.add_demand_write(2.0);
        e.add_demand_decode(3.0);
        e.add_scrub_probe(4.0);
        e.add_scrub_writeback(5.0);
        e.add_scrub_decode(6.0);
        assert_eq!(e.demand_total_pj(), 6.0);
        assert_eq!(e.scrub_total_pj(), 15.0);
        assert_eq!(e.total_pj(), 21.0);
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(EnergyLedger::default().total_pj(), 0.0);
    }
}
