//! Event counters for everything the experiments report.

/// Counters accumulated by a [`crate::Memory`] over a simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Demand line reads served.
    pub demand_reads: u64,
    /// Demand line writes served.
    pub demand_writes: u64,
    /// Scrub probes (read + syndrome check) issued.
    pub scrub_probes: u64,
    /// Scrub write-backs (corrective rewrites) issued.
    pub scrub_writebacks: u64,
    /// Total bit errors corrected by ECC across all decodes.
    pub corrected_bits: u64,
    /// Detected-uncorrectable error events (deduplicated per line per
    /// write epoch).
    pub detected_ue: u64,
    /// Silent-miscorrection events (deduplicated likewise).
    pub miscorrections: u64,
    /// Uncorrectable errors first encountered by *demand* reads — the ones
    /// a running program actually consumes.
    pub demand_ue: u64,
    /// Lines that currently contain at least one permanently worn cell.
    pub lines_with_worn_cells: u64,
    /// Extra line writes issued by the wear-leveling rotation copies.
    pub wear_level_writes: u64,
    /// Lines patched by assigning ECP entries (repair hierarchy stage 1).
    pub ecp_repairs: u64,
    /// Individual stuck cells covered by ECP entries.
    pub ecp_cells_patched: u64,
    /// Lines retired into the spare pool (repair hierarchy stage 2).
    pub lines_retired: u64,
    /// Uncorrectable errors the repair hierarchy could not absorb
    /// (stage 3: bank degraded).
    pub unrepairable_ue: u64,
    /// Failed decodes recovered by the shifted-threshold retry path.
    pub recovered_ue: u64,
}

impl MemStats {
    /// All uncorrectable-error events (DUE + SDC).
    pub fn uncorrectable(&self) -> u64 {
        self.detected_ue + self.miscorrections
    }

    /// Total line writes from any source (demand + scrub).
    pub fn total_writes(&self) -> u64 {
        self.demand_writes + self.scrub_writebacks
    }

    /// Folds another counter set into this one (merging per-bank shards).
    pub fn absorb(&mut self, other: &MemStats) {
        self.demand_reads += other.demand_reads;
        self.demand_writes += other.demand_writes;
        self.scrub_probes += other.scrub_probes;
        self.scrub_writebacks += other.scrub_writebacks;
        self.corrected_bits += other.corrected_bits;
        self.detected_ue += other.detected_ue;
        self.miscorrections += other.miscorrections;
        self.demand_ue += other.demand_ue;
        self.lines_with_worn_cells += other.lines_with_worn_cells;
        self.wear_level_writes += other.wear_level_writes;
        self.ecp_repairs += other.ecp_repairs;
        self.ecp_cells_patched += other.ecp_cells_patched;
        self.lines_retired += other.lines_retired;
        self.unrepairable_ue += other.unrepairable_ue;
        self.recovered_ue += other.recovered_ue;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates() {
        let s = MemStats {
            detected_ue: 3,
            miscorrections: 2,
            demand_writes: 10,
            scrub_writebacks: 5,
            ..MemStats::default()
        };
        assert_eq!(s.uncorrectable(), 5);
        assert_eq!(s.total_writes(), 15);
    }
}
