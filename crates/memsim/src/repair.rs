//! The graceful-degradation repair hierarchy.
//!
//! When a line produces a *new* uncorrectable error, the memory escalates
//! through three stages instead of only counting it:
//!
//! 1. **ECP sparing** — each line carries `ecp_entries_per_line`
//!    error-correction-pointer entries; if the free entries cover every
//!    unpatched stuck cell, they are assigned and the line's stuck-cell
//!    conflicts vanish permanently (the pointers hold the correct values).
//! 2. **Line retirement** — otherwise the line is retired into the bank's
//!    spare pool: a fresh spare replaces it behind a remap table, and
//!    every future access to the address lands on the spare. Retirement
//!    coexists with Start-Gap wear leveling, which permutes *demand*
//!    addresses above this layer.
//! 3. **Bank-degraded mode** — when the spare pool is exhausted the bank
//!    degrades: further unrepairable errors are counted (and the time of
//!    the first one recorded), modelling the end of the device's
//!    serviceable life.
//!
//! All state lives per bank shard, so repair decisions made during
//! bank-parallel sweeps stay deterministic: they depend only on the bank's
//! own line states and RNG stream.

use std::collections::HashMap;

/// Configuration of the repair hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairConfig {
    /// ECP entries available per line (ECP-6 in the literature).
    pub ecp_entries_per_line: u16,
    /// Spare lines each bank may retire into.
    pub spare_lines_per_bank: u32,
}

impl Default for RepairConfig {
    fn default() -> Self {
        Self {
            ecp_entries_per_line: 6,
            spare_lines_per_bank: 4,
        }
    }
}

/// Configuration of the shifted-threshold UE recovery retry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryConfig {
    /// Probability an individual drift-failed bit reads back correctly
    /// when the read is retried with shifted sense thresholds (the
    /// lightweight-detection idea: drifted cells sit just past the
    /// boundary, so a shifted reference recovers most of them).
    pub recover_prob: f64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        Self { recover_prob: 0.9 }
    }
}

impl RecoveryConfig {
    /// Validates the probability is in `[0, 1]`.
    pub fn validated(self) -> Result<Self, String> {
        if self.recover_prob.is_finite() && (0.0..=1.0).contains(&self.recover_prob) {
            Ok(self)
        } else {
            Err(format!(
                "recover_prob must be in [0, 1], got {}",
                self.recover_prob
            ))
        }
    }
}

/// Per-bank repair state: spare accounting, the retirement remap table,
/// and degradation bookkeeping.
#[derive(Debug, Clone)]
pub(crate) struct RepairState {
    pub(crate) config: RepairConfig,
    pub(crate) bank: u32,
    /// Spares consumed so far.
    pub(crate) spares_used: u32,
    /// Original slot → replacement slot (the newest spare serving it).
    pub(crate) remap: HashMap<u32, u32>,
    /// Whether the bank has exhausted its spares.
    pub(crate) degraded: bool,
    /// Simulated time of the bank's first unrepairable error.
    pub(crate) first_unrepairable_s: Option<f64>,
    /// Unrepairable errors seen by this bank.
    pub(crate) unrepairable: u64,
}

impl RepairState {
    pub(crate) fn new(config: RepairConfig, bank: u32) -> Self {
        Self {
            config,
            bank,
            spares_used: 0,
            remap: HashMap::new(),
            degraded: false,
            first_unrepairable_s: None,
            unrepairable: 0,
        }
    }

    /// Resolves an original slot through the retirement remap.
    pub(crate) fn resolve(&self, slot: usize) -> usize {
        match self.remap.get(&(slot as u32)) {
            Some(&s) => s as usize,
            None => slot,
        }
    }

    /// Whether a spare is still available.
    pub(crate) fn spare_available(&self) -> bool {
        self.spares_used < self.config.spare_lines_per_bank
    }

    /// Records an unrepairable error at `now_s`; returns whether this is
    /// the bank's transition into degraded mode.
    pub(crate) fn record_unrepairable(&mut self, now_s: f64) -> bool {
        self.unrepairable += 1;
        let first_for_bank = !self.degraded;
        self.degraded = true;
        if self.first_unrepairable_s.is_none() {
            self.first_unrepairable_s = Some(now_s);
        }
        first_for_bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resolve_follows_remap() {
        let mut r = RepairState::new(RepairConfig::default(), 0);
        assert_eq!(r.resolve(5), 5);
        r.remap.insert(5, 100);
        assert_eq!(r.resolve(5), 100);
        // A retired spare is replaced by updating the same original key.
        r.remap.insert(5, 101);
        assert_eq!(r.resolve(5), 101);
    }

    #[test]
    fn spares_exhaust_and_degrade() {
        let mut r = RepairState::new(
            RepairConfig {
                ecp_entries_per_line: 2,
                spare_lines_per_bank: 2,
            },
            1,
        );
        assert!(r.spare_available());
        r.spares_used = 2;
        assert!(!r.spare_available());
        assert!(r.record_unrepairable(123.0), "first degrades the bank");
        assert!(!r.record_unrepairable(456.0), "already degraded");
        assert_eq!(r.first_unrepairable_s, Some(123.0));
        assert_eq!(r.unrepairable, 2);
    }

    #[test]
    fn recovery_config_validates() {
        assert!(RecoveryConfig { recover_prob: 0.5 }.validated().is_ok());
        assert!(RecoveryConfig { recover_prob: 1.5 }.validated().is_err());
        assert!(RecoveryConfig {
            recover_prob: f64::NAN
        }
        .validated()
        .is_err());
    }
}
