//! Memory access traces: the interface between workload generators and the
//! simulation loop.

use crate::geometry::LineAddr;
use crate::time::SimTime;

/// Kind of demand access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Line read.
    Read,
    /// Line write.
    Write,
}

/// One timestamped demand access.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemOp {
    /// When the access is issued.
    pub at: SimTime,
    /// Read or write.
    pub kind: OpKind,
    /// Target line.
    pub addr: LineAddr,
}

impl MemOp {
    /// Convenience constructor for a read.
    pub fn read(at: SimTime, addr: LineAddr) -> Self {
        Self {
            at,
            kind: OpKind::Read,
            addr,
        }
    }

    /// Convenience constructor for a write.
    pub fn write(at: SimTime, addr: LineAddr) -> Self {
        Self {
            at,
            kind: OpKind::Write,
            addr,
        }
    }
}

/// Anything that produces a time-ordered stream of demand accesses.
///
/// Generators must yield non-decreasing timestamps; the simulation loop
/// asserts this. `Send` is a supertrait so whole simulations (which own
/// their trace) can be fanned out across the `scrub-exec` pool — e.g. one
/// fleet shard per worker in `scrubd`.
pub trait TraceSource: std::fmt::Debug + Send {
    /// Produces the next access, or `None` when the trace is exhausted.
    fn next_op(&mut self) -> Option<MemOp>;

    /// A short name for reports.
    fn name(&self) -> &str;

    /// Serializes the generator's mutable state (RNG position, clock,
    /// pattern cursors) for checkpointing, or `None` if this source does
    /// not support resume. The encoding is the source's own; the
    /// simulator treats it as an opaque block.
    fn save_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Restores state produced by [`TraceSource::save_state`] onto a
    /// freshly constructed source with identical configuration.
    fn load_state(&mut self, _bytes: &[u8]) -> Result<(), String> {
        Err(format!(
            "trace source {:?} does not support checkpoint/resume",
            self.name()
        ))
    }

    /// Per-tenant delivered-op accounting as `(tenant, reads, writes)`
    /// rows, for sources that multiplex several demand streams (the
    /// open-loop tenant mix). Single-stream sources report `None`.
    fn tenant_ops(&self) -> Option<Vec<(String, u64, u64)>> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = MemOp::read(SimTime::from_secs(1.0), LineAddr(3));
        assert_eq!(r.kind, OpKind::Read);
        let w = MemOp::write(SimTime::from_secs(2.0), LineAddr(4));
        assert_eq!(w.kind, OpKind::Write);
        assert!(w.at > r.at);
    }
}
