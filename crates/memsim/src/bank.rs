//! Per-bank service timing: measured queueing delay between demand and
//! scrub operations that target the same bank.

use crate::geometry::{LineAddr, MemGeometry};

/// Tracks when each bank becomes free, yielding measured queueing delays.
///
/// # Examples
///
/// ```
/// use pcm_memsim::BankTimer;
/// let mut bt = BankTimer::new(2);
/// // Two back-to-back ops on bank 0: the second waits.
/// assert_eq!(bt.issue(0, 1000.0, 500.0), 0.0);
/// assert_eq!(bt.issue(0, 1200.0, 500.0), 300.0);
/// // Bank 1 is free.
/// assert_eq!(bt.issue(1, 1200.0, 500.0), 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BankTimer {
    busy_until_ns: Vec<f64>,
}

impl BankTimer {
    /// Creates timers for `banks` banks, all idle.
    ///
    /// # Panics
    ///
    /// Panics if `banks == 0`.
    pub fn new(banks: u32) -> Self {
        assert!(banks > 0, "need at least one bank");
        Self {
            busy_until_ns: vec![0.0; banks as usize],
        }
    }

    /// Issues an operation of `dur_ns` on `bank` at absolute time
    /// `at_ns`; returns the queueing delay it suffered (0 when the bank
    /// was idle).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn issue(&mut self, bank: u32, at_ns: f64, dur_ns: f64) -> f64 {
        let b = &mut self.busy_until_ns[bank as usize];
        let start = at_ns.max(*b);
        *b = start + dur_ns;
        start - at_ns
    }

    /// Convenience: issues against the bank an address maps to.
    pub fn issue_addr(
        &mut self,
        geom: &MemGeometry,
        addr: LineAddr,
        at_ns: f64,
        dur_ns: f64,
    ) -> f64 {
        self.issue(geom.bank_of(addr), at_ns, dur_ns)
    }

    /// When the given bank frees up.
    pub fn busy_until_ns(&self, bank: u32) -> f64 {
        self.busy_until_ns[bank as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_bank_no_delay() {
        let mut bt = BankTimer::new(4);
        assert_eq!(bt.issue(2, 5000.0, 100.0), 0.0);
        assert_eq!(bt.busy_until_ns(2), 5100.0);
    }

    #[test]
    fn queueing_chains() {
        let mut bt = BankTimer::new(1);
        assert_eq!(bt.issue(0, 0.0, 1000.0), 0.0);
        assert_eq!(bt.issue(0, 100.0, 1000.0), 900.0);
        assert_eq!(bt.issue(0, 100.0, 1000.0), 1900.0);
        // After the backlog clears, no delay again.
        assert_eq!(bt.issue(0, 10_000.0, 1000.0), 0.0);
    }

    #[test]
    fn banks_are_independent() {
        let mut bt = BankTimer::new(2);
        bt.issue(0, 0.0, 1e9);
        assert_eq!(bt.issue(1, 10.0, 5.0), 0.0);
    }

    #[test]
    fn addr_mapping_used() {
        let geom = MemGeometry::new(16, 4);
        let mut bt = BankTimer::new(4);
        bt.issue_addr(&geom, LineAddr(5), 0.0, 100.0); // bank 1
        assert!(bt.busy_until_ns(1) > 0.0);
        assert_eq!(bt.busy_until_ns(0), 0.0);
    }
}
