//! The stochastic fault engine: exact lazy evolution of per-line drift and
//! wear failures.
//!
//! For a line with `n` live cells at some level, the number that have
//! persistently drift-failed by age `t` is `Binomial(n, p(t))` with `p`
//! monotone. Given `b₁` failures known at age `t₁`, the count at `t₂ > t₁`
//! is `b₁ + Binomial(n − b₁, (p(t₂)−p(t₁))/(1−p(t₁)))` — exact for
//! independent cells and O(1) per update. Wear failures use the same
//! machinery with the lognormal endurance CDF over the write count.

use std::sync::Arc;

use rand::Rng;

use pcm_model::math::{sample_binomial, sample_binomial4, PrecomputedMultinomial};
use pcm_model::{DeviceConfig, DriftModel, EnduranceSpec};

use crate::line::{LineState, MAX_LEVELS};
use crate::time::SimTime;

/// Evolves [`LineState`]s under drift, read noise, and wear.
///
/// # Examples
///
/// ```
/// use pcm_memsim::{FaultEngine, SimTime};
/// use pcm_model::DeviceConfig;
/// use rand::SeedableRng;
///
/// let engine = FaultEngine::new(&DeviceConfig::default(), 288);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(9);
/// let mut line = engine.fresh_line(SimTime::ZERO, &mut rng);
/// // A day later the line has accumulated some persistent drift errors.
/// let errs = engine.advance(&mut line, SimTime::from_secs(86_400.0), &mut rng);
/// assert!(errs >= 1);
/// ```
#[derive(Debug, Clone)]
pub struct FaultEngine {
    /// Shared, immutable drift LUTs — one set per distinct device config
    /// process-wide (see [`DeviceConfig::drift_model_shared`]), safely
    /// referenced from every bank worker during parallel sweeps.
    model: Arc<DriftModel>,
    endurance: EnduranceSpec,
    cells_per_line: u32,
    num_levels: usize,
    /// Probability a stuck cell conflicts with fresh random data.
    conflict_prob: f64,
    /// Occupancy distribution of data cells over levels (random data →
    /// uniform), with its conditional-binomial decomposition (and the
    /// mode-path logarithms) precomputed — every write re-rolls occupancy,
    /// making this the hottest multinomial in the simulator.
    occupancy_dist: PrecomputedMultinomial,
}

impl FaultEngine {
    /// Builds an engine for `cells_per_line` cells of the given device
    /// (cells = coded line bits / bits-per-cell).
    ///
    /// # Panics
    ///
    /// Panics if the device has more than [`MAX_LEVELS`] levels or
    /// `cells_per_line` is zero.
    pub fn new(device: &DeviceConfig, cells_per_line: u32) -> Self {
        let num_levels = device.stack().num_levels();
        assert!(
            num_levels <= MAX_LEVELS,
            "fault engine supports up to {MAX_LEVELS} levels"
        );
        assert!(cells_per_line > 0, "need at least one cell per line");
        let level_probs = vec![1.0 / num_levels as f64; num_levels];
        Self {
            model: device.drift_model_shared(),
            endurance: *device.endurance(),
            cells_per_line,
            num_levels,
            conflict_prob: 1.0 - 1.0 / num_levels as f64,
            occupancy_dist: PrecomputedMultinomial::new(&level_probs),
        }
    }

    /// The analytic drift model in use.
    pub fn model(&self) -> &DriftModel {
        &self.model
    }

    /// Cells per line.
    pub fn cells_per_line(&self) -> u32 {
        self.cells_per_line
    }

    /// Samples the level occupancy of `live` cells holding random data.
    fn sample_occupancy<R: Rng + ?Sized>(&self, live: u32, rng: &mut R) -> [u16; MAX_LEVELS] {
        let mut counts = [0u32; MAX_LEVELS];
        self.occupancy_dist
            .sample_into(rng, live, &mut counts[..self.num_levels]);
        let mut occ = [0u16; MAX_LEVELS];
        for (o, &c) in occ.iter_mut().zip(&counts) {
            *o = c as u16;
        }
        occ
    }

    /// A brand-new line programmed at `now` (wear starts at one write).
    pub fn fresh_line<R: Rng + ?Sized>(&self, now: SimTime, rng: &mut R) -> LineState {
        let mut line = LineState::fresh(now, self.sample_occupancy(self.cells_per_line, rng));
        line.wear = 1;
        line
    }

    /// Applies a (re)write at `now`: resets the drift clock and failures,
    /// re-rolls data occupancy, advances wear, and may permanently fail
    /// cells whose endurance is exhausted.
    pub fn on_write<R: Rng + ?Sized>(&self, line: &mut LineState, now: SimTime, rng: &mut R) {
        let w1 = line.wear;
        line.wear = line.wear.saturating_add(1);
        // Wear failures: incremental binomial over the endurance CDF.
        let susceptible = self.cells_per_line - line.worn_cells as u32;
        if susceptible > 0 {
            let f1 = self.endurance.fail_cdf(w1 as u64);
            let f2 = self.endurance.fail_cdf(line.wear as u64);
            let dp = if f1 >= 1.0 {
                1.0
            } else {
                ((f2 - f1) / (1.0 - f1)).clamp(0.0, 1.0)
            };
            line.worn_cells += sample_binomial(rng, susceptible, dp) as u16;
        }
        // Fresh data pattern over the remaining live cells.
        let live = self.cells_per_line - line.worn_cells as u32;
        line.occupancy = self.sample_occupancy(live, rng);
        line.drift_failed = [0; MAX_LEVELS];
        line.last_write = now;
        line.last_eval = now;
        line.ue_recorded = false;
        // Each unpatched stuck cell disagrees with the new data w.p.
        // (L-1)/L; a disagreement costs 1 bit (2/3 of cases) or 2 bits
        // (1/3) under Gray coding. ECP-patched cells read back correct
        // regardless of the stored level, so they never conflict (with
        // repair disabled `ecp_assigned` is always 0 and the draw is
        // unchanged).
        let unpatched = (line.worn_cells - line.ecp_assigned) as u32;
        let conflicts = sample_binomial(rng, unpatched, self.conflict_prob);
        let double_bit = sample_binomial(rng, conflicts, 1.0 / 3.0);
        line.worn_conflict_bits = (conflicts + double_bit) as u16;
    }

    /// Injects `count` additional stuck-at cells at `now` without charging
    /// a write: the campaign-injection analogue of wear failure. Live
    /// occupancy shrinks accordingly and conflict bits are re-rolled for
    /// the new stuck population; drift state and wear are untouched.
    ///
    /// All randomness comes from the caller's `rng` (the campaign stream),
    /// so attaching a campaign never perturbs the bank RNG sequences.
    pub fn inject_stuck_cells<R: Rng + ?Sized>(
        &self,
        line: &mut LineState,
        count: u32,
        rng: &mut R,
    ) {
        let live = self.cells_per_line - line.worn_cells as u32;
        let added = count.min(live);
        if added == 0 {
            return;
        }
        // Remove the newly stuck cells from live occupancy, proportional to
        // the levels they currently sit in.
        let mut remaining = added;
        while remaining > 0 {
            let live_now: u32 = line.occupancy.iter().map(|&o| o as u32).sum();
            if live_now == 0 {
                break;
            }
            let mut pick = rng.gen_range(0..live_now);
            for lv in 0..MAX_LEVELS {
                let o = line.occupancy[lv] as u32;
                if pick < o {
                    line.occupancy[lv] -= 1;
                    // Keep drift_failed within the shrunken occupancy.
                    if line.drift_failed[lv] > line.occupancy[lv] {
                        line.drift_failed[lv] = line.occupancy[lv];
                    }
                    break;
                }
                pick -= o;
            }
            remaining -= 1;
        }
        line.worn_cells += added as u16;
        let unpatched = (line.worn_cells - line.ecp_assigned) as u32;
        let conflicts = sample_binomial(rng, unpatched, self.conflict_prob);
        let double_bit = sample_binomial(rng, conflicts, 1.0 / 3.0);
        line.worn_conflict_bits = (conflicts + double_bit) as u16;
    }

    /// Advances the line's persistent drift failures to `now` and returns
    /// the total persistent bit-error count.
    pub fn advance<R: Rng + ?Sized>(&self, line: &mut LineState, now: SimTime, rng: &mut R) -> u32 {
        if now > line.last_eval {
            let age1 = line.last_eval.since(line.last_write);
            let age2 = now.since(line.last_write);
            // Batched LUT evaluation: one log-age computation per endpoint
            // instead of one per (endpoint, level).
            let mut p1s = [0.0f64; MAX_LEVELS];
            let mut p2s = [0.0f64; MAX_LEVELS];
            self.model.p_up_levels(age1, &mut p1s[..self.num_levels]);
            self.model.p_up_levels(age2, &mut p2s[..self.num_levels]);
            for lv in 0..self.num_levels {
                let alive = line.occupancy[lv] - line.drift_failed[lv];
                if alive == 0 {
                    continue;
                }
                let (p1, p2) = (p1s[lv], p2s[lv]);
                if p2 <= p1 {
                    continue;
                }
                let dp = if p1 >= 1.0 {
                    0.0
                } else {
                    ((p2 - p1) / (1.0 - p1)).clamp(0.0, 1.0)
                };
                line.drift_failed[lv] += sample_binomial(rng, alive as u32, dp) as u16;
            }
            line.last_eval = now;
        }
        line.persistent_bit_errors()
    }

    /// Transient (sensing-noise) bit errors for one read at `now`.
    /// Independent across reads; does not mutate persistent state.
    pub fn transient_errors<R: Rng + ?Sized>(
        &self,
        line: &LineState,
        now: SimTime,
        rng: &mut R,
    ) -> u32 {
        let age = line.age_at(now);
        let mut ps = [0.0f64; MAX_LEVELS];
        self.model
            .p_transient_levels(age, &mut ps[..self.num_levels]);
        let mut errs = 0u32;
        for (lv, &p) in ps.iter().enumerate().take(self.num_levels) {
            let alive = (line.occupancy[lv] - line.drift_failed[lv]) as u32;
            if alive == 0 {
                continue;
            }
            if p > 0.0 {
                errs += sample_binomial(rng, alive, p);
            }
        }
        errs
    }

    /// Fused read evaluation: advances persistent drift failures to `now`
    /// and draws one transient sample, returning `(persistent, transient)`
    /// bit errors. Draw-for-draw identical to [`Self::advance`] followed
    /// by [`Self::transient_errors`], but the persistent and transient
    /// probabilities at `now` come from one fused log-age lookup — this
    /// is the hot path of every demand read and scrub probe.
    pub fn advance_and_transient<R: Rng + ?Sized>(
        &self,
        line: &mut LineState,
        now: SimTime,
        rng: &mut R,
    ) -> (u32, u32) {
        let mut p2s = [0.0f64; MAX_LEVELS];
        let mut trs = [0.0f64; MAX_LEVELS];
        self.model.p_read_levels(
            line.age_at(now),
            &mut p2s[..self.num_levels],
            &mut trs[..self.num_levels],
        );
        if now > line.last_eval {
            let age1 = line.last_eval.since(line.last_write);
            let mut p1s = [0.0f64; MAX_LEVELS];
            self.model.p_up_levels(age1, &mut p1s[..self.num_levels]);
            // Batched draw: inactive lanes keep n = 0 / p = 0 and consume
            // no uniforms, exactly like the skipped iterations of a scalar
            // per-level loop.
            let mut ns = [0u32; MAX_LEVELS];
            let mut dps = [0.0f64; MAX_LEVELS];
            for lv in 0..self.num_levels {
                let alive = line.occupancy[lv] - line.drift_failed[lv];
                if alive == 0 {
                    continue;
                }
                let (p1, p2) = (p1s[lv], p2s[lv]);
                if p2 <= p1 {
                    continue;
                }
                ns[lv] = alive as u32;
                dps[lv] = if p1 >= 1.0 {
                    0.0
                } else {
                    ((p2 - p1) / (1.0 - p1)).clamp(0.0, 1.0)
                };
            }
            let ks = sample_binomial4(rng, ns, dps);
            for (lv, &k) in ks.iter().enumerate().take(self.num_levels) {
                line.drift_failed[lv] += k as u16;
            }
            line.last_eval = now;
        }
        let mut ns = [0u32; MAX_LEVELS];
        for (lv, n) in ns.iter_mut().enumerate().take(self.num_levels) {
            *n = (line.occupancy[lv] - line.drift_failed[lv]) as u32;
        }
        let ks = sample_binomial4(rng, ns, trs);
        let transient = ks.iter().sum();
        (line.persistent_bit_errors(), transient)
    }

    /// Total bit errors a read at `now` observes: persistent (advanced to
    /// `now`) plus a fresh transient draw.
    pub fn read_errors<R: Rng + ?Sized>(
        &self,
        line: &mut LineState,
        now: SimTime,
        rng: &mut R,
    ) -> u32 {
        let (persistent, transient) = self.advance_and_transient(line, now, rng);
        persistent + transient
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn engine() -> FaultEngine {
        FaultEngine::new(&DeviceConfig::default(), 288)
    }

    #[test]
    fn fresh_line_has_no_errors() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(51);
        let line = e.fresh_line(SimTime::ZERO, &mut rng);
        assert_eq!(line.persistent_bit_errors(), 0);
        assert_eq!(line.live_cells(), 288);
        assert_eq!(line.wear, 1);
    }

    #[test]
    fn drift_failures_monotone_under_advance() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(52);
        let mut line = e.fresh_line(SimTime::ZERO, &mut rng);
        let mut prev = 0;
        for hours in [1u64, 4, 12, 24, 72, 168] {
            let errs = e.advance(
                &mut line,
                SimTime::from_secs(hours as f64 * 3600.0),
                &mut rng,
            );
            assert!(errs >= prev, "errors decreased: {prev} -> {errs}");
            prev = errs;
        }
        assert!(prev > 0, "week-old line should have drift errors");
    }

    #[test]
    fn advance_is_idempotent_at_same_time() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(53);
        let mut line = e.fresh_line(SimTime::ZERO, &mut rng);
        let t = SimTime::from_secs(86_400.0);
        let a = e.advance(&mut line, t, &mut rng);
        let b = e.advance(&mut line, t, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn write_resets_drift_errors() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(54);
        let mut line = e.fresh_line(SimTime::ZERO, &mut rng);
        e.advance(&mut line, SimTime::from_secs(604_800.0), &mut rng);
        assert!(line.persistent_bit_errors() > 0);
        e.on_write(&mut line, SimTime::from_secs(604_800.0), &mut rng);
        assert_eq!(line.drift_failed, [0; 4]);
        assert_eq!(line.age_at(SimTime::from_secs(604_800.0)), 0.0);
        assert_eq!(line.wear, 2);
    }

    #[test]
    fn incremental_matches_direct_distribution() {
        // Advancing 0 -> t in one step vs. many steps must produce the
        // same error distribution (mean within sampling noise).
        let e = engine();
        let mut rng = StdRng::seed_from_u64(55);
        let t_final = SimTime::from_secs(86_400.0);
        let reps = 3000;
        let mut one_step = 0u64;
        let mut many_steps = 0u64;
        for _ in 0..reps {
            let mut a = e.fresh_line(SimTime::ZERO, &mut rng);
            one_step += e.advance(&mut a, t_final, &mut rng) as u64;
            let mut b = e.fresh_line(SimTime::ZERO, &mut rng);
            for k in 1..=8 {
                e.advance(
                    &mut b,
                    SimTime::from_secs(86_400.0 * k as f64 / 8.0),
                    &mut rng,
                );
            }
            many_steps += b.persistent_bit_errors() as u64;
        }
        let m1 = one_step as f64 / reps as f64;
        let m2 = many_steps as f64 / reps as f64;
        assert!(
            (m1 - m2).abs() < 0.15 * m1.max(1.0),
            "one-step mean {m1} vs incremental mean {m2}"
        );
    }

    #[test]
    fn mean_matches_analytic_expectation() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(56);
        let t = SimTime::from_secs(86_400.0);
        let reps = 2000;
        let mut total = 0u64;
        for _ in 0..reps {
            let mut line = e.fresh_line(SimTime::ZERO, &mut rng);
            total += e.advance(&mut line, t, &mut rng) as u64;
        }
        let measured = total as f64 / reps as f64;
        let expected: f64 = (0..4)
            .map(|lv| 288.0 / 4.0 * e.model().p_up(lv, 86_400.0))
            .sum();
        assert!(
            (measured - expected).abs() < 0.05 * expected + 0.2,
            "measured {measured} vs expected {expected}"
        );
    }

    #[test]
    fn wear_failures_appear_with_writes() {
        let dev = DeviceConfig::builder()
            .endurance(EnduranceSpec::new(100.0, 0.3))
            .build();
        let e = FaultEngine::new(&dev, 288);
        let mut rng = StdRng::seed_from_u64(57);
        let mut line = e.fresh_line(SimTime::ZERO, &mut rng);
        for i in 0..400u32 {
            e.on_write(&mut line, SimTime::from_secs(i as f64), &mut rng);
        }
        assert!(
            line.worn_cells > 250,
            "after 400 writes vs 100-write endurance, most cells dead; got {}",
            line.worn_cells
        );
        assert!(line.worn_conflict_bits > 0);
        assert_eq!(
            line.live_cells() + line.worn_cells as u32,
            288,
            "live + worn must conserve cells"
        );
    }

    #[test]
    fn near_unity_endurance_kills_all_cells_quickly() {
        // median_writes near 1: nearly every write exhausts endurance, so a
        // handful of writes must escalate to a fully worn line, conserving
        // live + worn throughout.
        let dev = DeviceConfig::builder()
            .endurance(EnduranceSpec::new(1.001, 0.25))
            .build();
        let e = FaultEngine::new(&dev, 288);
        let mut rng = StdRng::seed_from_u64(60);
        let mut line = e.fresh_line(SimTime::ZERO, &mut rng);
        for i in 0..16u32 {
            e.on_write(&mut line, SimTime::from_secs(i as f64), &mut rng);
            assert_eq!(
                line.live_cells() + line.worn_cells as u32,
                288,
                "conservation broken at write {i}"
            );
        }
        assert_eq!(line.worn_cells, 288, "all cells should be dead");
        assert_eq!(line.live_cells(), 0);
        // Fully worn line: every error is a conflict bit, no drift possible.
        assert!(line.worn_conflict_bits > 0);
        assert_eq!(line.persistent_bit_errors(), line.worn_conflict_bits as u32);
        // Further writes on a dead line stay well-defined.
        e.on_write(&mut line, SimTime::from_secs(100.0), &mut rng);
        assert_eq!(line.worn_cells, 288);
    }

    #[test]
    fn sigma_extremes_keep_wear_failures_well_defined() {
        let mut rng = StdRng::seed_from_u64(61);
        // Tiny sigma: a step function at the median — no failures below it,
        // total failure just past it.
        let step = DeviceConfig::builder()
            .endurance(EnduranceSpec::new(50.0, 1e-6))
            .build();
        let e = FaultEngine::new(&step, 288);
        let mut line = e.fresh_line(SimTime::ZERO, &mut rng);
        for i in 0..40u32 {
            e.on_write(&mut line, SimTime::from_secs(i as f64), &mut rng);
        }
        assert_eq!(line.worn_cells, 0, "below-median writes must not wear");
        for i in 40..80u32 {
            e.on_write(&mut line, SimTime::from_secs(i as f64), &mut rng);
        }
        assert_eq!(line.worn_cells, 288, "past the step everything fails");
        // Huge sigma: the CDF is heavy-tailed but still a valid probability;
        // wear accumulates monotonically and conserves cells.
        let wide = DeviceConfig::builder()
            .endurance(EnduranceSpec::new(1e6, 8.0))
            .build();
        let e = FaultEngine::new(&wide, 288);
        let mut line = e.fresh_line(SimTime::ZERO, &mut rng);
        let mut prev = 0u16;
        for i in 0..200u32 {
            e.on_write(&mut line, SimTime::from_secs(i as f64), &mut rng);
            assert!(line.worn_cells >= prev);
            assert_eq!(line.live_cells() + line.worn_cells as u32, 288);
            prev = line.worn_cells;
        }
    }

    #[test]
    fn injected_stuck_cells_conserve_and_cap() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(62);
        let mut line = e.fresh_line(SimTime::ZERO, &mut rng);
        e.inject_stuck_cells(&mut line, 10, &mut rng);
        assert_eq!(line.worn_cells, 10);
        assert_eq!(line.live_cells(), 278);
        assert_eq!(line.wear, 1, "injection must not charge a write");
        // Requesting more than the remaining live cells caps at live.
        e.inject_stuck_cells(&mut line, 10_000, &mut rng);
        assert_eq!(line.worn_cells, 288);
        assert_eq!(line.live_cells(), 0);
    }

    #[test]
    fn ecp_patched_cells_do_not_conflict() {
        // With every worn cell patched, a rewrite draws zero conflicts.
        let dev = DeviceConfig::builder()
            .endurance(EnduranceSpec::new(1.001, 0.25))
            .build();
        let e = FaultEngine::new(&dev, 288);
        let mut rng = StdRng::seed_from_u64(63);
        let mut line = e.fresh_line(SimTime::ZERO, &mut rng);
        for i in 0..16u32 {
            e.on_write(&mut line, SimTime::from_secs(i as f64), &mut rng);
        }
        assert_eq!(line.worn_cells, 288);
        line.ecp_assigned = line.worn_cells;
        e.on_write(&mut line, SimTime::from_secs(100.0), &mut rng);
        assert_eq!(line.worn_conflict_bits, 0);
    }

    #[test]
    fn transient_errors_are_rare_on_fresh_lines() {
        let e = engine();
        let mut rng = StdRng::seed_from_u64(58);
        let line = e.fresh_line(SimTime::ZERO, &mut rng);
        let mut total = 0;
        for _ in 0..2000 {
            total += e.transient_errors(&line, SimTime::from_secs(1.0), &mut rng);
        }
        assert!(total < 20, "fresh transient errors too common: {total}");
    }
}
