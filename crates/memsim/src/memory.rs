//! The simulated main memory: bank-sharded line array + fault engine +
//! ECC + ledgers.
//!
//! # Randomness ownership and deterministic parallelism
//!
//! The memory owns its randomness: each bank shard carries an independent
//! `StdRng` stream derived (SplitMix-style) from `(master seed, bank)`,
//! and every stochastic draw an operation makes comes from the stream of
//! the bank the target line lives in. Because draws are keyed to the bank
//! rather than to global execution order, a full scrub sweep can execute
//! its banks *in parallel* — or sequentially, or in any order — and
//! produce bit-identical results. Counters and energy ledgers are likewise
//! kept per bank and merged in fixed bank order at read time, so even
//! floating-point accumulation is order-stable across thread counts.

use std::collections::HashMap;
use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;

use scrub_checkpoint::{CheckpointError, Reader, Writer};

use pcm_ecc::{ClassifyOutcome, CodeSpec};
use pcm_model::math::sample_binomial;
use pcm_model::DeviceConfig;
use scrub_telemetry as tel;

use crate::energy::EnergyLedger;
use crate::fault::FaultEngine;
use crate::geometry::{LineAddr, MemGeometry};
use crate::inject::{CampaignSpec, Injector};
use crate::line::LineState;
use crate::repair::{RecoveryConfig, RepairConfig, RepairState};
use crate::stats::MemStats;
use crate::sweep::{SweepOutcome, SweepPlan};
use crate::time::SimTime;
use crate::timing::{BandwidthTracker, TimingModel};
use crate::wear_level::StartGap;

/// How scrub probes check a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeKind {
    /// Every probe runs the full ECC decode (syndromes + locator).
    #[default]
    FullDecode,
    /// Two-phase lightweight probe: a CRC check first; the full decode
    /// runs only when the CRC trips. Saves decode energy on the (common)
    /// clean lines at no loss of detection.
    CrcThenDecode,
}

/// Result of a demand read or scrub probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// How the decoder classified the line.
    pub outcome: ClassifyOutcome,
    /// Persistent bit errors resident on the line (excludes the transient
    /// draw of this read).
    pub persistent_bits: u32,
    /// Whether this access recorded a *new* uncorrectable error (first
    /// discovery for the current write epoch).
    pub new_ue: bool,
}

/// Derives the RNG seed for one bank's stream from the master seed.
fn bank_stream_seed(master: u64, bank: u32) -> u64 {
    // SplitMix64 finalizer over (master, bank): decorrelates streams even
    // for adjacent master seeds and bank indices.
    let mut z = master.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(bank as u64 + 1));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One bank's partition of the memory: its lines (addresses congruent to
/// the bank index modulo the bank count), its RNG stream, and its slice of
/// every ledger. Shards are fully independent, which is what makes
/// bank-parallel sweeps deterministic.
#[derive(Debug, Clone)]
struct BankShard {
    lines: Vec<LineState>,
    rng: StdRng,
    stats: MemStats,
    energy: EnergyLedger,
    bandwidth: BandwidthTracker,
    busy_until_ns: f64,
    demand_read_delay_ns_sum: f64,
    /// Repair hierarchy state (spares, remap, degradation); `None` keeps
    /// the bank on the exact baseline code path.
    repair: Option<RepairState>,
}

impl BankShard {
    fn new(seed: u64) -> Self {
        Self {
            lines: Vec::new(),
            rng: StdRng::seed_from_u64(seed),
            stats: MemStats::default(),
            energy: EnergyLedger::default(),
            bandwidth: BandwidthTracker::default(),
            busy_until_ns: 0.0,
            demand_read_delay_ns_sum: 0.0,
            repair: None,
        }
    }

    /// Resolves an original slot through the retirement remap (identity
    /// when repair is disabled; idempotent, since spare slots are never
    /// remap keys).
    fn resolve(&self, slot: usize) -> usize {
        match &self.repair {
            Some(r) => r.resolve(slot),
            None => slot,
        }
    }

    /// Issues an operation of `dur_ns` on this bank at `at_ns`; returns
    /// the queueing delay it suffered (same semantics as
    /// [`crate::BankTimer::issue`]).
    fn issue(&mut self, at_ns: f64, dur_ns: f64) -> f64 {
        let start = at_ns.max(self.busy_until_ns);
        self.busy_until_ns = start + dur_ns;
        start - at_ns
    }
}

/// Immutable model state shared by every bank worker during an operation.
#[derive(Clone, Copy)]
struct OpCtx<'a> {
    engine: &'a FaultEngine,
    code: &'a CodeSpec,
    device: &'a DeviceConfig,
    timing: &'a TimingModel,
    mlc: bool,
    probe_kind: ProbeKind,
    /// Attached fault campaign, read-only at runtime.
    injector: Option<&'a Injector>,
    /// Shifted-threshold UE recovery retry, when enabled.
    recovery: Option<RecoveryConfig>,
}

impl OpCtx<'_> {
    fn decode_line(
        &self,
        shard: &mut BankShard,
        orig_slot: usize,
        addr: u32,
        now: SimTime,
        demand: bool,
    ) -> AccessResult {
        let slot = shard.resolve(orig_slot);
        let line = &mut shard.lines[slot];
        let (persistent, transient) = self.engine.advance_and_transient(line, now, &mut shard.rng);
        // Campaign-injected resident errors: a pure function of the line's
        // write epoch and the current time — no randomness drawn.
        let injected = match self.injector {
            Some(inj) => inj.extra_bits(addr, line.last_write.secs(), now.secs()),
            None => 0,
        };
        let persistent = persistent + injected;
        // Contiguous campaign bursts occupy few symbols: classify them
        // separately so symbol codes (RS) see the correlation. For bit
        // codes, or when no burst is resident, `classify_split` is
        // draw-for-draw identical to plain `classify`.
        let injected_burst = match self.injector {
            Some(inj) => inj.burst_bits(addr, line.last_write.secs(), now.secs()),
            None => 0,
        };
        let mut outcome = self.code.classify_split(
            persistent + transient - injected_burst,
            injected_burst,
            &mut shard.rng,
        );
        if outcome.is_uncorrectable() {
            if let Some(rc) = self.recovery {
                // Retry the read with shifted drift thresholds: transient
                // noise averages out, and each drift-failed bit (a cell
                // sitting just past its sense boundary) reads back
                // correctly w.p. `recover_prob`. Stuck cells and injected
                // data corruption don't benefit.
                let drift_bits = persistent - injected - line.worn_conflict_bits as u32;
                let recovered = sample_binomial(&mut shard.rng, drift_bits, rc.recover_prob);
                let retry = self.code.classify_split(
                    persistent - recovered - injected_burst,
                    injected_burst,
                    &mut shard.rng,
                );
                if retry.data_intact() {
                    outcome = retry;
                    shard.stats.recovered_ue += 1;
                    if tel::enabled() {
                        tel::counter_add(tel::Counter::UeRecoveries, 1);
                        tel::event(now.secs(), tel::EventKind::UeRecovered { addr, demand });
                    }
                }
            }
        }
        if let ClassifyOutcome::Corrected { bits } = outcome {
            shard.stats.corrected_bits += bits as u64;
            if tel::enabled() {
                tel::counter_add(tel::Counter::CorrectedBits, bits as u64);
                tel::event(now.secs(), tel::EventKind::Corrected { addr, bits, demand });
            }
        }
        let mut new_ue = false;
        if outcome.is_uncorrectable() && !line.ue_recorded {
            line.ue_recorded = true;
            new_ue = true;
            match outcome {
                ClassifyOutcome::Miscorrected => shard.stats.miscorrections += 1,
                _ => shard.stats.detected_ue += 1,
            }
            if demand {
                shard.stats.demand_ue += 1;
            }
            if tel::enabled() {
                let miscorrected = matches!(outcome, ClassifyOutcome::Miscorrected);
                tel::counter_add(
                    if miscorrected {
                        tel::Counter::Miscorrections
                    } else {
                        tel::Counter::DetectedUe
                    },
                    1,
                );
                if demand {
                    tel::counter_add(tel::Counter::DemandUe, 1);
                }
                tel::event(
                    now.secs(),
                    tel::EventKind::Uncorrectable {
                        addr,
                        demand,
                        miscorrected,
                    },
                );
            }
        }
        if new_ue {
            self.try_repair(shard, orig_slot, slot, addr, now);
        }
        AccessResult {
            outcome,
            persistent_bits: persistent,
            new_ue,
        }
    }

    /// Escalates a new true UE through the repair hierarchy: ECP sparing →
    /// line retirement → unrepairable (bank degraded). Only *hard* faults
    /// escalate — a UE on a line with no unpatched stuck cells is left to
    /// the forced scrub write-back, which rewrites the data and clears it.
    fn try_repair(
        &self,
        shard: &mut BankShard,
        orig_slot: usize,
        slot: usize,
        addr: u32,
        now: SimTime,
    ) {
        if shard.repair.is_none() {
            return;
        }
        let line = &shard.lines[slot];
        let unpatched = line.worn_cells - line.ecp_assigned;
        if unpatched == 0 {
            return;
        }
        let repair = shard.repair.as_mut().expect("checked above");
        let free = repair
            .config
            .ecp_entries_per_line
            .saturating_sub(line.ecp_assigned);
        if free >= unpatched {
            // Stage 1: the free ECP entries cover every unpatched stuck
            // cell; assign them. The pointers hold correct values, so the
            // line's stuck-cell conflicts vanish permanently.
            let line = &mut shard.lines[slot];
            line.ecp_assigned += unpatched;
            line.worn_conflict_bits = 0;
            shard.stats.ecp_repairs += 1;
            shard.stats.ecp_cells_patched += unpatched as u64;
            if tel::enabled() {
                tel::counter_add(tel::Counter::EcpRepairs, 1);
                tel::counter_add(tel::Counter::EcpCellsPatched, unpatched as u64);
                tel::event(
                    now.secs(),
                    tel::EventKind::EcpRepair {
                        addr,
                        cells_patched: unpatched as u32,
                        free_after: (free - unpatched) as u32,
                    },
                );
            }
        } else if repair.spare_available() {
            // Stage 2: retire the line into the bank's spare pool. The
            // spare is a fresh line drawn from the bank's own RNG stream
            // (deterministic at any thread count); the remap table points
            // the address at it from now on.
            repair.spares_used += 1;
            let fresh = self.engine.fresh_line(now, &mut shard.rng);
            shard.lines.push(fresh);
            let spare_slot = (shard.lines.len() - 1) as u32;
            let repair = shard.repair.as_mut().expect("checked above");
            repair.remap.insert(orig_slot as u32, spare_slot);
            shard.stats.lines_retired += 1;
            if tel::enabled() {
                tel::counter_add(tel::Counter::LinesRetired, 1);
                tel::event(
                    now.secs(),
                    tel::EventKind::LineRetired {
                        addr,
                        spare: spare_slot,
                    },
                );
            }
        } else {
            // Stage 3: spares exhausted — the bank is degraded and the
            // error is unrepairable.
            let first = repair.record_unrepairable(now.secs());
            let bank = repair.bank;
            shard.stats.unrepairable_ue += 1;
            if tel::enabled() {
                tel::counter_add(tel::Counter::UnrepairableUe, 1);
                if first {
                    tel::event(now.secs(), tel::EventKind::BankDegraded { bank });
                }
            }
        }
    }

    fn demand_read(
        &self,
        shard: &mut BankShard,
        slot: usize,
        addr: u32,
        now: SimTime,
    ) -> AccessResult {
        let result = self.decode_line(shard, slot, addr, now, true);
        shard.stats.demand_reads += 1;
        tel::counter_add(tel::Counter::DemandReads, 1);
        let e = self.device.energy();
        shard
            .energy
            .add_demand_read(e.line_read_pj(self.code.total_bits()));
        shard
            .energy
            .add_demand_decode(e.decode_pj(self.code.guaranteed_t()));
        let dur = self.timing.read_ns + self.timing.decode_ns(self.code.guaranteed_t());
        shard.bandwidth.add_demand_ns(dur);
        let delay = shard.issue(now.secs() * 1e9, dur);
        shard.demand_read_delay_ns_sum += delay;
        result
    }

    /// Rewrites the line's cells: shared tail of demand writes, scrub
    /// write-backs, and wear-leveling rotation copies.
    fn write_cells(&self, shard: &mut BankShard, slot: usize, now: SimTime) {
        let slot = shard.resolve(slot);
        let had_worn = shard.lines[slot].worn_cells > 0;
        self.engine
            .on_write(&mut shard.lines[slot], now, &mut shard.rng);
        if !had_worn && shard.lines[slot].worn_cells > 0 {
            shard.stats.lines_with_worn_cells += 1;
        }
    }

    fn demand_write(&self, shard: &mut BankShard, slot: usize, addr: u32, now: SimTime) {
        self.write_cells(shard, slot, now);
        shard.stats.demand_writes += 1;
        let e = self.device.energy();
        let write_pj = e.line_write_pj(self.code.total_bits(), self.mlc) + e.encode_pj;
        shard.energy.add_demand_write(write_pj);
        shard
            .bandwidth
            .add_demand_ns(self.timing.write_ns(self.mlc));
        shard.issue(now.secs() * 1e9, self.timing.write_ns(self.mlc));
        if tel::enabled() {
            tel::counter_add(tel::Counter::DemandWrites, 1);
            tel::event(
                now.secs(),
                tel::EventKind::DemandWrite {
                    addr,
                    energy_pj: write_pj,
                },
            );
        }
    }

    fn scrub_probe(
        &self,
        shard: &mut BankShard,
        slot: usize,
        addr: u32,
        now: SimTime,
    ) -> AccessResult {
        let result = self.decode_line(shard, slot, addr, now, false);
        shard.stats.scrub_probes += 1;
        let e = self.device.energy();
        let read_pj = e.line_read_pj(self.code.total_bits());
        shard.energy.add_scrub_probe(read_pj);
        let t = self.code.guaranteed_t();
        let decode_pj = match self.probe_kind {
            ProbeKind::FullDecode => e.decode_pj(t),
            ProbeKind::CrcThenDecode => {
                // CRC always; full decode only when something is wrong.
                if matches!(result.outcome, ClassifyOutcome::Clean) {
                    e.crc_check_pj
                } else {
                    e.crc_check_pj + e.decode_pj(t)
                }
            }
        };
        shard.energy.add_scrub_decode(decode_pj);
        let dur = self.timing.read_ns + self.timing.decode_ns(t);
        shard.bandwidth.add_scrub_ns(dur);
        shard.issue(now.secs() * 1e9, dur);
        if tel::enabled() {
            tel::counter_add(tel::Counter::ScrubProbes, 1);
            tel::event(
                now.secs(),
                tel::EventKind::ScrubProbe {
                    addr,
                    persistent_bits: result.persistent_bits,
                    clean: matches!(result.outcome, ClassifyOutcome::Clean),
                    energy_pj: read_pj + decode_pj,
                },
            );
        }
        result
    }

    fn scrub_writeback(&self, shard: &mut BankShard, slot: usize, addr: u32, now: SimTime) {
        self.write_cells(shard, slot, now);
        shard.stats.scrub_writebacks += 1;
        let e = self.device.energy();
        let write_pj = e.line_write_pj(self.code.total_bits(), self.mlc) + e.encode_pj;
        shard.energy.add_scrub_writeback(write_pj);
        shard.bandwidth.add_scrub_ns(self.timing.write_ns(self.mlc));
        shard.issue(now.secs() * 1e9, self.timing.write_ns(self.mlc));
        if tel::enabled() {
            tel::counter_add(tel::Counter::ScrubWritebacks, 1);
            tel::event(
                now.secs(),
                tel::EventKind::ScrubWriteback {
                    addr,
                    energy_pj: write_pj,
                },
            );
        }
    }
}

/// A PCM main memory at line granularity.
///
/// Combines geometry, the stochastic fault engine, a line code, and
/// energy/timing/statistics ledgers. Storage is sharded by bank (low-order
/// address interleaving), each shard owning an independent RNG stream
/// derived from the construction seed — see the module docs for why this
/// makes scrub sweeps bank-parallelizable without losing determinism.
///
/// # Examples
///
/// ```
/// use pcm_memsim::{LineAddr, Memory, MemGeometry, SimTime};
/// use pcm_ecc::CodeSpec;
/// use pcm_model::DeviceConfig;
///
/// let mut mem = Memory::new(
///     MemGeometry::small(),
///     DeviceConfig::default(),
///     CodeSpec::bch_line(4),
///     2,
/// );
/// let r = mem.demand_read(LineAddr(17), SimTime::from_secs(1.0));
/// assert!(r.outcome.data_intact());
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    geom: MemGeometry,
    device: DeviceConfig,
    code: CodeSpec,
    engine: FaultEngine,
    timing: TimingModel,
    mlc: bool,
    wear_leveler: Option<StartGap>,
    probe_kind: ProbeKind,
    shards: Vec<BankShard>,
    /// Attached deterministic fault campaign ([`Memory::attach_campaign`]).
    injector: Option<Arc<Injector>>,
    /// Shifted-threshold UE recovery ([`Memory::enable_ue_recovery`]).
    recovery: Option<RecoveryConfig>,
}

impl Memory {
    /// Builds a memory whose lines were all written at time zero; `seed`
    /// keys every per-bank RNG stream.
    pub fn new(geom: MemGeometry, device: DeviceConfig, code: CodeSpec, seed: u64) -> Self {
        let bits_per_cell = device.stack().bits_per_cell();
        let cells = code.total_bits().div_ceil(bits_per_cell);
        let engine = FaultEngine::new(&device, cells);
        let banks = geom.banks();
        let mut shards: Vec<BankShard> = (0..banks)
            .map(|b| BankShard::new(bank_stream_seed(seed, b)))
            .collect();
        for (b, shard) in shards.iter_mut().enumerate() {
            let bank_lines = (geom.num_lines() as usize + banks as usize - 1 - b) / banks as usize;
            shard.lines = (0..bank_lines)
                .map(|_| engine.fresh_line(SimTime::ZERO, &mut shard.rng))
                .collect();
        }
        let mlc = bits_per_cell > 1;
        Self {
            geom,
            device,
            code,
            engine,
            timing: TimingModel::default(),
            mlc,
            wear_leveler: None,
            probe_kind: ProbeKind::FullDecode,
            shards,
            injector: None,
            recovery: None,
        }
    }

    /// Attaches a deterministic fault campaign. Stuck-at clusters are
    /// injected into their target lines immediately (from the campaign's
    /// own RNG, in address order — independent of bank streams and thread
    /// count); SEUs, intermittent cells, and bursts manifest at decode
    /// time as pure functions of the line's write epoch.
    pub fn attach_campaign(&mut self, spec: &CampaignSpec) {
        let injector = Injector::new(spec, self.geom.num_lines());
        // The campaign's physical cell placement draws from its own
        // stream, so attaching never perturbs the bank streams.
        let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xC0FF_EE00_D15E_A5E5);
        for &(addr, cells) in injector.stuck_clusters() {
            let (bank, slot) = self.locate(LineAddr(addr));
            let had_worn = self.shards[bank].lines[slot].worn_cells > 0;
            self.engine
                .inject_stuck_cells(&mut self.shards[bank].lines[slot], cells, &mut rng);
            if !had_worn && self.shards[bank].lines[slot].worn_cells > 0 {
                self.shards[bank].stats.lines_with_worn_cells += 1;
            }
        }
        self.injector = Some(Arc::new(injector));
    }

    /// The attached campaign spec, if any.
    pub fn campaign(&self) -> Option<&CampaignSpec> {
        self.injector.as_ref().map(|i| i.spec())
    }

    /// Enables the graceful-degradation repair hierarchy (ECP sparing →
    /// line retirement → bank-degraded mode) on every bank.
    pub fn enable_repair(&mut self, config: RepairConfig) {
        for (b, shard) in self.shards.iter_mut().enumerate() {
            shard.repair = Some(RepairState::new(config, b as u32));
        }
    }

    /// Enables the shifted-threshold retry on failed ECC decodes.
    pub fn enable_ue_recovery(&mut self, config: RecoveryConfig) {
        self.recovery = Some(config);
    }

    /// Simulated time of the memory's first unrepairable error, if any
    /// bank has degraded.
    pub fn first_unrepairable_s(&self) -> Option<f64> {
        self.shards
            .iter()
            .filter_map(|s| s.repair.as_ref().and_then(|r| r.first_unrepairable_s))
            .min_by(|a, b| a.total_cmp(b))
    }

    /// Number of banks that have exhausted their spares.
    pub fn degraded_banks(&self) -> u32 {
        self.shards
            .iter()
            .filter(|s| s.repair.as_ref().is_some_and(|r| r.degraded))
            .count() as u32
    }

    /// Serializes the memory's complete mutable state — Start-Gap
    /// position, and per bank: line states, RNG stream, stat/energy/
    /// bandwidth ledgers, bank-timer state, and repair hierarchy — into
    /// `w`. Configuration (geometry, device, code, campaign spec, probe
    /// kind) is *not* written: a resume rebuilds it from the run config
    /// and then overwrites the mutable state with [`Memory::restore_state`].
    pub fn save_state(&self, w: &mut Writer) {
        self.save_state_impl(w, false);
    }

    /// Test-only tripwire hook: serializes state but *omits* bank 0's RNG
    /// stream (writing a default-seeded state instead), so the
    /// differential resume harness can prove it detects a missing field.
    #[doc(hidden)]
    pub fn save_state_omitting_bank0_rng(&self, w: &mut Writer) {
        self.save_state_impl(w, true);
    }

    fn save_state_impl(&self, w: &mut Writer, omit_bank0_rng: bool) {
        match &self.wear_leveler {
            Some(sg) => {
                w.put_u8(1);
                let (gap, start, writes) = sg.dynamic_state();
                w.put_u32(gap);
                w.put_u32(start);
                w.put_u32(writes);
            }
            None => w.put_u8(0),
        }
        w.put_u32(self.shards.len() as u32);
        for (b, shard) in self.shards.iter().enumerate() {
            let rng_state = if omit_bank0_rng && b == 0 {
                StdRng::seed_from_u64(0).state()
            } else {
                shard.rng.state()
            };
            for word in rng_state {
                w.put_u64(word);
            }
            w.put_u32(shard.lines.len() as u32);
            for line in &shard.lines {
                w.put_f64(line.last_write.secs());
                w.put_f64(line.last_eval.secs());
                for &o in &line.occupancy {
                    w.put_u16(o);
                }
                for &d in &line.drift_failed {
                    w.put_u16(d);
                }
                w.put_u32(line.wear);
                w.put_u16(line.worn_cells);
                w.put_u16(line.worn_conflict_bits);
                w.put_u16(line.ecp_assigned);
                w.put_bool(line.ue_recorded);
            }
            let s = &shard.stats;
            for v in [
                s.demand_reads,
                s.demand_writes,
                s.scrub_probes,
                s.scrub_writebacks,
                s.corrected_bits,
                s.detected_ue,
                s.miscorrections,
                s.demand_ue,
                s.lines_with_worn_cells,
                s.wear_level_writes,
                s.ecp_repairs,
                s.ecp_cells_patched,
                s.lines_retired,
                s.unrepairable_ue,
                s.recovered_ue,
            ] {
                w.put_u64(v);
            }
            for c in shard.energy.components() {
                w.put_f64(c);
            }
            w.put_f64(shard.bandwidth.demand_busy_ns());
            w.put_f64(shard.bandwidth.scrub_busy_ns());
            w.put_f64(shard.busy_until_ns);
            w.put_f64(shard.demand_read_delay_ns_sum);
            match &shard.repair {
                Some(r) => {
                    w.put_u8(1);
                    w.put_u32(r.spares_used);
                    w.put_bool(r.degraded);
                    w.put_opt_f64(r.first_unrepairable_s);
                    w.put_u64(r.unrepairable);
                    // The remap is a HashMap; serialize sorted by key so
                    // the snapshot bytes are a pure function of the state.
                    let mut remap: Vec<(u32, u32)> =
                        r.remap.iter().map(|(&k, &v)| (k, v)).collect();
                    remap.sort_unstable();
                    w.put_u32(remap.len() as u32);
                    for (k, v) in remap {
                        w.put_u32(k);
                        w.put_u32(v);
                    }
                }
                None => w.put_u8(0),
            }
        }
    }

    /// Restores state captured by [`Memory::save_state`] onto a memory
    /// freshly constructed from the *same* configuration (same geometry,
    /// seed, campaign, repair/recovery settings — the caller validates
    /// that; this method validates structural consistency). All mutable
    /// state is overwritten, so restoring is idempotent: in particular, a
    /// campaign's stuck-cell injection performed at construction is
    /// replaced wholesale by the snapshot's line states, never re-applied
    /// on top of them.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let malformed = |msg: String| CheckpointError::Malformed(msg);
        let has_wl = r.bool()?;
        if has_wl != self.wear_leveler.is_some() {
            return Err(malformed(format!(
                "wear-leveler presence mismatch: snapshot {has_wl}, config {}",
                self.wear_leveler.is_some()
            )));
        }
        if has_wl {
            let gap = r.u32()?;
            let start = r.u32()?;
            let writes = r.u32()?;
            let sg = self.wear_leveler.as_mut().expect("presence checked");
            sg.restore_dynamic_state(gap, start, writes)
                .map_err(|e| malformed(format!("start-gap: {e}")))?;
        }
        let shard_count = r.u32()? as usize;
        if shard_count != self.shards.len() {
            return Err(malformed(format!(
                "bank count mismatch: snapshot {shard_count}, config {}",
                self.shards.len()
            )));
        }
        for (b, shard) in self.shards.iter_mut().enumerate() {
            let rng_state = [r.u64()?, r.u64()?, r.u64()?, r.u64()?];
            let line_count = r.u32()? as usize;
            let base_lines = shard.lines.len().min(line_count);
            let mut lines = Vec::with_capacity(line_count);
            for i in 0..line_count {
                let what = |f: &str| format!("bank {b} line {i} {f}");
                let last_write = r.time_f64(&what("last_write"))?;
                let last_eval = r.time_f64(&what("last_eval"))?;
                let mut occupancy = [0u16; crate::line::MAX_LEVELS];
                for o in &mut occupancy {
                    *o = r.u16()?;
                }
                let mut drift_failed = [0u16; crate::line::MAX_LEVELS];
                for d in &mut drift_failed {
                    *d = r.u16()?;
                }
                lines.push(LineState {
                    last_write: SimTime::from_secs(last_write),
                    last_eval: SimTime::from_secs(last_eval),
                    occupancy,
                    drift_failed,
                    wear: r.u32()?,
                    worn_cells: r.u16()?,
                    worn_conflict_bits: r.u16()?,
                    ecp_assigned: r.u16()?,
                    ue_recorded: r.bool()?,
                });
            }
            let stats = MemStats {
                demand_reads: r.u64()?,
                demand_writes: r.u64()?,
                scrub_probes: r.u64()?,
                scrub_writebacks: r.u64()?,
                corrected_bits: r.u64()?,
                detected_ue: r.u64()?,
                miscorrections: r.u64()?,
                demand_ue: r.u64()?,
                lines_with_worn_cells: r.u64()?,
                wear_level_writes: r.u64()?,
                ecp_repairs: r.u64()?,
                ecp_cells_patched: r.u64()?,
                lines_retired: r.u64()?,
                unrepairable_ue: r.u64()?,
                recovered_ue: r.u64()?,
            };
            let energy = EnergyLedger::from_components([
                r.f64()?,
                r.f64()?,
                r.f64()?,
                r.f64()?,
                r.f64()?,
                r.f64()?,
            ]);
            let bandwidth = BandwidthTracker::from_busy_ns(r.f64()?, r.f64()?);
            let busy_until_ns = r.f64()?;
            let demand_read_delay_ns_sum = r.f64()?;
            let repair = if r.bool()? {
                let config = match &shard.repair {
                    Some(existing) => existing.config,
                    None => {
                        return Err(malformed(format!(
                            "bank {b}: snapshot has repair state but repair is not configured"
                        )))
                    }
                };
                let spares_used = r.u32()?;
                if spares_used > config.spare_lines_per_bank {
                    return Err(malformed(format!(
                        "bank {b}: {spares_used} spares used exceeds pool of {}",
                        config.spare_lines_per_bank
                    )));
                }
                let degraded = r.bool()?;
                let first_unrepairable_s = r.opt_f64()?;
                let unrepairable = r.u64()?;
                let remap_len = r.u32()? as usize;
                let mut remap = HashMap::with_capacity(remap_len);
                for _ in 0..remap_len {
                    let k = r.u32()?;
                    let v = r.u32()?;
                    if (k as usize) >= base_lines || (v as usize) >= line_count {
                        return Err(malformed(format!(
                            "bank {b}: remap {k}→{v} out of range ({line_count} lines)"
                        )));
                    }
                    remap.insert(k, v);
                }
                if line_count != base_lines + spares_used as usize {
                    return Err(malformed(format!(
                        "bank {b}: {line_count} lines inconsistent with {base_lines} base + \
                         {spares_used} spares"
                    )));
                }
                let mut state = RepairState::new(config, b as u32);
                state.spares_used = spares_used;
                state.degraded = degraded;
                state.first_unrepairable_s = first_unrepairable_s;
                state.unrepairable = unrepairable;
                state.remap = remap;
                Some(state)
            } else {
                if shard.repair.is_some() {
                    return Err(malformed(format!(
                        "bank {b}: repair configured but snapshot has no repair state"
                    )));
                }
                if line_count != shard.lines.len() {
                    return Err(malformed(format!(
                        "bank {b}: line count mismatch: snapshot {line_count}, config {}",
                        shard.lines.len()
                    )));
                }
                None
            };
            shard.rng = StdRng::from_state(rng_state);
            shard.lines = lines;
            shard.stats = stats;
            shard.energy = energy;
            shard.bandwidth = bandwidth;
            shard.busy_until_ns = busy_until_ns;
            shard.demand_read_delay_ns_sum = demand_read_delay_ns_sum;
            shard.repair = repair;
        }
        Ok(())
    }

    /// Splits an address into `(bank, slot-within-bank)` under low-order
    /// interleaving: bank `b` holds addresses `b, b+B, b+2B, …`.
    fn locate(&self, addr: LineAddr) -> (usize, usize) {
        let banks = self.geom.banks();
        ((addr.0 % banks) as usize, (addr.0 / banks) as usize)
    }

    /// Split borrow: an immutable op context over the model fields plus
    /// the mutable shard array, so ops can hold both at once.
    fn parts(&mut self) -> (OpCtx<'_>, &mut [BankShard]) {
        (
            OpCtx {
                engine: &self.engine,
                code: &self.code,
                device: &self.device,
                timing: &self.timing,
                mlc: self.mlc,
                probe_kind: self.probe_kind,
                injector: self.injector.as_deref(),
                recovery: self.recovery,
            },
            &mut self.shards,
        )
    }

    /// Measured mean demand-read latency (service time plus queueing
    /// delays actually suffered behind scrub/demand traffic on the same
    /// bank), in nanoseconds.
    pub fn measured_demand_read_latency_ns(&self) -> f64 {
        let service = self.timing.read_ns + self.timing.decode_ns(self.code.guaranteed_t());
        let stats = self.stats();
        if stats.demand_reads == 0 {
            service
        } else {
            let delay: f64 = self.shards.iter().map(|s| s.demand_read_delay_ns_sum).sum();
            service + delay / stats.demand_reads as f64
        }
    }

    /// Selects how scrub probes check lines (see [`ProbeKind`]).
    pub fn set_probe_kind(&mut self, kind: ProbeKind) {
        self.probe_kind = kind;
    }

    /// The probe kind in force.
    pub fn probe_kind(&self) -> ProbeKind {
        self.probe_kind
    }

    /// Enables Start-Gap wear leveling: demand addresses become *logical*
    /// (one line is sacrificed as the rotating gap) and the mapping shifts
    /// every `rotate_period` demand writes. Scrub continues to address
    /// physical lines — it maintains the array, not the data view.
    ///
    /// # Panics
    ///
    /// Panics if the memory has fewer than two lines.
    pub fn enable_wear_leveling(&mut self, rotate_period: u32) {
        self.wear_leveler = Some(StartGap::new(self.geom.num_lines(), rotate_period));
    }

    /// The number of lines demand traffic may address (one fewer than
    /// physical when wear leveling is on).
    pub fn demand_lines(&self) -> u32 {
        match &self.wear_leveler {
            Some(sg) => sg.logical_lines(),
            None => self.geom.num_lines(),
        }
    }

    /// Translates a demand (logical) address to a physical line.
    fn demand_to_physical(&self, addr: LineAddr) -> LineAddr {
        match &self.wear_leveler {
            Some(sg) => sg.map(addr),
            None => addr,
        }
    }

    /// Advances the wear leveler after a demand write, paying for the
    /// rotation copy when one occurs.
    fn rotate_wear_leveler(&mut self, now: SimTime) {
        let copied_to = match &mut self.wear_leveler {
            Some(sg) => sg.on_write(),
            None => return,
        };
        let Some(copied_to) = copied_to else { return };
        // The displaced line's contents are rewritten into the old gap
        // slot: one extra array write of fresh data. The copy draws from
        // the destination line's bank stream; it does not hold the channel
        // (the controller overlaps rotation copies with foreground work).
        let (bank, slot) = self.locate(copied_to);
        let (ctx, shards) = self.parts();
        let shard = &mut shards[bank];
        ctx.write_cells(shard, slot, now);
        shard.stats.wear_level_writes += 1;
        let e = ctx.device.energy();
        shard
            .energy
            .add_demand_write(e.line_write_pj(ctx.code.total_bits(), ctx.mlc) + e.encode_pj);
        shard.bandwidth.add_demand_ns(ctx.timing.write_ns(ctx.mlc));
        if tel::enabled() {
            tel::counter_add(tel::Counter::WearLevelWrites, 1);
            tel::event(
                now.secs(),
                tel::EventKind::WearLevelRotate { addr: copied_to.0 },
            );
        }
    }

    /// The geometry in force.
    pub fn geometry(&self) -> &MemGeometry {
        &self.geom
    }

    /// The device configuration in force.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// The line code in force.
    pub fn code(&self) -> &CodeSpec {
        &self.code
    }

    /// The fault engine (for policies that consult the drift model).
    pub fn fault_engine(&self) -> &FaultEngine {
        &self.engine
    }

    /// Counters, merged over banks in fixed bank order.
    pub fn stats(&self) -> MemStats {
        let mut total = MemStats::default();
        for shard in &self.shards {
            total.absorb(&shard.stats);
        }
        total
    }

    /// Accumulated energy, merged over banks in fixed bank order.
    pub fn energy(&self) -> EnergyLedger {
        let mut total = EnergyLedger::default();
        for shard in &self.shards {
            total.absorb(&shard.energy);
        }
        total
    }

    /// Channel-time totals, merged over banks in fixed bank order.
    pub fn bandwidth(&self) -> BandwidthTracker {
        let mut total = BandwidthTracker::default();
        for shard in &self.shards {
            total.absorb(&shard.bandwidth);
        }
        total
    }

    /// The timing model.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Immutable view of a line's state.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn line(&self, addr: LineAddr) -> &LineState {
        assert!(self.geom.contains(addr), "address {addr} out of range");
        let (bank, slot) = self.locate(addr);
        let shard = &self.shards[bank];
        &shard.lines[shard.resolve(slot)]
    }

    /// Mean wear (writes) across all lines.
    pub fn mean_wear(&self) -> f64 {
        let total: f64 = self
            .geom
            .iter_lines()
            .map(|a| self.line(a).wear as f64)
            .sum();
        total / self.geom.num_lines() as f64
    }

    /// Maximum wear across all lines.
    pub fn max_wear(&self) -> u32 {
        self.geom
            .iter_lines()
            .map(|a| self.line(a).wear)
            .max()
            .unwrap_or(0)
    }

    /// Total permanently worn cells across the memory.
    pub fn total_worn_cells(&self) -> u64 {
        self.geom
            .iter_lines()
            .map(|a| self.line(a).worn_cells as u64)
            .sum()
    }

    /// Per-line wear counts in address order (for distribution analyses,
    /// e.g. wear-leveling flatness histograms).
    pub fn wear_values(&self) -> Vec<u32> {
        self.geom.iter_lines().map(|a| self.line(a).wear).collect()
    }

    /// Per-line data ages at `now` in address order, in seconds (the
    /// drift-exposure distribution scrub policies are fighting).
    pub fn age_values(&self, now: SimTime) -> Vec<f64> {
        self.geom
            .iter_lines()
            .map(|a| self.line(a).age_at(now))
            .collect()
    }

    /// Serves a demand read: array read + decode, no write-back.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn demand_read(&mut self, addr: LineAddr, now: SimTime) -> AccessResult {
        assert!(
            addr.0 < self.demand_lines(),
            "address {addr} out of demand range"
        );
        let addr = self.demand_to_physical(addr);
        let (bank, slot) = self.locate(addr);
        let (ctx, shards) = self.parts();
        ctx.demand_read(&mut shards[bank], slot, addr.0, now)
    }

    /// Serves a demand write: reprograms the line (resetting its drift
    /// clock) and pays MLC write energy.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn demand_write(&mut self, addr: LineAddr, now: SimTime) {
        assert!(
            addr.0 < self.demand_lines(),
            "address {addr} out of demand range"
        );
        let addr = self.demand_to_physical(addr);
        let (bank, slot) = self.locate(addr);
        let (ctx, shards) = self.parts();
        ctx.demand_write(&mut shards[bank], slot, addr.0, now);
        self.rotate_wear_leveler(now);
    }

    /// Issues a scrub probe: array read + decode *only* (the lightweight
    /// detection operation). Never writes.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn scrub_probe(&mut self, addr: LineAddr, now: SimTime) -> AccessResult {
        assert!(self.geom.contains(addr), "address {addr} out of range");
        let (bank, slot) = self.locate(addr);
        let (ctx, shards) = self.parts();
        ctx.scrub_probe(&mut shards[bank], slot, addr.0, now)
    }

    /// Issues a scrub write-back: reprograms the line with corrected data,
    /// clearing accumulated soft errors at the cost of write energy and
    /// wear.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn scrub_writeback(&mut self, addr: LineAddr, now: SimTime) {
        assert!(self.geom.contains(addr), "address {addr} out of range");
        let (bank, slot) = self.locate(addr);
        let (ctx, shards) = self.parts();
        ctx.scrub_writeback(&mut shards[bank], slot, addr.0, now);
    }

    /// Executes a planned run of consecutive scrub slots as one
    /// bank-parallel sweep segment (see [`SweepPlan`]).
    ///
    /// Slot `k` targets line `(plan.first + k) mod num_lines` at
    /// `plan.times[k]`. Slots are partitioned by bank; each bank worker
    /// processes its slots in slot order using the bank's own RNG stream,
    /// so the result is bit-identical for every `threads` value —
    /// including 1, which runs inline — and identical to issuing the same
    /// probes one at a time through [`Memory::scrub_probe`] /
    /// [`Memory::scrub_writeback`] with the engine's per-slot rules.
    pub fn scrub_sweep(&mut self, plan: &SweepPlan<'_>, threads: usize) -> SweepOutcome {
        let num_lines = self.geom.num_lines();
        let banks = self.geom.banks() as usize;
        // Partition slot indices by target bank, preserving slot order.
        let mut by_bank: Vec<Vec<u32>> = vec![Vec::new(); banks];
        for k in 0..plan.times.len() {
            let addr = (plan.first.0 as u64 + k as u64) % num_lines as u64;
            by_bank[(addr % banks as u64) as usize].push(k as u32);
        }
        let ctx = OpCtx {
            engine: &self.engine,
            code: &self.code,
            device: &self.device,
            timing: &self.timing,
            mlc: self.mlc,
            probe_kind: self.probe_kind,
            injector: self.injector.as_deref(),
            recovery: self.recovery,
        };
        let first = plan.first.0 as u64;
        let times = plan.times;
        let min_age_s = plan.min_age_s;
        let rule = plan.rule;
        let mut work: Vec<(&mut BankShard, Vec<u32>, SweepOutcome)> = self
            .shards
            .iter_mut()
            .zip(by_bank)
            .map(|(shard, slots)| (shard, slots, SweepOutcome::default()))
            .collect();
        scrub_exec::par_for_each_mut(threads, &mut work, |_, (shard, slots, out)| {
            for &k in slots.iter() {
                let now = times[k as usize];
                let addr = (first + k as u64) % num_lines as u64;
                let slot = (addr / banks as u64) as usize;
                // Age filter first: a skipped slot draws no randomness,
                // exactly like the sequential policy returning Idle.
                if shard.lines[shard.resolve(slot)].age_at(now) < min_age_s {
                    out.idle_slots += 1;
                    continue;
                }
                out.probe_slots += 1;
                let result = ctx.scrub_probe(shard, slot, addr as u32, now);
                if result.outcome.is_uncorrectable() {
                    // Data restored from higher-level redundancy; the line
                    // itself must be rewritten either way.
                    out.forced_writebacks += 1;
                    ctx.scrub_writeback(shard, slot, addr as u32, now);
                } else if rule.fires(&result) {
                    out.policy_writebacks += 1;
                    ctx.scrub_writeback(shard, slot, addr as u32, now);
                }
            }
        });
        // Merge outcomes in fixed bank order.
        let mut total = SweepOutcome::default();
        for (_, _, out) in &work {
            total.absorb(out);
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::SweepRule;

    fn mem(code: CodeSpec) -> Memory {
        Memory::new(MemGeometry::new(256, 4), DeviceConfig::default(), code, 61)
    }

    #[test]
    fn fresh_memory_reads_clean() {
        let mut m = mem(CodeSpec::bch_line(4));
        for i in 0..256 {
            let r = m.demand_read(LineAddr(i), SimTime::from_secs(1.0));
            assert!(r.outcome.data_intact(), "line {i}: {:?}", r.outcome);
        }
        assert_eq!(m.stats().demand_reads, 256);
        assert_eq!(m.stats().uncorrectable(), 0);
    }

    #[test]
    fn old_memory_with_secded_sees_ues() {
        let mut m = mem(CodeSpec::secded_line());
        let week = SimTime::from_secs(604_800.0);
        let mut ues = 0;
        for i in 0..256 {
            if m.demand_read(LineAddr(i), week).new_ue {
                ues += 1;
            }
        }
        assert!(
            ues > 100,
            "week-old SECDED memory should be riddled with UEs, got {ues}"
        );
    }

    #[test]
    fn strong_ecc_survives_where_secded_fails() {
        let hour = SimTime::from_secs(3600.0);
        let mut weak = mem(CodeSpec::secded_line());
        let mut strong = mem(CodeSpec::bch_line(6));
        let mut weak_ues = 0;
        let mut strong_ues = 0;
        for i in 0..256 {
            weak_ues += weak.demand_read(LineAddr(i), hour).new_ue as u32;
            strong_ues += strong.demand_read(LineAddr(i), hour).new_ue as u32;
        }
        assert!(
            strong_ues * 4 < weak_ues.max(4),
            "BCH-6 ({strong_ues}) should beat SECDED ({weak_ues})"
        );
    }

    #[test]
    fn writeback_clears_soft_errors() {
        let mut m = mem(CodeSpec::bch_line(4));
        let day = SimTime::from_secs(86_400.0);
        let a = LineAddr(7);
        let before = m.scrub_probe(a, day);
        assert!(before.persistent_bits > 0);
        m.scrub_writeback(a, day);
        let after = m.scrub_probe(a, day + 1.0);
        assert_eq!(after.persistent_bits, 0);
        assert_eq!(m.stats().scrub_writebacks, 1);
    }

    #[test]
    fn ue_deduplicated_per_epoch() {
        let mut m = mem(CodeSpec::secded_line());
        let week = SimTime::from_secs(604_800.0);
        // Find a UE line, then probe it again: no double count.
        let mut target = None;
        for i in 0..256 {
            if m.scrub_probe(LineAddr(i), week).new_ue {
                target = Some(LineAddr(i));
                break;
            }
        }
        let t = target.expect("some line must be uncorrectable after a week");
        let ue_before = m.stats().uncorrectable();
        let again = m.scrub_probe(t, week + 10.0);
        assert!(!again.new_ue);
        assert_eq!(m.stats().uncorrectable(), ue_before);
        // After a write-back the epoch resets and a future UE counts anew.
        m.scrub_writeback(t, week + 20.0);
        assert!(!m.line(t).ue_recorded);
    }

    #[test]
    fn energy_flows_to_right_buckets() {
        let mut m = mem(CodeSpec::bch_line(2));
        let t = SimTime::from_secs(10.0);
        m.demand_read(LineAddr(0), t);
        m.demand_write(LineAddr(1), t);
        m.scrub_probe(LineAddr(2), t);
        m.scrub_writeback(LineAddr(3), t);
        assert!(m.energy().demand_total_pj() > 0.0);
        assert!(m.energy().scrub_total_pj() > 0.0);
        assert!(m.energy().scrub_writeback_pj() > m.energy().scrub_probe_pj());
    }

    #[test]
    fn wear_tracks_writes() {
        let mut m = mem(CodeSpec::bch_line(2));
        for _ in 0..10 {
            m.demand_write(LineAddr(5), SimTime::from_secs(1.0));
        }
        assert_eq!(m.line(LineAddr(5)).wear, 11); // 1 initial + 10 demand
        assert_eq!(m.max_wear(), 11);
        assert!(m.mean_wear() > 1.0);
    }

    #[test]
    #[should_panic(expected = "out of demand range")]
    fn read_out_of_range_panics() {
        let mut m = mem(CodeSpec::bch_line(2));
        m.demand_read(LineAddr(9999), SimTime::from_secs(1.0));
    }

    #[test]
    fn crc_probe_mode_saves_decode_energy_on_clean_lines() {
        let t = SimTime::from_secs(1.0); // fresh memory: everything clean
        let mut full = mem(CodeSpec::bch_line(6));
        let mut cheap = mem(CodeSpec::bch_line(6));
        cheap.set_probe_kind(ProbeKind::CrcThenDecode);
        for i in 0..256 {
            full.scrub_probe(LineAddr(i), t);
            cheap.scrub_probe(LineAddr(i), t);
        }
        assert!(
            cheap.energy().scrub_decode_pj() < full.energy().scrub_decode_pj() / 3.0,
            "crc {} vs full {}",
            cheap.energy().scrub_decode_pj(),
            full.energy().scrub_decode_pj()
        );
    }

    #[test]
    fn crc_probe_mode_pays_decode_on_dirty_lines() {
        let week = SimTime::from_secs(604_800.0); // heavily drifted
        let mut m = mem(CodeSpec::bch_line(6));
        m.set_probe_kind(ProbeKind::CrcThenDecode);
        let crc_only = m.device().energy().crc_check_pj;
        for i in 0..256 {
            m.scrub_probe(LineAddr(i), week);
        }
        // Most week-old lines are dirty: decode energy well above CRC-only.
        assert!(m.energy().scrub_decode_pj() > crc_only * 256.0 * 2.0);
    }

    #[test]
    fn wear_leveling_shrinks_demand_space_and_rotates() {
        let mut m = mem(CodeSpec::bch_line(2));
        m.enable_wear_leveling(4);
        assert_eq!(m.demand_lines(), 255);
        for i in 0..40u32 {
            m.demand_write(LineAddr(0), SimTime::from_secs(i as f64));
        }
        // 40 demand writes at period 4 => 10 rotation copies.
        assert_eq!(m.stats().wear_level_writes, 10);
        assert_eq!(m.stats().demand_writes, 40);
    }

    #[test]
    fn wear_leveling_spreads_hot_line_wear() {
        let horizon = 4000u32;
        // Without leveling: all wear lands on one physical line.
        let mut plain = mem(CodeSpec::bch_line(2));
        for i in 0..horizon {
            plain.demand_write(LineAddr(7), SimTime::from_secs(i as f64));
        }
        // With leveling (fast rotation for test speed): wear spreads.
        let mut leveled = mem(CodeSpec::bch_line(2));
        leveled.enable_wear_leveling(2);
        for i in 0..horizon {
            leveled.demand_write(LineAddr(7), SimTime::from_secs(i as f64));
        }
        assert!(
            (leveled.max_wear() as f64) < plain.max_wear() as f64 * 0.5,
            "leveled max wear {} vs plain {}",
            leveled.max_wear(),
            plain.max_wear()
        );
    }

    #[test]
    #[should_panic(expected = "out of demand range")]
    fn wear_leveling_rejects_the_sacrificed_line() {
        let mut m = mem(CodeSpec::bch_line(2));
        m.enable_wear_leveling(4);
        m.demand_read(LineAddr(255), SimTime::from_secs(1.0));
    }

    #[test]
    fn bank_streams_are_independent_of_touch_order() {
        // Probing lines in different global orders must give identical
        // per-line results, because draws are keyed to banks, not to
        // execution order. Line 0 and line 1 live in different banks.
        let day = SimTime::from_secs(86_400.0);
        let mut fwd = mem(CodeSpec::bch_line(4));
        let r0_fwd = fwd.scrub_probe(LineAddr(0), day);
        let r1_fwd = fwd.scrub_probe(LineAddr(1), day);
        let mut rev = mem(CodeSpec::bch_line(4));
        let r1_rev = rev.scrub_probe(LineAddr(1), day);
        let r0_rev = rev.scrub_probe(LineAddr(0), day);
        assert_eq!(r0_fwd, r0_rev);
        assert_eq!(r1_fwd, r1_rev);
    }

    #[test]
    fn sweep_matches_single_probe_path_at_any_thread_count() {
        let day = SimTime::from_secs(86_400.0);
        let times: Vec<SimTime> = (0..256).map(|k| day + k as f64).collect();
        // Reference: one probe at a time through the public ops, applying
        // the same threshold rule by hand.
        let mut reference = mem(CodeSpec::bch_line(6));
        let mut ref_out = SweepOutcome::default();
        for k in 0..256u32 {
            let now = times[k as usize];
            let r = reference.scrub_probe(LineAddr(k), now);
            ref_out.probe_slots += 1;
            if r.outcome.is_uncorrectable() {
                ref_out.forced_writebacks += 1;
                reference.scrub_writeback(LineAddr(k), now);
            } else if r.persistent_bits >= 3 {
                ref_out.policy_writebacks += 1;
                reference.scrub_writeback(LineAddr(k), now);
            }
        }
        for threads in [1, 4] {
            let mut m = mem(CodeSpec::bch_line(6));
            let plan = SweepPlan {
                first: LineAddr(0),
                times: &times,
                min_age_s: 0.0,
                rule: SweepRule::Threshold { theta: 3 },
            };
            let out = m.scrub_sweep(&plan, threads);
            assert_eq!(out, ref_out, "threads={threads}");
            assert_eq!(m.stats(), reference.stats(), "threads={threads}");
            assert_eq!(m.energy(), reference.energy(), "threads={threads}");
            for i in 0..256 {
                assert_eq!(m.line(LineAddr(i)), reference.line(LineAddr(i)));
            }
        }
    }

    #[test]
    fn sweep_age_filter_skips_young_lines_without_draws() {
        let now = SimTime::from_secs(1000.0);
        let mut m = mem(CodeSpec::bch_line(6));
        // Refresh half the lines just before the sweep.
        for i in 0..128u32 {
            m.demand_write(LineAddr(i), SimTime::from_secs(999.0));
        }
        let times: Vec<SimTime> = (0..256).map(|k| now + k as f64 * 0.01).collect();
        let plan = SweepPlan {
            first: LineAddr(0),
            times: &times,
            min_age_s: 600.0,
            rule: SweepRule::Threshold { theta: 2 },
        };
        let out = m.scrub_sweep(&plan, 2);
        assert_eq!(out.idle_slots, 128);
        assert_eq!(out.probe_slots, 128);
        assert_eq!(m.stats().scrub_probes, 128);
    }

    fn checkpointable_mem(spec: &CampaignSpec) -> Memory {
        let mut m = Memory::new(
            MemGeometry::new(256, 4),
            DeviceConfig::default(),
            CodeSpec::bch_line(4),
            61,
        );
        m.enable_wear_leveling(16);
        m.attach_campaign(spec);
        m.enable_repair(RepairConfig::default());
        m.enable_ue_recovery(RecoveryConfig::default());
        m
    }

    #[test]
    fn checkpoint_round_trip_restores_every_ledger() {
        let spec: CampaignSpec = "seed=9;stuck=lines:32,cells:3".parse().unwrap();
        let mut original = checkpointable_mem(&spec);
        // Drive traffic so every ledger, RNG stream, and the start-gap
        // mapper have moved off their construction values.
        let n = original.demand_lines();
        for i in 0..256u32 {
            original.demand_write(LineAddr(i % n), SimTime::from_secs(i as f64));
        }
        for i in 0..256u32 {
            original.scrub_probe(LineAddr(i % n), SimTime::from_secs(300.0 + i as f64));
        }
        let mut w = Writer::new();
        original.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut resumed = checkpointable_mem(&spec);
        let mut r = Reader::new(&bytes);
        resumed.restore_state(&mut r).unwrap();
        r.finish().unwrap();

        // Re-snapshotting the restored memory must reproduce the bytes…
        let mut w2 = Writer::new();
        resumed.save_state(&mut w2);
        assert_eq!(bytes, w2.into_bytes(), "snapshot not idempotent");
        // …and the two memories must behave identically afterwards.
        for i in 0..64u32 {
            let t = SimTime::from_secs(700.0 + i as f64);
            assert_eq!(
                original.demand_read(LineAddr(i), t),
                resumed.demand_read(LineAddr(i), t),
                "divergence at line {i}"
            );
        }
        assert_eq!(original.stats(), resumed.stats());
    }

    #[test]
    fn restore_rejects_mismatched_geometry() {
        let spec: CampaignSpec = "seed=9;stuck=lines:32,cells:3".parse().unwrap();
        let m = checkpointable_mem(&spec);
        let mut w = Writer::new();
        m.save_state(&mut w);
        let bytes = w.into_bytes();

        // Different bank count.
        let mut other = Memory::new(
            MemGeometry::new(256, 8),
            DeviceConfig::default(),
            CodeSpec::bch_line(4),
            61,
        );
        other.enable_wear_leveling(16);
        other.enable_repair(RepairConfig::default());
        let err = other.restore_state(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)), "{err}");

        // No wear leveler configured.
        let mut other = Memory::new(
            MemGeometry::new(256, 4),
            DeviceConfig::default(),
            CodeSpec::bch_line(4),
            61,
        );
        other.enable_repair(RepairConfig::default());
        let err = other.restore_state(&mut Reader::new(&bytes)).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)), "{err}");
    }

    #[test]
    fn tripwire_save_variant_differs_only_in_bank0_rng() {
        let spec: CampaignSpec = "seed=9;stuck=lines:32,cells:3".parse().unwrap();
        let mut m = checkpointable_mem(&spec);
        for i in 0..64u32 {
            m.demand_write(LineAddr(i), SimTime::from_secs(i as f64));
        }
        let mut honest = Writer::new();
        m.save_state(&mut honest);
        let honest = honest.into_bytes();
        let mut lying = Writer::new();
        m.save_state_omitting_bank0_rng(&mut lying);
        let lying = lying.into_bytes();
        assert_eq!(honest.len(), lying.len(), "hook must not change layout");
        assert_ne!(honest, lying, "hook must actually drop bank 0's RNG");
    }
}
