//! The simulated main memory: line array + fault engine + ECC + ledgers.

use rand::Rng;

use pcm_ecc::{ClassifyOutcome, CodeSpec};
use pcm_model::DeviceConfig;

use crate::bank::BankTimer;
use crate::energy::EnergyLedger;
use crate::fault::FaultEngine;
use crate::geometry::{LineAddr, MemGeometry};
use crate::line::LineState;
use crate::stats::MemStats;
use crate::time::SimTime;
use crate::timing::{BandwidthTracker, TimingModel};
use crate::wear_level::StartGap;

/// How scrub probes check a line.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProbeKind {
    /// Every probe runs the full ECC decode (syndromes + locator).
    #[default]
    FullDecode,
    /// Two-phase lightweight probe: a CRC check first; the full decode
    /// runs only when the CRC trips. Saves decode energy on the (common)
    /// clean lines at no loss of detection.
    CrcThenDecode,
}

/// Result of a demand read or scrub probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// How the decoder classified the line.
    pub outcome: ClassifyOutcome,
    /// Persistent bit errors resident on the line (excludes the transient
    /// draw of this read).
    pub persistent_bits: u32,
    /// Whether this access recorded a *new* uncorrectable error (first
    /// discovery for the current write epoch).
    pub new_ue: bool,
}

/// A PCM main memory at line granularity.
///
/// Combines geometry, the stochastic fault engine, a line code, and
/// energy/timing/statistics ledgers. All operations take the current
/// [`SimTime`] and a caller RNG, keeping the whole simulation
/// deterministic under a fixed seed.
///
/// # Examples
///
/// ```
/// use pcm_memsim::{LineAddr, Memory, MemGeometry, SimTime};
/// use pcm_ecc::CodeSpec;
/// use pcm_model::DeviceConfig;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(2);
/// let mut mem = Memory::new(
///     MemGeometry::small(),
///     DeviceConfig::default(),
///     CodeSpec::bch_line(4),
///     &mut rng,
/// );
/// let r = mem.demand_read(LineAddr(17), SimTime::from_secs(1.0), &mut rng);
/// assert!(r.outcome.data_intact());
/// ```
#[derive(Debug, Clone)]
pub struct Memory {
    geom: MemGeometry,
    device: DeviceConfig,
    code: CodeSpec,
    engine: FaultEngine,
    lines: Vec<LineState>,
    stats: MemStats,
    energy: EnergyLedger,
    timing: TimingModel,
    bandwidth: BandwidthTracker,
    mlc: bool,
    wear_leveler: Option<StartGap>,
    probe_kind: ProbeKind,
    banks: BankTimer,
    demand_read_delay_ns_sum: f64,
}

impl Memory {
    /// Builds a memory whose lines were all written at time zero.
    pub fn new<R: Rng + ?Sized>(
        geom: MemGeometry,
        device: DeviceConfig,
        code: CodeSpec,
        rng: &mut R,
    ) -> Self {
        let bits_per_cell = device.stack().bits_per_cell();
        let cells = code.total_bits().div_ceil(bits_per_cell);
        let engine = FaultEngine::new(&device, cells);
        let lines = (0..geom.num_lines())
            .map(|_| engine.fresh_line(SimTime::ZERO, rng))
            .collect();
        let mlc = bits_per_cell > 1;
        Self {
            geom,
            device,
            code,
            engine,
            lines,
            stats: MemStats::default(),
            energy: EnergyLedger::default(),
            timing: TimingModel::default(),
            bandwidth: BandwidthTracker::default(),
            mlc,
            wear_leveler: None,
            probe_kind: ProbeKind::FullDecode,
            banks: BankTimer::new(geom.banks()),
            demand_read_delay_ns_sum: 0.0,
        }
    }

    /// Measured mean demand-read latency (service time plus queueing
    /// delays actually suffered behind scrub/demand traffic on the same
    /// bank), in nanoseconds.
    pub fn measured_demand_read_latency_ns(&self) -> f64 {
        let service = self.timing.read_ns + self.timing.decode_ns(self.code.guaranteed_t());
        if self.stats.demand_reads == 0 {
            service
        } else {
            service + self.demand_read_delay_ns_sum / self.stats.demand_reads as f64
        }
    }

    /// Selects how scrub probes check lines (see [`ProbeKind`]).
    pub fn set_probe_kind(&mut self, kind: ProbeKind) {
        self.probe_kind = kind;
    }

    /// The probe kind in force.
    pub fn probe_kind(&self) -> ProbeKind {
        self.probe_kind
    }

    /// Enables Start-Gap wear leveling: demand addresses become *logical*
    /// (one line is sacrificed as the rotating gap) and the mapping shifts
    /// every `rotate_period` demand writes. Scrub continues to address
    /// physical lines — it maintains the array, not the data view.
    ///
    /// # Panics
    ///
    /// Panics if the memory has fewer than two lines.
    pub fn enable_wear_leveling(&mut self, rotate_period: u32) {
        self.wear_leveler = Some(StartGap::new(self.geom.num_lines(), rotate_period));
    }

    /// The number of lines demand traffic may address (one fewer than
    /// physical when wear leveling is on).
    pub fn demand_lines(&self) -> u32 {
        match &self.wear_leveler {
            Some(sg) => sg.logical_lines(),
            None => self.geom.num_lines(),
        }
    }

    /// Translates a demand (logical) address to a physical line.
    fn demand_to_physical(&self, addr: LineAddr) -> LineAddr {
        match &self.wear_leveler {
            Some(sg) => sg.map(addr),
            None => addr,
        }
    }

    /// Advances the wear leveler after a demand write, paying for the
    /// rotation copy when one occurs.
    fn rotate_wear_leveler<R: Rng + ?Sized>(&mut self, now: SimTime, rng: &mut R) {
        let Some(sg) = &mut self.wear_leveler else {
            return;
        };
        if let Some(copied_to) = sg.on_write() {
            // The displaced line's contents are rewritten into the old gap
            // slot: one extra array write of fresh data.
            self.engine
                .on_write(&mut self.lines[copied_to.index()], now, rng);
            self.stats.wear_level_writes += 1;
            let e = self.device.energy();
            self.energy
                .add_demand_write(e.line_write_pj(self.code.total_bits(), self.mlc) + e.encode_pj);
            self.bandwidth.add_demand_ns(self.timing.write_ns(self.mlc));
        }
    }

    /// The geometry in force.
    pub fn geometry(&self) -> &MemGeometry {
        &self.geom
    }

    /// The device configuration in force.
    pub fn device(&self) -> &DeviceConfig {
        &self.device
    }

    /// The line code in force.
    pub fn code(&self) -> &CodeSpec {
        &self.code
    }

    /// The fault engine (for policies that consult the drift model).
    pub fn fault_engine(&self) -> &FaultEngine {
        &self.engine
    }

    /// Accumulated counters.
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Accumulated energy.
    pub fn energy(&self) -> &EnergyLedger {
        &self.energy
    }

    /// Channel-time tracker.
    pub fn bandwidth(&self) -> &BandwidthTracker {
        &self.bandwidth
    }

    /// The timing model.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Immutable view of a line's state.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn line(&self, addr: LineAddr) -> &LineState {
        &self.lines[addr.index()]
    }

    /// Mean wear (writes) across all lines.
    pub fn mean_wear(&self) -> f64 {
        self.lines.iter().map(|l| l.wear as f64).sum::<f64>() / self.lines.len() as f64
    }

    /// Maximum wear across all lines.
    pub fn max_wear(&self) -> u32 {
        self.lines.iter().map(|l| l.wear).max().unwrap_or(0)
    }

    /// Total permanently worn cells across the memory.
    pub fn total_worn_cells(&self) -> u64 {
        self.lines.iter().map(|l| l.worn_cells as u64).sum()
    }

    /// Per-line wear counts (for distribution analyses, e.g. wear-leveling
    /// flatness histograms).
    pub fn wear_values(&self) -> Vec<u32> {
        self.lines.iter().map(|l| l.wear).collect()
    }

    /// Per-line data ages at `now`, in seconds (the drift-exposure
    /// distribution scrub policies are fighting).
    pub fn age_values(&self, now: SimTime) -> Vec<f64> {
        self.lines.iter().map(|l| l.age_at(now)).collect()
    }

    fn decode_line<R: Rng + ?Sized>(
        &mut self,
        addr: LineAddr,
        now: SimTime,
        rng: &mut R,
        demand: bool,
    ) -> AccessResult {
        let line = &mut self.lines[addr.index()];
        let persistent = self.engine.advance(line, now, rng);
        let transient = self.engine.transient_errors(line, now, rng);
        let outcome = self.code.classify(persistent + transient, rng);
        if let ClassifyOutcome::Corrected { bits } = outcome {
            self.stats.corrected_bits += bits as u64;
        }
        let mut new_ue = false;
        if outcome.is_uncorrectable() && !line.ue_recorded {
            line.ue_recorded = true;
            new_ue = true;
            match outcome {
                ClassifyOutcome::Miscorrected => self.stats.miscorrections += 1,
                _ => self.stats.detected_ue += 1,
            }
            if demand {
                self.stats.demand_ue += 1;
            }
        }
        AccessResult {
            outcome,
            persistent_bits: persistent,
            new_ue,
        }
    }

    /// Serves a demand read: array read + decode, no write-back.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn demand_read<R: Rng + ?Sized>(
        &mut self,
        addr: LineAddr,
        now: SimTime,
        rng: &mut R,
    ) -> AccessResult {
        assert!(
            addr.0 < self.demand_lines(),
            "address {addr} out of demand range"
        );
        let addr = self.demand_to_physical(addr);
        let result = self.decode_line(addr, now, rng, true);
        self.stats.demand_reads += 1;
        let e = self.device.energy();
        self.energy.add_demand_read(e.line_read_pj(self.code.total_bits()));
        self.energy.add_demand_decode(e.decode_pj(self.code.guaranteed_t()));
        let dur = self.timing.read_ns + self.timing.decode_ns(self.code.guaranteed_t());
        self.bandwidth.add_demand_ns(dur);
        let delay = self
            .banks
            .issue_addr(&self.geom, addr, now.secs() * 1e9, dur);
        self.demand_read_delay_ns_sum += delay;
        result
    }

    /// Serves a demand write: reprograms the line (resetting its drift
    /// clock) and pays MLC write energy.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn demand_write<R: Rng + ?Sized>(&mut self, addr: LineAddr, now: SimTime, rng: &mut R) {
        assert!(
            addr.0 < self.demand_lines(),
            "address {addr} out of demand range"
        );
        let addr = self.demand_to_physical(addr);
        let had_worn = self.lines[addr.index()].worn_cells > 0;
        self.engine.on_write(&mut self.lines[addr.index()], now, rng);
        if !had_worn && self.lines[addr.index()].worn_cells > 0 {
            self.stats.lines_with_worn_cells += 1;
        }
        self.stats.demand_writes += 1;
        let e = self.device.energy();
        self.energy
            .add_demand_write(e.line_write_pj(self.code.total_bits(), self.mlc) + e.encode_pj);
        self.bandwidth.add_demand_ns(self.timing.write_ns(self.mlc));
        self.banks
            .issue_addr(&self.geom, addr, now.secs() * 1e9, self.timing.write_ns(self.mlc));
        self.rotate_wear_leveler(now, rng);
    }

    /// Issues a scrub probe: array read + decode *only* (the lightweight
    /// detection operation). Never writes.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn scrub_probe<R: Rng + ?Sized>(
        &mut self,
        addr: LineAddr,
        now: SimTime,
        rng: &mut R,
    ) -> AccessResult {
        assert!(self.geom.contains(addr), "address {addr} out of range");
        let result = self.decode_line(addr, now, rng, false);
        self.stats.scrub_probes += 1;
        let e = self.device.energy();
        self.energy.add_scrub_probe(e.line_read_pj(self.code.total_bits()));
        let t = self.code.guaranteed_t();
        let decode_pj = match self.probe_kind {
            ProbeKind::FullDecode => e.decode_pj(t),
            ProbeKind::CrcThenDecode => {
                // CRC always; full decode only when something is wrong.
                if matches!(result.outcome, ClassifyOutcome::Clean) {
                    e.crc_check_pj
                } else {
                    e.crc_check_pj + e.decode_pj(t)
                }
            }
        };
        self.energy.add_scrub_decode(decode_pj);
        let dur = self.timing.read_ns + self.timing.decode_ns(t);
        self.bandwidth.add_scrub_ns(dur);
        self.banks.issue_addr(&self.geom, addr, now.secs() * 1e9, dur);
        result
    }

    /// Issues a scrub write-back: reprograms the line with corrected data,
    /// clearing accumulated soft errors at the cost of write energy and
    /// wear.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is out of range.
    pub fn scrub_writeback<R: Rng + ?Sized>(
        &mut self,
        addr: LineAddr,
        now: SimTime,
        rng: &mut R,
    ) {
        assert!(self.geom.contains(addr), "address {addr} out of range");
        let had_worn = self.lines[addr.index()].worn_cells > 0;
        self.engine.on_write(&mut self.lines[addr.index()], now, rng);
        if !had_worn && self.lines[addr.index()].worn_cells > 0 {
            self.stats.lines_with_worn_cells += 1;
        }
        self.stats.scrub_writebacks += 1;
        let e = self.device.energy();
        self.energy
            .add_scrub_writeback(e.line_write_pj(self.code.total_bits(), self.mlc) + e.encode_pj);
        self.bandwidth.add_scrub_ns(self.timing.write_ns(self.mlc));
        self.banks
            .issue_addr(&self.geom, addr, now.secs() * 1e9, self.timing.write_ns(self.mlc));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mem(code: CodeSpec, rng: &mut StdRng) -> Memory {
        Memory::new(MemGeometry::new(256, 4), DeviceConfig::default(), code, rng)
    }

    #[test]
    fn fresh_memory_reads_clean() {
        let mut rng = StdRng::seed_from_u64(61);
        let mut m = mem(CodeSpec::bch_line(4), &mut rng);
        for i in 0..256 {
            let r = m.demand_read(LineAddr(i), SimTime::from_secs(1.0), &mut rng);
            assert!(r.outcome.data_intact(), "line {i}: {:?}", r.outcome);
        }
        assert_eq!(m.stats().demand_reads, 256);
        assert_eq!(m.stats().uncorrectable(), 0);
    }

    #[test]
    fn old_memory_with_secded_sees_ues() {
        let mut rng = StdRng::seed_from_u64(62);
        let mut m = mem(CodeSpec::secded_line(), &mut rng);
        let week = SimTime::from_secs(604_800.0);
        let mut ues = 0;
        for i in 0..256 {
            if m.demand_read(LineAddr(i), week, &mut rng).new_ue {
                ues += 1;
            }
        }
        assert!(ues > 100, "week-old SECDED memory should be riddled with UEs, got {ues}");
    }

    #[test]
    fn strong_ecc_survives_where_secded_fails() {
        let mut rng = StdRng::seed_from_u64(63);
        let hour = SimTime::from_secs(3600.0);
        let mut weak = mem(CodeSpec::secded_line(), &mut rng);
        let mut strong = mem(CodeSpec::bch_line(6), &mut rng);
        let mut weak_ues = 0;
        let mut strong_ues = 0;
        for i in 0..256 {
            weak_ues += weak.demand_read(LineAddr(i), hour, &mut rng).new_ue as u32;
            strong_ues += strong.demand_read(LineAddr(i), hour, &mut rng).new_ue as u32;
        }
        assert!(
            strong_ues * 4 < weak_ues.max(4),
            "BCH-6 ({strong_ues}) should beat SECDED ({weak_ues})"
        );
    }

    #[test]
    fn writeback_clears_soft_errors() {
        let mut rng = StdRng::seed_from_u64(64);
        let mut m = mem(CodeSpec::bch_line(4), &mut rng);
        let day = SimTime::from_secs(86_400.0);
        let a = LineAddr(7);
        let before = m.scrub_probe(a, day, &mut rng);
        assert!(before.persistent_bits > 0);
        m.scrub_writeback(a, day, &mut rng);
        let after = m.scrub_probe(a, day + 1.0, &mut rng);
        assert_eq!(after.persistent_bits, 0);
        assert_eq!(m.stats().scrub_writebacks, 1);
    }

    #[test]
    fn ue_deduplicated_per_epoch() {
        let mut rng = StdRng::seed_from_u64(65);
        let mut m = mem(CodeSpec::secded_line(), &mut rng);
        let week = SimTime::from_secs(604_800.0);
        // Find a UE line, then probe it again: no double count.
        let mut target = None;
        for i in 0..256 {
            if m.scrub_probe(LineAddr(i), week, &mut rng).new_ue {
                target = Some(LineAddr(i));
                break;
            }
        }
        let t = target.expect("some line must be uncorrectable after a week");
        let ue_before = m.stats().uncorrectable();
        let again = m.scrub_probe(t, week + 10.0, &mut rng);
        assert!(!again.new_ue);
        assert_eq!(m.stats().uncorrectable(), ue_before);
        // After a write-back the epoch resets and a future UE counts anew.
        m.scrub_writeback(t, week + 20.0, &mut rng);
        assert!(!m.line(t).ue_recorded);
    }

    #[test]
    fn energy_flows_to_right_buckets() {
        let mut rng = StdRng::seed_from_u64(66);
        let mut m = mem(CodeSpec::bch_line(2), &mut rng);
        let t = SimTime::from_secs(10.0);
        m.demand_read(LineAddr(0), t, &mut rng);
        m.demand_write(LineAddr(1), t, &mut rng);
        m.scrub_probe(LineAddr(2), t, &mut rng);
        m.scrub_writeback(LineAddr(3), t, &mut rng);
        assert!(m.energy().demand_total_pj() > 0.0);
        assert!(m.energy().scrub_total_pj() > 0.0);
        assert!(m.energy().scrub_writeback_pj() > m.energy().scrub_probe_pj());
    }

    #[test]
    fn wear_tracks_writes() {
        let mut rng = StdRng::seed_from_u64(67);
        let mut m = mem(CodeSpec::bch_line(2), &mut rng);
        for _ in 0..10 {
            m.demand_write(LineAddr(5), SimTime::from_secs(1.0), &mut rng);
        }
        assert_eq!(m.line(LineAddr(5)).wear, 11); // 1 initial + 10 demand
        assert_eq!(m.max_wear(), 11);
        assert!(m.mean_wear() > 1.0);
    }

    #[test]
    #[should_panic(expected = "out of demand range")]
    fn read_out_of_range_panics() {
        let mut rng = StdRng::seed_from_u64(68);
        let mut m = mem(CodeSpec::bch_line(2), &mut rng);
        m.demand_read(LineAddr(9999), SimTime::from_secs(1.0), &mut rng);
    }

    #[test]
    fn crc_probe_mode_saves_decode_energy_on_clean_lines() {
        let mut rng = StdRng::seed_from_u64(72);
        let t = SimTime::from_secs(1.0); // fresh memory: everything clean
        let mut full = mem(CodeSpec::bch_line(6), &mut rng);
        let mut cheap = mem(CodeSpec::bch_line(6), &mut rng);
        cheap.set_probe_kind(ProbeKind::CrcThenDecode);
        for i in 0..256 {
            full.scrub_probe(LineAddr(i), t, &mut rng);
            cheap.scrub_probe(LineAddr(i), t, &mut rng);
        }
        assert!(
            cheap.energy().scrub_decode_pj() < full.energy().scrub_decode_pj() / 3.0,
            "crc {} vs full {}",
            cheap.energy().scrub_decode_pj(),
            full.energy().scrub_decode_pj()
        );
    }

    #[test]
    fn crc_probe_mode_pays_decode_on_dirty_lines() {
        let mut rng = StdRng::seed_from_u64(73);
        let week = SimTime::from_secs(604_800.0); // heavily drifted
        let mut m = mem(CodeSpec::bch_line(6), &mut rng);
        m.set_probe_kind(ProbeKind::CrcThenDecode);
        let crc_only = m.device().energy().crc_check_pj;
        for i in 0..256 {
            m.scrub_probe(LineAddr(i), week, &mut rng);
        }
        // Most week-old lines are dirty: decode energy well above CRC-only.
        assert!(m.energy().scrub_decode_pj() > crc_only * 256.0 * 2.0);
    }

    #[test]
    fn wear_leveling_shrinks_demand_space_and_rotates() {
        let mut rng = StdRng::seed_from_u64(69);
        let mut m = mem(CodeSpec::bch_line(2), &mut rng);
        m.enable_wear_leveling(4);
        assert_eq!(m.demand_lines(), 255);
        for i in 0..40u32 {
            m.demand_write(LineAddr(0), SimTime::from_secs(i as f64), &mut rng);
        }
        // 40 demand writes at period 4 => 10 rotation copies.
        assert_eq!(m.stats().wear_level_writes, 10);
        assert_eq!(m.stats().demand_writes, 40);
    }

    #[test]
    fn wear_leveling_spreads_hot_line_wear() {
        let mut rng = StdRng::seed_from_u64(70);
        let horizon = 4000u32;
        // Without leveling: all wear lands on one physical line.
        let mut plain = mem(CodeSpec::bch_line(2), &mut rng);
        for i in 0..horizon {
            plain.demand_write(LineAddr(7), SimTime::from_secs(i as f64), &mut rng);
        }
        // With leveling (fast rotation for test speed): wear spreads.
        let mut leveled = mem(CodeSpec::bch_line(2), &mut rng);
        leveled.enable_wear_leveling(2);
        for i in 0..horizon {
            leveled.demand_write(LineAddr(7), SimTime::from_secs(i as f64), &mut rng);
        }
        assert!(
            (leveled.max_wear() as f64) < plain.max_wear() as f64 * 0.5,
            "leveled max wear {} vs plain {}",
            leveled.max_wear(),
            plain.max_wear()
        );
    }

    #[test]
    #[should_panic(expected = "out of demand range")]
    fn wear_leveling_rejects_the_sacrificed_line() {
        let mut rng = StdRng::seed_from_u64(71);
        let mut m = mem(CodeSpec::bch_line(2), &mut rng);
        m.enable_wear_leveling(4);
        m.demand_read(LineAddr(255), SimTime::from_secs(1.0), &mut rng);
    }
}
