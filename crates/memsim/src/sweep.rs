//! Batched scrub-sweep plans: the memory-side half of the bank-parallel
//! scrub fast path.
//!
//! A scrub engine that probes lines on a fixed cadence spends almost all
//! of its slots in a predictable pattern: consecutive cursor addresses at
//! evenly spaced times, each slot applying the same local write-back rule.
//! [`SweepPlan`] captures one such run of slots so [`crate::Memory`] can
//! execute it as a unit, partitioned by bank — each bank's slots run on
//! the bank's own RNG stream, in slot order, which makes the execution
//! bit-identical to issuing the slots one at a time (and identical at any
//! thread count).

use crate::geometry::LineAddr;
use crate::memory::AccessResult;
use crate::time::SimTime;

/// Local write-back decision applied to each probed (non-uncorrectable)
/// line of a sweep. Uncorrectable lines are always written back (forced)
/// before this rule is consulted, mirroring the sequential engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SweepRule {
    /// Write back on any decoder activity (the Basic policy's rule).
    AnyError,
    /// Write back when persistent errors reach `theta` (lazy write-back).
    Threshold {
        /// Persistent-bit-error threshold.
        theta: u32,
    },
}

impl SweepRule {
    /// Whether this rule requests a write-back for a probe result that was
    /// not uncorrectable.
    pub fn fires(&self, result: &AccessResult) -> bool {
        match *self {
            SweepRule::AnyError => !matches!(result.outcome, pcm_ecc::ClassifyOutcome::Clean),
            SweepRule::Threshold { theta } => result.persistent_bits >= theta,
        }
    }
}

/// A run of consecutive scrub slots to execute as one batch.
///
/// Slot `k` (for `k < times.len()`) targets line
/// `(first + k) mod num_lines` at time `times[k]`. Slots younger than
/// `min_age_s` are skipped without touching the RNG (age-aware probing);
/// the rest are probed and written back per `rule`.
#[derive(Debug, Clone, Copy)]
pub struct SweepPlan<'a> {
    /// Line targeted by slot 0; subsequent slots advance by one, wrapping.
    pub first: LineAddr,
    /// Slot times, in nondecreasing order (one per slot).
    pub times: &'a [SimTime],
    /// Minimum data age for a probe to be worth issuing; 0 disables the
    /// filter.
    pub min_age_s: f64,
    /// Write-back rule for correctable lines.
    pub rule: SweepRule,
}

/// What a sweep did, merged over banks in fixed bank order. Field names
/// mirror the scrub engine's counters so callers can fold them straight
/// into their stats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepOutcome {
    /// Slots that issued a probe.
    pub probe_slots: u64,
    /// Slots skipped by the age filter.
    pub idle_slots: u64,
    /// Write-backs requested by the rule on correctable lines.
    pub policy_writebacks: u64,
    /// Write-backs forced by uncorrectable probe results.
    pub forced_writebacks: u64,
}

impl SweepOutcome {
    /// Folds another outcome into this one.
    pub fn absorb(&mut self, other: &SweepOutcome) {
        self.probe_slots += other.probe_slots;
        self.idle_slots += other.idle_slots;
        self.policy_writebacks += other.policy_writebacks;
        self.forced_writebacks += other.forced_writebacks;
    }

    /// Total slots the plan covered.
    pub fn slots(&self) -> u64 {
        self.probe_slots + self.idle_slots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_ecc::ClassifyOutcome;

    fn result(outcome: ClassifyOutcome, persistent: u32) -> AccessResult {
        AccessResult {
            outcome,
            persistent_bits: persistent,
            new_ue: false,
        }
    }

    #[test]
    fn any_error_fires_on_corrected_not_clean() {
        let r = SweepRule::AnyError;
        assert!(!r.fires(&result(ClassifyOutcome::Clean, 0)));
        assert!(r.fires(&result(ClassifyOutcome::Corrected { bits: 1 }, 1)));
    }

    #[test]
    fn threshold_fires_on_persistent_count() {
        let r = SweepRule::Threshold { theta: 3 };
        assert!(!r.fires(&result(ClassifyOutcome::Corrected { bits: 2 }, 2)));
        assert!(r.fires(&result(ClassifyOutcome::Corrected { bits: 3 }, 3)));
    }

    #[test]
    fn outcome_absorb_sums() {
        let mut a = SweepOutcome {
            probe_slots: 1,
            idle_slots: 2,
            policy_writebacks: 3,
            forced_writebacks: 4,
        };
        a.absorb(&a.clone());
        assert_eq!(a.probe_slots, 2);
        assert_eq!(a.slots(), 6);
        assert_eq!(a.forced_writebacks, 8);
    }
}
