//! # pcm-memsim — line-granularity PCM main-memory simulator
//!
//! The evaluation substrate for the HPCA 2012 scrub-mechanisms
//! reproduction. Simulates a multi-gigabyte PCM memory at 64-byte-line
//! granularity:
//!
//! * [`Memory`] — line array + ECC + energy/timing/statistics ledgers,
//!   with `demand_read`/`demand_write` for program traffic and
//!   `scrub_probe`/`scrub_writeback` as the primitives scrub policies
//!   compose;
//! * [`FaultEngine`] — lazy, exact stochastic evolution of per-line drift
//!   and wear failures via incremental binomial sampling (DESIGN.md "Key
//!   algorithms");
//! * [`TimingModel`]/[`BandwidthTracker`] — channel-utilization bookkeeping
//!   behind the performance-overhead experiment;
//! * [`TraceSource`] — the workload interface;
//! * [`SweepPlan`]/[`Memory::scrub_sweep`] — bank-parallel execution of a
//!   batch of scrub slots, bit-identical to the one-at-a-time path.
//!
//! The memory owns its randomness: construction takes a seed, and each
//! bank shard runs an independent RNG stream derived from it, which is
//! what makes the parallel sweep deterministic (see the [`memory`] module
//! docs).
//!
//! # Quick start
//!
//! ```
//! use pcm_memsim::{LineAddr, Memory, MemGeometry, SimTime};
//! use pcm_ecc::CodeSpec;
//! use pcm_model::DeviceConfig;
//!
//! let mut mem = Memory::new(
//!     MemGeometry::small(),
//!     DeviceConfig::default(),
//!     CodeSpec::secded_line(),
//!     0, // master RNG seed
//! );
//! // A day of unattended drift later, probe a line:
//! let r = mem.scrub_probe(LineAddr(0), SimTime::from_secs(86_400.0));
//! println!("persistent errors: {}", r.persistent_bits);
//! ```

mod bank;
mod energy;
mod fault;
mod geometry;
pub mod inject;
mod line;
pub mod memory;
mod repair;
mod stats;
mod sweep;
mod time;
mod timing;
mod trace;
mod wear_level;

pub use bank::BankTimer;
pub use energy::EnergyLedger;
pub use fault::FaultEngine;
pub use geometry::{LineAddr, MemGeometry};
pub use inject::{CampaignSpec, Injector};
pub use line::{LineState, MAX_LEVELS};
pub use memory::{AccessResult, Memory, ProbeKind};
pub use repair::{RecoveryConfig, RepairConfig};
pub use stats::MemStats;
pub use sweep::{SweepOutcome, SweepPlan, SweepRule};
pub use time::SimTime;
pub use timing::{BandwidthTracker, TimingModel};
pub use trace::{MemOp, OpKind, TraceSource};
pub use wear_level::StartGap;
