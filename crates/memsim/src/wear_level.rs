//! Start-Gap wear leveling (Qureshi et al., MICRO 2009) — the standard
//! PCM wear-leveling companion the scrub paper assumes underneath it.
//!
//! One spare ("gap") physical line rotates through the address space;
//! every `rotate_period` writes the gap moves down by one, slowly shifting
//! the logical→physical mapping so write-hot logical lines do not pin
//! write-hot physical cells forever.

use crate::geometry::LineAddr;

/// Start-Gap logical→physical remapper over `physical_lines` lines
/// (serving `physical_lines − 1` logical lines).
///
/// # Examples
///
/// ```
/// use pcm_memsim::{LineAddr, StartGap};
/// let mut sg = StartGap::new(8, 4);
/// let before = sg.map(LineAddr(3));
/// for _ in 0..4 { sg.on_write(); } // one rotation step
/// let after = sg.map(LineAddr(3));
/// assert!(before != after || sg.gap() != 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StartGap {
    physical_lines: u32,
    /// Current physical position of the gap line.
    gap: u32,
    /// Rotation origin: how many full gap sweeps have completed.
    start: u32,
    /// Writes since the last gap movement.
    writes_since_move: u32,
    /// Gap moves after this many writes.
    rotate_period: u32,
}

impl StartGap {
    /// Creates a start-gap mapper with the gap initially at the last
    /// physical line.
    ///
    /// # Panics
    ///
    /// Panics if `physical_lines < 2` or `rotate_period == 0`.
    pub fn new(physical_lines: u32, rotate_period: u32) -> Self {
        assert!(physical_lines >= 2, "start-gap needs at least two lines");
        assert!(rotate_period > 0, "rotate period must be positive");
        Self {
            physical_lines,
            gap: physical_lines - 1,
            start: 0,
            writes_since_move: 0,
            rotate_period,
        }
    }

    /// Logical lines served (`physical − 1`).
    pub fn logical_lines(&self) -> u32 {
        self.physical_lines - 1
    }

    /// Current gap position (physical).
    pub fn gap(&self) -> u32 {
        self.gap
    }

    /// The three mutable words — `(gap, start, writes_since_move)` — for
    /// checkpointing. Geometry (`physical_lines`, `rotate_period`) is
    /// configuration and is rebuilt from the run's config instead.
    pub fn dynamic_state(&self) -> (u32, u32, u32) {
        (self.gap, self.start, self.writes_since_move)
    }

    /// Restores state captured by [`StartGap::dynamic_state`] onto a
    /// mapper with the same geometry. Rejects out-of-range values instead
    /// of corrupting the mapping.
    pub fn restore_dynamic_state(
        &mut self,
        gap: u32,
        start: u32,
        writes_since_move: u32,
    ) -> Result<(), String> {
        if gap >= self.physical_lines {
            return Err(format!("gap {gap} out of range"));
        }
        if start >= self.logical_lines() {
            return Err(format!("start {start} out of range"));
        }
        if writes_since_move >= self.rotate_period {
            return Err(format!(
                "writes_since_move {writes_since_move} out of range"
            ));
        }
        self.gap = gap;
        self.start = start;
        self.writes_since_move = writes_since_move;
        Ok(())
    }

    /// Maps a logical address to its current physical line.
    ///
    /// # Panics
    ///
    /// Panics if `logical` is out of the logical range.
    pub fn map(&self, logical: LineAddr) -> LineAddr {
        assert!(
            logical.0 < self.logical_lines(),
            "logical address {logical} out of range"
        );
        // Classic start-gap (Qureshi et al.): with N logical lines over
        // N+1 physical slots, physical = (logical + start) mod N, bumped
        // past the gap when it lands at or beyond it.
        let n = self.logical_lines();
        let base = (logical.0 + self.start) % n;
        let phys = if base >= self.gap { base + 1 } else { base };
        LineAddr(phys)
    }

    /// Records a write; every `rotate_period` writes the gap moves one
    /// slot (a real controller would copy the displaced line's contents —
    /// the caller is told so it can charge that write).
    ///
    /// Returns the physical line that was copied into the old gap slot, if
    /// a rotation happened on this write.
    pub fn on_write(&mut self) -> Option<LineAddr> {
        self.writes_since_move += 1;
        if self.writes_since_move < self.rotate_period {
            return None;
        }
        self.writes_since_move = 0;
        // Move the gap down one slot; the line occupying the new gap
        // position is copied into the old gap slot (the returned write
        // destination). When the gap has swept the whole array it wraps to
        // the top and the start rotates.
        let old_gap = self.gap;
        if self.gap == 0 {
            self.gap = self.physical_lines - 1;
            self.start = (self.start + 1) % self.logical_lines();
        } else {
            self.gap -= 1;
        }
        Some(LineAddr(old_gap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn assert_bijective(sg: &StartGap) {
        let mut seen = HashSet::new();
        for l in 0..sg.logical_lines() {
            let p = sg.map(LineAddr(l));
            assert!(p.0 < sg.physical_lines, "physical out of range");
            assert_ne!(p.0, sg.gap, "mapped onto the gap");
            assert!(seen.insert(p.0), "collision at logical {l}");
        }
    }

    #[test]
    fn mapping_is_bijective_at_every_rotation() {
        let mut sg = StartGap::new(16, 1);
        // Drive through several full gap sweeps.
        for step in 0..100 {
            assert_bijective(&sg);
            sg.on_write();
            let _ = step;
        }
    }

    #[test]
    fn rotation_period_respected() {
        let mut sg = StartGap::new(8, 5);
        for i in 0..4 {
            assert_eq!(sg.on_write(), None, "write {i}");
        }
        assert!(sg.on_write().is_some(), "5th write rotates");
        assert_eq!(sg.on_write(), None, "counter reset");
    }

    #[test]
    fn gap_sweeps_entire_array() {
        let mut sg = StartGap::new(8, 1);
        let mut positions = HashSet::new();
        for _ in 0..8 {
            positions.insert(sg.gap());
            sg.on_write();
        }
        assert_eq!(positions.len(), 8, "gap should visit every slot");
    }

    #[test]
    fn mapping_eventually_moves_every_logical_line() {
        let mut sg = StartGap::new(8, 1);
        let initial: Vec<u32> = (0..7).map(|l| sg.map(LineAddr(l)).0).collect();
        // One full sweep plus start bump: mappings must have shifted.
        for _ in 0..16 {
            sg.on_write();
        }
        let moved = (0..7)
            .filter(|&l| sg.map(LineAddr(l)).0 != initial[l as usize])
            .count();
        assert!(moved >= 6, "only {moved}/7 lines moved after full sweeps");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_gap_address() {
        let sg = StartGap::new(4, 1);
        sg.map(LineAddr(3)); // only 3 logical lines: 0..=2
    }
}
