//! Memory geometry: capacity, line size, bank organization.

/// Address of one memory line (cache-line-sized ECC granule).
///
/// # Examples
///
/// ```
/// use pcm_memsim::LineAddr;
/// let a = LineAddr(7);
/// assert_eq!(a.index(), 7);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LineAddr(pub u32);

impl LineAddr {
    /// The line index as a usize for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for LineAddr {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "L{:#x}", self.0)
    }
}

/// Physical organization of the simulated memory.
///
/// # Examples
///
/// ```
/// use pcm_memsim::MemGeometry;
/// let g = MemGeometry::new(1 << 16, 8);
/// assert_eq!(g.num_lines(), 65536);
/// assert_eq!(g.capacity_bytes(), 65536 * 64);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemGeometry {
    num_lines: u32,
    banks: u32,
    line_bytes: u32,
}

impl MemGeometry {
    /// Creates a geometry of `num_lines` 64-byte lines across `banks`
    /// banks.
    ///
    /// # Panics
    ///
    /// Panics if `num_lines` or `banks` is zero.
    pub fn new(num_lines: u32, banks: u32) -> Self {
        assert!(num_lines > 0, "need at least one line");
        assert!(banks > 0, "need at least one bank");
        Self {
            num_lines,
            banks,
            line_bytes: 64,
        }
    }

    /// A small default suitable for tests: 4096 lines (256 KiB), 4 banks.
    pub fn small() -> Self {
        Self::new(4096, 4)
    }

    /// Number of lines.
    pub fn num_lines(&self) -> u32 {
        self.num_lines
    }

    /// Number of banks.
    pub fn banks(&self) -> u32 {
        self.banks
    }

    /// Data bytes per line.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Total data capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.num_lines as u64 * self.line_bytes as u64
    }

    /// Bank an address maps to (low-order interleaving).
    pub fn bank_of(&self, addr: LineAddr) -> u32 {
        addr.0 % self.banks
    }

    /// Whether an address is within this memory.
    pub fn contains(&self, addr: LineAddr) -> bool {
        addr.0 < self.num_lines
    }

    /// Iterates all line addresses in physical order.
    pub fn iter_lines(&self) -> impl Iterator<Item = LineAddr> {
        (0..self.num_lines).map(LineAddr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_math() {
        let g = MemGeometry::new(1024, 8);
        assert_eq!(g.capacity_bytes(), 1024 * 64);
        assert_eq!(g.bank_of(LineAddr(13)), 13 % 8);
    }

    #[test]
    fn contains_bounds() {
        let g = MemGeometry::new(10, 2);
        assert!(g.contains(LineAddr(9)));
        assert!(!g.contains(LineAddr(10)));
    }

    #[test]
    fn iteration_covers_all() {
        let g = MemGeometry::new(5, 1);
        let v: Vec<_> = g.iter_lines().collect();
        assert_eq!(v.len(), 5);
        assert_eq!(v[4], LineAddr(4));
    }

    #[test]
    #[should_panic(expected = "at least one line")]
    fn rejects_empty() {
        MemGeometry::new(0, 1);
    }
}
