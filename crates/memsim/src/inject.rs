//! Deterministic fault-injection campaigns.
//!
//! A [`CampaignSpec`] describes a reproducible set of manufactured faults
//! layered *on top of* the stochastic [`crate::FaultEngine`]: stuck-at
//! clusters, transient single-event upsets (SEUs), intermittent
//! variable-retention cells that flip in and out, and correlated
//! multi-bit bursts within a line. Experiment binaries accept it via
//! `--fault-campaign`.
//!
//! Determinism contract: **all** campaign randomness is drawn from a
//! dedicated RNG seeded by the spec's own seed, at attach time, in fixed
//! address order. The per-bank RNG streams are never touched, so a run
//! with no campaign is byte-identical to a run built without this module,
//! and a run with a fixed campaign seed is byte-identical at any thread
//! count. At runtime the injector is read-only: injected error bits are a
//! pure function of `(address, last-write time, current time)`.
//!
//! # Spec grammar
//!
//! Semicolon-separated clauses, e.g.
//!
//! ```text
//! seed=42;stuck=lines:8,cells:6;seu=lines:16,count:4,window:3600;\
//! intermittent=lines:4,cells:2,period:600;burst=lines:2,bits:5,at:3600
//! ```
//!
//! * `seed=N` — campaign RNG seed (default 0).
//! * `stuck=lines:L,cells:C` — `L` random lines each get a cluster of `C`
//!   permanently stuck cells at attach time.
//! * `seu=lines:L,count:N,window:W` — `L` random lines each suffer `N`
//!   single-bit upsets at random times in `(0, W]` seconds; an upset
//!   persists until the line is rewritten.
//! * `intermittent=lines:L,cells:C,period:P` — `L` random lines each get
//!   `C` variable-retention cells that are bad for half of every `P`-second
//!   cycle (random phase per cell).
//! * `burst=lines:L,bits:B,at:T` — `L` random lines each take a correlated
//!   `B`-bit burst at `T` seconds, persisting until rewritten.

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stuck-at cluster clause: `lines` lines × `cells` stuck cells each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckClause {
    /// Lines to afflict.
    pub lines: u32,
    /// Stuck cells injected per afflicted line.
    pub cells: u32,
}

/// Single-event-upset clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SeuClause {
    /// Lines to afflict.
    pub lines: u32,
    /// Upsets per afflicted line.
    pub count: u32,
    /// Upset times are uniform in `(0, window_s]`.
    pub window_s: f64,
}

/// Intermittent (variable-retention) cell clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntermittentClause {
    /// Lines to afflict.
    pub lines: u32,
    /// Intermittent cells per afflicted line.
    pub cells: u32,
    /// Full on/off cycle length in seconds (bad half of each cycle).
    pub period_s: f64,
}

/// Correlated multi-bit burst clause.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BurstClause {
    /// Lines to afflict.
    pub lines: u32,
    /// Bit errors deposited per burst.
    pub bits: u32,
    /// When the burst strikes, seconds.
    pub at_s: f64,
}

/// A parsed, validated fault campaign.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CampaignSpec {
    /// Seed of the dedicated campaign RNG.
    pub seed: u64,
    /// Stuck-at cluster clause, if any.
    pub stuck: Option<StuckClause>,
    /// SEU clause, if any.
    pub seu: Option<SeuClause>,
    /// Intermittent-cell clause, if any.
    pub intermittent: Option<IntermittentClause>,
    /// Burst clause, if any.
    pub burst: Option<BurstClause>,
}

fn fields(clause: &str, body: &str) -> Result<BTreeMap<String, String>, String> {
    let mut map = BTreeMap::new();
    for part in body.split(',') {
        let (k, v) = part.split_once(':').ok_or_else(|| {
            format!("campaign clause '{clause}': expected key:value, got {part:?}")
        })?;
        if map
            .insert(k.trim().to_string(), v.trim().to_string())
            .is_some()
        {
            return Err(format!("campaign clause '{clause}': duplicate field {k:?}"));
        }
    }
    Ok(map)
}

fn take_u32(clause: &str, map: &mut BTreeMap<String, String>, key: &str) -> Result<u32, String> {
    let raw = map
        .remove(key)
        .ok_or_else(|| format!("campaign clause '{clause}': missing field '{key}'"))?;
    let n: u32 = raw.parse().map_err(|_| {
        format!("campaign clause '{clause}': '{key}' must be a non-negative integer, got {raw:?}")
    })?;
    if n == 0 {
        return Err(format!(
            "campaign clause '{clause}': '{key}' must be positive"
        ));
    }
    Ok(n)
}

fn take_f64(clause: &str, map: &mut BTreeMap<String, String>, key: &str) -> Result<f64, String> {
    let raw = map
        .remove(key)
        .ok_or_else(|| format!("campaign clause '{clause}': missing field '{key}'"))?;
    let x: f64 = raw.parse().map_err(|_| {
        format!("campaign clause '{clause}': '{key}' must be a number, got {raw:?}")
    })?;
    if !x.is_finite() || x <= 0.0 {
        return Err(format!(
            "campaign clause '{clause}': '{key}' must be finite and positive, got {raw:?}"
        ));
    }
    Ok(x)
}

fn no_extras(clause: &str, map: BTreeMap<String, String>) -> Result<(), String> {
    if let Some(k) = map.into_keys().next() {
        return Err(format!("campaign clause '{clause}': unknown field {k:?}"));
    }
    Ok(())
}

impl FromStr for CampaignSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, String> {
        let mut spec = CampaignSpec::default();
        let mut seen: Vec<&str> = Vec::new();
        for clause in s.split(';') {
            let clause = clause.trim();
            if clause.is_empty() {
                continue;
            }
            let (key, body) = clause
                .split_once('=')
                .ok_or_else(|| format!("campaign: expected clause key=..., got {clause:?}"))?;
            let key = key.trim();
            if seen.contains(&key) {
                return Err(format!("campaign: duplicate clause '{key}'"));
            }
            match key {
                "seed" => {
                    spec.seed = body.trim().parse().map_err(|_| {
                        format!("campaign: seed must be a non-negative integer, got {body:?}")
                    })?;
                }
                "stuck" => {
                    let mut m = fields(key, body)?;
                    spec.stuck = Some(StuckClause {
                        lines: take_u32(key, &mut m, "lines")?,
                        cells: take_u32(key, &mut m, "cells")?,
                    });
                    no_extras(key, m)?;
                }
                "seu" => {
                    let mut m = fields(key, body)?;
                    spec.seu = Some(SeuClause {
                        lines: take_u32(key, &mut m, "lines")?,
                        count: take_u32(key, &mut m, "count")?,
                        window_s: take_f64(key, &mut m, "window")?,
                    });
                    no_extras(key, m)?;
                }
                "intermittent" => {
                    let mut m = fields(key, body)?;
                    spec.intermittent = Some(IntermittentClause {
                        lines: take_u32(key, &mut m, "lines")?,
                        cells: take_u32(key, &mut m, "cells")?,
                        period_s: take_f64(key, &mut m, "period")?,
                    });
                    no_extras(key, m)?;
                }
                "burst" => {
                    let mut m = fields(key, body)?;
                    spec.burst = Some(BurstClause {
                        lines: take_u32(key, &mut m, "lines")?,
                        bits: take_u32(key, &mut m, "bits")?,
                        at_s: take_f64(key, &mut m, "at")?,
                    });
                    no_extras(key, m)?;
                }
                other => {
                    return Err(format!(
                        "campaign: unknown clause '{other}' (expected seed, stuck, seu, \
                         intermittent, or burst)"
                    ))
                }
            }
            seen.push(key);
        }
        if spec.stuck.is_none()
            && spec.seu.is_none()
            && spec.intermittent.is_none()
            && spec.burst.is_none()
        {
            return Err(
                "campaign: needs at least one fault clause (stuck, seu, intermittent, burst)"
                    .into(),
            );
        }
        Ok(spec)
    }
}

impl fmt::Display for CampaignSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seed={}", self.seed)?;
        if let Some(s) = &self.stuck {
            write!(f, ";stuck=lines:{},cells:{}", s.lines, s.cells)?;
        }
        if let Some(s) = &self.seu {
            write!(
                f,
                ";seu=lines:{},count:{},window:{}",
                s.lines, s.count, s.window_s
            )?;
        }
        if let Some(s) = &self.intermittent {
            write!(
                f,
                ";intermittent=lines:{},cells:{},period:{}",
                s.lines, s.cells, s.period_s
            )?;
        }
        if let Some(s) = &self.burst {
            write!(f, ";burst=lines:{},bits:{},at:{}", s.lines, s.bits, s.at_s)?;
        }
        Ok(())
    }
}

/// One variable-retention cell: bad for the first half of every period,
/// offset by a random phase.
#[derive(Debug, Clone, Copy, PartialEq)]
struct IntermittentCell {
    period_s: f64,
    phase: f64,
}

impl IntermittentCell {
    fn active_at(&self, now_s: f64) -> bool {
        (now_s / self.period_s + self.phase).fract() < 0.5
    }
}

/// A campaign compiled against a concrete memory size: fixed schedules of
/// injected faults, queryable as a pure function of time.
#[derive(Debug, Clone)]
pub struct Injector {
    spec: CampaignSpec,
    /// Stuck clusters to apply at attach time, sorted by address.
    stuck: Vec<(u32, u32)>,
    /// Per-line SEU strike times, ascending.
    seu: BTreeMap<u32, Vec<f64>>,
    /// Per-line intermittent cells.
    intermittent: BTreeMap<u32, Vec<IntermittentCell>>,
    /// Per-line correlated bursts `(bits, at_s)`.
    burst: BTreeMap<u32, (u32, f64)>,
}

impl Injector {
    /// Compiles `spec` for a memory of `num_lines` lines. All randomness
    /// (line selection, strike times, phases) is drawn here, from an RNG
    /// seeded by the campaign seed — nothing is drawn at runtime.
    pub fn new(spec: &CampaignSpec, num_lines: u32) -> Self {
        let mut rng = StdRng::seed_from_u64(spec.seed);
        let pick_lines = |count: u32, rng: &mut StdRng| -> Vec<u32> {
            let want = count.min(num_lines) as usize;
            let mut chosen = std::collections::BTreeSet::new();
            while chosen.len() < want {
                chosen.insert(rng.gen_range(0..num_lines));
            }
            chosen.into_iter().collect()
        };
        let stuck = match &spec.stuck {
            Some(c) => pick_lines(c.lines, &mut rng)
                .into_iter()
                .map(|a| (a, c.cells))
                .collect(),
            None => Vec::new(),
        };
        let seu = match &spec.seu {
            Some(c) => pick_lines(c.lines, &mut rng)
                .into_iter()
                .map(|a| {
                    let mut times: Vec<f64> = (0..c.count)
                        .map(|_| rng.gen_range(0.0..c.window_s).max(f64::MIN_POSITIVE))
                        .collect();
                    times.sort_by(f64::total_cmp);
                    (a, times)
                })
                .collect(),
            None => BTreeMap::new(),
        };
        let intermittent = match &spec.intermittent {
            Some(c) => pick_lines(c.lines, &mut rng)
                .into_iter()
                .map(|a| {
                    let cells = (0..c.cells)
                        .map(|_| IntermittentCell {
                            period_s: c.period_s,
                            phase: rng.gen_range(0.0..1.0),
                        })
                        .collect();
                    (a, cells)
                })
                .collect(),
            None => BTreeMap::new(),
        };
        let burst = match &spec.burst {
            Some(c) => pick_lines(c.lines, &mut rng)
                .into_iter()
                .map(|a| (a, (c.bits, c.at_s)))
                .collect(),
            None => BTreeMap::new(),
        };
        Self {
            spec: *spec,
            stuck,
            seu,
            intermittent,
            burst,
        }
    }

    /// The spec this injector was compiled from.
    pub fn spec(&self) -> &CampaignSpec {
        &self.spec
    }

    /// Stuck clusters `(addr, cells)` to apply at attach time, in address
    /// order.
    pub fn stuck_clusters(&self) -> &[(u32, u32)] {
        &self.stuck
    }

    /// Injected persistent error bits resident on `addr` at `now_s`, given
    /// the line's data was last written at `last_write_s`. SEUs and bursts
    /// corrupt stored data, so a rewrite clears them; intermittent cells
    /// are physical and come and go regardless of writes. Pure function —
    /// no randomness, no mutation.
    pub fn extra_bits(&self, addr: u32, last_write_s: f64, now_s: f64) -> u32 {
        let mut bits = 0u32;
        if let Some(times) = self.seu.get(&addr) {
            bits += times
                .iter()
                .filter(|&&t| t > last_write_s && t <= now_s)
                .count() as u32;
        }
        if let Some(&(b, at)) = self.burst.get(&addr) {
            if at > last_write_s && at <= now_s {
                bits += b;
            }
        }
        if let Some(cells) = self.intermittent.get(&addr) {
            bits += cells.iter().filter(|c| c.active_at(now_s)).count() as u32;
        }
        bits
    }

    /// The correlated-burst subset of [`Injector::extra_bits`]: bits from
    /// the burst clause resident on `addr` at `now_s` (contiguous within
    /// the line, unlike SEUs/intermittents). Symbol-ECC decode paths
    /// classify these separately — a contiguous span occupies few symbols.
    pub fn burst_bits(&self, addr: u32, last_write_s: f64, now_s: f64) -> u32 {
        match self.burst.get(&addr) {
            Some(&(b, at)) if at > last_write_s && at <= now_s => b,
            _ => 0,
        }
    }

    /// Whether the campaign injects anything at runtime (vs. attach-time
    /// stuck clusters only).
    pub fn has_runtime_faults(&self) -> bool {
        !(self.seu.is_empty() && self.burst.is_empty() && self.intermittent.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = "seed=42;stuck=lines:8,cells:6;seu=lines:16,count:4,window:3600;\
                        intermittent=lines:4,cells:2,period:600;burst=lines:2,bits:5,at:3600";

    #[test]
    fn full_spec_parses_and_round_trips() {
        let spec: CampaignSpec = FULL.parse().unwrap();
        assert_eq!(spec.seed, 42);
        assert_eq!(spec.stuck, Some(StuckClause { lines: 8, cells: 6 }));
        assert_eq!(
            spec.seu,
            Some(SeuClause {
                lines: 16,
                count: 4,
                window_s: 3600.0
            })
        );
        let display = spec.to_string();
        let back: CampaignSpec = display.parse().unwrap();
        assert_eq!(back, spec);
        assert_eq!(back.to_string(), display);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "",
            "seed=1",                                      // no fault clause
            "stuck=lines:0,cells:4",                       // zero count
            "stuck=lines:4",                               // missing field
            "stuck=lines:4,cells:2,extra:1",               // unknown field
            "seu=lines:2,count:1,window:NaN",              // non-finite
            "seu=lines:2,count:1,window:-5",               // negative
            "warp=lines:2",                                // unknown clause
            "stuck=lines:2,cells:1;stuck=lines:3,cells:1", // duplicate
            "seed=-3;stuck=lines:1,cells:1",               // negative seed
        ] {
            assert!(bad.parse::<CampaignSpec>().is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn injector_is_deterministic_per_seed() {
        let spec: CampaignSpec = FULL.parse().unwrap();
        let a = Injector::new(&spec, 1024);
        let b = Injector::new(&spec, 1024);
        assert_eq!(a.stuck_clusters(), b.stuck_clusters());
        for addr in 0..1024 {
            for now in [10.0, 100.0, 4000.0] {
                assert_eq!(a.extra_bits(addr, 0.0, now), b.extra_bits(addr, 0.0, now));
            }
        }
        let other = CampaignSpec { seed: 43, ..spec };
        let c = Injector::new(&other, 1024);
        assert_ne!(a.stuck_clusters(), c.stuck_clusters());
    }

    #[test]
    fn rewrite_clears_seus_and_bursts_but_not_intermittents() {
        let spec: CampaignSpec = "seed=7;seu=lines:1024,count:3,window:100;\
                                  burst=lines:1024,bits:4,at:50;\
                                  intermittent=lines:1024,cells:2,period:10"
            .parse()
            .unwrap();
        let inj = Injector::new(&spec, 1024);
        // Every line is afflicted (lines >= num_lines), so line 0 has all
        // three fault types.
        let before = inj.extra_bits(0, 0.0, 200.0);
        assert!(before >= 7, "3 seus + 4 burst bits pending: {before}");
        // After a rewrite at t=150, data faults are gone; only intermittent
        // cells can remain.
        let after = inj.extra_bits(0, 150.0, 200.0);
        assert!(after <= 2, "only intermittent cells survive: {after}");
        // Intermittent cells flip in and out over a period.
        let states: Vec<u32> = (0..40)
            .map(|k| inj.extra_bits(0, 150.0, 150.0 + k as f64 * 0.5))
            .collect();
        assert!(states.iter().any(|&b| b > 0), "sometimes bad");
        assert!(states.contains(&0), "sometimes clean");
    }

    #[test]
    fn line_counts_cap_at_memory_size() {
        let spec: CampaignSpec = "stuck=lines:4096,cells:1".parse().unwrap();
        let inj = Injector::new(&spec, 64);
        assert_eq!(inj.stuck_clusters().len(), 64);
    }
}
