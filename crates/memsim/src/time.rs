//! Simulation time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since simulation start.
///
/// Drift physics runs on wall-clock seconds, so time is a plain `f64`
/// wrapped for type safety.
///
/// # Examples
///
/// ```
/// use pcm_memsim::SimTime;
/// let t = SimTime::ZERO + 3600.0;
/// assert_eq!(t.secs(), 3600.0);
/// assert!(t > SimTime::ZERO);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default)]
pub struct SimTime(f64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0.0);

    /// Builds from seconds.
    ///
    /// # Panics
    ///
    /// Panics on negative or non-finite input.
    pub fn from_secs(s: f64) -> Self {
        assert!(
            s.is_finite() && s >= 0.0,
            "SimTime must be finite and >= 0, got {s}"
        );
        SimTime(s)
    }

    /// Seconds since simulation start.
    pub fn secs(self) -> f64 {
        self.0
    }

    /// Elapsed seconds since `earlier` (clamped at zero).
    pub fn since(self, earlier: SimTime) -> f64 {
        (self.0 - earlier.0).max(0.0)
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::from_secs(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 86_400.0 {
            write!(f, "{:.2}d", self.0 / 86_400.0)
        } else if self.0 >= 3600.0 {
            write!(f, "{:.2}h", self.0 / 3600.0)
        } else if self.0 >= 60.0 {
            write!(f, "{:.2}m", self.0 / 60.0)
        } else {
            write!(f, "{:.2}s", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10.0) + 5.0;
        assert_eq!(t.secs(), 15.0);
        assert_eq!(t - SimTime::from_secs(10.0), 5.0);
        assert_eq!(t.since(SimTime::from_secs(20.0)), 0.0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_secs(30.0).to_string(), "30.00s");
        assert_eq!(SimTime::from_secs(90.0).to_string(), "1.50m");
        assert_eq!(SimTime::from_secs(7200.0).to_string(), "2.00h");
        assert_eq!(SimTime::from_secs(172_800.0).to_string(), "2.00d");
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_negative() {
        SimTime::from_secs(-1.0);
    }
}
