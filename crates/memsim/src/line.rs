//! Per-line simulator state.

use crate::time::SimTime;

/// Maximum levels the line-state arrays accommodate (MLC-2).
pub const MAX_LEVELS: usize = 4;

/// Stochastic state of one memory line.
///
/// The fault engine keeps per-line error state *lazily*: drift failures are
/// only advanced when the line is actually touched (read, probed, or
/// written), using exact conditional binomial increments. This is what lets
/// a million-line memory simulate in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineState {
    /// When the line's cells were last (re)programmed — the drift clock.
    pub last_write: SimTime,
    /// Time up to which `drift_failed` has been advanced.
    pub last_eval: SimTime,
    /// Live (non-worn) cells per level, from the last write's data pattern.
    pub occupancy: [u16; MAX_LEVELS],
    /// Live cells per level whose noiseless resistance has drifted across
    /// their upper sense boundary (persistent soft errors).
    pub drift_failed: [u16; MAX_LEVELS],
    /// Lifetime write count (wear).
    pub wear: u32,
    /// Permanently failed (stuck-at) cells.
    pub worn_cells: u16,
    /// Worn cells whose stuck level conflicts with the current data, in
    /// *bit errors* (an MLC-2 conflict costs 1 or 2 bits).
    pub worn_conflict_bits: u16,
    /// Worn cells permanently patched by ECP entries (always ≤ `worn_cells`;
    /// stays 0 unless the repair hierarchy is enabled, so the baseline RNG
    /// sequence is untouched).
    pub ecp_assigned: u16,
    /// Whether an uncorrectable error has already been recorded for the
    /// current write epoch (dedupes repeated discovery of the same UE).
    pub ue_recorded: bool,
}

impl LineState {
    /// A line as it looks immediately after being programmed at `now` with
    /// the given level occupancy.
    pub fn fresh(now: SimTime, occupancy: [u16; MAX_LEVELS]) -> Self {
        Self {
            last_write: now,
            last_eval: now,
            occupancy,
            drift_failed: [0; MAX_LEVELS],
            wear: 0,
            worn_cells: 0,
            worn_conflict_bits: 0,
            ecp_assigned: 0,
            ue_recorded: false,
        }
    }

    /// Age of the current data (seconds since last write) at `now`.
    pub fn age_at(&self, now: SimTime) -> f64 {
        now.since(self.last_write)
    }

    /// Persistent bit errors currently known on the line (drift failures
    /// are 1 bit each by Gray coding; worn conflicts carry their own bit
    /// count).
    pub fn persistent_bit_errors(&self) -> u32 {
        self.drift_failed.iter().map(|&c| c as u32).sum::<u32>() + self.worn_conflict_bits as u32
    }

    /// Total live cells.
    pub fn live_cells(&self) -> u32 {
        self.occupancy.iter().map(|&c| c as u32).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_line_is_clean() {
        let l = LineState::fresh(SimTime::from_secs(5.0), [10, 10, 10, 10]);
        assert_eq!(l.persistent_bit_errors(), 0);
        assert_eq!(l.live_cells(), 40);
        assert_eq!(l.age_at(SimTime::from_secs(8.0)), 3.0);
        assert!(!l.ue_recorded);
    }

    #[test]
    fn persistent_errors_sum_components() {
        let mut l = LineState::fresh(SimTime::ZERO, [64; 4]);
        l.drift_failed = [1, 2, 3, 0];
        l.worn_conflict_bits = 4;
        assert_eq!(l.persistent_bit_errors(), 10);
    }
}
