//! Property tests for the profiling-guided scrub policy.
//!
//! The generic round-trip suite (`policy_roundtrip.rs`) drives policies
//! through slots and demand notifications only, so a profiled policy's
//! risk table stays cold there. These properties exercise the table —
//! populated through randomized probe syndromes — and check:
//!
//! * **bijection** — a twin restored from a snapshot is byte-identical
//!   on re-save and action-identical over a random suffix of slots,
//!   probe results, and demand traffic;
//! * **bounded table** — occupancy never exceeds the configured
//!   capacity, whatever the error pattern;
//! * **forgetful tripwire** — a restore that drops the learned profile
//!   is caught by the very comparison the bijection property runs.

use pcm_ecc::{ClassifyOutcome, CodeSpec};
use pcm_memsim::{AccessResult, LineAddr, MemGeometry, Memory, SimTime};
use pcm_model::DeviceConfig;
use proptest::prelude::*;
use scrub_checkpoint::{Reader, Writer};
use scrub_core::{
    ProfileParams, ProfiledScrub, ScrubAction, ScrubContext, ScrubPolicy, TourBudget,
};

const LINES: u32 = 64;
const BANKS: u32 = 8;

fn test_memory() -> Memory {
    Memory::new(
        MemGeometry::new(LINES, BANKS),
        DeviceConfig::default(),
        CodeSpec::bch_line(6),
        7,
    )
}

fn policy(capacity: u32, seed: u64) -> ProfiledScrub {
    ProfiledScrub::new(
        600.0,
        LINES,
        BANKS,
        3,
        TourBudget {
            iops: 0.9,
            burst: 8.0,
            max_defer: 4,
        },
        ProfileParams {
            capacity,
            hot_stride: 3,
            stretch: 2,
            risk: 2,
        },
        seed,
    )
}

/// Synthesizes a probe result from one event byte: mostly clean, a
/// spread of correctable counts, the occasional uncorrectable.
fn probe_result(e: u8) -> AccessResult {
    let bits = match e % 8 {
        0..=3 => 0,
        4 | 5 => u32::from(e % 3) + 1,
        6 => 4,
        _ => 7,
    };
    let outcome = match (bits, e % 16) {
        (0, _) => ClassifyOutcome::Clean,
        (_, 15) => ClassifyOutcome::DetectedUncorrectable,
        _ => ClassifyOutcome::Corrected { bits },
    };
    AccessResult {
        outcome,
        persistent_bits: bits,
        new_ue: false,
    }
}

/// Drives the policy for `steps` slots from slot `base`: demand
/// notifications, the slot decision, and — when the slot probes — the
/// syndrome feedback loop through `wants_writeback`. Returns every
/// action and write-back decision taken.
fn drive(
    policy: &mut ProfiledScrub,
    mem: &Memory,
    base: u64,
    steps: u64,
    events: &[u8],
) -> Vec<(ScrubAction, bool)> {
    let mut trace = Vec::with_capacity(steps as usize);
    for s in base..base + steps {
        let now = SimTime::from_secs(s as f64 * 2.5);
        let e = events[(s as usize) % events.len()];
        let addr = LineAddr(u32::from(e) % LINES);
        if e % 4 >= 1 {
            policy.on_demand_read(addr, now);
        }
        if e % 4 >= 2 {
            policy.on_demand_write(addr, now);
        }
        let ctx = ScrubContext { now, mem };
        let action = policy.next_action(&ctx);
        let mut wb = false;
        if let ScrubAction::Probe(p) = action {
            // The probe result depends on the event byte *and* the line,
            // so original and twin only agree if they probe the same
            // lines in the same order.
            let r = probe_result(e.wrapping_add(p.0 as u8));
            wb = policy.wants_writeback(p, &r, &ctx);
        }
        trace.push((action, wb));
    }
    trace
}

fn snapshot(policy: &ProfiledScrub) -> Vec<u8> {
    let mut w = Writer::new();
    policy.save_state(&mut w);
    w.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Save→load is a bijection on profiler state: the restored twin is
    /// action-identical over a random suffix and byte-identical on
    /// re-save.
    #[test]
    fn profiled_snapshot_restores_to_an_identical_twin(
        seed in 0u64..1000,
        capacity in 1u32..32,
        prefix in 1u64..200,
        suffix in 1u64..200,
        events in proptest::collection::vec(0u8..=255, 1..24),
    ) {
        let mem = test_memory();
        let mut original = policy(capacity, seed);
        drive(&mut original, &mem, 0, prefix, &events);

        let bytes = snapshot(&original);
        let mut restored = policy(capacity, seed);
        let mut r = Reader::new(&bytes);
        restored.load_state(&mut r).expect("own snapshot must load");
        r.finish().expect("snapshot fully consumed");
        prop_assert_eq!(restored.table_len(), original.table_len());

        let a = drive(&mut original, &mem, prefix, suffix, &events);
        let b = drive(&mut restored, &mem, prefix, suffix, &events);
        prop_assert_eq!(a, b, "restored twin diverged");
        prop_assert_eq!(snapshot(&original), snapshot(&restored));
    }

    /// The risk table is bounded by its capacity at every step, for any
    /// probe-syndrome pattern.
    #[test]
    fn profile_table_never_exceeds_capacity(
        seed in 0u64..1000,
        capacity in 1u32..16,
        steps in 1u64..400,
        events in proptest::collection::vec(0u8..=255, 1..24),
    ) {
        let mem = test_memory();
        let mut p = policy(capacity, seed);
        for s in 0..steps {
            drive(&mut p, &mem, s, 1, &events);
            prop_assert!(
                p.table_len() as u32 <= capacity,
                "table holds {} of {} at step {s}",
                p.table_len(),
                capacity
            );
        }
    }

    /// Tripwire: a restore that forgets the learned profile is caught by
    /// the bijection comparison — the forgetful twin's schedule or
    /// write-back decisions diverge once the table matters.
    #[test]
    fn forgetful_restore_is_caught(
        seed in 0u64..1000,
        events in proptest::collection::vec(0u8..=255, 8..24),
    ) {
        let mem = test_memory();
        let mut original = policy(16, seed);
        // A long, probe-heavy prefix so the table is warm.
        drive(&mut original, &mem, 0, 300, &events);
        prop_assume!(original.table_len() > 0);

        let bytes = snapshot(&original);
        let mut forgetful = policy(16, seed);
        forgetful.set_forgetful_for_test(true);
        let mut r = Reader::new(&bytes);
        forgetful.load_state(&mut r).expect("forgetful load parses");

        let a = drive(&mut original, &mem, 300, 300, &events);
        let b = drive(&mut forgetful, &mem, 300, 300, &events);
        prop_assert_ne!(
            a, b,
            "harness failed to notice a dropped risk table (seed {})",
            seed
        );
    }
}
