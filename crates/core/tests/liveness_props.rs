//! Stateful liveness properties against the real simulator — the
//! run-time shadow of `pcm_analysis::modelcheck`'s exhaustive BFS.
//!
//! The model checker proves three TLA-style properties over a small
//! abstract model; these proptests check the same properties on the
//! production `TourScrub` policy and full `Simulation` runs:
//!
//! - `ScrubProgress` — under arbitrary adversarial demand interleavings
//!   (including open-loop demand at 100% of the budget), no line goes
//!   longer than `progress_bound_slots()` scrub slots between probes.
//! - `CorruptionDetected` — seeded stuck faults are observed by scrub
//!   probes (no demand traffic to do the detecting for them).
//! - `RepairTriggered` — every detected uncorrectable engages the repair
//!   hierarchy when one is configured.
//!
//! Each property has a tripwire proving the check can fail: a
//! deliberately unfair scheduler (anti-starvation boost disabled), a
//! scrub-less run, and a run with the repair hierarchy unplugged.

use pcm_ecc::CodeSpec;
use pcm_memsim::inject::StuckClause;
use pcm_memsim::{CampaignSpec, LineAddr, MemGeometry, Memory, RepairConfig, SimTime};
use pcm_model::DeviceConfig;
use proptest::prelude::*;
use scrub_core::{
    DemandTraffic, PolicyKind, ScrubAction, ScrubContext, ScrubPolicy, SimConfig, SimReport,
    Simulation, TourBudget, TourScrub,
};

// ---------------------------------------------------------------------------
// ScrubProgress at the policy level
// ---------------------------------------------------------------------------

/// Drives a tour for `slots` scrub slots, charging `demand[s % len]`
/// demand reads against the shared bucket before each slot, and returns
/// the probed line per slot.
fn drive_tour(
    policy: &mut TourScrub,
    demand: &[u8],
    slots: u64,
    mem: &Memory,
) -> Vec<Option<LineAddr>> {
    let mut probes = Vec::with_capacity(slots as usize);
    for s in 0..slots {
        let now = SimTime::from_secs(s as f64);
        let charges = if demand.is_empty() {
            0
        } else {
            demand[(s as usize) % demand.len()]
        };
        for _ in 0..charges {
            policy.on_demand_read(LineAddr(0), now);
        }
        let ctx = ScrubContext { now, mem };
        probes.push(match policy.next_action(&ctx) {
            ScrubAction::Probe(addr) => Some(addr),
            ScrubAction::Idle => None,
        });
    }
    probes
}

/// The `ScrubProgress` check: the longest slot gap any line experiences
/// between consecutive probes, counting the windows before its first and
/// after its last probe (a never-probed line scores the whole run).
fn max_line_gap_slots(probes: &[Option<LineAddr>], num_lines: u32) -> u64 {
    let total = probes.len() as i64;
    let mut last: Vec<i64> = vec![-1; num_lines as usize];
    let mut max_gap: i64 = 0;
    for (s, probed) in probes.iter().enumerate() {
        if let Some(addr) = probed {
            let l = addr.0 as usize;
            max_gap = max_gap.max(s as i64 - last[l]);
            last[l] = s as i64;
        }
    }
    for l in last {
        max_gap = max_gap.max(total - l);
    }
    max_gap.max(0) as u64
}

fn test_memory(lines: u32, banks: u32) -> Memory {
    Memory::new(
        MemGeometry::new(lines, banks),
        DeviceConfig::default(),
        CodeSpec::bch_line(6),
        7,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `ScrubProgress`: however demand drains the shared bucket — bursty,
    /// steady, or silent — the anti-starvation boost keeps every line's
    /// inter-probe gap within `progress_bound_slots()`.
    #[test]
    fn scrub_progress_holds_under_adversarial_demand(
        lines in 4u32..24,
        banks in 1u32..4,
        max_defer in 1u32..5,
        iops_milli in 10u64..3000,
        seed in 0u64..1000,
        demand in proptest::collection::vec(0u8..4, 1..32),
    ) {
        let banks = banks.min(lines);
        let budget = TourBudget {
            iops: iops_milli as f64 / 1000.0,
            burst: 4.0,
            max_defer,
        };
        let mut policy = TourScrub::new(900.0, lines, banks, 4, budget, seed);
        let bound = policy.progress_bound_slots();
        let mem = test_memory(lines, banks);
        let probes = drive_tour(&mut policy, &demand, 3 * bound, &mem);
        let gap = max_line_gap_slots(&probes, lines);
        prop_assert!(
            gap <= bound,
            "gap {gap} slots exceeds ScrubProgress bound {bound} \
             (lines={lines} banks={banks} max_defer={max_defer})"
        );
        // 3*bound slots fit at least two full tours, so the check above
        // exercised real inter-probe gaps, not just the start-up window.
        prop_assert!(policy.tours_completed() >= 2);
    }

    /// Satellite tripwire: the deliberately unfair variant (boost
    /// disabled) starves under open-loop demand at 100% of the budget,
    /// and `max_line_gap_slots` catches it — proving the harness can
    /// fail.
    #[test]
    fn starvation_tripwire_unfair_scheduler_breaks_the_bound(
        lines in 4u32..24,
        banks in 1u32..4,
        max_defer in 1u32..5,
        seed in 0u64..1000,
    ) {
        let banks = banks.min(lines);
        // Refill strictly below one token per slot; one demand charge per
        // slot then drains the bucket to zero every slot (open-loop
        // demand consuming the entire budget).
        let budget = TourBudget {
            iops: 0.9,
            burst: 2.0,
            max_defer,
        };
        let mut policy = TourScrub::new(900.0, lines, banks, 4, budget, seed);
        policy.set_unfair_for_test(true);
        let bound = policy.progress_bound_slots();
        let mem = test_memory(lines, banks);
        let probes = drive_tour(&mut policy, &[1], 2 * bound + 64, &mem);
        let gap = max_line_gap_slots(&probes, lines);
        prop_assert!(
            gap > bound,
            "unfair scheduler was not caught: gap {gap} <= bound {bound}"
        );
        prop_assert_eq!(policy.forced_probes(), 0);
    }

    /// The fair scheduler under the *same* saturating open-loop demand
    /// stays inside the bound — the pair (this test, the tripwire above)
    /// is the starvation property.
    #[test]
    fn scrub_progress_survives_saturating_open_loop_demand(
        lines in 4u32..24,
        banks in 1u32..4,
        max_defer in 1u32..5,
        seed in 0u64..1000,
    ) {
        let banks = banks.min(lines);
        let budget = TourBudget {
            iops: 0.9,
            burst: 2.0,
            max_defer,
        };
        let mut policy = TourScrub::new(900.0, lines, banks, 4, budget, seed);
        let bound = policy.progress_bound_slots();
        let mem = test_memory(lines, banks);
        let probes = drive_tour(&mut policy, &[1], 2 * bound + 64, &mem);
        let gap = max_line_gap_slots(&probes, lines);
        prop_assert!(gap <= bound, "gap {gap} > bound {bound} under saturation");
        prop_assert!(policy.forced_probes() > 0, "boost never fired");
    }
}

// ---------------------------------------------------------------------------
// CorruptionDetected / RepairTriggered at the simulation level
// ---------------------------------------------------------------------------

/// Runs a full simulation: tour scrub (or none), idle demand traffic so
/// only scrub probes can detect anything, and a stuck-fault campaign.
fn run_sim(policy: PolicyKind, stuck_cells: u32, repair: bool, seed: u64) -> SimReport {
    let mut builder = SimConfig::builder();
    builder
        .num_lines(256)
        .device(DeviceConfig::default())
        // SECDED: a single stuck cell is correctable (detection shows up
        // as corrected bits); four stuck cells are a detected UE.
        .code(CodeSpec::secded_line())
        .policy(policy)
        .traffic(DemandTraffic::Idle)
        .horizon_s(4.0 * 3600.0)
        .seed(seed)
        .fault_campaign(CampaignSpec {
            seed: seed ^ 0xDEAD,
            stuck: Some(StuckClause {
                lines: 16,
                cells: stuck_cells,
            }),
            seu: None,
            intermittent: None,
            burst: None,
        });
    if repair {
        builder.repair(RepairConfig::default());
    }
    Simulation::new(builder.build()).run()
}

fn tour_policy() -> PolicyKind {
    PolicyKind::Tour {
        interval_s: 900.0,
        theta: 4,
        iops: 1.0,
        burst: 64.0,
        max_defer: 8,
    }
}

/// `CorruptionDetected` as a report predicate: seeded faults were
/// observed by somebody (corrected bits or detected UEs are non-zero).
fn detection_violation(r: &SimReport) -> Option<String> {
    if r.stats.corrected_bits == 0 && r.stats.detected_ue == 0 {
        Some(format!(
            "corruption never detected: {} probes, 0 corrections, 0 UEs",
            r.stats.scrub_probes
        ))
    } else {
        None
    }
}

/// `RepairTriggered` as a report predicate: detected uncorrectables must
/// engage the repair hierarchy (ECP patch, retirement, or an explicit
/// unrepairable verdict after the spares ran out).
fn repair_violation(r: &SimReport) -> Option<String> {
    let repairs = r.stats.ecp_repairs
        + r.stats.lines_retired
        + r.stats.recovered_ue
        + r.stats.unrepairable_ue;
    if r.stats.detected_ue > 0 && repairs == 0 {
        Some(format!(
            "{} UEs detected but the repair hierarchy never engaged",
            r.stats.detected_ue
        ))
    } else {
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `CorruptionDetected`: with only scrub probes reading the memory,
    /// every campaign's stuck faults surface in the detection counters.
    #[test]
    fn corruption_detected_by_tour_scrub(seed in 0u64..1_000_000) {
        let r = run_sim(tour_policy(), 1, false, seed);
        prop_assert!(r.stats.scrub_probes > 0);
        prop_assert_eq!(detection_violation(&r), None);
    }

    /// `RepairTriggered`: four stuck cells exceed SECDED, so probes
    /// detect UEs, and with the hierarchy configured every one is acted
    /// on.
    #[test]
    fn repair_triggered_for_detected_ues(seed in 0u64..1_000_000) {
        let r = run_sim(tour_policy(), 4, true, seed);
        prop_assert!(r.stats.detected_ue > 0, "campaign produced no UEs");
        prop_assert_eq!(repair_violation(&r), None);
        prop_assert!(
            r.stats.ecp_repairs + r.stats.lines_retired > 0,
            "hierarchy configured but idle: {:?}",
            r.stats
        );
    }
}

/// Tripwire: with no scrub policy and idle traffic nothing ever reads
/// the corrupted lines, and `detection_violation` catches it.
#[test]
fn detection_tripwire_scrubless_run_is_caught() {
    let r = run_sim(PolicyKind::None, 1, false, 42);
    assert_eq!(r.stats.scrub_probes, 0);
    let v = detection_violation(&r).expect("scrub-less run must violate CorruptionDetected");
    assert!(v.contains("never detected"), "{v}");
}

/// Tripwire: UEs detected with the repair hierarchy unplugged leave the
/// repair counters at zero, and `repair_violation` catches it.
#[test]
fn repair_tripwire_unplugged_hierarchy_is_caught() {
    let r = run_sim(tour_policy(), 4, false, 42);
    assert!(r.stats.detected_ue > 0, "campaign produced no UEs");
    let v = repair_violation(&r).expect("hierarchy-less run must violate RepairTriggered");
    assert!(v.contains("never engaged"), "{v}");
}
