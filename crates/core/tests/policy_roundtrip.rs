//! Save/load round-trip property for *every* scrub policy.
//!
//! The checkpoint contract (DESIGN.md) says a policy restored from its
//! own `save_state` bytes is indistinguishable from one that never
//! stopped. This test drives a policy through a random prefix of scrub
//! slots and demand notifications, snapshots it, restores the snapshot
//! into a freshly built twin, and then runs both through an identical
//! random suffix — every action must match, and the re-saved bytes must
//! be byte-identical. A tripwire proves the harness notices when state
//! is *not* carried over.

use pcm_ecc::CodeSpec;
use pcm_memsim::{LineAddr, MemGeometry, Memory, SimTime};
use pcm_model::DeviceConfig;
use proptest::prelude::*;
use scrub_checkpoint::{Reader, Writer};
use scrub_core::{PolicyKind, ScrubAction, ScrubContext, ScrubPolicy, TourBudget, TourScrub};

const LINES: u32 = 64;
const BANKS: u32 = 8;

/// Every checkpointable policy kind, parameterized enough to have
/// non-trivial internal state.
fn kind(index: usize) -> PolicyKind {
    match index % 8 {
        0 => PolicyKind::Basic { interval_s: 600.0 },
        1 => PolicyKind::Threshold {
            interval_s: 600.0,
            theta: 3,
        },
        2 => PolicyKind::AgeAware {
            interval_s: 600.0,
            theta: 3,
            min_age_s: 150.0,
        },
        3 => PolicyKind::Adaptive {
            interval_s: 600.0,
            theta: 3,
            regions: 4,
        },
        4 => PolicyKind::combined_default(600.0),
        5 => PolicyKind::Tour {
            interval_s: 600.0,
            theta: 3,
            iops: 0.7,
            burst: 8.0,
            max_defer: 4,
        },
        6 => PolicyKind::Profiled {
            interval_s: 600.0,
            theta: 3,
            iops: 0.7,
            burst: 8.0,
            max_defer: 4,
            capacity: 8,
            hot_stride: 3,
            stretch: 2,
            risk: 2,
        },
        _ => PolicyKind::Budget {
            interval_s: 600.0,
            theta: 3,
            target_ue_per_gib_day: 1.0,
            window_s: 1200.0,
        },
    }
}

fn build(index: usize, seed: u64) -> Box<dyn ScrubPolicy> {
    kind(index)
        .build(LINES, BANKS, seed)
        .expect("every kind above is a real policy")
}

fn test_memory() -> Memory {
    Memory::new(
        MemGeometry::new(LINES, BANKS),
        DeviceConfig::default(),
        CodeSpec::bch_line(6),
        7,
    )
}

/// Drives `policy` for `steps` slots starting at slot index `base`,
/// interleaving demand notifications drawn from `events`, and returns
/// the sequence of actions taken.
fn drive(
    policy: &mut dyn ScrubPolicy,
    mem: &Memory,
    base: u64,
    steps: u64,
    events: &[u8],
) -> Vec<ScrubAction> {
    let mut actions = Vec::with_capacity(steps as usize);
    for s in base..base + steps {
        let now = SimTime::from_secs(s as f64 * 2.5);
        if !events.is_empty() {
            // Pseudo-random but deterministic demand interleaving: the
            // event byte picks none / a read / a write / both.
            let e = events[(s as usize) % events.len()];
            let addr = LineAddr(u32::from(e) % LINES);
            if e % 4 >= 1 {
                policy.on_demand_read(addr, now);
            }
            if e % 4 >= 2 {
                policy.on_demand_write(addr, now);
            }
        }
        let ctx = ScrubContext { now, mem };
        actions.push(policy.next_action(&ctx));
    }
    actions
}

fn snapshot(policy: &dyn ScrubPolicy) -> Vec<u8> {
    let mut w = Writer::new();
    policy.save_state(&mut w);
    w.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(56))]

    /// Round-trip: restore-from-snapshot is indistinguishable from
    /// never-having-stopped, for every policy kind.
    #[test]
    fn every_policy_round_trips_through_save_load(
        index in 0usize..8,
        seed in 0u64..1000,
        prefix in 1u64..160,
        suffix in 1u64..160,
        events in proptest::collection::vec(0u8..=255, 1..24),
    ) {
        let mem = test_memory();
        let mut original = build(index, seed);
        drive(original.as_mut(), &mem, 0, prefix, &events);

        let bytes = snapshot(original.as_ref());
        let mut restored = build(index, seed);
        let mut r = Reader::new(&bytes);
        restored
            .load_state(&mut r)
            .expect("own snapshot must load");

        // Same suffix through both: identical actions...
        let a = drive(original.as_mut(), &mem, prefix, suffix, &events);
        let b = drive(restored.as_mut(), &mem, prefix, suffix, &events);
        prop_assert_eq!(a, b, "kind {} diverged after restore", kind(index).label());

        // ...and identical re-saved state.
        prop_assert_eq!(
            snapshot(original.as_ref()),
            snapshot(restored.as_ref()),
            "kind {} re-saved bytes differ",
            kind(index).label()
        );
    }
}

/// Tripwire: a "restore" that silently skips loading (a forgetful
/// policy) is caught by the same comparison the proptest runs — the
/// fresh twin's first action mid-tour differs from the driven original.
#[test]
fn forgetful_restore_tripwire_is_caught() {
    let mem = test_memory();
    let budget = TourBudget {
        iops: 1e-9,
        burst: 3.0,
        max_defer: 1000,
    };
    let mut original = TourScrub::new(600.0, LINES, BANKS, 3, budget, 9);
    // Drain the bucket: three probes then throttled idles.
    let a = drive(&mut original, &mem, 0, 6, &[]);
    assert_eq!(
        a.iter()
            .filter(|x| matches!(x, ScrubAction::Probe(_)))
            .count(),
        3
    );

    // Forgetful twin: built identically but load_state never called.
    let mut forgetful = TourScrub::new(600.0, LINES, BANKS, 3, budget, 9);
    let cont = drive(&mut original, &mem, 6, 3, &[]);
    let fresh = drive(&mut forgetful, &mem, 6, 3, &[]);
    assert_ne!(
        cont, fresh,
        "harness failed to distinguish a forgetful restore: \
         original is mid-tour with an empty bucket, the twin is not"
    );
}
