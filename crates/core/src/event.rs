//! Priority-queue event engine: typed events dispatched in timestamp
//! order from a binary heap.
//!
//! The stepped loop ([`crate::Simulation`]'s original core) interleaves
//! exactly two streams — demand ops and scrub slots — with a hard-coded
//! two-way comparison. The event engine generalizes the dispatch to a
//! [`std::collections::BinaryHeap`] of typed events ([`EvKind`]): next
//! demand op, next scrub slot, fault-campaign boundaries, and the
//! horizon/stop end marker. That buys two things:
//!
//! * **Idle skip-ahead**: when a region-scheduled policy reports (via
//!   [`crate::ScrubPolicy::idle_until`]) that every slot before time `t`
//!   is a no-op idle, the scrub event re-schedules itself directly at
//!   `t` — `O(1)` in the number of skipped slots — instead of stepping
//!   the cadence grid through each one. Per-line error state already
//!   fast-forwards analytically (closed-form drift CDF jumps in the
//!   fault engine), so skipping the slots loses nothing.
//! * **Extensible taxonomy**: fault-campaign boundaries (SEU window
//!   closing, bursts firing, intermittent periods) become first-class
//!   events with telemetry markers, instead of being invisible inside
//!   the per-op injector math.
//!
//! Equivalence with the stepped engine is a hard contract, enforced by
//! the differential harness (`crates/bench/tests/engine_differential.rs`):
//! both engines walk the same tick grid, consult the policy at the same
//! slots, and draw the same RNG streams in the same order, so reports,
//! telemetry counters, and checkpoint bytes are identical. The heap is
//! rebuilt from scratch on every `advance` segment (it never holds more
//! than a handful of entries), so no queue state needs checkpointing.

use std::sync::atomic::{AtomicBool, Ordering};

use pcm_memsim::{CampaignSpec, SimTime};

/// Which simulation core executes the run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The original cadence-grid loop: two-way demand/scrub merge.
    #[default]
    Stepped,
    /// Priority-queue event dispatch with idle skip-ahead.
    Event,
}

impl EngineKind {
    /// Stable lower-case label (bench records, CLI).
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Stepped => "stepped",
            EngineKind::Event => "event",
        }
    }

    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "stepped" => Some(EngineKind::Stepped),
            "event" => Some(EngineKind::Event),
            _ => None,
        }
    }
}

/// Event types, in tie-break order: at equal timestamps a demand op
/// executes before a scrub slot (the stepped loop's `d <= s` rule),
/// campaign markers after both, and the end marker last — so events
/// landing exactly on the stop boundary still execute in this segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) enum EvKind {
    /// The pending demand op is due.
    Demand = 0,
    /// The engine's next scrub slot is due.
    Scrub = 1,
    /// A fault-campaign boundary is crossed (telemetry marker).
    Campaign = 2,
    /// The advance segment's stop time (horizon or `run_to` boundary).
    HorizonEnd = 3,
}

/// A scheduled event. Payloads stay in the simulation (`pending` op,
/// engine slot state); the heap only orders (time, kind).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Ev {
    pub at: SimTime,
    pub kind: EvKind,
    /// Campaign boundary label ("" for other kinds).
    pub label: &'static str,
}

impl PartialEq for Ev {
    fn eq(&self, other: &Self) -> bool {
        self.at.secs() == other.at.secs() && self.kind == other.kind
    }
}

impl Eq for Ev {}

impl PartialOrd for Ev {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ev {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at
            .secs()
            .total_cmp(&other.at.secs())
            .then(self.kind.cmp(&other.kind))
    }
}

/// Recurring intermittent-fault boundaries are capped at this many
/// markers per advance segment (telemetry-only; the injector itself is
/// exact regardless).
const MAX_INTERMITTENT_MARKERS: usize = 1024;

/// The fault-campaign boundaries crossed in the half-open window
/// `(after, upto]`, in time order. A pure function of the spec, so the
/// stepped and event engines emit identical marker sets for identical
/// segmentations — no queue state to checkpoint.
pub(crate) fn campaign_boundaries(
    spec: &CampaignSpec,
    after: SimTime,
    upto: SimTime,
) -> Vec<(f64, &'static str)> {
    let mut out: Vec<(f64, &'static str)> = Vec::new();
    let (lo, hi) = (after.secs(), upto.secs());
    let mut push = |t: f64, label: &'static str| {
        if t > lo && t <= hi {
            out.push((t, label));
        }
    };
    if let Some(seu) = &spec.seu {
        push(seu.window_s, "seu_window_end");
    }
    if let Some(burst) = &spec.burst {
        push(burst.at_s, "burst");
    }
    if let Some(im) = &spec.intermittent {
        if im.period_s > 0.0 {
            let mut n = 0usize;
            // First period boundary strictly after `lo`.
            let mut k = (lo / im.period_s).floor() as u64 + 1;
            loop {
                let t = k as f64 * im.period_s;
                if t > hi || n >= MAX_INTERMITTENT_MARKERS {
                    break;
                }
                push(t, "intermittent_period");
                k += 1;
                n += 1;
            }
        }
    }
    out.sort_by(|a, b| a.0.total_cmp(&b.0));
    out
}

/// Test-only tripwire: when set, the idle fast-forward overshoots by one
/// slot — it skips a slot the policy should have been consulted at. The
/// differential harness flips this to prove it detects a skewed
/// fast-forward rather than vacuously passing.
pub(crate) static SKEW_FAST_FORWARD: AtomicBool = AtomicBool::new(false);

/// Enables/disables the deliberate fast-forward skew. Test-only.
#[doc(hidden)]
pub fn set_skewed_fast_forward_for_test(on: bool) {
    SKEW_FAST_FORWARD.store(on, Ordering::Relaxed);
}

pub(crate) fn skew_fast_forward() -> bool {
    SKEW_FAST_FORWARD.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    fn ev(at: f64, kind: EvKind) -> Ev {
        Ev {
            at: SimTime::from_secs(at),
            kind,
            label: "",
        }
    }

    #[test]
    fn heap_orders_by_time_then_kind() {
        let mut heap = BinaryHeap::new();
        heap.push(Reverse(ev(5.0, EvKind::HorizonEnd)));
        heap.push(Reverse(ev(5.0, EvKind::Scrub)));
        heap.push(Reverse(ev(5.0, EvKind::Demand)));
        heap.push(Reverse(ev(1.0, EvKind::Scrub)));
        heap.push(Reverse(ev(5.0, EvKind::Campaign)));
        let order: Vec<(f64, EvKind)> = std::iter::from_fn(|| heap.pop())
            .map(|Reverse(e)| (e.at.secs(), e.kind))
            .collect();
        assert_eq!(
            order,
            vec![
                (1.0, EvKind::Scrub),
                (5.0, EvKind::Demand),
                (5.0, EvKind::Scrub),
                (5.0, EvKind::Campaign),
                (5.0, EvKind::HorizonEnd),
            ]
        );
    }

    #[test]
    fn engine_kind_round_trips_labels() {
        for kind in [EngineKind::Stepped, EngineKind::Event] {
            assert_eq!(EngineKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(EngineKind::parse("fancy"), None);
        assert_eq!(EngineKind::default(), EngineKind::Stepped);
    }

    #[test]
    fn boundaries_cover_half_open_window() {
        let spec: CampaignSpec =
            "seed=1;seu=lines:4,count:2,window:100;burst=lines:2,bits:3,at:50;\
             intermittent=lines:1,cells:2,period:30"
                .parse()
                .expect("valid spec");
        let all = campaign_boundaries(&spec, SimTime::ZERO, SimTime::from_secs(100.0));
        let times: Vec<f64> = all.iter().map(|(t, _)| *t).collect();
        assert_eq!(times, vec![30.0, 50.0, 60.0, 90.0, 100.0]);
        // Exactly-at-`after` boundaries belong to the previous segment.
        let tail = campaign_boundaries(&spec, SimTime::from_secs(50.0), SimTime::from_secs(100.0));
        assert!(tail.iter().all(|(t, _)| *t > 50.0));
        // Split segments partition the straight-run marker set.
        let head = campaign_boundaries(&spec, SimTime::ZERO, SimTime::from_secs(50.0));
        let mut joined = head;
        joined.extend(tail);
        assert_eq!(joined, all);
    }
}
