//! Simulation result record: everything the experiments report.

use std::fmt;

use pcm_memsim::MemStats;

use crate::engine::EngineStats;

/// Outcome of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimReport {
    /// Workload name.
    pub workload: String,
    /// Policy label (with parameters).
    pub policy: String,
    /// Line-code name.
    pub code: String,
    /// Simulated horizon in seconds.
    pub horizon_s: f64,
    /// Memory size in lines.
    pub num_lines: u32,
    /// Memory-side counters.
    pub stats: MemStats,
    /// Engine-side counters (zeroed when no scrubbing ran).
    pub engine: EngineStats,
    /// Scrub-attributed energy (µJ).
    pub scrub_energy_uj: f64,
    /// Demand-attributed energy (µJ).
    pub demand_energy_uj: f64,
    /// Mean line wear (writes per line).
    pub mean_wear: f64,
    /// Maximum line wear.
    pub max_wear: u32,
    /// Permanently failed cells across the memory.
    pub worn_cells: u64,
    /// Fraction of channel time spent on scrub traffic.
    pub scrub_utilization: f64,
    /// Contention-adjusted average demand-read latency (ns), from the
    /// utilization estimate.
    pub demand_read_latency_ns: f64,
    /// Measured average demand-read latency (ns): service time plus the
    /// bank-queueing delays actually suffered.
    pub measured_read_latency_ns: f64,
    /// Simulated time of the first unrepairable error, if any bank
    /// exhausted its repair hierarchy (the lifetime figure E13 sweeps).
    pub first_unrepairable_s: Option<f64>,
    /// Banks that exhausted their spare pools.
    pub degraded_banks: u32,
}

impl SimReport {
    /// All uncorrectable errors (detected + silent).
    pub fn uncorrectable(&self) -> u64 {
        self.stats.uncorrectable()
    }

    /// Scrub write-backs issued.
    pub fn scrub_writes(&self) -> u64 {
        self.stats.scrub_writebacks
    }

    /// Uncorrectable errors per GiB per day — a capacity- and
    /// horizon-independent failure rate.
    pub fn ue_per_gib_day(&self) -> f64 {
        let gib = self.num_lines as f64 * 64.0 / (1u64 << 30) as f64;
        let days = self.horizon_s / 86_400.0;
        if gib <= 0.0 || days <= 0.0 {
            0.0
        } else {
            self.uncorrectable() as f64 / gib / days
        }
    }

    /// Scrub energy per line per day (nJ) — normalized for comparisons.
    pub fn scrub_energy_nj_per_line_day(&self) -> f64 {
        let days = self.horizon_s / 86_400.0;
        if days <= 0.0 {
            0.0
        } else {
            self.scrub_energy_uj * 1e3 / self.num_lines as f64 / days
        }
    }

    /// Header row matching [`SimReport::csv_row`], for spreadsheet export.
    pub fn csv_header() -> &'static str {
        "workload,policy,code,horizon_s,num_lines,ue_total,ue_detected,ue_silent,\
         ue_demand,scrub_probes,scrub_writebacks,demand_reads,demand_writes,\
         wear_level_writes,corrected_bits,scrub_energy_uj,demand_energy_uj,\
         mean_wear,max_wear,worn_cells,scrub_utilization,read_latency_ns,\
         ecp_repairs,lines_retired,unrepairable_ue,recovered_ue,\
         first_unrepairable_s,degraded_banks"
    }

    /// One CSV row of this report's key figures.
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{},{},{},{},{},{:.3},{:.3},{:.3},{},{},{:.6},{:.1},\
             {},{},{},{},{},{}",
            self.workload,
            self.policy,
            self.code,
            self.horizon_s,
            self.num_lines,
            self.uncorrectable(),
            self.stats.detected_ue,
            self.stats.miscorrections,
            self.stats.demand_ue,
            self.stats.scrub_probes,
            self.stats.scrub_writebacks,
            self.stats.demand_reads,
            self.stats.demand_writes,
            self.stats.wear_level_writes,
            self.stats.corrected_bits,
            self.scrub_energy_uj,
            self.demand_energy_uj,
            self.mean_wear,
            self.max_wear,
            self.worn_cells,
            self.scrub_utilization,
            self.measured_read_latency_ns,
            self.stats.ecp_repairs,
            self.stats.lines_retired,
            self.stats.unrepairable_ue,
            self.stats.recovered_ue,
            // Empty cell when the memory never became unrepairable.
            self.first_unrepairable_s
                .map(|s| format!("{s:.1}"))
                .unwrap_or_default(),
            self.degraded_banks,
        )
    }
}

impl fmt::Display for SimReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "[{} | {} | {}] horizon={:.1}h lines={}",
            self.workload,
            self.policy,
            self.code,
            self.horizon_s / 3600.0,
            self.num_lines
        )?;
        writeln!(
            f,
            "  UE={} (detected={} silent={} demand-visible={})",
            self.uncorrectable(),
            self.stats.detected_ue,
            self.stats.miscorrections,
            self.stats.demand_ue
        )?;
        writeln!(
            f,
            "  scrub: probes={} writebacks={} idle-slots={} energy={:.1}uJ",
            self.stats.scrub_probes,
            self.stats.scrub_writebacks,
            self.engine.idle_slots,
            self.scrub_energy_uj
        )?;
        writeln!(
            f,
            "  wear: mean={:.2} max={} worn-cells={} | scrub-bw={:.2}% read-lat={:.0}ns",
            self.mean_wear,
            self.max_wear,
            self.worn_cells,
            self.scrub_utilization * 100.0,
            self.demand_read_latency_ns
        )?;
        write!(
            f,
            "  repair: ecp={} (cells={}) retired={} recovered={} unrepairable={} degraded-banks={}",
            self.stats.ecp_repairs,
            self.stats.ecp_cells_patched,
            self.stats.lines_retired,
            self.stats.recovered_ue,
            self.stats.unrepairable_ue,
            self.degraded_banks,
        )?;
        if let Some(s) = self.first_unrepairable_s {
            write!(f, " first-unrepairable={:.1}h", s / 3600.0)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> SimReport {
        SimReport {
            workload: "w".into(),
            policy: "p".into(),
            code: "c".into(),
            horizon_s: 86_400.0,
            num_lines: 1 << 24, // exactly 1 GiB of 64B lines
            stats: MemStats {
                detected_ue: 10,
                miscorrections: 2,
                scrub_writebacks: 7,
                ..MemStats::default()
            },
            engine: EngineStats::default(),
            scrub_energy_uj: 100.0,
            demand_energy_uj: 50.0,
            mean_wear: 1.5,
            max_wear: 3,
            worn_cells: 0,
            scrub_utilization: 0.01,
            demand_read_latency_ns: 121.0,
            measured_read_latency_ns: 121.5,
            first_unrepairable_s: None,
            degraded_banks: 0,
        }
    }

    #[test]
    fn normalized_rates() {
        let r = report();
        assert_eq!(r.uncorrectable(), 12);
        assert!((r.ue_per_gib_day() - 12.0).abs() < 1e-9);
        assert!(r.scrub_energy_nj_per_line_day() > 0.0);
    }

    #[test]
    fn display_mentions_key_numbers() {
        let s = report().to_string();
        assert!(s.contains("UE=12"));
        assert!(s.contains("writebacks=7"));
    }

    #[test]
    fn csv_row_matches_header_arity() {
        let header_cols = SimReport::csv_header().split(',').count();
        let row_cols = report().csv_row().split(',').count();
        assert_eq!(header_cols, row_cols);
        // No stray whitespace tokens from the multi-line header literal.
        assert!(!SimReport::csv_header().contains("  "));
    }

    #[test]
    fn csv_row_contains_identifiers() {
        let row = report().csv_row();
        assert!(row.starts_with("w,p,c,"));
        assert!(row.contains(",12,")); // uncorrectable total appears
    }
}
