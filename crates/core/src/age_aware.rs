//! Drift-age-aware scrub: skip lines too young to have drifted.

use pcm_memsim::{AccessResult, LineAddr, SimTime, SweepRule};
use scrub_checkpoint::{CheckpointError, Reader, Writer};

use crate::policy::{BatchPlan, ScrubAction, ScrubContext, ScrubPolicy, SweepCursor};
use crate::threshold::ThresholdScrub;

/// Age-aware scrub: sweep as usual, but *skip* any line whose data is
/// younger than `min_age_s` — drift error probability is a function of
/// time-since-write, so young lines are provably (nearly) clean and
/// probing them wastes energy and bandwidth.
///
/// Combines with the lazy write-back threshold. Hardware-wise this models
/// a controller that keeps a coarse per-region last-write timestamp, which
/// memory controllers already maintain for scheduling.
///
/// # Examples
///
/// ```
/// use scrub_core::AgeAwareScrub;
/// let p = AgeAwareScrub::new(900.0, 65_536, 5, 600.0);
/// assert_eq!(p.min_age_s(), 600.0);
/// ```
#[derive(Debug, Clone)]
pub struct AgeAwareScrub {
    interval_s: f64,
    num_lines: u32,
    theta: u32,
    min_age_s: f64,
    cursor: SweepCursor,
    /// Probes skipped because the line was younger than `min_age_s`.
    skipped: u64,
}

impl AgeAwareScrub {
    /// Creates an age-aware scrubber.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s <= 0`, `num_lines == 0`, `theta == 0`, or
    /// `min_age_s < 0`.
    pub fn new(interval_s: f64, num_lines: u32, theta: u32, min_age_s: f64) -> Self {
        assert!(interval_s > 0.0, "scrub interval must be positive");
        assert!(num_lines > 0, "need at least one line");
        assert!(theta >= 1, "theta must be >= 1");
        assert!(min_age_s >= 0.0, "min age must be nonnegative");
        Self {
            interval_s,
            num_lines,
            theta,
            min_age_s,
            cursor: SweepCursor::new(),
            skipped: 0,
        }
    }

    /// Minimum data age before a line is worth probing.
    pub fn min_age_s(&self) -> f64 {
        self.min_age_s
    }

    /// Probes skipped so far thanks to age awareness.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }
}

impl ScrubPolicy for AgeAwareScrub {
    fn name(&self) -> &str {
        "age-aware"
    }

    fn probe_gap_s(&self, _ctx: &ScrubContext<'_>) -> f64 {
        self.interval_s / self.num_lines as f64
    }

    fn next_action(&mut self, ctx: &ScrubContext<'_>) -> ScrubAction {
        let (addr, _) = self.cursor.advance(self.num_lines);
        let age = ctx.mem.line(addr).age_at(ctx.now);
        if age < self.min_age_s {
            self.skipped += 1;
            ScrubAction::Idle
        } else {
            ScrubAction::Probe(addr)
        }
    }

    fn wants_writeback(
        &mut self,
        _addr: LineAddr,
        result: &AccessResult,
        _ctx: &ScrubContext<'_>,
    ) -> bool {
        ThresholdScrub::threshold_rule(self.theta, result)
    }

    fn on_demand_write(&mut self, _addr: LineAddr, _now: SimTime) {}

    fn plan_batch(&mut self, slots: u64) -> Option<BatchPlan> {
        Some(BatchPlan {
            first: self.cursor.advance_by(slots, self.num_lines),
            min_age_s: self.min_age_s,
            rule: SweepRule::Threshold { theta: self.theta },
        })
    }

    fn on_batch_idle(&mut self, skipped: u64) {
        self.skipped += skipped;
    }

    fn save_state(&self, w: &mut Writer) {
        w.put_u32(self.cursor.position());
        w.put_u64(self.skipped);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let pos = r.u32()?;
        let skipped = r.u64()?;
        self.cursor.set_position(pos, self.num_lines)?;
        self.skipped = skipped;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_ecc::CodeSpec;
    use pcm_memsim::{MemGeometry, Memory};
    use pcm_model::DeviceConfig;

    fn mem() -> Memory {
        Memory::new(
            MemGeometry::new(8, 2),
            DeviceConfig::default(),
            CodeSpec::bch_line(6),
            2,
        )
    }

    #[test]
    fn skips_young_lines() {
        let mut m = mem();
        // Refresh line 0 just now; leave others at age 1000.
        let now = SimTime::from_secs(1000.0);
        m.demand_write(LineAddr(0), now);
        let mut p = AgeAwareScrub::new(80.0, 8, 3, 600.0);
        let ctx = ScrubContext { now, mem: &m };
        assert_eq!(p.next_action(&ctx), ScrubAction::Idle, "line 0 is fresh");
        assert_eq!(p.next_action(&ctx), ScrubAction::Probe(LineAddr(1)));
        assert_eq!(p.skipped(), 1);
    }

    #[test]
    fn probes_everything_when_min_age_zero() {
        let m = mem();
        let mut p = AgeAwareScrub::new(80.0, 8, 3, 0.0);
        let ctx = ScrubContext {
            now: SimTime::from_secs(5.0),
            mem: &m,
        };
        for i in 0..8 {
            assert_eq!(p.next_action(&ctx), ScrubAction::Probe(LineAddr(i)));
        }
    }
}
