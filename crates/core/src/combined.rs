//! The combined mechanism: everything the paper proposes, together.

use pcm_memsim::{AccessResult, LineAddr, SimTime};
use scrub_checkpoint::{CheckpointError, Reader, Writer};

use crate::adaptive::RegionScheduler;
use crate::policy::{ScrubAction, ScrubContext, ScrubPolicy};
use crate::threshold::ThresholdScrub;

/// The paper's combined scrub mechanism: strong ECC headroom exploited by
/// a lazy write-back threshold, lightweight detection probes, drift-age
/// skipping, and per-region adaptive pacing — all at once.
///
/// Pair it with a strong code (`CodeSpec::bch_line(6)` in the headline
/// configuration); the policy itself is code-agnostic.
///
/// # Examples
///
/// ```
/// use scrub_core::CombinedScrub;
/// let p = CombinedScrub::new(900.0, 65_536, 5, 64, 600.0);
/// assert_eq!(p.theta(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct CombinedScrub {
    sched: RegionScheduler,
    num_lines: u32,
    theta: u32,
    min_age_s: f64,
    skipped: u64,
}

impl CombinedScrub {
    /// Creates the combined scrubber.
    ///
    /// * `base_interval_s` — nominal full-sweep interval.
    /// * `theta` — lazy write-back threshold (≤ code's `t`).
    /// * `num_regions` — adaptive pacing granularity.
    /// * `min_age_s` — age below which lines are skipped.
    ///
    /// # Panics
    ///
    /// Panics on degenerate parameters (see [`crate::AdaptiveScrub::new`]).
    pub fn new(
        base_interval_s: f64,
        num_lines: u32,
        theta: u32,
        num_regions: u32,
        min_age_s: f64,
    ) -> Self {
        assert!(base_interval_s > 0.0, "scrub interval must be positive");
        assert!(num_lines > 0, "need at least one line");
        assert!(theta >= 1, "theta must be >= 1");
        assert!(min_age_s >= 0.0, "min age must be nonnegative");
        Self {
            sched: RegionScheduler::new(num_lines, num_regions, base_interval_s, theta),
            num_lines,
            theta,
            min_age_s,
            skipped: 0,
        }
    }

    /// The lazy write-back threshold.
    pub fn theta(&self) -> u32 {
        self.theta
    }

    /// Probes skipped by the age filter so far.
    pub fn skipped(&self) -> u64 {
        self.skipped
    }

    /// Mean region interval multiplier (diagnostic).
    pub fn mean_interval_multiplier(&self) -> f64 {
        self.sched.mean_mult()
    }
}

impl ScrubPolicy for CombinedScrub {
    fn name(&self) -> &str {
        "combined"
    }

    fn probe_gap_s(&self, _ctx: &ScrubContext<'_>) -> f64 {
        self.sched.base_interval_s / self.num_lines as f64
    }

    fn next_action(&mut self, ctx: &ScrubContext<'_>) -> ScrubAction {
        match self.sched.next_line(ctx.now) {
            Some(addr) => {
                let age = ctx.mem.line(addr).age_at(ctx.now);
                if age < self.min_age_s {
                    self.skipped += 1;
                    // Count the skip as a clean observation so a freshly
                    // written (hence clean) region relaxes its pace.
                    self.sched.record_probe(addr, 0);
                    ScrubAction::Idle
                } else {
                    ScrubAction::Probe(addr)
                }
            }
            None => ScrubAction::Idle,
        }
    }

    fn wants_writeback(
        &mut self,
        addr: LineAddr,
        result: &AccessResult,
        _ctx: &ScrubContext<'_>,
    ) -> bool {
        self.sched.record_probe(addr, result.persistent_bits);
        ThresholdScrub::threshold_rule(self.theta, result)
    }

    fn on_demand_write(&mut self, _addr: LineAddr, _now: SimTime) {}

    fn idle_until(&self, _now: SimTime) -> Option<SimTime> {
        // Only between passes: during an active pass, Idle slots are age
        // skips that mutate `skipped` and the region statistics.
        self.sched.next_due()
    }

    fn save_state(&self, w: &mut Writer) {
        self.sched.save_state(w);
        w.put_u64(self.skipped);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.sched.load_state(r)?;
        self.skipped = r.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_ecc::CodeSpec;
    use pcm_memsim::{MemGeometry, Memory};
    use pcm_model::DeviceConfig;
    #[test]
    fn skips_young_lines_but_probes_old() {
        let mut mem = Memory::new(
            MemGeometry::new(8, 2),
            DeviceConfig::default(),
            CodeSpec::bch_line(6),
            4,
        );
        let now = SimTime::from_secs(10_000.0);
        mem.demand_write(LineAddr(0), now);
        let mut p = CombinedScrub::new(80.0, 8, 5, 2, 600.0);
        let ctx = ScrubContext { now, mem: &mem };
        // Line 0 was just written: slot goes idle.
        assert_eq!(p.next_action(&ctx), ScrubAction::Idle);
        assert_eq!(p.skipped(), 1);
        // Line 1 is 10000s old: probed.
        assert_eq!(p.next_action(&ctx), ScrubAction::Probe(LineAddr(1)));
    }

    #[test]
    fn writeback_follows_threshold_rule() {
        let mut p = CombinedScrub::new(900.0, 64, 5, 4, 0.0);
        let mem = Memory::new(
            MemGeometry::new(64, 2),
            DeviceConfig::default(),
            CodeSpec::bch_line(6),
            5,
        );
        let ctx = ScrubContext {
            now: SimTime::from_secs(1.0),
            mem: &mem,
        };
        let low = AccessResult {
            outcome: pcm_ecc::ClassifyOutcome::Corrected { bits: 2 },
            persistent_bits: 2,
            new_ue: false,
        };
        let high = AccessResult {
            outcome: pcm_ecc::ClassifyOutcome::Corrected { bits: 5 },
            persistent_bits: 5,
            new_ue: false,
        };
        assert!(!p.wants_writeback(LineAddr(0), &low, &ctx));
        assert!(p.wants_writeback(LineAddr(1), &high, &ctx));
    }
}
