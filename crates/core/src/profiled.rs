//! Profiling-guided scrub: a budgeted tour that learns which lines are
//! error-prone and redistributes probe effort toward them.
//!
//! The paper's mechanisms pace scrubbing from *global* knobs (interval,
//! threshold, region feedback). `ProfiledScrub` instead accumulates a
//! bounded per-line *risk profile* from probe-history syndromes — the
//! correctable-error counts every probe reports anyway — and uses it
//! three ways:
//!
//! * **hot interleave** — every `hot_stride`-th granted slot probes a
//!   line whose score is at or above `risk`, round-robin, on top of its
//!   regular tour visit, so drifty and repeat-offender lines are checked
//!   well before the full tour returns to them;
//! * **quiet stretch** — lines *not* in the profile are probed on only
//!   every `stretch`-th tour (phase-striped by a seeded hash, so each
//!   tour still probes an even 1/stretch share), saving probe energy
//!   where history says nothing is happening;
//! * **lazy-plus write-back** — quiet lines use threshold `θ+1` where
//!   profiled lines use `θ`, lengthening the accumulate/write cycle
//!   exactly where the drift evidence is weakest.
//!
//! Probe scheduling spends from the same demand-shared token bucket as
//! [`TourScrub`](crate::TourScrub) (PR 7), anti-starvation boost
//! included, so a `profiled` shard composes with `tour` accounting and
//! inherits the `ScrubProgress`-style bound: no line can go unprobed for
//! more than [`ProfiledScrub::progress_bound_slots`] slots.
//!
//! The table is bounded (`capacity` entries); at overflow the
//! lowest-score entry is evicted (smallest address on ties), so the
//! profile degrades to a plain tour under adversarial churn instead of
//! growing without bound.

use std::collections::BTreeMap;

use pcm_memsim::{AccessResult, LineAddr, SimTime};
use scrub_checkpoint::{CheckpointError, Reader, Writer};
use scrub_telemetry as tel;

use crate::policy::{ScrubAction, ScrubContext, ScrubPolicy};
use crate::threshold::ThresholdScrub;
use crate::tour::TourBudget;

/// Scores saturate here; one UE bump is 64, so the cap is far above any
/// plausible accumulation but keeps checkpoint validation meaningful.
const SCORE_CAP: u32 = 1 << 20;

/// Score bump for an uncorrectable outcome: a UE is the strongest
/// possible evidence a line is at risk.
const UE_BUMP: u32 = 64;

/// Extra bump when a line already in the table reports errors again (the
/// repeat-offender bonus).
const REPEAT_BONUS: u32 = 2;

/// The profiler's tuning knobs, as plain data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfileParams {
    /// Maximum risk-table entries; the lowest-score entry is evicted at
    /// overflow.
    pub capacity: u32,
    /// Every `hot_stride`-th granted probe slot goes to a hot line
    /// (score >= `risk`) instead of the tour cursor. Must be >= 2 so the
    /// tour always keeps a majority of the grant stream.
    pub hot_stride: u32,
    /// Quiet (unprofiled) lines are probed on every `stretch`-th tour
    /// only; 1 disables stretching.
    pub stretch: u32,
    /// Score at or above which a line joins the hot interleave.
    pub risk: u32,
}

impl Default for ProfileParams {
    fn default() -> Self {
        Self {
            capacity: 1024,
            hot_stride: 4,
            stretch: 2,
            risk: 2,
        }
    }
}

/// SplitMix64 (same finalizer as the tour's origin derivation), used for
/// per-bank origins and the quiet-stretch phase stripes.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Profiling-guided budgeted scrub.
///
/// # Examples
///
/// ```
/// use scrub_core::{ProfileParams, ProfiledScrub, TourBudget};
/// let p = ProfiledScrub::new(
///     900.0,
///     65_536,
///     8,
///     4,
///     TourBudget { iops: 200.0, burst: 64.0, max_defer: 8 },
///     ProfileParams::default(),
///     7,
/// );
/// assert!(p.progress_bound_slots() >= 2 * 65_536 * 9);
/// ```
#[derive(Debug, Clone)]
pub struct ProfiledScrub {
    // --- configuration (rebuilt from the run config on resume) ---
    interval_s: f64,
    num_lines: u32,
    banks: u32,
    theta: u32,
    budget: TourBudget,
    params: ProfileParams,
    seed: u64,
    origins: Vec<u32>,
    /// Test-only tripwire: drop the risk table on checkpoint load, so a
    /// restored twin diverges from the original. Never serialized.
    forgetful: bool,
    // --- mutable state (checkpointed) ---
    pos: u32,
    tours_completed: u64,
    tokens: f64,
    last_refill: SimTime,
    defer_streak: u32,
    throttled_slots: u64,
    forced_probes: u64,
    slots_this_tour: u64,
    max_tour_slots: u64,
    /// Granted probe slots (tour + hot), drives the hot interleave.
    granted: u64,
    /// Round-robin cursor over the hot subset of the table.
    hot_cursor: u32,
    /// The risk profile: line address -> accumulated score.
    table: BTreeMap<u32, u32>,
    probes_seen: u64,
    dirty_probes: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
    hot_probes: u64,
}

impl ProfiledScrub {
    /// Creates a profiling-guided scrubber. `interval_s`, `theta`,
    /// `budget`, and `seed` behave exactly as in
    /// [`TourScrub::new`](crate::TourScrub::new); `params` tunes the
    /// profiler.
    ///
    /// # Panics
    ///
    /// Panics on the tour's invalid inputs, plus `capacity == 0`,
    /// `hot_stride < 2`, `stretch == 0`, or `risk == 0`.
    pub fn new(
        interval_s: f64,
        num_lines: u32,
        banks: u32,
        theta: u32,
        budget: TourBudget,
        params: ProfileParams,
        seed: u64,
    ) -> Self {
        assert!(interval_s > 0.0, "interval must be positive");
        assert!(num_lines > 0, "need at least one line");
        assert!(banks > 0 && banks <= num_lines, "need 1..=num_lines banks");
        assert!(theta >= 1, "theta must be >= 1");
        assert!(
            budget.iops.is_finite() && budget.iops > 0.0,
            "iops must be positive"
        );
        assert!(
            budget.burst.is_finite() && budget.burst >= 1.0,
            "burst must be at least one token"
        );
        assert!(params.capacity >= 1, "profile capacity must be >= 1");
        assert!(params.hot_stride >= 2, "hot stride must be >= 2");
        assert!(params.stretch >= 1, "stretch must be >= 1");
        assert!(params.risk >= 1, "risk threshold must be >= 1");
        let origins = (0..banks)
            .map(|b| {
                let count = Self::bank_line_count(num_lines, banks, b);
                (splitmix64(seed ^ 0x0070_5246 ^ u64::from(b)) % u64::from(count)) as u32
            })
            .collect();
        Self {
            interval_s,
            num_lines,
            banks,
            theta,
            budget,
            params,
            seed,
            origins,
            forgetful: false,
            pos: 0,
            tours_completed: 0,
            tokens: budget.burst,
            last_refill: SimTime::ZERO,
            defer_streak: 0,
            throttled_slots: 0,
            forced_probes: 0,
            slots_this_tour: 0,
            max_tour_slots: 0,
            granted: 0,
            hot_cursor: 0,
            table: BTreeMap::new(),
            probes_seen: 0,
            dirty_probes: 0,
            hits: 0,
            misses: 0,
            evictions: 0,
            hot_probes: 0,
        }
    }

    fn bank_line_count(num_lines: u32, banks: u32, b: u32) -> u32 {
        num_lines / banks + u32::from(b < num_lines % banks)
    }

    /// The profiled analogue of the tour's `ScrubProgress` bound: every
    /// line is probed at least once per `stretch` tours, each tour needs
    /// at most `num_lines` cursor advances plus the hot interleave's
    /// stolen grants, and each grant costs at most `max_defer + 1` slots.
    pub fn progress_bound_slots(&self) -> u64 {
        let lines = u64::from(self.num_lines);
        let hot_steals = lines.div_ceil(u64::from(self.params.hot_stride) - 1) + 1;
        u64::from(self.params.stretch)
            * (u64::from(self.budget.max_defer) + 1)
            * (lines + hot_steals)
    }

    /// Tour position (next line index in tour order).
    pub fn position(&self) -> u32 {
        self.pos
    }

    /// Completed tours.
    pub fn tours_completed(&self) -> u64 {
        self.tours_completed
    }

    /// Tokens currently in the bucket.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Lines currently resident in the risk table.
    pub fn table_len(&self) -> usize {
        self.table.len()
    }

    /// Configured profile capacity.
    pub fn capacity(&self) -> u32 {
        self.params.capacity
    }

    /// Probes of profiled lines that found persistent errors.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Probes of profiled lines that came back clean.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Risk-table evictions at capacity.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Extra probes granted to hot lines by the interleave.
    pub fn hot_probes(&self) -> u64 {
        self.hot_probes
    }

    /// All probes this policy has inspected, and the dirty subset.
    pub fn probe_mix(&self) -> (u64, u64) {
        (self.probes_seen, self.dirty_probes)
    }

    /// Current score of `addr`, zero if unprofiled.
    pub fn score(&self, addr: LineAddr) -> u32 {
        self.table.get(&addr.0).copied().unwrap_or(0)
    }

    /// Test-only tripwire: makes checkpoint restore drop the learned
    /// risk table, so the restored twin schedules differently from the
    /// original. The profiled proptests prove the harness catches this.
    #[doc(hidden)]
    pub fn set_forgetful_for_test(&mut self, forgetful: bool) {
        self.forgetful = forgetful;
    }

    /// The line the tour visits at position `p` (same interleaving as
    /// the tour policy, under this policy's own origins).
    fn addr_at(&self, p: u32) -> LineAddr {
        let b = p % self.banks;
        let j = p / self.banks;
        let count = Self::bank_line_count(self.num_lines, self.banks, b);
        LineAddr(b + ((self.origins[b as usize] + j) % count) * self.banks)
    }

    /// The quiet-stretch phase stripe of `addr`: the line is due on
    /// tours where `tours_completed ≡ phase (mod stretch)`.
    fn phase(&self, addr: u32) -> u64 {
        splitmix64(self.seed ^ 0x7052_4f46 ^ u64::from(addr)) % u64::from(self.params.stretch)
    }

    fn refill(&mut self, now: SimTime) {
        let elapsed = now.since(self.last_refill).max(0.0);
        self.tokens = (self.tokens + self.budget.iops * elapsed).min(self.budget.burst);
        self.last_refill = now;
    }

    fn charge_demand(&mut self, now: SimTime) {
        self.refill(now);
        self.tokens = (self.tokens - 1.0).max(0.0);
    }

    fn advance(&mut self) {
        self.pos += 1;
        if self.pos == self.num_lines {
            self.pos = 0;
            self.tours_completed += 1;
            self.max_tour_slots = self.max_tour_slots.max(self.slots_this_tour);
            if tel::enabled() {
                tel::counter_add(tel::Counter::ToursCompleted, 1);
                tel::gauge_max(tel::Gauge::StarvationMaxLag, self.slots_this_tour);
            }
            self.slots_this_tour = 0;
        }
    }

    /// Next hot line (score >= risk) after the round-robin cursor, if
    /// any, advancing the cursor to it.
    fn next_hot(&mut self) -> Option<LineAddr> {
        let risk = self.params.risk;
        let next = self
            .table
            .range(self.hot_cursor.saturating_add(1)..)
            .find(|&(_, &s)| s >= risk)
            .map(|(&a, _)| a)
            .or_else(|| {
                self.table
                    .range(..=self.hot_cursor)
                    .find(|&(_, &s)| s >= risk)
                    .map(|(&a, _)| a)
            })?;
        self.hot_cursor = next;
        Some(LineAddr(next))
    }

    /// Adds `inc` to `addr`'s score, inserting and evicting as needed.
    fn bump(&mut self, addr: u32, inc: u32) {
        let is_new = !self.table.contains_key(&addr);
        let e = self.table.entry(addr).or_insert(0);
        *e = e.saturating_add(inc).min(SCORE_CAP);
        if is_new && self.table.len() as u32 > self.params.capacity {
            let victim = self
                .table
                .iter()
                .min_by_key(|&(&a, &s)| (s, a))
                .map(|(&a, _)| a)
                .expect("table is non-empty past capacity");
            self.table.remove(&victim);
            self.evictions += 1;
            if tel::enabled() {
                tel::counter_add(tel::Counter::ProfilerEvictions, 1);
            }
        }
        if tel::enabled() {
            tel::gauge_max(tel::Gauge::ProfilerOccupancy, self.table.len() as u64);
        }
    }

    /// Halves `addr`'s score (clean probe or demand rewrite), dropping
    /// the entry once it reaches zero.
    fn decay(&mut self, addr: u32) {
        if let Some(s) = self.table.get_mut(&addr) {
            *s /= 2;
            if *s == 0 {
                self.table.remove(&addr);
            }
        }
    }
}

impl ScrubPolicy for ProfiledScrub {
    fn name(&self) -> &str {
        "profiled"
    }

    fn probe_gap_s(&self, _ctx: &ScrubContext<'_>) -> f64 {
        self.interval_s / self.num_lines as f64
    }

    fn next_action(&mut self, ctx: &ScrubContext<'_>) -> ScrubAction {
        self.refill(ctx.now);
        self.slots_this_tour += 1;
        let forced = self.tokens < 1.0 && self.defer_streak >= self.budget.max_defer;
        if self.tokens < 1.0 && !forced {
            self.defer_streak += 1;
            self.throttled_slots += 1;
            tel::counter_add(tel::Counter::BudgetThrottled, 1);
            return ScrubAction::Idle;
        }
        // A grant is available. Hot interleave first: every
        // `hot_stride`-th granted probe goes to a profiled hot line.
        if (self.granted + 1) % u64::from(self.params.hot_stride) == 0 {
            if let Some(addr) = self.next_hot() {
                self.granted += 1;
                self.hot_probes += 1;
                if tel::enabled() {
                    tel::counter_add(tel::Counter::ProfilerHotProbes, 1);
                }
                if forced {
                    self.forced_probes += 1;
                    tel::counter_add(tel::Counter::BudgetForcedProbes, 1);
                } else {
                    self.tokens -= 1.0;
                }
                self.defer_streak = 0;
                return ScrubAction::Probe(addr);
            }
        }
        // Tour step, with the quiet stretch: an unprofiled line that is
        // not due this tour is skipped without spending a token.
        let addr = self.addr_at(self.pos);
        let due_tour = self.tours_completed % u64::from(self.params.stretch);
        self.advance();
        let quiet = !self.table.contains_key(&addr.0);
        if quiet && self.params.stretch > 1 && self.phase(addr.0) != due_tour {
            return ScrubAction::Idle;
        }
        self.granted += 1;
        if forced {
            self.forced_probes += 1;
            tel::counter_add(tel::Counter::BudgetForcedProbes, 1);
        } else {
            self.tokens -= 1.0;
        }
        self.defer_streak = 0;
        ScrubAction::Probe(addr)
    }

    fn wants_writeback(
        &mut self,
        addr: LineAddr,
        result: &AccessResult,
        _ctx: &ScrubContext<'_>,
    ) -> bool {
        let dirty = result.persistent_bits > 0 || result.outcome.is_uncorrectable();
        let was_profiled = self.table.contains_key(&addr.0);
        self.probes_seen += 1;
        if dirty {
            self.dirty_probes += 1;
        }
        if tel::enabled() {
            if dirty {
                tel::counter_add(tel::Counter::ProfilerDirtyProbes, 1);
            }
            if was_profiled {
                tel::counter_add(
                    if dirty {
                        tel::Counter::ProfilerHits
                    } else {
                        tel::Counter::ProfilerMisses
                    },
                    1,
                );
            }
        }
        if was_profiled {
            if dirty {
                self.hits += 1;
            } else {
                self.misses += 1;
            }
        }
        if dirty {
            let mut inc = result.persistent_bits;
            if result.outcome.is_uncorrectable() {
                inc = inc.saturating_add(UE_BUMP);
            }
            if was_profiled {
                inc = inc.saturating_add(REPEAT_BONUS);
            }
            self.bump(addr.0, inc.max(1));
        } else if was_profiled {
            self.decay(addr.0);
        }
        // Lazy-plus: quiet lines stretch the write-back threshold by one
        // error; profiled lines pay at theta.
        let theta = self.theta + u32::from(!was_profiled);
        ThresholdScrub::threshold_rule(theta, result)
    }

    fn on_demand_write(&mut self, addr: LineAddr, now: SimTime) {
        self.charge_demand(now);
        // The rewrite reset the drift clock; the history is half as
        // relevant now.
        self.decay(addr.0);
    }

    fn on_demand_read(&mut self, _addr: LineAddr, now: SimTime) {
        self.charge_demand(now);
    }

    fn save_state(&self, w: &mut Writer) {
        w.put_u32(self.pos);
        w.put_u64(self.tours_completed);
        w.put_f64(self.tokens);
        w.put_f64(self.last_refill.secs());
        w.put_u32(self.defer_streak);
        w.put_u64(self.throttled_slots);
        w.put_u64(self.forced_probes);
        w.put_u64(self.slots_this_tour);
        w.put_u64(self.max_tour_slots);
        w.put_u64(self.granted);
        w.put_u32(self.hot_cursor);
        w.put_u64(self.probes_seen);
        w.put_u64(self.dirty_probes);
        w.put_u64(self.hits);
        w.put_u64(self.misses);
        w.put_u64(self.evictions);
        w.put_u64(self.hot_probes);
        w.put_u32(self.table.len() as u32);
        for (&addr, &score) in &self.table {
            w.put_u32(addr);
            w.put_u32(score);
        }
        // Origins are derived from the run config; serialized as an
        // identity check like the tour's.
        for &o in &self.origins {
            w.put_u32(o);
        }
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let pos = r.u32()?;
        if pos >= self.num_lines {
            return Err(CheckpointError::Malformed(format!(
                "profiled position {pos} out of range ({} lines)",
                self.num_lines
            )));
        }
        let tours_completed = r.u64()?;
        let tokens = r.finite_f64("profiled tokens")?;
        if !(0.0..=self.budget.burst).contains(&tokens) {
            return Err(CheckpointError::Malformed(format!(
                "profiled tokens {tokens} outside bucket [0, {}]",
                self.budget.burst
            )));
        }
        let last_refill = r.time_f64("profiled last refill")?;
        let defer_streak = r.u32()?;
        if defer_streak > self.budget.max_defer {
            return Err(CheckpointError::Malformed(format!(
                "profiled defer streak {defer_streak} exceeds max_defer {}",
                self.budget.max_defer
            )));
        }
        let throttled_slots = r.u64()?;
        let forced_probes = r.u64()?;
        let slots_this_tour = r.u64()?;
        let max_tour_slots = r.u64()?;
        let granted = r.u64()?;
        let hot_cursor = r.u32()?;
        let probes_seen = r.u64()?;
        let dirty_probes = r.u64()?;
        let hits = r.u64()?;
        let misses = r.u64()?;
        let evictions = r.u64()?;
        let hot_probes = r.u64()?;
        let len = r.u32()?;
        if len > self.params.capacity {
            return Err(CheckpointError::Malformed(format!(
                "profile table holds {len} entries, capacity is {}",
                self.params.capacity
            )));
        }
        let mut table = BTreeMap::new();
        let mut prev: Option<u32> = None;
        for _ in 0..len {
            let addr = r.u32()?;
            let score = r.u32()?;
            if addr >= self.num_lines {
                return Err(CheckpointError::Malformed(format!(
                    "profiled entry {addr} out of range ({} lines)",
                    self.num_lines
                )));
            }
            if prev.is_some_and(|p| addr <= p) {
                return Err(CheckpointError::Malformed(
                    "profile table addresses not strictly ascending".to_string(),
                ));
            }
            if score == 0 || score > SCORE_CAP {
                return Err(CheckpointError::Malformed(format!(
                    "profile score {score} outside (0, {SCORE_CAP}]"
                )));
            }
            prev = Some(addr);
            table.insert(addr, score);
        }
        for (b, &want) in self.origins.iter().enumerate() {
            let got = r.u32()?;
            if got != want {
                return Err(CheckpointError::Malformed(format!(
                    "profiled origin mismatch on bank {b}: snapshot has {got}, config derives {want}"
                )));
            }
        }
        self.pos = pos;
        self.tours_completed = tours_completed;
        self.tokens = tokens;
        self.last_refill = SimTime::from_secs(last_refill);
        self.defer_streak = defer_streak;
        self.throttled_slots = throttled_slots;
        self.forced_probes = forced_probes;
        self.slots_this_tour = slots_this_tour;
        self.max_tour_slots = max_tour_slots;
        self.granted = granted;
        self.hot_cursor = hot_cursor;
        self.probes_seen = probes_seen;
        self.dirty_probes = dirty_probes;
        self.hits = hits;
        self.misses = misses;
        self.evictions = evictions;
        self.hot_probes = hot_probes;
        self.table = if self.forgetful {
            BTreeMap::new()
        } else {
            table
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_ecc::{ClassifyOutcome, CodeSpec};
    use pcm_memsim::{MemGeometry, Memory};
    use pcm_model::DeviceConfig;
    use std::collections::HashSet;

    fn budget(iops: f64, burst: f64, max_defer: u32) -> TourBudget {
        TourBudget {
            iops,
            burst,
            max_defer,
        }
    }

    fn params(capacity: u32, hot_stride: u32, stretch: u32, risk: u32) -> ProfileParams {
        ProfileParams {
            capacity,
            hot_stride,
            stretch,
            risk,
        }
    }

    fn mem(lines: u32, banks: u32) -> Memory {
        Memory::new(
            MemGeometry::new(lines, banks),
            DeviceConfig::default(),
            CodeSpec::bch_line(6),
            7,
        )
    }

    fn ctx<'a>(now_s: f64, mem: &'a Memory) -> ScrubContext<'a> {
        ScrubContext {
            now: SimTime::from_secs(now_s),
            mem,
        }
    }

    fn res(bits: u32, outcome: ClassifyOutcome) -> AccessResult {
        AccessResult {
            outcome,
            persistent_bits: bits,
            new_ue: false,
        }
    }

    fn mk(lines: u32, banks: u32, p: ProfileParams) -> ProfiledScrub {
        ProfiledScrub::new(
            lines as f64 * 10.0,
            lines,
            banks,
            4,
            budget(1e6, 1e6, 4),
            p,
            11,
        )
    }

    /// With no profile and stretch 1, one tour visits every line once —
    /// the cold profiler degrades to a plain tour.
    #[test]
    fn cold_stretch1_tour_is_a_permutation() {
        for (lines, banks) in [(64u32, 8u32), (60, 8), (17, 3)] {
            let p = mk(lines, banks, params(16, 1000, 1, 2));
            let visited: HashSet<u32> = (0..lines).map(|i| p.addr_at(i).0).collect();
            assert_eq!(visited.len(), lines as usize);
        }
    }

    /// Quiet stretch probes an even 1/stretch share per tour and every
    /// line within `stretch` consecutive tours.
    #[test]
    fn stretch_stripes_quiet_lines_across_tours() {
        let lines = 60u32;
        let stretch = 3u32;
        let m = mem(lines, 4);
        let mut p = mk(lines, 4, params(16, 1000, stretch, 2));
        let mut probed: Vec<HashSet<u32>> = vec![HashSet::new(); stretch as usize];
        let mut t = 0.0;
        for _ in 0..3 * lines {
            let tour = p.tours_completed() as usize;
            if let ScrubAction::Probe(a) = p.next_action(&ctx(t, &m)) {
                probed[tour % stretch as usize].insert(a.0);
            }
            t += 1.0;
        }
        let total: usize = probed.iter().map(|s| s.len()).sum();
        assert_eq!(total, lines as usize, "each line probed exactly once");
        for s in &probed {
            assert!(
                s.len() >= lines as usize / (stretch as usize) - 8
                    && s.len() <= lines as usize / (stretch as usize) + 8,
                "uneven stripe: {}",
                s.len()
            );
        }
    }

    /// A dirty probe inserts the line; the hot interleave then revisits
    /// it more often than the tour alone would.
    #[test]
    fn hot_lines_get_extra_probes() {
        let lines = 64u32;
        let m = mem(lines, 4);
        let mut p = mk(lines, 4, params(16, 4, 1, 2));
        // Make line 5 a known offender.
        p.wants_writeback(
            LineAddr(5),
            &res(3, ClassifyOutcome::Corrected { bits: 3 }),
            &ctx(0.0, &m),
        );
        assert!(p.score(LineAddr(5)) >= 2);
        let mut hits_on_5 = 0;
        for s in 0..256 {
            if let ScrubAction::Probe(a) = p.next_action(&ctx(s as f64, &m)) {
                if a.0 == 5 {
                    hits_on_5 += 1;
                }
            }
        }
        // 256 slots = 4 tours; the tour alone would probe line 5 four
        // times, the interleave adds roughly one probe per 4 grants.
        assert!(hits_on_5 > 10, "hot line only probed {hits_on_5} times");
        assert!(p.hot_probes() > 0);
    }

    /// The table never exceeds capacity; overflow evicts lowest-score.
    #[test]
    fn table_is_bounded_and_evicts_lowest() {
        let m = mem(64, 4);
        let mut p = mk(64, 4, params(4, 4, 1, 2));
        for a in 0..10u32 {
            p.wants_writeback(
                LineAddr(a),
                &res(1 + a % 3, ClassifyOutcome::Corrected { bits: 1 }),
                &ctx(0.0, &m),
            );
            assert!(p.table_len() <= 4, "table grew past capacity");
        }
        assert!(p.evictions() > 0);
    }

    /// Clean probes decay scores and eventually forget the line; demand
    /// writes decay too.
    #[test]
    fn scores_decay_on_clean_probes_and_demand_writes() {
        let m = mem(64, 4);
        let mut p = mk(64, 4, params(16, 4, 1, 2));
        p.wants_writeback(
            LineAddr(9),
            &res(4, ClassifyOutcome::Corrected { bits: 4 }),
            &ctx(0.0, &m),
        );
        let s0 = p.score(LineAddr(9));
        assert!(s0 >= 4);
        p.on_demand_write(LineAddr(9), SimTime::from_secs(1.0));
        assert_eq!(p.score(LineAddr(9)), s0 / 2);
        while p.score(LineAddr(9)) > 0 {
            p.wants_writeback(LineAddr(9), &res(0, ClassifyOutcome::Clean), &ctx(2.0, &m));
        }
        assert_eq!(p.table_len(), 0);
        assert!(p.misses() > 0);
    }

    /// Quiet lines write back at theta+1, profiled lines at theta; UEs
    /// always write back.
    #[test]
    fn quiet_lines_stretch_the_writeback_threshold() {
        let m = mem(64, 4);
        let mut p = mk(64, 4, params(16, 4, 1, 2));
        // Quiet line at exactly theta=4: held (lazy-plus).
        assert!(!p.wants_writeback(
            LineAddr(3),
            &res(4, ClassifyOutcome::Corrected { bits: 4 }),
            &ctx(0.0, &m),
        ));
        // It is now profiled; theta applies on the next probe.
        assert!(p.wants_writeback(
            LineAddr(3),
            &res(4, ClassifyOutcome::Corrected { bits: 4 }),
            &ctx(1.0, &m),
        ));
        // Quiet line at theta+1 writes back.
        assert!(p.wants_writeback(
            LineAddr(7),
            &res(5, ClassifyOutcome::Corrected { bits: 5 }),
            &ctx(0.0, &m),
        ));
        // UE always writes back, quiet or not.
        assert!(p.wants_writeback(
            LineAddr(8),
            &res(0, ClassifyOutcome::DetectedUncorrectable),
            &ctx(0.0, &m),
        ));
    }

    /// Starvation: an empty bucket throttles, then forces within
    /// max_defer + 1 slots, exactly like the tour.
    #[test]
    fn starved_bucket_throttles_then_forces() {
        let m = mem(8, 2);
        let mut p = ProfiledScrub::new(8.0, 8, 2, 4, budget(1e-9, 1.0, 3), params(4, 4, 1, 2), 5);
        p.on_demand_read(LineAddr(0), SimTime::ZERO);
        let mut pattern = Vec::new();
        for s in 0..8 {
            let a = p.next_action(&ctx(s as f64, &m));
            pattern.push(matches!(a, ScrubAction::Probe(_)));
        }
        assert_eq!(
            pattern,
            [false, false, false, true, false, false, false, true]
        );
        assert_eq!(p.forced_probes, 2);
        assert_eq!(p.throttled_slots, 6);
    }

    /// save/load round-trips the full profiler state byte-for-byte; the
    /// forgetful tripwire visibly breaks the twin; tampered tables are
    /// rejected.
    #[test]
    fn checkpoint_roundtrip_forgetful_and_validation() {
        let m = mem(64, 8);
        let p0 = params(8, 4, 2, 2);
        let mk0 = || ProfiledScrub::new(640.0, 64, 8, 4, budget(0.5, 4.0, 3), p0, 11);
        let mut p = mk0();
        for s in 0..61 {
            p.on_demand_read(LineAddr(0), SimTime::from_secs(9.9 * s as f64));
            if let ScrubAction::Probe(a) = p.next_action(&ctx(10.0 * s as f64, &m)) {
                let bits = a.0 % 5;
                let outcome = if bits == 0 {
                    ClassifyOutcome::Clean
                } else {
                    ClassifyOutcome::Corrected { bits }
                };
                p.wants_writeback(a, &res(bits, outcome), &ctx(10.0 * s as f64, &m));
            }
        }
        assert!(p.table_len() > 0, "exercise the table serialization");
        let mut w = Writer::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut q = mk0();
        let mut r = Reader::new(&bytes);
        q.load_state(&mut r).expect("roundtrip");
        r.finish().expect("all bytes consumed");
        assert_eq!(q.position(), p.position());
        assert_eq!(q.table_len(), p.table_len());
        assert_eq!(q.hits(), p.hits());
        let mut w2 = Writer::new();
        q.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes, "byte-identical re-serialization");

        // The forgetful tripwire drops the table on load.
        let mut f = mk0();
        f.set_forgetful_for_test(true);
        let mut rf = Reader::new(&bytes);
        f.load_state(&mut rf).expect("forgetful load still parses");
        rf.finish().expect("all bytes consumed");
        assert_eq!(f.table_len(), 0, "tripwire must forget the profile");

        // A tampered table length (past capacity) is rejected.
        let mut evil = bytes.clone();
        // table len offset: three u32 fields (pos, defer_streak,
        // hot_cursor), two f64 (tokens, last_refill), twelve u64
        // = 12 + 16 + 96 = 124 (the codec is little-endian throughout).
        let off = 124;
        evil[off..off + 4].copy_from_slice(&100u32.to_le_bytes());
        let mut re = Reader::new(&evil);
        assert!(matches!(
            mk0().load_state(&mut re),
            Err(CheckpointError::Malformed(_))
        ));

        // A snapshot from a different seed fails the origin check.
        let mut diff = ProfiledScrub::new(640.0, 64, 8, 4, budget(0.5, 4.0, 3), p0, 12);
        let mut rd = Reader::new(&bytes);
        assert!(diff.load_state(&mut rd).is_err());
    }

    #[test]
    #[should_panic(expected = "hot stride must be >= 2")]
    fn rejects_unit_hot_stride() {
        mk(64, 4, params(16, 1, 1, 2));
    }
}
