//! # scrub-core — drift-aware scrub mechanisms for error-prone memories
//!
//! The primary contribution of the HPCA 2012 reproduction: scrub
//! mechanisms tailored to MLC-PCM resistance drift, which trade off soft
//! errors (drift accumulating past ECC capability) against hard errors and
//! energy (every corrective write-back wears cells and burns ~15× a read's
//! energy).
//!
//! ## Mechanisms
//!
//! | Policy | Idea |
//! |--------|------|
//! | [`BasicScrub`] | DRAM-style baseline: sweep + write back on any error |
//! | [`ThresholdScrub`] | lightweight detection, lazy write-back at θ errors |
//! | [`AgeAwareScrub`] | skip lines too young to have drifted |
//! | [`AdaptiveScrub`] | per-region AIMD sweep pacing |
//! | [`CombinedScrub`] | all of the above (the paper's proposal) |
//! | [`ProfiledScrub`] | per-line risk profiling over the budgeted tour |
//!
//! ## Running an experiment
//!
//! ```
//! use scrub_core::{DemandTraffic, PolicyKind, SimConfig, Simulation};
//! use pcm_workloads::WorkloadId;
//!
//! let report = Simulation::new(
//!     SimConfig::builder()
//!         .num_lines(4096)
//!         .policy(PolicyKind::combined_default(900.0))
//!         .traffic(DemandTraffic::suite(WorkloadId::WebServe))
//!         .horizon_s(6.0 * 3600.0)
//!         .build(),
//! )
//! .run();
//! println!("{report}");
//! ```

mod adaptive;
mod age_aware;
mod basic;
mod budget;
mod checkpoint;
mod combined;
mod config;
mod engine;
mod event;
mod policy;
mod profiled;
mod report;
mod sim;
mod threshold;
pub mod tick;
mod tour;

pub use adaptive::AdaptiveScrub;
pub use age_aware::AgeAwareScrub;
pub use basic::BasicScrub;
pub use budget::BudgetScrub;
pub use checkpoint::{run_split, SplitRunOutcome};
pub use combined::CombinedScrub;
pub use config::PolicyKind;
pub use engine::{EngineStats, ScrubEngine};
pub use event::{set_skewed_fast_forward_for_test, EngineKind};
pub use policy::{BatchPlan, ScrubAction, ScrubContext, ScrubPolicy, SweepCursor};
pub use profiled::{ProfileParams, ProfiledScrub};
pub use report::SimReport;
pub use sim::{DemandTraffic, SimConfig, SimConfigBuilder, Simulation};
pub use threshold::ThresholdScrub;
pub use tour::{TourBudget, TourScrub};
