//! The baseline: DRAM-style basic scrub.

use pcm_memsim::{AccessResult, LineAddr, SimTime, SweepRule};
use scrub_checkpoint::{CheckpointError, Reader, Writer};

use crate::policy::{BatchPlan, ScrubAction, ScrubContext, ScrubPolicy, SweepCursor};

/// DRAM-heritage scrub: sweep every line once per `interval`, and write
/// back whenever the probe finds *any* error.
///
/// This is the comparison baseline for every headline number in the paper:
/// it neither exploits strong-ECC headroom (every single-bit error triggers
/// a full write-back) nor line age (freshly written lines are probed as
/// eagerly as week-old ones).
///
/// # Examples
///
/// ```
/// use scrub_core::BasicScrub;
/// let p = BasicScrub::new(900.0, 65_536);
/// assert_eq!(p.interval_s(), 900.0);
/// ```
#[derive(Debug, Clone)]
pub struct BasicScrub {
    interval_s: f64,
    num_lines: u32,
    cursor: SweepCursor,
}

impl BasicScrub {
    /// Creates a basic scrubber sweeping `num_lines` once per
    /// `interval_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s` is not positive or `num_lines` is zero.
    pub fn new(interval_s: f64, num_lines: u32) -> Self {
        assert!(interval_s > 0.0, "scrub interval must be positive");
        assert!(num_lines > 0, "need at least one line");
        Self {
            interval_s,
            num_lines,
            cursor: SweepCursor::new(),
        }
    }

    /// The full-sweep interval.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// The scrub slot times (seconds) the engine will execute up to and
    /// including `horizon_s`, replicated bit-for-bit: the same integer
    /// tick-grid accumulation as [`crate::ScrubEngine`] (starting at
    /// tick zero; see [`crate::tick`]), *not* a freestanding `k·gap` in
    /// floating point, which would diverge from the engine's schedule.
    ///
    /// Slot `j` probes line `j mod num_lines`. This is the expected-value
    /// hook the `scrub-oracle` crate builds its closed-form probe/write
    /// predictions on: because the times match the engine exactly, oracle
    /// probe counts are exact rather than ±1 near the horizon.
    ///
    /// # Examples
    ///
    /// ```
    /// use scrub_core::BasicScrub;
    /// let p = BasicScrub::new(160.0, 16); // gap = 10 s
    /// let slots = p.slot_times_within(35.0);
    /// assert_eq!(slots, vec![0.0, 10.0, 20.0, 30.0]);
    /// assert_eq!(p.expected_probes_within(30.0), 4); // t = 30 inclusive
    /// ```
    pub fn slot_times_within(&self, horizon_s: f64) -> Vec<f64> {
        let horizon = SimTime::from_secs(horizon_s);
        let gap_ticks = crate::tick::gap_to_ticks(self.interval_s / self.num_lines as f64);
        let mut times = Vec::new();
        let mut tk = 0u64;
        loop {
            let t = crate::tick::time_from_ticks(tk);
            if t > horizon {
                break;
            }
            times.push(t.secs());
            tk += gap_ticks;
        }
        times
    }

    /// Number of probe slots the engine will execute within `horizon_s` —
    /// deterministic for this policy (it never idles), so the *expected*
    /// probe count is exact.
    pub fn expected_probes_within(&self, horizon_s: f64) -> u64 {
        self.slot_times_within(horizon_s).len() as u64
    }
}

impl ScrubPolicy for BasicScrub {
    fn name(&self) -> &str {
        "basic"
    }

    fn probe_gap_s(&self, _ctx: &ScrubContext<'_>) -> f64 {
        self.interval_s / self.num_lines as f64
    }

    fn next_action(&mut self, _ctx: &ScrubContext<'_>) -> ScrubAction {
        let (addr, _) = self.cursor.advance(self.num_lines);
        ScrubAction::Probe(addr)
    }

    fn wants_writeback(
        &mut self,
        _addr: LineAddr,
        result: &AccessResult,
        _ctx: &ScrubContext<'_>,
    ) -> bool {
        // Any detected error -> immediate corrective write.
        !matches!(result.outcome, pcm_ecc::ClassifyOutcome::Clean)
    }

    fn on_demand_write(&mut self, _addr: LineAddr, _now: SimTime) {}

    fn plan_batch(&mut self, slots: u64) -> Option<BatchPlan> {
        Some(BatchPlan {
            first: self.cursor.advance_by(slots, self.num_lines),
            min_age_s: 0.0,
            rule: SweepRule::AnyError,
        })
    }

    fn save_state(&self, w: &mut Writer) {
        w.put_u32(self.cursor.position());
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let pos = r.u32()?;
        self.cursor.set_position(pos, self.num_lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_ecc::{ClassifyOutcome, CodeSpec};
    use pcm_memsim::{MemGeometry, Memory};
    use pcm_model::DeviceConfig;

    fn ctx_mem() -> Memory {
        Memory::new(
            MemGeometry::new(16, 2),
            DeviceConfig::default(),
            CodeSpec::secded_line(),
            1,
        )
    }

    #[test]
    fn sweeps_in_physical_order() {
        let mem = ctx_mem();
        let mut p = BasicScrub::new(160.0, 16);
        let ctx = ScrubContext {
            now: SimTime::ZERO,
            mem: &mem,
        };
        for i in 0..16 {
            assert_eq!(p.next_action(&ctx), ScrubAction::Probe(LineAddr(i)));
        }
        assert_eq!(p.next_action(&ctx), ScrubAction::Probe(LineAddr(0)));
    }

    #[test]
    fn gap_is_interval_over_lines() {
        let mem = ctx_mem();
        let p = BasicScrub::new(160.0, 16);
        let ctx = ScrubContext {
            now: SimTime::ZERO,
            mem: &mem,
        };
        assert!((p.probe_gap_s(&ctx) - 10.0).abs() < 1e-12);
    }

    /// The hook's contract: slot times equal the engine's actual probe
    /// schedule, including the floating-point accumulation quirks.
    #[test]
    fn slot_times_match_engine_exactly() {
        use crate::engine::ScrubEngine;
        let interval = 700.0; // gap = 700/16 = 43.75: inexact accumulation
        let horizon = 10_000.0;
        let p = BasicScrub::new(interval, 16);
        let predicted = p.slot_times_within(horizon);
        let mut mem = ctx_mem();
        let mut engine = ScrubEngine::new(Box::new(BasicScrub::new(interval, 16)));
        let mut actual = Vec::new();
        while engine.next_slot() <= SimTime::from_secs(horizon) {
            actual.push(engine.next_slot().secs());
            engine.step(&mut mem);
        }
        assert_eq!(predicted, actual, "slot schedule diverged from engine");
        assert_eq!(p.expected_probes_within(horizon), actual.len() as u64);
    }

    #[test]
    fn writes_back_on_any_error() {
        let mem = ctx_mem();
        let mut p = BasicScrub::new(160.0, 16);
        let ctx = ScrubContext {
            now: SimTime::ZERO,
            mem: &mem,
        };
        let clean = AccessResult {
            outcome: ClassifyOutcome::Clean,
            persistent_bits: 0,
            new_ue: false,
        };
        let one = AccessResult {
            outcome: ClassifyOutcome::Corrected { bits: 1 },
            persistent_bits: 1,
            new_ue: false,
        };
        assert!(!p.wants_writeback(LineAddr(0), &clean, &ctx));
        assert!(p.wants_writeback(LineAddr(0), &one, &ctx));
    }
}
