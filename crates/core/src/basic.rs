//! The baseline: DRAM-style basic scrub.

use pcm_memsim::{AccessResult, LineAddr, SimTime, SweepRule};

use crate::policy::{BatchPlan, ScrubAction, ScrubContext, ScrubPolicy, SweepCursor};

/// DRAM-heritage scrub: sweep every line once per `interval`, and write
/// back whenever the probe finds *any* error.
///
/// This is the comparison baseline for every headline number in the paper:
/// it neither exploits strong-ECC headroom (every single-bit error triggers
/// a full write-back) nor line age (freshly written lines are probed as
/// eagerly as week-old ones).
///
/// # Examples
///
/// ```
/// use scrub_core::BasicScrub;
/// let p = BasicScrub::new(900.0, 65_536);
/// assert_eq!(p.interval_s(), 900.0);
/// ```
#[derive(Debug, Clone)]
pub struct BasicScrub {
    interval_s: f64,
    num_lines: u32,
    cursor: SweepCursor,
}

impl BasicScrub {
    /// Creates a basic scrubber sweeping `num_lines` once per
    /// `interval_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s` is not positive or `num_lines` is zero.
    pub fn new(interval_s: f64, num_lines: u32) -> Self {
        assert!(interval_s > 0.0, "scrub interval must be positive");
        assert!(num_lines > 0, "need at least one line");
        Self {
            interval_s,
            num_lines,
            cursor: SweepCursor::new(),
        }
    }

    /// The full-sweep interval.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }
}

impl ScrubPolicy for BasicScrub {
    fn name(&self) -> &str {
        "basic"
    }

    fn probe_gap_s(&self, _ctx: &ScrubContext<'_>) -> f64 {
        self.interval_s / self.num_lines as f64
    }

    fn next_action(&mut self, _ctx: &ScrubContext<'_>) -> ScrubAction {
        let (addr, _) = self.cursor.advance(self.num_lines);
        ScrubAction::Probe(addr)
    }

    fn wants_writeback(
        &mut self,
        _addr: LineAddr,
        result: &AccessResult,
        _ctx: &ScrubContext<'_>,
    ) -> bool {
        // Any detected error -> immediate corrective write.
        !matches!(result.outcome, pcm_ecc::ClassifyOutcome::Clean)
    }

    fn on_demand_write(&mut self, _addr: LineAddr, _now: SimTime) {}

    fn plan_batch(&mut self, slots: u64) -> Option<BatchPlan> {
        Some(BatchPlan {
            first: self.cursor.advance_by(slots, self.num_lines),
            min_age_s: 0.0,
            rule: SweepRule::AnyError,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_ecc::{ClassifyOutcome, CodeSpec};
    use pcm_memsim::{MemGeometry, Memory};
    use pcm_model::DeviceConfig;

    fn ctx_mem() -> Memory {
        Memory::new(
            MemGeometry::new(16, 2),
            DeviceConfig::default(),
            CodeSpec::secded_line(),
            1,
        )
    }

    #[test]
    fn sweeps_in_physical_order() {
        let mem = ctx_mem();
        let mut p = BasicScrub::new(160.0, 16);
        let ctx = ScrubContext {
            now: SimTime::ZERO,
            mem: &mem,
        };
        for i in 0..16 {
            assert_eq!(p.next_action(&ctx), ScrubAction::Probe(LineAddr(i)));
        }
        assert_eq!(p.next_action(&ctx), ScrubAction::Probe(LineAddr(0)));
    }

    #[test]
    fn gap_is_interval_over_lines() {
        let mem = ctx_mem();
        let p = BasicScrub::new(160.0, 16);
        let ctx = ScrubContext {
            now: SimTime::ZERO,
            mem: &mem,
        };
        assert!((p.probe_gap_s(&ctx) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn writes_back_on_any_error() {
        let mem = ctx_mem();
        let mut p = BasicScrub::new(160.0, 16);
        let ctx = ScrubContext {
            now: SimTime::ZERO,
            mem: &mem,
        };
        let clean = AccessResult {
            outcome: ClassifyOutcome::Clean,
            persistent_bits: 0,
            new_ue: false,
        };
        let one = AccessResult {
            outcome: ClassifyOutcome::Corrected { bits: 1 },
            persistent_bits: 1,
            new_ue: false,
        };
        assert!(!p.wants_writeback(LineAddr(0), &clean, &ctx));
        assert!(p.wants_writeback(LineAddr(0), &one, &ctx));
    }
}
