//! Declarative policy configuration, so experiments can enumerate
//! mechanisms as data.

use crate::adaptive::AdaptiveScrub;
use crate::age_aware::AgeAwareScrub;
use crate::basic::BasicScrub;
use crate::combined::CombinedScrub;
use crate::policy::ScrubPolicy;
use crate::profiled::{ProfileParams, ProfiledScrub};
use crate::threshold::ThresholdScrub;
use crate::tour::{TourBudget, TourScrub};

/// A scrub mechanism plus its parameters, as plain data.
///
/// # Examples
///
/// ```
/// use scrub_core::PolicyKind;
/// let kind = PolicyKind::combined_default(900.0);
/// let policy = kind.build(65_536, 8, 0).expect("combined scrubs");
/// assert_eq!(policy.name(), "combined");
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum PolicyKind {
    /// No scrubbing at all (motivation experiments).
    None,
    /// DRAM-style: sweep at `interval_s`, write back on any error.
    Basic {
        /// Full-sweep interval (seconds).
        interval_s: f64,
    },
    /// Lazy write-back at `theta` accumulated errors.
    Threshold {
        /// Full-sweep interval (seconds).
        interval_s: f64,
        /// Write-back threshold (bit errors).
        theta: u32,
    },
    /// Threshold plus skipping of lines younger than `min_age_s`.
    AgeAware {
        /// Full-sweep interval (seconds).
        interval_s: f64,
        /// Write-back threshold (bit errors).
        theta: u32,
        /// Minimum line age worth probing (seconds).
        min_age_s: f64,
    },
    /// Threshold plus per-region AIMD pacing.
    Adaptive {
        /// Base full-sweep interval (seconds).
        interval_s: f64,
        /// Write-back threshold (bit errors).
        theta: u32,
        /// Number of independently paced regions.
        regions: u32,
    },
    /// Feedback controller servoing the sweep interval onto a UE budget
    /// (extension mechanism).
    Budget {
        /// Initial sweep interval (seconds).
        interval_s: f64,
        /// Write-back threshold (bit errors).
        theta: u32,
        /// Target uncorrectable errors per GiB-day.
        target_ue_per_gib_day: f64,
        /// Controller adjustment window (seconds).
        window_s: f64,
    },
    /// IOPS-budgeted tour with randomized per-bank origins: scrub shares
    /// a token bucket with demand traffic, with an anti-starvation boost
    /// bounding every tour at `num_lines * (max_defer + 1)` slots
    /// (extension mechanism; see `pcm_analysis::modelcheck`).
    Tour {
        /// Unthrottled tour period (seconds); sets the slot cadence.
        interval_s: f64,
        /// Write-back threshold (bit errors).
        theta: u32,
        /// Token-bucket refill rate (IOPS shared with demand traffic).
        iops: f64,
        /// Token-bucket capacity (burst allowance).
        burst: f64,
        /// Throttled slots tolerated before a probe is forced.
        max_defer: u32,
    },
    /// Profiling-guided budgeted tour: a bounded per-line risk table
    /// accumulated from probe syndromes steers a hot-line interleave,
    /// quiet-line probe stretching, and a lazy-plus write-back threshold
    /// (extension mechanism; see [`crate::ProfiledScrub`]).
    Profiled {
        /// Unthrottled tour period (seconds); sets the slot cadence.
        interval_s: f64,
        /// Write-back threshold for profiled lines (quiet lines pay at
        /// `theta + 1`).
        theta: u32,
        /// Token-bucket refill rate (IOPS shared with demand traffic).
        iops: f64,
        /// Token-bucket capacity (burst allowance).
        burst: f64,
        /// Throttled slots tolerated before a probe is forced.
        max_defer: u32,
        /// Risk-table capacity (entries).
        capacity: u32,
        /// Every `hot_stride`-th granted slot probes a hot line.
        hot_stride: u32,
        /// Quiet lines are probed on every `stretch`-th tour only.
        stretch: u32,
        /// Score at which a line joins the hot interleave.
        risk: u32,
    },
    /// Everything together (the paper's proposed mechanism).
    Combined {
        /// Base full-sweep interval (seconds).
        interval_s: f64,
        /// Write-back threshold (bit errors).
        theta: u32,
        /// Number of independently paced regions.
        regions: u32,
        /// Minimum line age worth probing (seconds).
        min_age_s: f64,
    },
}

impl PolicyKind {
    /// The evaluation's default combined configuration for a given base
    /// interval: θ=4 (BCH-6 with a two-error guard band), 64 regions, age filter at
    /// two-thirds of the sweep interval.
    pub fn combined_default(interval_s: f64) -> Self {
        PolicyKind::Combined {
            interval_s,
            theta: 4,
            regions: 64,
            min_age_s: interval_s * 2.0 / 3.0,
        }
    }

    /// The evaluation's default profiled configuration for a given base
    /// interval: the combined scheme's θ=4, an effectively unthrottled
    /// bucket (standalone runs; fleet shards pass a real budget), and the
    /// default profiler knobs ([`ProfileParams::default`]).
    pub fn profiled_default(interval_s: f64) -> Self {
        let p = ProfileParams::default();
        PolicyKind::Profiled {
            interval_s,
            theta: 4,
            iops: 1e9,
            burst: 64.0,
            max_defer: 8,
            capacity: p.capacity,
            hot_stride: p.hot_stride,
            stretch: p.stretch,
            risk: p.risk,
        }
    }

    /// Instantiates the policy for a memory of `num_lines` lines across
    /// `banks` banks; `None` yields no policy. `seed` feeds policies with
    /// randomized-but-deterministic structure (tour origins); the other
    /// kinds ignore it.
    pub fn build(&self, num_lines: u32, banks: u32, seed: u64) -> Option<Box<dyn ScrubPolicy>> {
        let _ = (banks, seed);
        match *self {
            PolicyKind::None => None,
            PolicyKind::Basic { interval_s } => {
                Some(Box::new(BasicScrub::new(interval_s, num_lines)))
            }
            PolicyKind::Threshold { interval_s, theta } => {
                Some(Box::new(ThresholdScrub::new(interval_s, num_lines, theta)))
            }
            PolicyKind::AgeAware {
                interval_s,
                theta,
                min_age_s,
            } => Some(Box::new(AgeAwareScrub::new(
                interval_s, num_lines, theta, min_age_s,
            ))),
            PolicyKind::Adaptive {
                interval_s,
                theta,
                regions,
            } => Some(Box::new(AdaptiveScrub::new(
                interval_s, num_lines, theta, regions,
            ))),
            PolicyKind::Budget {
                interval_s,
                theta,
                target_ue_per_gib_day,
                window_s,
            } => Some(Box::new(crate::budget::BudgetScrub::new(
                interval_s,
                num_lines,
                theta,
                target_ue_per_gib_day,
                window_s,
            ))),
            PolicyKind::Tour {
                interval_s,
                theta,
                iops,
                burst,
                max_defer,
            } => Some(Box::new(TourScrub::new(
                interval_s,
                num_lines,
                banks,
                theta,
                TourBudget {
                    iops,
                    burst,
                    max_defer,
                },
                seed,
            ))),
            PolicyKind::Profiled {
                interval_s,
                theta,
                iops,
                burst,
                max_defer,
                capacity,
                hot_stride,
                stretch,
                risk,
            } => Some(Box::new(ProfiledScrub::new(
                interval_s,
                num_lines,
                banks,
                theta,
                TourBudget {
                    iops,
                    burst,
                    max_defer,
                },
                ProfileParams {
                    capacity,
                    hot_stride,
                    stretch,
                    risk,
                },
                seed,
            ))),
            PolicyKind::Combined {
                interval_s,
                theta,
                regions,
                min_age_s,
            } => Some(Box::new(CombinedScrub::new(
                interval_s, num_lines, theta, regions, min_age_s,
            ))),
        }
    }

    /// Human-readable label with key parameters, for report rows.
    pub fn label(&self) -> String {
        match self {
            PolicyKind::None => "none".to_string(),
            PolicyKind::Basic { interval_s } => format!("basic(i={interval_s}s)"),
            PolicyKind::Threshold { interval_s, theta } => {
                format!("threshold(i={interval_s}s,th={theta})")
            }
            PolicyKind::AgeAware {
                interval_s,
                theta,
                min_age_s,
            } => format!("age-aware(i={interval_s}s,th={theta},age={min_age_s}s)"),
            PolicyKind::Adaptive {
                interval_s,
                theta,
                regions,
            } => format!("adaptive(i={interval_s}s,th={theta},r={regions})"),
            PolicyKind::Budget {
                interval_s,
                theta,
                target_ue_per_gib_day,
                window_s,
            } => format!(
                "budget(i={interval_s}s,th={theta},target={target_ue_per_gib_day}/GiB-day,w={window_s}s)"
            ),
            PolicyKind::Tour {
                interval_s,
                theta,
                iops,
                burst,
                max_defer,
            } => format!(
                "tour(i={interval_s}s,th={theta},iops={iops},burst={burst},defer={max_defer})"
            ),
            PolicyKind::Profiled {
                interval_s,
                theta,
                iops,
                burst,
                max_defer,
                capacity,
                hot_stride,
                stretch,
                risk,
            } => format!(
                "profiled(i={interval_s}s,th={theta},iops={iops},burst={burst},defer={max_defer},cap={capacity},stride={hot_stride},stretch={stretch},risk={risk})"
            ),
            PolicyKind::Combined {
                interval_s,
                theta,
                regions,
                min_age_s,
            } => format!("combined(i={interval_s}s,th={theta},r={regions},age={min_age_s}s)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_kinds() {
        let kinds = [
            PolicyKind::Basic { interval_s: 900.0 },
            PolicyKind::Threshold {
                interval_s: 900.0,
                theta: 3,
            },
            PolicyKind::AgeAware {
                interval_s: 900.0,
                theta: 3,
                min_age_s: 100.0,
            },
            PolicyKind::Adaptive {
                interval_s: 900.0,
                theta: 3,
                regions: 8,
            },
            PolicyKind::Budget {
                interval_s: 900.0,
                theta: 3,
                target_ue_per_gib_day: 10.0,
                window_s: 3600.0,
            },
            PolicyKind::Tour {
                interval_s: 900.0,
                theta: 3,
                iops: 100.0,
                burst: 16.0,
                max_defer: 8,
            },
            PolicyKind::profiled_default(900.0),
            PolicyKind::combined_default(900.0),
        ];
        let names = [
            "basic",
            "threshold",
            "age-aware",
            "adaptive",
            "budget",
            "tour",
            "profiled",
            "combined",
        ];
        for (k, want) in kinds.iter().zip(names) {
            let p = k.build(1024, 8, 7).expect("scrubbing kind");
            assert_eq!(p.name(), want);
            assert!(!k.label().is_empty());
        }
    }

    #[test]
    fn none_builds_nothing() {
        assert!(PolicyKind::None.build(1024, 8, 0).is_none());
        assert_eq!(PolicyKind::None.label(), "none");
    }
}
