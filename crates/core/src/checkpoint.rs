//! Split-horizon driving: run a simulation as a chain of
//! checkpoint/resume segments and prove it lands exactly where a
//! continuous run would.
//!
//! The simulator's determinism contract (randomness keyed to banks, float
//! accumulation in fixed bank order) extends across snapshot boundaries:
//! [`run_split`] produces a report bit-identical to [`Simulation::run`]
//! for any checkpoint cadence.

use scrub_checkpoint::CheckpointError;

use crate::report::SimReport;
use crate::sim::{SimConfig, Simulation};

/// What a segmented run produced, beyond the report itself.
#[derive(Debug, Clone, PartialEq)]
pub struct SplitRunOutcome {
    /// The final report — bit-identical to a continuous run's.
    pub report: SimReport,
    /// Number of segments executed (checkpoints taken + 1).
    pub segments: u32,
    /// Sealed size in bytes of every snapshot taken, in order.
    pub snapshot_bytes: Vec<usize>,
}

/// Runs `config` to its horizon in segments of `checkpoint_every_s`
/// simulated seconds, serializing the full simulator state at each
/// boundary and resuming from the bytes — exercising the same
/// checkpoint/resume path an operator uses to split a long run across
/// process invocations.
///
/// Segment boundaries fall at multiples of `checkpoint_every_s`; the last
/// segment runs to the horizon. A cadence at or beyond the horizon
/// degenerates to a single continuous segment with no snapshots.
///
/// # Errors
///
/// Propagates any [`CheckpointError`] from serializing or re-opening a
/// snapshot (e.g. a custom trace source that does not support resume).
///
/// # Panics
///
/// Panics if `checkpoint_every_s` is not positive.
pub fn run_split(
    config: SimConfig,
    checkpoint_every_s: f64,
) -> Result<SplitRunOutcome, CheckpointError> {
    assert!(
        checkpoint_every_s > 0.0,
        "checkpoint cadence must be positive"
    );
    let horizon_s = config.horizon_s;
    let mut sim = Simulation::new(config);
    let mut segments = 1u32;
    let mut snapshot_bytes = Vec::new();
    loop {
        // Smallest cadence multiple strictly ahead of the clock; f64
        // division keeps boundaries exact for the cadences experiments
        // use (the final segment is clamped to the horizon regardless).
        let k = (sim.clock_s() / checkpoint_every_s).floor() as u64 + 1;
        let stop_s = k as f64 * checkpoint_every_s;
        if stop_s >= horizon_s {
            break;
        }
        sim.run_to(stop_s);
        let bytes = sim.checkpoint()?;
        snapshot_bytes.push(bytes.len());
        let config = sim.config().clone();
        sim = Simulation::resume(config, &bytes)?;
        segments += 1;
    }
    Ok(SplitRunOutcome {
        report: sim.finish(),
        segments,
        snapshot_bytes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PolicyKind;
    use crate::sim::DemandTraffic;
    use pcm_ecc::CodeSpec;
    use pcm_workloads::WorkloadId;

    fn config(policy: PolicyKind) -> SimConfig {
        let mut b = SimConfig::builder();
        b.num_lines(1024)
            .policy(policy)
            .code(CodeSpec::bch_line(6))
            .traffic(DemandTraffic::suite(WorkloadId::KvCache))
            .horizon_s(3.0 * 3600.0)
            .seed(91)
            .repair(pcm_memsim::RepairConfig::default())
            .fault_campaign(
                "seed=9;stuck=lines:24,cells:2;seu=lines:256,count:2,window:3600"
                    .parse()
                    .expect("valid spec"),
            );
        b.build()
    }

    #[test]
    fn split_run_matches_continuous_for_every_policy() {
        let policies = [
            PolicyKind::Basic { interval_s: 900.0 },
            PolicyKind::Threshold {
                interval_s: 900.0,
                theta: 4,
            },
            PolicyKind::AgeAware {
                interval_s: 900.0,
                theta: 4,
                min_age_s: 600.0,
            },
            PolicyKind::Budget {
                interval_s: 900.0,
                theta: 4,
                target_ue_per_gib_day: 1e-2,
                window_s: 1800.0,
            },
            PolicyKind::Adaptive {
                interval_s: 900.0,
                theta: 4,
                regions: 16,
            },
            PolicyKind::combined_default(900.0),
        ];
        for policy in policies {
            let continuous = Simulation::new(config(policy.clone())).run();
            // 3 h horizon, 40 min cadence: 4 snapshots, one of which lands
            // mid-sweep (sweeps take 15 min and start at multiples of it).
            let split = run_split(config(policy.clone()), 2400.0).expect("split run");
            assert_eq!(split.segments, 5, "{policy:?}");
            assert_eq!(split.report, continuous, "{policy:?}");
            assert!(split.snapshot_bytes.iter().all(|&b| b > 0));
        }
    }

    #[test]
    fn cadence_beyond_horizon_is_a_single_segment() {
        let continuous = Simulation::new(config(PolicyKind::Basic { interval_s: 900.0 })).run();
        let split =
            run_split(config(PolicyKind::Basic { interval_s: 900.0 }), 1e9).expect("split run");
        assert_eq!(split.segments, 1);
        assert!(split.snapshot_bytes.is_empty());
        assert_eq!(split.report, continuous);
    }

    #[test]
    fn double_resume_from_same_bytes_is_idempotent() {
        let mut sim = Simulation::new(config(PolicyKind::combined_default(900.0)));
        sim.run_to(4000.0);
        let bytes = sim.checkpoint().expect("checkpoint");
        let cfg = sim.config().clone();
        // Resume twice from the same immutable bytes — the campaign
        // re-injection in `Simulation::new` must be fully overwritten so
        // a retried job replays identical randomness.
        let a = Simulation::resume(cfg.clone(), &bytes)
            .expect("resume")
            .finish();
        let b = Simulation::resume(cfg, &bytes).expect("resume").finish();
        assert_eq!(a, b);
    }

    #[test]
    fn resume_rejects_mismatched_config() {
        let mut sim = Simulation::new(config(PolicyKind::combined_default(900.0)));
        sim.run_to(1800.0);
        let bytes = sim.checkpoint().expect("checkpoint");
        let mut other = config(PolicyKind::combined_default(900.0));
        other.seed ^= 1;
        let err = Simulation::resume(other, &bytes).expect_err("must reject");
        assert!(matches!(err, CheckpointError::Malformed(_)), "{err:?}");
    }

    #[test]
    fn tripwire_snapshot_differs_but_decodes() {
        let mut sim = Simulation::new(config(PolicyKind::combined_default(900.0)));
        sim.run_to(1800.0);
        let good = sim.checkpoint().expect("checkpoint");
        let bad = sim.checkpoint_omitting_bank0_rng().expect("checkpoint");
        assert_eq!(good.len(), bad.len());
        assert_ne!(good, bad);
        // The sabotaged snapshot still opens — only the differential
        // harness can catch it.
        let cfg = sim.config().clone();
        Simulation::resume(cfg, &bad).expect("structurally valid");
    }
}
