//! The scrub-policy abstraction every mechanism implements.

use std::fmt;

use pcm_memsim::{AccessResult, LineAddr, Memory, SimTime, SweepRule};
use scrub_checkpoint::{CheckpointError, Reader, Writer};

/// Read-only context a policy sees when deciding its next move.
#[derive(Debug)]
pub struct ScrubContext<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The memory being scrubbed (for line ages, geometry, code).
    pub mem: &'a Memory,
}

/// A policy's description of a whole run of upcoming slots, produced by
/// [`ScrubPolicy::plan_batch`]. Only policies whose slot decisions are
/// *local* — fixed cadence, cursor sweep, per-line probe/write-back rules
/// with no cross-line feedback — can express themselves this way; those
/// batches execute bank-parallel via [`Memory::scrub_sweep`] with results
/// bit-identical to the slot-at-a-time path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchPlan {
    /// Line targeted by the first slot of the batch; subsequent slots
    /// advance the sweep cursor by one each, wrapping.
    pub first: LineAddr,
    /// Minimum data age for a probe (0 = probe unconditionally).
    pub min_age_s: f64,
    /// Per-line write-back rule for correctable lines.
    pub rule: SweepRule,
}

/// What the policy wants to do with its next scrub slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubAction {
    /// Probe this line (read + syndrome check).
    Probe(LineAddr),
    /// Spend the slot idle (e.g. every candidate line is too young to be
    /// worth probing).
    Idle,
}

/// A scrub mechanism: decides *which* lines to probe *when*, and whether a
/// probed line earns an (expensive, wear-inducing) corrective write-back.
///
/// The [`crate::ScrubEngine`] drives implementations one slot at a time:
/// `probe_gap_s` sets the pacing, `next_action` picks the victim,
/// `on_probe` decides the write-back, and `on_demand_write` lets policies
/// track drift-clock resets caused by program writes.
///
/// `Send` is a supertrait so whole simulations (which own their policy)
/// can be fanned out across the `scrub-exec` pool, one fleet shard per
/// worker.
pub trait ScrubPolicy: fmt::Debug + Send {
    /// Short name for reports, e.g. `"basic"`.
    fn name(&self) -> &str;

    /// Seconds between scrub slots *right now* (adaptive policies change
    /// this over time).
    fn probe_gap_s(&self, ctx: &ScrubContext<'_>) -> f64;

    /// Chooses the next slot's action.
    fn next_action(&mut self, ctx: &ScrubContext<'_>) -> ScrubAction;

    /// Inspects a probe result; `true` requests a corrective write-back.
    /// Uncorrectable lines are always written back by the engine (data is
    /// restored from higher-level redundancy) regardless of this answer.
    fn wants_writeback(
        &mut self,
        addr: LineAddr,
        result: &AccessResult,
        ctx: &ScrubContext<'_>,
    ) -> bool;

    /// Notification that a demand write refreshed `addr` at `now`.
    fn on_demand_write(&mut self, _addr: LineAddr, _now: SimTime) {}

    /// Notification that a demand read touched `addr` at `now`. Budgeted
    /// policies use this to charge demand traffic against the shared IOPS
    /// token bucket; the default is a no-op.
    fn on_demand_read(&mut self, _addr: LineAddr, _now: SimTime) {}

    /// Commits to the next `slots` slots as one batch, advancing internal
    /// cursors past them, and describes the batch for parallel execution.
    /// Policies whose decisions depend on cross-line state (adaptive
    /// region scheduling, energy budgets) return `None` — the default —
    /// and keep the sequential slot path.
    fn plan_batch(&mut self, _slots: u64) -> Option<BatchPlan> {
        None
    }

    /// Reports how many slots of the last planned batch were spent idle
    /// (age-skipped), for policies that track skip counters.
    fn on_batch_idle(&mut self, _skipped: u64) {}

    /// Idle fast-forward bound for the event engine: `Some(t)` promises
    /// that every slot strictly before `t` would return
    /// [`ScrubAction::Idle`] from [`ScrubPolicy::next_action`] *without
    /// mutating any policy state*, regardless of interleaved demand
    /// traffic — so the engine may skip those slots in O(1), counting
    /// them idle. `None` (the default) makes no promise and keeps
    /// slot-at-a-time stepping.
    fn idle_until(&self, _now: SimTime) -> Option<SimTime> {
        None
    }

    /// Serializes the policy's *mutable* state (cursors, feedback windows,
    /// region schedules) for checkpointing. Configuration parameters are
    /// not written: a resume rebuilds the policy from the run config and
    /// then overlays this state via [`ScrubPolicy::load_state`].
    fn save_state(&self, w: &mut Writer);

    /// Restores state captured by [`ScrubPolicy::save_state`] onto a
    /// freshly built policy with identical configuration. Implementations
    /// validate ranges (cursor within the line space, multipliers within
    /// their bounds) and return a typed error instead of panicking.
    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError>;
}

/// Round-robin sweep cursor shared by the concrete policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepCursor {
    next: u32,
}

impl SweepCursor {
    /// Starts a sweep at line 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current line and advances, wrapping at `num_lines`.
    /// Also reports whether this call completed a full sweep.
    pub fn advance(&mut self, num_lines: u32) -> (LineAddr, bool) {
        let addr = LineAddr(self.next);
        self.next = (self.next + 1) % num_lines;
        (addr, self.next == 0)
    }

    /// Returns the current line and advances by `n` slots at once (batch
    /// commit), wrapping at `num_lines`.
    pub fn advance_by(&mut self, n: u64, num_lines: u32) -> LineAddr {
        let addr = LineAddr(self.next);
        self.next = ((self.next as u64 + n) % num_lines as u64) as u32;
        addr
    }

    /// The line the next slot will probe (for checkpointing).
    pub fn position(&self) -> u32 {
        self.next
    }

    /// Restores a position captured by [`SweepCursor::position`],
    /// rejecting values outside the sweep's line space.
    pub fn set_position(&mut self, next: u32, num_lines: u32) -> Result<(), CheckpointError> {
        if next >= num_lines {
            return Err(CheckpointError::Malformed(format!(
                "sweep cursor {next} out of range ({num_lines} lines)"
            )));
        }
        self.next = next;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_wraps_and_flags_sweep_end() {
        let mut c = SweepCursor::new();
        let (a0, end0) = c.advance(3);
        assert_eq!(a0, LineAddr(0));
        assert!(!end0);
        let (_, end1) = c.advance(3);
        assert!(!end1);
        let (a2, end2) = c.advance(3);
        assert_eq!(a2, LineAddr(2));
        assert!(end2);
        let (a3, _) = c.advance(3);
        assert_eq!(a3, LineAddr(0));
    }

    #[test]
    fn advance_by_matches_repeated_advance() {
        let mut one = SweepCursor::new();
        let mut batch = SweepCursor::new();
        let first = batch.advance_by(7, 5);
        assert_eq!(first, LineAddr(0));
        for _ in 0..7 {
            one.advance(5);
        }
        assert_eq!(one, batch);
        // A second batch starts where the first left off: 7 mod 5 = 2.
        assert_eq!(batch.advance_by(1, 5), LineAddr(2));
    }
}
