//! The scrub-policy abstraction every mechanism implements.

use std::fmt;

use pcm_memsim::{AccessResult, LineAddr, Memory, SimTime};

/// Read-only context a policy sees when deciding its next move.
#[derive(Debug)]
pub struct ScrubContext<'a> {
    /// Current simulation time.
    pub now: SimTime,
    /// The memory being scrubbed (for line ages, geometry, code).
    pub mem: &'a Memory,
}

/// What the policy wants to do with its next scrub slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScrubAction {
    /// Probe this line (read + syndrome check).
    Probe(LineAddr),
    /// Spend the slot idle (e.g. every candidate line is too young to be
    /// worth probing).
    Idle,
}

/// A scrub mechanism: decides *which* lines to probe *when*, and whether a
/// probed line earns an (expensive, wear-inducing) corrective write-back.
///
/// The [`crate::ScrubEngine`] drives implementations one slot at a time:
/// `probe_gap_s` sets the pacing, `next_action` picks the victim,
/// `on_probe` decides the write-back, and `on_demand_write` lets policies
/// track drift-clock resets caused by program writes.
pub trait ScrubPolicy: fmt::Debug {
    /// Short name for reports, e.g. `"basic"`.
    fn name(&self) -> &str;

    /// Seconds between scrub slots *right now* (adaptive policies change
    /// this over time).
    fn probe_gap_s(&self, ctx: &ScrubContext<'_>) -> f64;

    /// Chooses the next slot's action.
    fn next_action(&mut self, ctx: &ScrubContext<'_>) -> ScrubAction;

    /// Inspects a probe result; `true` requests a corrective write-back.
    /// Uncorrectable lines are always written back by the engine (data is
    /// restored from higher-level redundancy) regardless of this answer.
    fn wants_writeback(
        &mut self,
        addr: LineAddr,
        result: &AccessResult,
        ctx: &ScrubContext<'_>,
    ) -> bool;

    /// Notification that a demand write refreshed `addr` at `now`.
    fn on_demand_write(&mut self, _addr: LineAddr, _now: SimTime) {}
}

/// Round-robin sweep cursor shared by the concrete policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SweepCursor {
    next: u32,
}

impl SweepCursor {
    /// Starts a sweep at line 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the current line and advances, wrapping at `num_lines`.
    /// Also reports whether this call completed a full sweep.
    pub fn advance(&mut self, num_lines: u32) -> (LineAddr, bool) {
        let addr = LineAddr(self.next);
        self.next = (self.next + 1) % num_lines;
        (addr, self.next == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cursor_wraps_and_flags_sweep_end() {
        let mut c = SweepCursor::new();
        let (a0, end0) = c.advance(3);
        assert_eq!(a0, LineAddr(0));
        assert!(!end0);
        let (_, end1) = c.advance(3);
        assert!(!end1);
        let (a2, end2) = c.advance(3);
        assert_eq!(a2, LineAddr(2));
        assert!(end2);
        let (a3, _) = c.advance(3);
        assert_eq!(a3, LineAddr(0));
    }
}
