//! Integer tick clock for the engine's slot grid.
//!
//! The engine used to schedule slots by accumulated f64 addition
//! (`t += gap`), which drifts by one ulp per slot: harmless over a
//! 12-hour horizon, but a year-scale horizon executes ~10^8 slots and
//! the accumulated error becomes visible in probe counts near the
//! horizon. Slots are now scheduled on an integer nanosecond grid —
//! `tick_{k+1} = tick_k + gap_ticks` is exact, so slot `k` lands at
//! exactly `k · gap_ticks` nanoseconds for a constant-gap policy, at
//! any horizon.
//!
//! Converting a tick back to [`SimTime`] (the f64-seconds currency of
//! the memory model) rounds once, to the nearest representable f64:
//! below 2^53 ns (~104 days) the conversion is exact; beyond that it
//! rounds to within one ulp (~4 ns at year scale) *per conversion*,
//! never accumulating. [`MAX_TICK`] caps horizons so every tick
//! computation stays inside u64 with headroom for one more gap.

use pcm_memsim::SimTime;

/// Ticks per simulated second: a 1 ns grid.
pub const TICKS_PER_SEC: f64 = 1e9;

/// Upper bound on any slot tick the engine will schedule (~146 years).
/// Leaves a factor-of-4 margin below `u64::MAX` so `tick + gap_ticks`
/// can never overflow even for a maximal gap.
pub const MAX_TICK: u64 = 1 << 62;

/// Converts a non-negative, finite number of seconds to ticks
/// (rounding to the nearest nanosecond).
///
/// # Panics
///
/// Panics if `s` is NaN, infinite, negative, or maps beyond
/// [`MAX_TICK`].
///
/// # Examples
///
/// ```
/// use scrub_core::tick;
/// assert_eq!(tick::ticks_from_secs(1.5), 1_500_000_000);
/// assert_eq!(tick::ticks_from_secs(0.0), 0);
/// ```
pub fn ticks_from_secs(s: f64) -> u64 {
    assert!(s.is_finite(), "time must be finite, got {s}");
    assert!(s >= 0.0, "time must be non-negative, got {s}");
    let t = (s * TICKS_PER_SEC).round();
    assert!(
        t <= MAX_TICK as f64,
        "time {s} s overflows the tick clock (max ~{:.0} years)",
        MAX_TICK as f64 / TICKS_PER_SEC / (365.25 * 86_400.0)
    );
    t as u64
}

/// Converts ticks back to seconds.
pub fn secs_from_ticks(t: u64) -> f64 {
    t as f64 / TICKS_PER_SEC
}

/// Converts ticks to a [`SimTime`].
pub fn time_from_ticks(t: u64) -> SimTime {
    SimTime::from_secs(secs_from_ticks(t))
}

/// Converts a policy probe gap to ticks, clamping to at least one tick
/// so the slot grid always advances.
///
/// # Panics
///
/// Panics if the gap is not a positive finite number of seconds, or
/// exceeds [`MAX_TICK`].
pub fn gap_to_ticks(gap_s: f64) -> u64 {
    assert!(
        gap_s.is_finite() && gap_s > 0.0,
        "policy returned non-positive probe gap"
    );
    ticks_from_secs(gap_s).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_exact_grid() {
        for s in [0.0, 1.0, 0.105, 43.75, 86_400.0] {
            let t = ticks_from_secs(s);
            assert!((secs_from_ticks(t) - s).abs() < 1e-9, "{s}");
        }
    }

    #[test]
    fn sequential_adds_equal_multiplication() {
        // The property f64 accumulation lacks: k steps of `+= gap`
        // land exactly on k * gap.
        let gap = gap_to_ticks(700.0 / 16.0); // 43.75 s: inexact in f64
        let mut t = 0u64;
        for k in 0..1_000_000u64 {
            assert_eq!(t, k * gap);
            t += gap;
        }
    }

    #[test]
    fn tiny_gap_clamps_to_one_tick() {
        assert_eq!(gap_to_ticks(1e-12), 1);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan_seconds() {
        ticks_from_secs(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "overflows the tick clock")]
    fn rejects_overflowing_seconds() {
        ticks_from_secs(1e12);
    }

    #[test]
    #[should_panic(expected = "non-positive probe gap")]
    fn rejects_zero_gap() {
        gap_to_ticks(0.0);
    }
}
