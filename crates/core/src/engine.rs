//! The scrub engine: drives a policy against a memory, one slot at a time.

use rand::Rng;

use pcm_memsim::{LineAddr, Memory, SimTime};

use crate::policy::{ScrubAction, ScrubContext, ScrubPolicy};

/// Engine-side counters (memory-side counters live in
/// [`pcm_memsim::MemStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Slots where the policy chose to probe.
    pub probe_slots: u64,
    /// Slots the policy left idle (age skips, no region due).
    pub idle_slots: u64,
    /// Write-backs requested by the policy (excludes forced UE repairs).
    pub policy_writebacks: u64,
    /// Write-backs forced by uncorrectable outcomes.
    pub forced_writebacks: u64,
}

/// Drives a [`ScrubPolicy`] against a [`Memory`].
///
/// # Examples
///
/// ```
/// use scrub_core::{BasicScrub, ScrubEngine};
/// use pcm_memsim::{Memory, MemGeometry, SimTime};
/// use pcm_ecc::CodeSpec;
/// use pcm_model::DeviceConfig;
/// use rand::SeedableRng;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(0);
/// let mut mem = Memory::new(
///     MemGeometry::new(64, 2),
///     DeviceConfig::default(),
///     CodeSpec::secded_line(),
///     &mut rng,
/// );
/// let mut engine = ScrubEngine::new(Box::new(BasicScrub::new(64.0, 64)));
/// while engine.next_slot() <= SimTime::from_secs(128.0) {
///     engine.step(&mut mem, &mut rng);
/// }
/// assert_eq!(mem.stats().scrub_probes, 129); // slots at t=0..=128
/// ```
#[derive(Debug)]
pub struct ScrubEngine {
    policy: Box<dyn ScrubPolicy>,
    next_slot: SimTime,
    stats: EngineStats,
}

impl ScrubEngine {
    /// Wraps a policy; the first slot fires at time zero.
    pub fn new(policy: Box<dyn ScrubPolicy>) -> Self {
        Self {
            policy,
            next_slot: SimTime::ZERO,
            stats: EngineStats::default(),
        }
    }

    /// When the next scrub slot is due.
    pub fn next_slot(&self) -> SimTime {
        self.next_slot
    }

    /// Engine counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The policy being driven.
    pub fn policy(&self) -> &dyn ScrubPolicy {
        self.policy.as_ref()
    }

    /// Forwards a demand-write notification to the policy.
    pub fn notify_demand_write(&mut self, addr: LineAddr, now: SimTime) {
        self.policy.on_demand_write(addr, now);
    }

    /// Executes the slot at [`ScrubEngine::next_slot`] and schedules the
    /// following one.
    pub fn step<R: Rng + ?Sized>(&mut self, mem: &mut Memory, rng: &mut R) {
        let now = self.next_slot;
        let action = {
            let ctx = ScrubContext { now, mem };
            self.policy.next_action(&ctx)
        };
        match action {
            ScrubAction::Probe(addr) => {
                self.stats.probe_slots += 1;
                let result = mem.scrub_probe(addr, now, rng);
                let wants = {
                    let ctx = ScrubContext { now, mem };
                    self.policy.wants_writeback(addr, &result, &ctx)
                };
                if result.outcome.is_uncorrectable() {
                    // Data restored from higher-level redundancy; the line
                    // itself must be rewritten either way.
                    self.stats.forced_writebacks += 1;
                    mem.scrub_writeback(addr, now, rng);
                } else if wants {
                    self.stats.policy_writebacks += 1;
                    mem.scrub_writeback(addr, now, rng);
                }
            }
            ScrubAction::Idle => {
                self.stats.idle_slots += 1;
            }
        }
        let gap = {
            let ctx = ScrubContext { now, mem };
            self.policy.probe_gap_s(&ctx)
        };
        assert!(gap > 0.0, "policy returned non-positive probe gap");
        self.next_slot = now + gap;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::BasicScrub;
    use crate::threshold::ThresholdScrub;
    use pcm_ecc::CodeSpec;
    use pcm_memsim::MemGeometry;
    use pcm_model::DeviceConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn mem(code: CodeSpec, lines: u32, rng: &mut StdRng) -> Memory {
        Memory::new(MemGeometry::new(lines, 2), DeviceConfig::default(), code, rng)
    }

    #[test]
    fn slots_advance_by_gap() {
        let mut rng = StdRng::seed_from_u64(81);
        let mut m = mem(CodeSpec::bch_line(4), 10, &mut rng);
        let mut e = ScrubEngine::new(Box::new(BasicScrub::new(100.0, 10)));
        assert_eq!(e.next_slot(), SimTime::ZERO);
        e.step(&mut m, &mut rng);
        assert!((e.next_slot().secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn basic_engine_scrubs_and_repairs_old_memory() {
        let mut rng = StdRng::seed_from_u64(82);
        let mut m = mem(CodeSpec::secded_line(), 32, &mut rng);
        // A sweep "interval" of 32 weeks makes each slot land a week after
        // the previous one, so every probed line is ancient by its slot.
        let mut e = ScrubEngine::new(Box::new(BasicScrub::new(604_800.0 * 32.0, 32)));
        for _ in 0..32 {
            e.step(&mut m, &mut rng);
        }
        // With a gap of a week per slot, every probed line is ancient.
        assert_eq!(m.stats().scrub_probes, 32);
        assert!(
            m.stats().scrub_writebacks >= 30,
            "stale lines should all need write-back, got {}",
            m.stats().scrub_writebacks
        );
        assert!(e.stats().probe_slots == 32);
    }

    #[test]
    fn threshold_engine_writes_less_than_basic() {
        let run = |policy: Box<dyn ScrubPolicy>, seed: u64| -> (u64, u64) {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = mem(CodeSpec::bch_line(6), 64, &mut rng);
            let mut e = ScrubEngine::new(policy);
            // 20 sweeps at 2h each over 64 lines.
            while e.next_slot() < SimTime::from_secs(40.0 * 3600.0) {
                e.step(&mut m, &mut rng);
            }
            (m.stats().scrub_writebacks, m.stats().scrub_probes)
        };
        let (basic_wb, basic_probes) = run(Box::new(BasicScrub::new(7200.0, 64)), 83);
        let (lazy_wb, lazy_probes) = run(Box::new(ThresholdScrub::new(7200.0, 64, 5)), 83);
        assert_eq!(basic_probes, lazy_probes);
        assert!(
            lazy_wb * 3 < basic_wb.max(3),
            "lazy {lazy_wb} vs basic {basic_wb} write-backs"
        );
    }

    #[test]
    #[should_panic(expected = "non-positive probe gap")]
    fn rejects_bad_gap() {
        #[derive(Debug)]
        struct BadPolicy;
        impl ScrubPolicy for BadPolicy {
            fn name(&self) -> &str {
                "bad"
            }
            fn probe_gap_s(&self, _: &ScrubContext<'_>) -> f64 {
                0.0
            }
            fn next_action(&mut self, _: &ScrubContext<'_>) -> ScrubAction {
                ScrubAction::Idle
            }
            fn wants_writeback(
                &mut self,
                _: LineAddr,
                _: &pcm_memsim::AccessResult,
                _: &ScrubContext<'_>,
            ) -> bool {
                false
            }
        }
        let mut rng = StdRng::seed_from_u64(84);
        let mut m = mem(CodeSpec::bch_line(2), 4, &mut rng);
        let mut e = ScrubEngine::new(Box::new(BadPolicy));
        e.step(&mut m, &mut rng);
    }
}
