//! The scrub engine: drives a policy against a memory — one slot at a
//! time, or whole batches of slots executed bank-parallel when the policy
//! can commit to them in advance.

use pcm_memsim::{LineAddr, Memory, SimTime, SweepPlan};
use scrub_checkpoint::{CheckpointError, Reader, Writer};
use scrub_telemetry as tel;

use crate::policy::{ScrubAction, ScrubContext, ScrubPolicy};
use crate::tick;

/// Upper bound on slots executed per batch, to keep the slot-time scratch
/// vector bounded. Batch boundaries do not affect results (each slot's
/// randomness is keyed to its line's bank stream), so the cap is purely a
/// memory-footprint knob.
const MAX_BATCH_SLOTS: usize = 1 << 16;

/// Engine-side counters (memory-side counters live in
/// [`pcm_memsim::MemStats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EngineStats {
    /// Slots where the policy chose to probe.
    pub probe_slots: u64,
    /// Slots the policy left idle (age skips, no region due).
    pub idle_slots: u64,
    /// Write-backs requested by the policy (excludes forced UE repairs).
    pub policy_writebacks: u64,
    /// Write-backs forced by uncorrectable outcomes.
    pub forced_writebacks: u64,
}

/// Drives a [`ScrubPolicy`] against a [`Memory`].
///
/// # Examples
///
/// ```
/// use scrub_core::{BasicScrub, ScrubEngine};
/// use pcm_memsim::{Memory, MemGeometry, SimTime};
/// use pcm_ecc::CodeSpec;
/// use pcm_model::DeviceConfig;
///
/// let mut mem = Memory::new(
///     MemGeometry::new(64, 2),
///     DeviceConfig::default(),
///     CodeSpec::secded_line(),
///     0,
/// );
/// let mut engine = ScrubEngine::new(Box::new(BasicScrub::new(64.0, 64)));
/// while engine.next_slot() <= SimTime::from_secs(128.0) {
///     engine.step(&mut mem);
/// }
/// assert_eq!(mem.stats().scrub_probes, 129); // slots at t=0..=128
/// ```
#[derive(Debug)]
pub struct ScrubEngine {
    policy: Box<dyn ScrubPolicy>,
    /// Next slot on the integer nanosecond grid (see [`crate::tick`]);
    /// scheduling by tick addition is exact where f64 accumulation
    /// drifts one ulp per slot.
    next_slot_tick: u64,
    stats: EngineStats,
}

impl ScrubEngine {
    /// Wraps a policy; the first slot fires at time zero.
    pub fn new(policy: Box<dyn ScrubPolicy>) -> Self {
        Self {
            policy,
            next_slot_tick: 0,
            stats: EngineStats::default(),
        }
    }

    /// When the next scrub slot is due.
    pub fn next_slot(&self) -> SimTime {
        tick::time_from_ticks(self.next_slot_tick)
    }

    /// The next slot as a raw tick on the engine's nanosecond grid.
    pub fn next_slot_tick(&self) -> u64 {
        self.next_slot_tick
    }

    /// Engine counters.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// The policy being driven.
    pub fn policy(&self) -> &dyn ScrubPolicy {
        self.policy.as_ref()
    }

    /// Forwards a demand-write notification to the policy.
    pub fn notify_demand_write(&mut self, addr: LineAddr, now: SimTime) {
        if tel::enabled() {
            tel::counter_add(tel::Counter::DemandWriteNotifies, 1);
            tel::event(
                now.secs(),
                tel::EventKind::DemandWriteNotify { addr: addr.0 },
            );
        }
        self.policy.on_demand_write(addr, now);
    }

    /// Forwards a demand-read notification to the policy. No telemetry
    /// event is emitted (demand reads are already counted by the memory),
    /// keeping event streams identical for pre-existing policies.
    pub fn notify_demand_read(&mut self, addr: LineAddr, now: SimTime) {
        self.policy.on_demand_read(addr, now);
    }

    /// Executes the slot at [`ScrubEngine::next_slot`] and schedules the
    /// following one.
    pub fn step(&mut self, mem: &mut Memory) {
        let now = self.next_slot();
        let action = {
            let ctx = ScrubContext { now, mem };
            self.policy.next_action(&ctx)
        };
        match action {
            ScrubAction::Probe(addr) => {
                self.stats.probe_slots += 1;
                tel::counter_add(tel::Counter::EngineProbeSlots, 1);
                let result = mem.scrub_probe(addr, now);
                let wants = {
                    let ctx = ScrubContext { now, mem };
                    self.policy.wants_writeback(addr, &result, &ctx)
                };
                let forced = result.outcome.is_uncorrectable();
                if forced {
                    // Data restored from higher-level redundancy; the line
                    // itself must be rewritten either way.
                    self.stats.forced_writebacks += 1;
                    tel::counter_add(tel::Counter::EngineForcedWritebacks, 1);
                    mem.scrub_writeback(addr, now);
                } else if wants {
                    self.stats.policy_writebacks += 1;
                    tel::counter_add(tel::Counter::EnginePolicyWritebacks, 1);
                    mem.scrub_writeback(addr, now);
                }
                if tel::enabled() {
                    tel::event(
                        now.secs(),
                        tel::EventKind::WritebackDecision {
                            addr: addr.0,
                            observed_bits: result.persistent_bits,
                            fired: forced || wants,
                            forced,
                        },
                    );
                }
            }
            ScrubAction::Idle => {
                self.stats.idle_slots += 1;
                tel::counter_add(tel::Counter::EngineIdleSlots, 1);
            }
        }
        let gap = {
            let ctx = ScrubContext { now, mem };
            self.policy.probe_gap_s(&ctx)
        };
        self.next_slot_tick += tick::gap_to_ticks(gap);
    }

    /// Executes every slot from [`ScrubEngine::next_slot`] up to `horizon`
    /// (and strictly before `demand_due`, which takes priority on ties) as
    /// one bank-parallel batch, if the policy supports batch planning.
    ///
    /// Returns `false` — executing nothing — when the policy cannot batch;
    /// the caller falls back to [`ScrubEngine::step`]. When it returns
    /// `true`, the memory, the policy's cursor, and the engine counters are
    /// in exactly the state the equivalent sequence of `step` calls would
    /// have produced, for any `threads` value.
    pub fn step_batch(
        &mut self,
        mem: &mut Memory,
        horizon: SimTime,
        demand_due: Option<SimTime>,
        threads: usize,
    ) -> bool {
        let now = self.next_slot();
        if now > horizon || demand_due.is_some_and(|d| now >= d) {
            return false;
        }
        // Batchable policies have a constant, context-independent gap
        // (interval / num_lines); sample it once.
        let gap = {
            let ctx = ScrubContext { now, mem };
            self.policy.probe_gap_s(&ctx)
        };
        let gap_ticks = tick::gap_to_ticks(gap);
        // Slot times on the same tick grid slot-at-a-time stepping walks,
        // so batch timestamps match `step` bit-for-bit.
        let mut times: Vec<SimTime> = Vec::new();
        let mut tk = self.next_slot_tick;
        let mut t = now;
        while t <= horizon && demand_due.is_none_or(|d| t < d) && times.len() < MAX_BATCH_SLOTS {
            times.push(t);
            tk += gap_ticks;
            t = tick::time_from_ticks(tk);
        }
        // Only consult the policy once the batch extent is known:
        // plan_batch commits cursor state for exactly `times.len()` slots.
        let Some(plan) = self.policy.plan_batch(times.len() as u64) else {
            return false;
        };
        let outcome = mem.scrub_sweep(
            &SweepPlan {
                first: plan.first,
                times: &times,
                min_age_s: plan.min_age_s,
                rule: plan.rule,
            },
            threads,
        );
        self.stats.probe_slots += outcome.probe_slots;
        self.stats.idle_slots += outcome.idle_slots;
        self.stats.policy_writebacks += outcome.policy_writebacks;
        self.stats.forced_writebacks += outcome.forced_writebacks;
        if tel::enabled() {
            tel::counter_add(tel::Counter::EngineProbeSlots, outcome.probe_slots);
            tel::counter_add(tel::Counter::EngineIdleSlots, outcome.idle_slots);
            tel::counter_add(
                tel::Counter::EnginePolicyWritebacks,
                outcome.policy_writebacks,
            );
            tel::counter_add(
                tel::Counter::EngineForcedWritebacks,
                outcome.forced_writebacks,
            );
        }
        self.policy.on_batch_idle(outcome.idle_slots);
        self.next_slot_tick = tk;
        true
    }

    /// Idle fast-forward: skips every slot that is both strictly before
    /// `due` (the policy's [`crate::ScrubPolicy::idle_until`] bound) and
    /// at most `stop`, in O(1) per-slot cost — the engine only counts
    /// them idle and advances the tick grid; no policy or memory state
    /// is touched, exactly as the equivalent sequence of Idle `step`s.
    /// Returns the number of slots skipped.
    ///
    /// Capping at `stop` keeps the post-segment `next_slot_tick` — and
    /// therefore checkpoint bytes — identical to stepped execution,
    /// which never advances the slot clock past the first slot beyond a
    /// segment boundary.
    pub fn skip_idle_slots_before(&mut self, due: SimTime, stop: SimTime, mem: &Memory) -> u64 {
        let now = self.next_slot();
        let gap = {
            let ctx = ScrubContext { now, mem };
            self.policy.probe_gap_s(&ctx)
        };
        let g = tick::gap_to_ticks(gap);
        let t0 = self.next_slot_tick;
        // Jump near the answer arithmetically, then settle exactly on the
        // tick grid (f64 division may land ±1 slot off).
        let bound_s = due.secs().min(stop.secs() + gap);
        let est = ((bound_s - tick::secs_from_ticks(t0)) / gap).floor();
        let mut k = if est.is_finite() && est > 2.0 {
            (est as u64).saturating_sub(2)
        } else {
            0
        };
        while k > 0 {
            let t = tick::time_from_ticks(t0 + (k - 1) * g);
            if t < due && t <= stop {
                break;
            }
            k -= 1;
        }
        loop {
            let t = tick::time_from_ticks(t0 + k * g);
            if t < due && t <= stop {
                k += 1;
            } else {
                break;
            }
        }
        if k > 0 && crate::event::skew_fast_forward() {
            // Deliberately skip one slot too many: the differential
            // harness proves this divergence is caught, not absorbed.
            k += 1;
        }
        self.next_slot_tick = t0 + k * g;
        self.stats.idle_slots += k;
        tel::counter_add(tel::Counter::EngineIdleSlots, k);
        k
    }

    /// Serializes the engine's mutable state: the policy's name (as an
    /// identity check), the next slot tick, the slot counters, and the
    /// policy's own state.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_str(self.policy.name());
        w.put_u64(self.next_slot_tick);
        w.put_u64(self.stats.probe_slots);
        w.put_u64(self.stats.idle_slots);
        w.put_u64(self.stats.policy_writebacks);
        w.put_u64(self.stats.forced_writebacks);
        self.policy.save_state(w);
    }

    /// Restores state captured by [`ScrubEngine::save_state`] onto an
    /// engine freshly built around the same policy configuration.
    pub fn restore_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let name = r.str()?;
        if name != self.policy.name() {
            return Err(CheckpointError::Malformed(format!(
                "policy mismatch: snapshot has {name:?}, config builds {:?}",
                self.policy.name()
            )));
        }
        let next_slot_tick = r.u64()?;
        if next_slot_tick > tick::MAX_TICK {
            return Err(CheckpointError::Malformed(format!(
                "engine next_slot tick {next_slot_tick} exceeds MAX_TICK"
            )));
        }
        let stats = EngineStats {
            probe_slots: r.u64()?,
            idle_slots: r.u64()?,
            policy_writebacks: r.u64()?,
            forced_writebacks: r.u64()?,
        };
        self.policy.load_state(r)?;
        self.next_slot_tick = next_slot_tick;
        self.stats = stats;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::age_aware::AgeAwareScrub;
    use crate::basic::BasicScrub;
    use crate::threshold::ThresholdScrub;
    use pcm_ecc::CodeSpec;
    use pcm_memsim::MemGeometry;
    use pcm_model::DeviceConfig;

    fn mem(code: CodeSpec, lines: u32, seed: u64) -> Memory {
        Memory::new(
            MemGeometry::new(lines, 2),
            DeviceConfig::default(),
            code,
            seed,
        )
    }

    #[test]
    fn slots_advance_by_gap() {
        let mut m = mem(CodeSpec::bch_line(4), 10, 81);
        let mut e = ScrubEngine::new(Box::new(BasicScrub::new(100.0, 10)));
        assert_eq!(e.next_slot(), SimTime::ZERO);
        e.step(&mut m);
        assert!((e.next_slot().secs() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn basic_engine_scrubs_and_repairs_old_memory() {
        let mut m = mem(CodeSpec::secded_line(), 32, 82);
        // A sweep "interval" of 32 weeks makes each slot land a week after
        // the previous one, so every probed line is ancient by its slot.
        let mut e = ScrubEngine::new(Box::new(BasicScrub::new(604_800.0 * 32.0, 32)));
        for _ in 0..32 {
            e.step(&mut m);
        }
        // With a gap of a week per slot, every probed line is ancient.
        assert_eq!(m.stats().scrub_probes, 32);
        assert!(
            m.stats().scrub_writebacks >= 30,
            "stale lines should all need write-back, got {}",
            m.stats().scrub_writebacks
        );
        assert!(e.stats().probe_slots == 32);
    }

    #[test]
    fn threshold_engine_writes_less_than_basic() {
        let run = |policy: Box<dyn ScrubPolicy>, seed: u64| -> (u64, u64) {
            let mut m = mem(CodeSpec::bch_line(6), 64, seed);
            let mut e = ScrubEngine::new(policy);
            // 20 sweeps at 2h each over 64 lines.
            while e.next_slot() < SimTime::from_secs(40.0 * 3600.0) {
                e.step(&mut m);
            }
            (m.stats().scrub_writebacks, m.stats().scrub_probes)
        };
        let (basic_wb, basic_probes) = run(Box::new(BasicScrub::new(7200.0, 64)), 83);
        let (lazy_wb, lazy_probes) = run(Box::new(ThresholdScrub::new(7200.0, 64, 5)), 83);
        assert_eq!(basic_probes, lazy_probes);
        assert!(
            lazy_wb * 3 < basic_wb.max(3),
            "lazy {lazy_wb} vs basic {basic_wb} write-backs"
        );
    }

    /// The determinism contract of the whole execution layer, at engine
    /// granularity: a batch (at several thread counts) leaves memory,
    /// policy, and counters bit-identical to slot-at-a-time stepping.
    #[test]
    fn step_batch_matches_sequential_steps_exactly() {
        let policies: Vec<Box<dyn Fn() -> Box<dyn ScrubPolicy>>> = vec![
            Box::new(|| Box::new(BasicScrub::new(7200.0, 64))),
            Box::new(|| Box::new(ThresholdScrub::new(7200.0, 64, 4))),
            Box::new(|| Box::new(AgeAwareScrub::new(7200.0, 64, 4, 1800.0))),
        ];
        let horizon = SimTime::from_secs(30.0 * 3600.0);
        for make in &policies {
            let mut seq_mem = mem(CodeSpec::bch_line(6), 64, 90);
            let mut seq = ScrubEngine::new(make());
            while seq.next_slot() <= horizon {
                seq.step(&mut seq_mem);
            }
            for threads in [1usize, 8] {
                let mut bat_mem = mem(CodeSpec::bch_line(6), 64, 90);
                let mut bat = ScrubEngine::new(make());
                while bat.next_slot() <= horizon {
                    assert!(bat.step_batch(&mut bat_mem, horizon, None, threads));
                }
                assert_eq!(bat.stats(), seq.stats(), "threads={threads}");
                assert_eq!(bat.next_slot(), seq.next_slot(), "threads={threads}");
                assert_eq!(bat_mem.stats(), seq_mem.stats(), "threads={threads}");
                assert_eq!(bat_mem.energy(), seq_mem.energy(), "threads={threads}");
                for i in 0..64 {
                    assert_eq!(
                        bat_mem.line(LineAddr(i)),
                        seq_mem.line(LineAddr(i)),
                        "line {i} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn step_batch_respects_demand_due_and_tie_priority() {
        let mut m = mem(CodeSpec::bch_line(4), 16, 91);
        let mut e = ScrubEngine::new(Box::new(BasicScrub::new(160.0, 16)));
        // Slots at t = 0, 10, 20, ...; demand due exactly at t = 30 (a tie
        // goes to demand, so slot 30 must NOT run).
        let due = Some(SimTime::from_secs(30.0));
        assert!(e.step_batch(&mut m, SimTime::from_secs(1000.0), due, 1));
        assert_eq!(e.stats().probe_slots, 3);
        assert_eq!(e.next_slot(), SimTime::from_secs(30.0));
        // With the demand due *at* next_slot, there is nothing to batch.
        assert!(!e.step_batch(&mut m, SimTime::from_secs(1000.0), due, 1));
    }

    #[test]
    #[should_panic(expected = "non-positive probe gap")]
    fn rejects_bad_gap() {
        #[derive(Debug)]
        struct BadPolicy;
        impl ScrubPolicy for BadPolicy {
            fn name(&self) -> &str {
                "bad"
            }
            fn probe_gap_s(&self, _: &ScrubContext<'_>) -> f64 {
                0.0
            }
            fn next_action(&mut self, _: &ScrubContext<'_>) -> ScrubAction {
                ScrubAction::Idle
            }
            fn wants_writeback(
                &mut self,
                _: LineAddr,
                _: &pcm_memsim::AccessResult,
                _: &ScrubContext<'_>,
            ) -> bool {
                false
            }
            fn save_state(&self, _: &mut Writer) {}
            fn load_state(&mut self, _: &mut Reader<'_>) -> Result<(), CheckpointError> {
                Ok(())
            }
        }
        let mut m = mem(CodeSpec::bch_line(2), 4, 84);
        let mut e = ScrubEngine::new(Box::new(BadPolicy));
        e.step(&mut m);
    }
}
