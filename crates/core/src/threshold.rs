//! Lazy-correction scrub: lightweight detection with a write-back
//! threshold.

use pcm_memsim::{AccessResult, LineAddr, SimTime, SweepRule};
use scrub_checkpoint::{CheckpointError, Reader, Writer};

use crate::policy::{BatchPlan, ScrubAction, ScrubContext, ScrubPolicy, SweepCursor};

/// Threshold scrub: probe every line each sweep, but only pay the
/// write-back once the accumulated *persistent* error count reaches `Θ`.
///
/// This is the paper's "lightweight error detection" mechanism: a probe is
/// a read plus a syndrome check (cheap); with a `t`-correcting code,
/// errors up to `Θ ≤ t` can safely accumulate across sweeps before one
/// corrective write clears them all. The write-rate reduction is roughly
/// the number of sweeps it takes a line to accumulate Θ errors.
///
/// # Examples
///
/// ```
/// use scrub_core::ThresholdScrub;
/// // BCH-6 line code: let 5 errors accumulate before writing back.
/// let p = ThresholdScrub::new(900.0, 65_536, 5);
/// assert_eq!(p.theta(), 5);
/// ```
#[derive(Debug, Clone)]
pub struct ThresholdScrub {
    interval_s: f64,
    num_lines: u32,
    theta: u32,
    cursor: SweepCursor,
}

impl ThresholdScrub {
    /// Creates a threshold scrubber: sweep every `interval_s`, write back
    /// at `theta` accumulated errors.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s <= 0`, `num_lines == 0`, or `theta == 0`
    /// (θ=0 would be [`crate::BasicScrub`]).
    pub fn new(interval_s: f64, num_lines: u32, theta: u32) -> Self {
        assert!(interval_s > 0.0, "scrub interval must be positive");
        assert!(num_lines > 0, "need at least one line");
        assert!(
            theta >= 1,
            "theta must be >= 1; use BasicScrub for eager write-back"
        );
        Self {
            interval_s,
            num_lines,
            theta,
            cursor: SweepCursor::new(),
        }
    }

    /// The write-back threshold.
    pub fn theta(&self) -> u32 {
        self.theta
    }

    /// The full-sweep interval.
    pub fn interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Shared write-back rule: uncorrectable always, otherwise when the
    /// line's resident error count reaches θ.
    pub(crate) fn threshold_rule(theta: u32, result: &AccessResult) -> bool {
        result.outcome.is_uncorrectable() || result.persistent_bits >= theta
    }
}

impl ScrubPolicy for ThresholdScrub {
    fn name(&self) -> &str {
        "threshold"
    }

    fn probe_gap_s(&self, _ctx: &ScrubContext<'_>) -> f64 {
        self.interval_s / self.num_lines as f64
    }

    fn next_action(&mut self, _ctx: &ScrubContext<'_>) -> ScrubAction {
        let (addr, _) = self.cursor.advance(self.num_lines);
        ScrubAction::Probe(addr)
    }

    fn wants_writeback(
        &mut self,
        _addr: LineAddr,
        result: &AccessResult,
        _ctx: &ScrubContext<'_>,
    ) -> bool {
        Self::threshold_rule(self.theta, result)
    }

    fn on_demand_write(&mut self, _addr: LineAddr, _now: SimTime) {}

    fn plan_batch(&mut self, slots: u64) -> Option<BatchPlan> {
        Some(BatchPlan {
            first: self.cursor.advance_by(slots, self.num_lines),
            min_age_s: 0.0,
            // Uncorrectable lines are written back unconditionally by the
            // sweep, matching the engine's forced-write-back path.
            rule: SweepRule::Threshold { theta: self.theta },
        })
    }

    fn save_state(&self, w: &mut Writer) {
        w.put_u32(self.cursor.position());
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let pos = r.u32()?;
        self.cursor.set_position(pos, self.num_lines)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_ecc::ClassifyOutcome;

    fn res(bits: u32, outcome: ClassifyOutcome) -> AccessResult {
        AccessResult {
            outcome,
            persistent_bits: bits,
            new_ue: false,
        }
    }

    #[test]
    fn holds_below_threshold() {
        let theta = 4;
        for bits in 0..4 {
            let r = res(bits, ClassifyOutcome::Corrected { bits });
            assert!(!ThresholdScrub::threshold_rule(theta, &r), "bits={bits}");
        }
    }

    #[test]
    fn fires_at_threshold() {
        let r = res(4, ClassifyOutcome::Corrected { bits: 4 });
        assert!(ThresholdScrub::threshold_rule(4, &r));
        let r = res(7, ClassifyOutcome::Corrected { bits: 7 });
        assert!(ThresholdScrub::threshold_rule(4, &r));
    }

    #[test]
    fn always_fires_on_uncorrectable() {
        let r = res(1, ClassifyOutcome::DetectedUncorrectable);
        assert!(ThresholdScrub::threshold_rule(10, &r));
        let r = res(0, ClassifyOutcome::Miscorrected);
        assert!(ThresholdScrub::threshold_rule(10, &r));
    }

    #[test]
    #[should_panic(expected = "theta must be >= 1")]
    fn rejects_zero_theta() {
        ThresholdScrub::new(900.0, 16, 0);
    }
}
