//! Budget scrub: a feedback controller that spends exactly as much
//! scrubbing as a reliability target requires.
//!
//! The paper's adaptive mechanisms trade soft errors against write wear by
//! reacting to error *counts*; this extension closes the loop on the
//! metric operators actually contract on — uncorrectable errors per
//! GiB-day. The sweep interval is adjusted multiplicatively: halve it when
//! the observed UE rate exceeds the budget, relax it when the rate is
//! comfortably below.

use pcm_memsim::{AccessResult, LineAddr, SimTime};
use scrub_checkpoint::{CheckpointError, Reader, Writer};

use crate::policy::{ScrubAction, ScrubContext, ScrubPolicy, SweepCursor};
use crate::threshold::ThresholdScrub;

/// Bounds on the dynamic interval, as multiples of the base interval.
const MIN_FACTOR: f64 = 1.0 / 16.0;
const MAX_FACTOR: f64 = 16.0;

/// Feedback scrub: sweeps with a lazy write-back threshold while servoing
/// the sweep interval onto a UE-rate budget.
///
/// # Examples
///
/// ```
/// use scrub_core::BudgetScrub;
/// let p = BudgetScrub::new(900.0, 65_536, 4, 10.0, 6.0 * 3600.0);
/// assert_eq!(p.current_interval_s(), 900.0);
/// ```
#[derive(Debug, Clone)]
pub struct BudgetScrub {
    base_interval_s: f64,
    interval_s: f64,
    num_lines: u32,
    theta: u32,
    /// Target uncorrectable errors per GiB-day.
    target_ue_per_gib_day: f64,
    /// Adjustment window length.
    window_s: f64,
    window_start: SimTime,
    window_ues: u64,
    cursor: SweepCursor,
}

impl BudgetScrub {
    /// Creates a budget scrubber.
    ///
    /// * `base_interval_s` — initial sweep interval.
    /// * `theta` — lazy write-back threshold.
    /// * `target_ue_per_gib_day` — the reliability contract.
    /// * `window_s` — how often the controller adjusts.
    ///
    /// # Panics
    ///
    /// Panics on non-positive intervals/windows/targets or `theta == 0`.
    pub fn new(
        base_interval_s: f64,
        num_lines: u32,
        theta: u32,
        target_ue_per_gib_day: f64,
        window_s: f64,
    ) -> Self {
        assert!(base_interval_s > 0.0, "interval must be positive");
        assert!(num_lines > 0, "need at least one line");
        assert!(theta >= 1, "theta must be >= 1");
        assert!(target_ue_per_gib_day > 0.0, "target must be positive");
        assert!(window_s > 0.0, "window must be positive");
        Self {
            base_interval_s,
            interval_s: base_interval_s,
            num_lines,
            theta,
            target_ue_per_gib_day,
            window_s,
            window_start: SimTime::ZERO,
            window_ues: 0,
            cursor: SweepCursor::new(),
        }
    }

    /// The interval the controller is currently running at.
    pub fn current_interval_s(&self) -> f64 {
        self.interval_s
    }

    /// Observed UE rate in the current window, normalized to per-GiB-day.
    fn window_rate(&self, now: SimTime) -> f64 {
        let elapsed = now.since(self.window_start).max(1.0);
        let gib = self.num_lines as f64 * 64.0 / (1u64 << 30) as f64;
        self.window_ues as f64 / gib / (elapsed / 86_400.0)
    }

    fn maybe_adjust(&mut self, now: SimTime) {
        if now.since(self.window_start) < self.window_s {
            return;
        }
        let rate = self.window_rate(now);
        let lo = self.base_interval_s * MIN_FACTOR;
        let hi = self.base_interval_s * MAX_FACTOR;
        if rate > self.target_ue_per_gib_day {
            self.interval_s = (self.interval_s * 0.5).max(lo);
        } else if rate < self.target_ue_per_gib_day * 0.25 {
            self.interval_s = (self.interval_s * 1.5).min(hi);
        }
        self.window_start = now;
        self.window_ues = 0;
    }
}

impl ScrubPolicy for BudgetScrub {
    fn name(&self) -> &str {
        "budget"
    }

    fn probe_gap_s(&self, _ctx: &ScrubContext<'_>) -> f64 {
        self.interval_s / self.num_lines as f64
    }

    fn next_action(&mut self, ctx: &ScrubContext<'_>) -> ScrubAction {
        self.maybe_adjust(ctx.now);
        let (addr, _) = self.cursor.advance(self.num_lines);
        ScrubAction::Probe(addr)
    }

    fn wants_writeback(
        &mut self,
        _addr: LineAddr,
        result: &AccessResult,
        _ctx: &ScrubContext<'_>,
    ) -> bool {
        if result.new_ue {
            self.window_ues += 1;
        }
        ThresholdScrub::threshold_rule(self.theta, result)
    }

    fn on_demand_write(&mut self, _addr: LineAddr, _now: SimTime) {}

    fn save_state(&self, w: &mut Writer) {
        w.put_f64(self.interval_s);
        w.put_f64(self.window_start.secs());
        w.put_u64(self.window_ues);
        w.put_u32(self.cursor.position());
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let interval_s = r.finite_f64("budget interval")?;
        let lo = self.base_interval_s * MIN_FACTOR;
        let hi = self.base_interval_s * MAX_FACTOR;
        if !(lo..=hi).contains(&interval_s) {
            return Err(CheckpointError::Malformed(format!(
                "budget interval {interval_s} outside controller bounds [{lo}, {hi}]"
            )));
        }
        let window_start = r.time_f64("budget window start")?;
        let window_ues = r.u64()?;
        let pos = r.u32()?;
        self.cursor.set_position(pos, self.num_lines)?;
        self.interval_s = interval_s;
        self.window_start = SimTime::from_secs(window_start);
        self.window_ues = window_ues;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_ecc::{ClassifyOutcome, CodeSpec};
    use pcm_memsim::{MemGeometry, Memory};
    use pcm_model::DeviceConfig;
    fn ctx_mem() -> Memory {
        Memory::new(
            MemGeometry::new(64, 2),
            DeviceConfig::default(),
            CodeSpec::bch_line(6),
            7,
        )
    }

    #[test]
    fn interval_shrinks_under_ue_pressure() {
        let mem = ctx_mem();
        let mut p = BudgetScrub::new(900.0, 64, 4, 1.0, 100.0);
        let ue = AccessResult {
            outcome: ClassifyOutcome::DetectedUncorrectable,
            persistent_bits: 9,
            new_ue: true,
        };
        // Report a burst of UEs, then cross a window boundary.
        for _ in 0..20 {
            let ctx = ScrubContext {
                now: SimTime::from_secs(50.0),
                mem: &mem,
            };
            p.wants_writeback(LineAddr(0), &ue, &ctx);
        }
        let ctx = ScrubContext {
            now: SimTime::from_secs(150.0),
            mem: &mem,
        };
        p.next_action(&ctx);
        assert!(p.current_interval_s() < 900.0, "interval should shrink");
    }

    #[test]
    fn interval_relaxes_when_clean() {
        let mem = ctx_mem();
        let mut p = BudgetScrub::new(900.0, 64, 4, 1.0, 100.0);
        for k in 1..=5u32 {
            let ctx = ScrubContext {
                now: SimTime::from_secs(150.0 * k as f64),
                mem: &mem,
            };
            p.next_action(&ctx);
        }
        assert!(p.current_interval_s() > 900.0, "interval should relax");
    }

    #[test]
    fn interval_stays_bounded() {
        let mem = ctx_mem();
        let mut p = BudgetScrub::new(100.0, 64, 4, 0.001, 10.0);
        let ue = AccessResult {
            outcome: ClassifyOutcome::DetectedUncorrectable,
            persistent_bits: 9,
            new_ue: true,
        };
        for k in 1..=50u32 {
            let ctx = ScrubContext {
                now: SimTime::from_secs(20.0 * k as f64),
                mem: &mem,
            };
            p.wants_writeback(LineAddr(0), &ue, &ctx);
            p.next_action(&ctx);
        }
        assert!(p.current_interval_s() >= 100.0 * MIN_FACTOR - 1e-9);
        // And under permanent cleanliness it caps at MAX_FACTOR.
        let mut q = BudgetScrub::new(100.0, 64, 4, 1000.0, 10.0);
        for k in 1..=50u32 {
            let ctx = ScrubContext {
                now: SimTime::from_secs(20.0 * k as f64),
                mem: &mem,
            };
            q.next_action(&ctx);
        }
        assert!(q.current_interval_s() <= 100.0 * MAX_FACTOR + 1e-9);
    }
}
