//! Top-level simulation: workload + memory + scrub engine, one event loop.

use pcm_ecc::CodeSpec;
use pcm_memsim::{
    CampaignSpec, MemGeometry, MemOp, Memory, OpKind, ProbeKind, RecoveryConfig, RepairConfig,
    SimTime, TraceSource,
};
use pcm_model::DeviceConfig;
use pcm_workloads::WorkloadId;
use scrub_telemetry as tel;

use crate::config::PolicyKind;
use crate::engine::ScrubEngine;
use crate::report::SimReport;

/// Demand-traffic selection for a run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DemandTraffic {
    /// No demand traffic: an idle (worst-case-drift) memory.
    Idle,
    /// One of the named suite workloads at a rate multiplier.
    Suite {
        /// Which workload.
        id: WorkloadId,
        /// Rate multiplier (1.0 = nominal).
        rate_scale: f64,
    },
}

impl DemandTraffic {
    /// Nominal-rate suite traffic.
    pub fn suite(id: WorkloadId) -> Self {
        DemandTraffic::Suite {
            id,
            rate_scale: 1.0,
        }
    }

    fn label(&self) -> String {
        match self {
            DemandTraffic::Idle => "idle".to_string(),
            DemandTraffic::Suite { id, rate_scale } => {
                if (*rate_scale - 1.0).abs() < 1e-12 {
                    id.name().to_string()
                } else {
                    format!("{}(x{rate_scale})", id.name())
                }
            }
        }
    }
}

/// Everything a run needs, as data. Construct with
/// [`SimConfig::builder`].
///
/// # Examples
///
/// ```
/// use scrub_core::{DemandTraffic, PolicyKind, SimConfig, Simulation};
/// use pcm_workloads::WorkloadId;
///
/// let config = SimConfig::builder()
///     .num_lines(2048)
///     .policy(PolicyKind::Basic { interval_s: 900.0 })
///     .traffic(DemandTraffic::suite(WorkloadId::KvCache))
///     .horizon_s(3600.0)
///     .seed(7)
///     .build();
/// let report = Simulation::new(config).run();
/// assert!(report.stats.scrub_probes > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Memory geometry.
    pub geometry: MemGeometry,
    /// Device physics.
    pub device: DeviceConfig,
    /// Line code.
    pub code: CodeSpec,
    /// Scrub mechanism.
    pub policy: PolicyKind,
    /// Demand traffic.
    pub traffic: DemandTraffic,
    /// Simulated horizon (seconds).
    pub horizon_s: f64,
    /// Seed for every stochastic component.
    pub seed: u64,
    /// Start-Gap wear leveling rotation period (writes per gap move), or
    /// `None` to disable. See [`pcm_memsim::StartGap`].
    pub wear_leveling: Option<u32>,
    /// In-band scrub: a demand read observing at least this many resident
    /// errors triggers an immediate corrective write-back (an extension
    /// mechanism; `None` = scrub probes only).
    pub inband_writeback_theta: Option<u32>,
    /// How scrub probes check lines (full decode vs. CRC-first).
    pub probe_kind: ProbeKind,
    /// Worker threads for bank-parallel scrub sweeps inside this
    /// simulation. Results are bit-identical for every value (randomness
    /// is keyed to banks, not execution order); 1 runs fully inline.
    pub threads: usize,
    /// Deterministic fault campaign layered on the stochastic fault
    /// engine ([`pcm_memsim::CampaignSpec`]), or `None` for the baseline.
    pub fault_campaign: Option<CampaignSpec>,
    /// Graceful-degradation repair hierarchy (ECP sparing → line
    /// retirement → bank-degraded), or `None` to only count UEs.
    pub repair: Option<RepairConfig>,
    /// Shifted-threshold retry on failed ECC decodes, or `None` to
    /// declare UEs on the first failed decode.
    pub ue_recovery: Option<RecoveryConfig>,
}

impl SimConfig {
    /// Starts a builder with evaluation defaults: 64 Ki lines, nominal
    /// MLC-2 device, BCH-6, combined policy at a 15-minute sweep,
    /// `db-oltp` traffic, a 1-day horizon, seed 0.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    num_lines: u32,
    banks: u32,
    device: DeviceConfig,
    code: CodeSpec,
    policy: PolicyKind,
    traffic: DemandTraffic,
    horizon_s: f64,
    seed: u64,
    wear_leveling: Option<u32>,
    inband_writeback_theta: Option<u32>,
    probe_kind: ProbeKind,
    threads: usize,
    fault_campaign: Option<CampaignSpec>,
    repair: Option<RepairConfig>,
    ue_recovery: Option<RecoveryConfig>,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        Self {
            num_lines: 65_536,
            banks: 8,
            device: DeviceConfig::default(),
            code: CodeSpec::bch_line(6),
            policy: PolicyKind::combined_default(900.0),
            traffic: DemandTraffic::suite(WorkloadId::DbOltp),
            horizon_s: 86_400.0,
            seed: 0,
            wear_leveling: None,
            inband_writeback_theta: None,
            probe_kind: ProbeKind::FullDecode,
            threads: 1,
            fault_campaign: None,
            repair: None,
            ue_recovery: None,
        }
    }
}

impl SimConfigBuilder {
    /// Sets the number of 64-byte lines.
    pub fn num_lines(&mut self, n: u32) -> &mut Self {
        self.num_lines = n;
        self
    }

    /// Sets the bank count.
    pub fn banks(&mut self, b: u32) -> &mut Self {
        self.banks = b;
        self
    }

    /// Sets the device physics.
    pub fn device(&mut self, d: DeviceConfig) -> &mut Self {
        self.device = d;
        self
    }

    /// Sets the line code.
    pub fn code(&mut self, c: CodeSpec) -> &mut Self {
        self.code = c;
        self
    }

    /// Sets the scrub policy.
    pub fn policy(&mut self, p: PolicyKind) -> &mut Self {
        self.policy = p;
        self
    }

    /// Sets the demand traffic.
    pub fn traffic(&mut self, t: DemandTraffic) -> &mut Self {
        self.traffic = t;
        self
    }

    /// Sets the simulated horizon in seconds.
    pub fn horizon_s(&mut self, h: f64) -> &mut Self {
        self.horizon_s = h;
        self
    }

    /// Sets the seed.
    pub fn seed(&mut self, s: u64) -> &mut Self {
        self.seed = s;
        self
    }

    /// Enables Start-Gap wear leveling with the given rotation period.
    pub fn wear_leveling(&mut self, rotate_period: u32) -> &mut Self {
        self.wear_leveling = Some(rotate_period);
        self
    }

    /// Enables in-band write-back on demand reads seeing ≥ `theta` errors.
    pub fn inband_writeback(&mut self, theta: u32) -> &mut Self {
        self.inband_writeback_theta = Some(theta);
        self
    }

    /// Selects the scrub-probe kind (full decode vs. CRC-first).
    pub fn probe_kind(&mut self, kind: ProbeKind) -> &mut Self {
        self.probe_kind = kind;
        self
    }

    /// Sets the worker-thread count for bank-parallel scrub sweeps
    /// (0 is treated as 1). Any value produces bit-identical results.
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.threads = n.max(1);
        self
    }

    /// Attaches a deterministic fault campaign.
    pub fn fault_campaign(&mut self, spec: CampaignSpec) -> &mut Self {
        self.fault_campaign = Some(spec);
        self
    }

    /// Enables the graceful-degradation repair hierarchy.
    pub fn repair(&mut self, config: RepairConfig) -> &mut Self {
        self.repair = Some(config);
        self
    }

    /// Enables the shifted-threshold UE recovery retry.
    pub fn ue_recovery(&mut self, config: RecoveryConfig) -> &mut Self {
        self.ue_recovery = Some(config);
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the horizon is not positive.
    pub fn build(&self) -> SimConfig {
        assert!(self.horizon_s > 0.0, "horizon must be positive");
        SimConfig {
            geometry: MemGeometry::new(self.num_lines, self.banks),
            device: self.device.clone(),
            code: self.code.clone(),
            policy: self.policy.clone(),
            traffic: self.traffic,
            horizon_s: self.horizon_s,
            seed: self.seed,
            wear_leveling: self.wear_leveling,
            inband_writeback_theta: self.inband_writeback_theta,
            probe_kind: self.probe_kind,
            threads: self.threads,
            fault_campaign: self.fault_campaign,
            repair: self.repair,
            ue_recovery: self.ue_recovery,
        }
    }
}

/// A runnable simulation instance.
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    memory: Memory,
    engine: Option<ScrubEngine>,
    custom_trace: Option<Box<dyn TraceSource>>,
}

impl Simulation {
    /// Instantiates memory, policy, and workload from a config. The memory
    /// derives its per-bank RNG streams from `config.seed`; the workload
    /// trace seeds itself independently from the same master seed.
    pub fn new(config: SimConfig) -> Self {
        let mut memory = Memory::new(
            config.geometry,
            config.device.clone(),
            config.code.clone(),
            config.seed,
        );
        if let Some(period) = config.wear_leveling {
            memory.enable_wear_leveling(period);
        }
        memory.set_probe_kind(config.probe_kind);
        if let Some(spec) = &config.fault_campaign {
            memory.attach_campaign(spec);
        }
        if let Some(repair) = config.repair {
            memory.enable_repair(repair);
        }
        if let Some(recovery) = config.ue_recovery {
            memory.enable_ue_recovery(recovery);
        }
        let engine = config
            .policy
            .build(config.geometry.num_lines())
            .map(ScrubEngine::new);
        Self {
            config,
            memory,
            engine,
            custom_trace: None,
        }
    }

    /// Replaces the configured demand traffic with an arbitrary trace
    /// source (e.g. a [`pcm_workloads::DiurnalTrace`] or a recorded
    /// trace). The config's `traffic` field is ignored for generation but
    /// still used for labeling unless the source provides its own name.
    pub fn with_trace(config: SimConfig, trace: Box<dyn TraceSource>) -> Self {
        let mut sim = Self::new(config);
        sim.custom_trace = Some(trace);
        sim
    }

    /// Runs to the horizon and produces the report.
    ///
    /// The event loop merges the demand-trace stream with scrub slots in
    /// timestamp order, so policies see a realistic interleaving of
    /// drift-clock resets and probes. Runs of scrub slots with no demand
    /// op in between are executed as bank-parallel batches (on
    /// `config.threads` workers) when the policy supports batch planning —
    /// bit-identical to the slot-at-a-time path.
    pub fn run(self) -> SimReport {
        self.run_inner(true)
    }

    /// Runs with batching disabled: every scrub slot goes through the
    /// sequential [`ScrubEngine::step`] path. Exists to *prove* the batch
    /// path changes nothing — reports from `run` and `run_unbatched` must
    /// be identical — and as a reference for debugging.
    pub fn run_unbatched(self) -> SimReport {
        self.run_inner(false)
    }

    fn run_inner(mut self, batched: bool) -> SimReport {
        let horizon = SimTime::from_secs(self.config.horizon_s);
        let mut trace: Option<Box<dyn TraceSource>> = match self.custom_trace.take() {
            Some(t) => Some(t),
            None => match self.config.traffic {
                DemandTraffic::Idle => None,
                DemandTraffic::Suite { id, rate_scale } => Some(Box::new(id.build(
                    self.memory.demand_lines(),
                    rate_scale,
                    self.config.seed.wrapping_add(0x9E37_79B9),
                ))),
            },
        };
        let mut pending: Option<MemOp> = trace.as_mut().and_then(|t| t.next_op());
        loop {
            let demand_due = pending.map(|op| op.at);
            let scrub_due = self.engine.as_ref().map(|e| e.next_slot());
            let next_is_demand = match (demand_due, scrub_due) {
                (Some(d), Some(s)) => d <= s,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if next_is_demand {
                let op = pending.expect("demand op present");
                if op.at > horizon {
                    pending = None;
                    if self.engine.is_none() {
                        break;
                    }
                    continue;
                }
                match op.kind {
                    OpKind::Read => {
                        let result = self.memory.demand_read(op.addr, op.at);
                        // Optional in-band scrub: repair heavily drifted
                        // lines the program happens to touch.
                        if let Some(theta) = self.config.inband_writeback_theta {
                            if result.persistent_bits >= theta || result.outcome.is_uncorrectable()
                            {
                                self.memory.demand_write(op.addr, op.at);
                            }
                        }
                    }
                    OpKind::Write => {
                        self.memory.demand_write(op.addr, op.at);
                        if let Some(e) = &mut self.engine {
                            e.notify_demand_write(op.addr, op.at);
                        }
                    }
                }
                pending = trace.as_mut().and_then(|t| t.next_op());
            } else {
                let engine = self.engine.as_mut().expect("scrub slot present");
                if engine.next_slot() > horizon {
                    break;
                }
                let threads = self.config.threads.max(1);
                if !(batched && engine.step_batch(&mut self.memory, horizon, demand_due, threads)) {
                    engine.step(&mut self.memory);
                }
            }
        }
        self.into_report()
    }

    fn into_report(self) -> SimReport {
        let window_ns = self.config.horizon_s * 1e9;
        let bw = self.memory.bandwidth();
        let base_read = self.memory.timing().read_ns;
        let report = SimReport {
            workload: self.config.traffic.label(),
            policy: self.config.policy.label(),
            code: self.memory.code().name().to_string(),
            horizon_s: self.config.horizon_s,
            num_lines: self.config.geometry.num_lines(),
            stats: self.memory.stats(),
            engine: self.engine.as_ref().map(|e| *e.stats()).unwrap_or_default(),
            scrub_energy_uj: self.memory.energy().scrub_total_pj() / 1e6,
            demand_energy_uj: self.memory.energy().demand_total_pj() / 1e6,
            mean_wear: self.memory.mean_wear(),
            max_wear: self.memory.max_wear(),
            worn_cells: self.memory.total_worn_cells(),
            scrub_utilization: bw.scrub_utilization(window_ns),
            demand_read_latency_ns: bw.demand_read_latency_ns(base_read, window_ns),
            measured_read_latency_ns: self.memory.measured_demand_read_latency_ns(),
            first_unrepairable_s: self.memory.first_unrepairable_s(),
            degraded_banks: self.memory.degraded_banks(),
        };
        if tel::enabled() {
            // Report-level mirrors of the op-level counters: integer adds
            // commute, so across any number of concurrent simulations the
            // `report_*` totals reconcile exactly with the op-level ones.
            tel::counter_add(tel::Counter::ReportScrubProbes, report.stats.scrub_probes);
            tel::counter_add(
                tel::Counter::ReportScrubWritebacks,
                report.stats.scrub_writebacks,
            );
            tel::counter_add(tel::Counter::ReportUncorrectable, report.uncorrectable());
            tel::event(
                self.config.horizon_s,
                tel::EventKind::SimDone {
                    policy: report.policy.clone(),
                    workload: report.workload.clone(),
                    seed: self.config.seed,
                    scrub_probes: report.stats.scrub_probes,
                    scrub_writes: report.stats.scrub_writebacks,
                    ue: report.uncorrectable(),
                    demand_ue: report.stats.demand_ue,
                    scrub_energy_uj: report.scrub_energy_uj,
                    mean_wear: report.mean_wear,
                },
            );
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(policy: PolicyKind, code: CodeSpec) -> SimConfig {
        SimConfig::builder()
            .num_lines(1024)
            .policy(policy)
            .code(code)
            .traffic(DemandTraffic::suite(WorkloadId::KvCache))
            .horizon_s(4.0 * 3600.0)
            .seed(11)
            .build()
    }

    #[test]
    fn runs_and_reports() {
        let r = Simulation::new(quick_config(
            PolicyKind::Basic { interval_s: 900.0 },
            CodeSpec::secded_line(),
        ))
        .run();
        // 16 sweeps over 1024 lines in 4 hours.
        assert!(r.stats.scrub_probes >= 15 * 1024);
        assert!(r.stats.demand_reads > 0);
        assert!(r.scrub_energy_uj > 0.0);
    }

    #[test]
    fn idle_traffic_runs_scrub_only() {
        let config = SimConfig::builder()
            .num_lines(512)
            .policy(PolicyKind::Basic { interval_s: 1800.0 })
            .traffic(DemandTraffic::Idle)
            .horizon_s(3600.0)
            .seed(12)
            .build();
        let r = Simulation::new(config).run();
        assert_eq!(r.stats.demand_reads, 0);
        assert_eq!(r.stats.demand_writes, 0);
        assert!(r.stats.scrub_probes > 0);
        assert_eq!(r.workload, "idle");
    }

    #[test]
    fn no_policy_no_traffic_terminates() {
        let config = SimConfig::builder()
            .num_lines(64)
            .policy(PolicyKind::None)
            .traffic(DemandTraffic::Idle)
            .horizon_s(100.0)
            .seed(13)
            .build();
        let r = Simulation::new(config).run();
        assert_eq!(r.stats.scrub_probes, 0);
        assert_eq!(r.stats.demand_reads, 0);
    }

    /// The execution-layer contract at full-simulation granularity: for
    /// every batchable policy, under both idle and demand-interleaved
    /// traffic, the unbatched path, the batched single-thread path, and
    /// the batched 8-thread path produce identical reports — every
    /// counter, every energy total, every f64, bit for bit.
    #[test]
    fn batched_and_parallel_runs_are_bit_identical() {
        let policies = [
            PolicyKind::Basic { interval_s: 1200.0 },
            PolicyKind::Threshold {
                interval_s: 1200.0,
                theta: 4,
            },
            PolicyKind::AgeAware {
                interval_s: 1200.0,
                theta: 4,
                min_age_s: 600.0,
            },
        ];
        let traffics = [
            DemandTraffic::Idle,
            DemandTraffic::suite(WorkloadId::KvCache),
        ];
        for policy in &policies {
            for traffic in &traffics {
                let cfg = |threads: usize| {
                    SimConfig::builder()
                        .num_lines(1024)
                        .policy(policy.clone())
                        .code(CodeSpec::bch_line(6))
                        .traffic(*traffic)
                        .horizon_s(3.0 * 3600.0)
                        .seed(33)
                        .threads(threads)
                        .build()
                };
                let unbatched = Simulation::new(cfg(1)).run_unbatched();
                let serial = Simulation::new(cfg(1)).run();
                let parallel = Simulation::new(cfg(8)).run();
                assert_eq!(unbatched, serial, "{policy:?}/{traffic:?}");
                assert_eq!(serial, parallel, "{policy:?}/{traffic:?}");
                assert!(serial.stats.scrub_probes > 0);
            }
        }
    }

    #[test]
    fn campaign_repair_and_recovery_flow_through_config() {
        let mk = |campaign: bool| {
            let mut b = SimConfig::builder();
            b.num_lines(512)
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::Basic { interval_s: 900.0 })
                .traffic(DemandTraffic::Idle)
                .horizon_s(3600.0)
                .seed(17)
                .repair(pcm_memsim::RepairConfig::default())
                .ue_recovery(pcm_memsim::RecoveryConfig { recover_prob: 0.0 });
            if campaign {
                b.fault_campaign(
                    "seed=3;seu=lines:512,count:6,window:1800"
                        .parse()
                        .expect("valid spec"),
                );
            }
            Simulation::new(b.build()).run()
        };
        let baseline = mk(false);
        let bombarded = mk(true);
        // 6 SEUs per line overwhelm SECDED (though the basic policy's
        // unconditional write-backs keep clearing them between probes):
        // the campaign must surface as extra uncorrectable errors.
        assert!(
            bombarded.uncorrectable() > baseline.uncorrectable() + 100,
            "campaign {} vs baseline {}",
            bombarded.uncorrectable(),
            baseline.uncorrectable()
        );
        // SEUs are data faults, not worn cells: the repair hierarchy
        // rightly leaves them to scrub write-backs.
        assert_eq!(bombarded.stats.lines_retired, 0);
        assert_eq!(bombarded.degraded_banks, 0);
        assert!(bombarded.first_unrepairable_s.is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            Simulation::new(quick_config(
                PolicyKind::combined_default(900.0),
                CodeSpec::bch_line(6),
            ))
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.scrub_energy_uj, b.scrub_energy_uj);
    }

    #[test]
    fn wear_leveling_runs_and_copies() {
        let mut b = SimConfig::builder();
        b.num_lines(512)
            .policy(PolicyKind::None)
            .traffic(DemandTraffic::suite(WorkloadId::Logging))
            .horizon_s(4.0 * 3600.0)
            .seed(21)
            .wear_leveling(8);
        let r = Simulation::new(b.build()).run();
        assert!(r.stats.wear_level_writes > 0);
        assert_eq!(
            r.stats.wear_level_writes,
            r.stats.demand_writes / 8,
            "one rotation copy per 8 demand writes"
        );
    }

    #[test]
    fn inband_writeback_cuts_demand_ues_without_scrub() {
        let mk = |inband: bool| {
            let mut b = SimConfig::builder();
            b.num_lines(1024)
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::None)
                .traffic(DemandTraffic::suite(WorkloadId::WebServe))
                .horizon_s(12.0 * 3600.0)
                .seed(22);
            if inband {
                b.inband_writeback(1);
            }
            Simulation::new(b.build()).run()
        };
        let plain = mk(false);
        let inband = mk(true);
        assert!(
            inband.stats.demand_ue < plain.stats.demand_ue.max(1),
            "inband {} vs plain {}",
            inband.stats.demand_ue,
            plain.stats.demand_ue
        );
    }

    #[test]
    fn combined_beats_basic_on_writes_and_ues() {
        let basic = Simulation::new(quick_config(
            PolicyKind::Basic { interval_s: 900.0 },
            CodeSpec::secded_line(),
        ))
        .run();
        let combined = Simulation::new(quick_config(
            PolicyKind::combined_default(900.0),
            CodeSpec::bch_line(6),
        ))
        .run();
        assert!(
            combined.scrub_writes() * 4 < basic.scrub_writes().max(4),
            "combined {} vs basic {} scrub writes",
            combined.scrub_writes(),
            basic.scrub_writes()
        );
        assert!(
            combined.uncorrectable() <= basic.uncorrectable(),
            "combined {} vs basic {} UEs",
            combined.uncorrectable(),
            basic.uncorrectable()
        );
    }
}
