//! Top-level simulation: workload + memory + scrub engine, one event loop.

use pcm_ecc::CodeSpec;
use pcm_memsim::{
    CampaignSpec, MemGeometry, MemOp, Memory, OpKind, ProbeKind, RecoveryConfig, RepairConfig,
    SimTime, TraceSource,
};
use pcm_model::DeviceConfig;
use pcm_workloads::{TenantMixSpec, WorkloadId};
use scrub_checkpoint::{CheckpointError, Reader, Writer};
use scrub_telemetry as tel;

use crate::config::PolicyKind;
use crate::engine::ScrubEngine;
use crate::event::{self, EngineKind, Ev, EvKind};
use crate::report::SimReport;

/// Demand-traffic selection for a run.
#[derive(Debug, Clone, PartialEq)]
pub enum DemandTraffic {
    /// No demand traffic: an idle (worst-case-drift) memory.
    Idle,
    /// One of the named suite workloads at a rate multiplier.
    Suite {
        /// Which workload.
        id: WorkloadId,
        /// Rate multiplier (1.0 = nominal).
        rate_scale: f64,
    },
    /// Open-loop multi-tenant demand: several per-tenant arrival streams
    /// (seeded Poisson/periodic or suite-driven) merged in time order.
    /// This is the fleet service's workload; unlike a custom trace
    /// installed via [`Simulation::with_trace`], it is part of the config,
    /// so checkpoints taken under it resume natively.
    OpenLoop {
        /// The tenant mix (names, rates, patterns).
        spec: TenantMixSpec,
        /// Rate multiplier applied to every tenant (1.0 = nominal). A
        /// fleet that spreads the mix over `n` shards passes `1/n` here so
        /// aggregate demand matches the spec.
        rate_scale: f64,
    },
}

impl DemandTraffic {
    /// Nominal-rate suite traffic.
    pub fn suite(id: WorkloadId) -> Self {
        DemandTraffic::Suite {
            id,
            rate_scale: 1.0,
        }
    }

    /// Nominal-rate open-loop tenant-mix traffic.
    pub fn open_loop(spec: TenantMixSpec) -> Self {
        DemandTraffic::OpenLoop {
            spec,
            rate_scale: 1.0,
        }
    }

    fn label(&self) -> String {
        match self {
            DemandTraffic::Idle => "idle".to_string(),
            DemandTraffic::Suite { id, rate_scale } => {
                if (*rate_scale - 1.0).abs() < 1e-12 {
                    id.name().to_string()
                } else {
                    format!("{}(x{rate_scale})", id.name())
                }
            }
            DemandTraffic::OpenLoop { spec, rate_scale } => {
                if (*rate_scale - 1.0).abs() < 1e-12 {
                    format!("open-loop({spec})")
                } else {
                    format!("open-loop({spec})(x{rate_scale})")
                }
            }
        }
    }
}

/// Everything a run needs, as data. Construct with
/// [`SimConfig::builder`].
///
/// # Examples
///
/// ```
/// use scrub_core::{DemandTraffic, PolicyKind, SimConfig, Simulation};
/// use pcm_workloads::WorkloadId;
///
/// let config = SimConfig::builder()
///     .num_lines(2048)
///     .policy(PolicyKind::Basic { interval_s: 900.0 })
///     .traffic(DemandTraffic::suite(WorkloadId::KvCache))
///     .horizon_s(3600.0)
///     .seed(7)
///     .build();
/// let report = Simulation::new(config).run();
/// assert!(report.stats.scrub_probes > 0);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Memory geometry.
    pub geometry: MemGeometry,
    /// Device physics.
    pub device: DeviceConfig,
    /// Line code.
    pub code: CodeSpec,
    /// Scrub mechanism.
    pub policy: PolicyKind,
    /// Demand traffic.
    pub traffic: DemandTraffic,
    /// Simulated horizon (seconds).
    pub horizon_s: f64,
    /// Seed for every stochastic component.
    pub seed: u64,
    /// Start-Gap wear leveling rotation period (writes per gap move), or
    /// `None` to disable. See [`pcm_memsim::StartGap`].
    pub wear_leveling: Option<u32>,
    /// In-band scrub: a demand read observing at least this many resident
    /// errors triggers an immediate corrective write-back (an extension
    /// mechanism; `None` = scrub probes only).
    pub inband_writeback_theta: Option<u32>,
    /// How scrub probes check lines (full decode vs. CRC-first).
    pub probe_kind: ProbeKind,
    /// Worker threads for bank-parallel scrub sweeps inside this
    /// simulation. Results are bit-identical for every value (randomness
    /// is keyed to banks, not execution order); 1 runs fully inline.
    pub threads: usize,
    /// Deterministic fault campaign layered on the stochastic fault
    /// engine ([`pcm_memsim::CampaignSpec`]), or `None` for the baseline.
    pub fault_campaign: Option<CampaignSpec>,
    /// Graceful-degradation repair hierarchy (ECP sparing → line
    /// retirement → bank-degraded), or `None` to only count UEs.
    pub repair: Option<RepairConfig>,
    /// Shifted-threshold retry on failed ECC decodes, or `None` to
    /// declare UEs on the first failed decode.
    pub ue_recovery: Option<RecoveryConfig>,
    /// Which simulation core executes the run (stepped cadence loop or
    /// priority-queue event engine). Like `threads`, this shapes
    /// execution, never results: both engines produce byte-identical
    /// reports, telemetry counters, and checkpoints.
    pub engine: EngineKind,
}

impl SimConfig {
    /// Starts a builder with evaluation defaults: 64 Ki lines, nominal
    /// MLC-2 device, BCH-6, combined policy at a 15-minute sweep,
    /// `db-oltp` traffic, a 1-day horizon, seed 0.
    pub fn builder() -> SimConfigBuilder {
        SimConfigBuilder::default()
    }
}

/// Builder for [`SimConfig`].
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    num_lines: u32,
    banks: u32,
    device: DeviceConfig,
    code: CodeSpec,
    policy: PolicyKind,
    traffic: DemandTraffic,
    horizon_s: f64,
    seed: u64,
    wear_leveling: Option<u32>,
    inband_writeback_theta: Option<u32>,
    probe_kind: ProbeKind,
    threads: usize,
    fault_campaign: Option<CampaignSpec>,
    repair: Option<RepairConfig>,
    ue_recovery: Option<RecoveryConfig>,
    engine: EngineKind,
}

impl Default for SimConfigBuilder {
    fn default() -> Self {
        Self {
            num_lines: 65_536,
            banks: 8,
            device: DeviceConfig::default(),
            code: CodeSpec::bch_line(6),
            policy: PolicyKind::combined_default(900.0),
            traffic: DemandTraffic::suite(WorkloadId::DbOltp),
            horizon_s: 86_400.0,
            seed: 0,
            wear_leveling: None,
            inband_writeback_theta: None,
            probe_kind: ProbeKind::FullDecode,
            threads: 1,
            fault_campaign: None,
            repair: None,
            ue_recovery: None,
            engine: EngineKind::Stepped,
        }
    }
}

impl SimConfigBuilder {
    /// Sets the number of 64-byte lines.
    pub fn num_lines(&mut self, n: u32) -> &mut Self {
        self.num_lines = n;
        self
    }

    /// Sets the bank count.
    pub fn banks(&mut self, b: u32) -> &mut Self {
        self.banks = b;
        self
    }

    /// Sets the device physics.
    pub fn device(&mut self, d: DeviceConfig) -> &mut Self {
        self.device = d;
        self
    }

    /// Sets the line code.
    pub fn code(&mut self, c: CodeSpec) -> &mut Self {
        self.code = c;
        self
    }

    /// Sets the scrub policy.
    pub fn policy(&mut self, p: PolicyKind) -> &mut Self {
        self.policy = p;
        self
    }

    /// Sets the demand traffic.
    pub fn traffic(&mut self, t: DemandTraffic) -> &mut Self {
        self.traffic = t;
        self
    }

    /// Sets the simulated horizon in seconds.
    pub fn horizon_s(&mut self, h: f64) -> &mut Self {
        self.horizon_s = h;
        self
    }

    /// Sets the seed.
    pub fn seed(&mut self, s: u64) -> &mut Self {
        self.seed = s;
        self
    }

    /// Enables Start-Gap wear leveling with the given rotation period.
    pub fn wear_leveling(&mut self, rotate_period: u32) -> &mut Self {
        self.wear_leveling = Some(rotate_period);
        self
    }

    /// Enables in-band write-back on demand reads seeing ≥ `theta` errors.
    pub fn inband_writeback(&mut self, theta: u32) -> &mut Self {
        self.inband_writeback_theta = Some(theta);
        self
    }

    /// Selects the scrub-probe kind (full decode vs. CRC-first).
    pub fn probe_kind(&mut self, kind: ProbeKind) -> &mut Self {
        self.probe_kind = kind;
        self
    }

    /// Sets the worker-thread count for bank-parallel scrub sweeps
    /// (0 is treated as 1). Any value produces bit-identical results.
    pub fn threads(&mut self, n: usize) -> &mut Self {
        self.threads = n.max(1);
        self
    }

    /// Attaches a deterministic fault campaign.
    pub fn fault_campaign(&mut self, spec: CampaignSpec) -> &mut Self {
        self.fault_campaign = Some(spec);
        self
    }

    /// Enables the graceful-degradation repair hierarchy.
    pub fn repair(&mut self, config: RepairConfig) -> &mut Self {
        self.repair = Some(config);
        self
    }

    /// Enables the shifted-threshold UE recovery retry.
    pub fn ue_recovery(&mut self, config: RecoveryConfig) -> &mut Self {
        self.ue_recovery = Some(config);
        self
    }

    /// Selects the simulation core (stepped loop vs. event engine).
    /// Results are bit-identical either way.
    pub fn engine(&mut self, kind: EngineKind) -> &mut Self {
        self.engine = kind;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the horizon is NaN, infinite, non-positive, or long
    /// enough to overflow the engine's integer tick clock (~146 years;
    /// see [`crate::tick::MAX_TICK`]).
    pub fn build(&self) -> SimConfig {
        assert!(
            self.horizon_s.is_finite(),
            "horizon must be finite, got {}",
            self.horizon_s
        );
        assert!(self.horizon_s > 0.0, "horizon must be positive");
        // Panics past MAX_TICK: rejects year-scale typos (e.g. ns passed
        // as s) before they silently wrap the slot grid.
        let _ = crate::tick::ticks_from_secs(self.horizon_s);
        SimConfig {
            geometry: MemGeometry::new(self.num_lines, self.banks),
            device: self.device.clone(),
            code: self.code.clone(),
            policy: self.policy.clone(),
            traffic: self.traffic.clone(),
            horizon_s: self.horizon_s,
            seed: self.seed,
            wear_leveling: self.wear_leveling,
            inband_writeback_theta: self.inband_writeback_theta,
            probe_kind: self.probe_kind,
            threads: self.threads,
            fault_campaign: self.fault_campaign,
            repair: self.repair,
            ue_recovery: self.ue_recovery,
            engine: self.engine,
        }
    }
}

/// A runnable simulation instance.
///
/// Runs either straight through ([`Simulation::run`]) or in segments:
/// [`Simulation::run_to`] advances the event loop to an intermediate stop
/// time, [`Simulation::checkpoint`] serializes the complete simulator
/// state, and [`Simulation::resume`] reconstructs an instance that
/// continues *bit-identically* to the run that was snapshotted — same RNG
/// draws, same float accumulation order, same report.
#[derive(Debug)]
pub struct Simulation {
    config: SimConfig,
    memory: Memory,
    engine: Option<ScrubEngine>,
    custom_trace: Option<Box<dyn TraceSource>>,
    /// The active demand trace once the event loop has started.
    trace: Option<Box<dyn TraceSource>>,
    /// Next demand op, already drawn from the trace but not yet executed.
    pending: Option<MemOp>,
    /// Whether the event loop has started (trace built, first op drawn).
    started: bool,
    /// High-water mark of simulated time covered so far: every event with
    /// `time <= clock` has been executed.
    clock: SimTime,
}

impl Simulation {
    /// Instantiates memory, policy, and workload from a config. The memory
    /// derives its per-bank RNG streams from `config.seed`; the workload
    /// trace seeds itself independently from the same master seed.
    pub fn new(config: SimConfig) -> Self {
        let mut memory = Memory::new(
            config.geometry,
            config.device.clone(),
            config.code.clone(),
            config.seed,
        );
        if let Some(period) = config.wear_leveling {
            memory.enable_wear_leveling(period);
        }
        memory.set_probe_kind(config.probe_kind);
        if let Some(spec) = &config.fault_campaign {
            memory.attach_campaign(spec);
        }
        if let Some(repair) = config.repair {
            memory.enable_repair(repair);
        }
        if let Some(recovery) = config.ue_recovery {
            memory.enable_ue_recovery(recovery);
        }
        let engine = config
            .policy
            .build(
                config.geometry.num_lines(),
                config.geometry.banks(),
                config.seed,
            )
            .map(ScrubEngine::new);
        Self {
            config,
            memory,
            engine,
            custom_trace: None,
            trace: None,
            pending: None,
            started: false,
            clock: SimTime::ZERO,
        }
    }

    /// Replaces the configured demand traffic with an arbitrary trace
    /// source (e.g. a [`pcm_workloads::DiurnalTrace`] or a recorded
    /// trace). The config's `traffic` field is ignored for generation but
    /// still used for labeling unless the source provides its own name.
    pub fn with_trace(config: SimConfig, trace: Box<dyn TraceSource>) -> Self {
        let mut sim = Self::new(config);
        sim.custom_trace = Some(trace);
        sim
    }

    /// Runs to the horizon and produces the report.
    ///
    /// The event loop merges the demand-trace stream with scrub slots in
    /// timestamp order, so policies see a realistic interleaving of
    /// drift-clock resets and probes. Runs of scrub slots with no demand
    /// op in between are executed as bank-parallel batches (on
    /// `config.threads` workers) when the policy supports batch planning —
    /// bit-identical to the slot-at-a-time path.
    pub fn run(mut self) -> SimReport {
        let horizon = SimTime::from_secs(self.config.horizon_s);
        self.advance_to(horizon, true);
        self.into_report()
    }

    /// Runs with batching disabled: every scrub slot goes through the
    /// sequential [`ScrubEngine::step`] path. Exists to *prove* the batch
    /// path changes nothing — reports from `run` and `run_unbatched` must
    /// be identical — and as a reference for debugging.
    pub fn run_unbatched(mut self) -> SimReport {
        let horizon = SimTime::from_secs(self.config.horizon_s);
        self.advance_to(horizon, false);
        self.into_report()
    }

    /// Advances the event loop through every event with time at most
    /// `stop_at_s` (clamped to the horizon), leaving the simulation ready
    /// to be checkpointed or advanced further. Splitting a horizon into
    /// any sequence of `run_to` segments executes exactly the events a
    /// straight [`Simulation::run`] would, in the same order.
    pub fn run_to(&mut self, stop_at_s: f64) {
        let horizon = SimTime::from_secs(self.config.horizon_s);
        let stop = SimTime::from_secs(stop_at_s.min(self.config.horizon_s));
        let stop = if stop > horizon { horizon } else { stop };
        self.advance_to(stop, true);
    }

    /// Runs any remaining events to the horizon and produces the report —
    /// the segmented-run counterpart of [`Simulation::run`].
    pub fn finish(mut self) -> SimReport {
        let horizon = SimTime::from_secs(self.config.horizon_s);
        self.advance_to(horizon, true);
        self.into_report()
    }

    /// Simulated time covered so far: every event with time at most this
    /// has been executed.
    pub fn clock_s(&self) -> f64 {
        self.clock.secs()
    }

    /// The configuration this simulation was built from.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    /// The simulated memory (for inspecting state mid-run).
    pub fn memory(&self) -> &Memory {
        &self.memory
    }

    /// Per-tenant delivered-op accounting as `(tenant, reads, writes)`
    /// rows, when the active demand trace multiplexes several tenant
    /// streams ([`DemandTraffic::OpenLoop`]). `None` for single-stream or
    /// idle traffic, or before the event loop has started.
    pub fn tenant_ops(&self) -> Option<Vec<(String, u64, u64)>> {
        self.trace.as_ref().and_then(|t| t.tenant_ops())
    }

    /// Serializes the complete simulator state into a sealed snapshot
    /// (magic, schema version, CRC-32): per-bank RNG streams and line
    /// state, repair hierarchy, Start-Gap positions, policy and engine
    /// state, the demand-trace generator position, the in-flight demand
    /// op, and every statistics/energy accumulator. Feeding the bytes to
    /// [`Simulation::resume`] with the same config continues the run
    /// bit-identically.
    ///
    /// Checkpointing starts the event loop if it has not started yet (the
    /// trace is built and the first op drawn — exactly what the first
    /// `run_to` would do), so a snapshot at time zero is well-defined.
    ///
    /// # Errors
    ///
    /// Fails with [`CheckpointError::Malformed`] if a custom trace source
    /// (installed via [`Simulation::with_trace`]) does not implement
    /// [`TraceSource::save_state`].
    pub fn checkpoint(&mut self) -> Result<Vec<u8>, CheckpointError> {
        self.checkpoint_impl(false, false)
    }

    /// Test-only tripwire: identical to [`Simulation::checkpoint`] except
    /// bank 0's RNG stream is replaced by a default-seeded one — same byte
    /// length, wrong contents. Exists so the differential resume harness
    /// can prove it actually detects a single omitted/corrupted state
    /// field.
    #[doc(hidden)]
    pub fn checkpoint_omitting_bank0_rng(&mut self) -> Result<Vec<u8>, CheckpointError> {
        self.checkpoint_impl(true, false)
    }

    /// Test-only tripwire: identical to [`Simulation::checkpoint`] except
    /// the in-flight (drawn but not yet executed) demand op is dropped
    /// from the snapshot — a structurally valid checkpoint that silently
    /// loses one tenant's pending access. Exists so the shard-migration
    /// differential harness can prove byte-identity checks catch a lossy
    /// migration.
    #[doc(hidden)]
    pub fn checkpoint_dropping_pending(&mut self) -> Result<Vec<u8>, CheckpointError> {
        self.checkpoint_impl(false, true)
    }

    fn checkpoint_impl(
        &mut self,
        omit_bank0_rng: bool,
        drop_pending: bool,
    ) -> Result<Vec<u8>, CheckpointError> {
        self.start();
        let mut w = Writer::new();
        w.put_bytes(&fingerprint(&self.config));
        w.put_f64(self.clock.secs());
        match &self.trace {
            Some(t) => {
                let state = t.save_state().ok_or_else(|| {
                    CheckpointError::Malformed(format!(
                        "trace source '{}' does not support checkpoint/resume",
                        t.name()
                    ))
                })?;
                w.put_u8(1);
                w.put_bytes(&state);
            }
            None => w.put_u8(0),
        }
        match self.pending.as_ref().filter(|_| !drop_pending) {
            Some(op) => {
                w.put_u8(1);
                w.put_f64(op.at.secs());
                w.put_u8(match op.kind {
                    OpKind::Read => 0,
                    OpKind::Write => 1,
                });
                w.put_u32(op.addr.0);
            }
            None => w.put_u8(0),
        }
        match &self.engine {
            Some(e) => {
                w.put_u8(1);
                e.save_state(&mut w);
            }
            None => w.put_u8(0),
        }
        if omit_bank0_rng {
            self.memory.save_state_omitting_bank0_rng(&mut w);
        } else {
            self.memory.save_state(&mut w);
        }
        Ok(scrub_checkpoint::seal(w.into_bytes()))
    }

    /// Reconstructs a simulation from a [`Simulation::checkpoint`]
    /// snapshot, ready to continue bit-identically to the run that was
    /// snapshotted.
    ///
    /// The config must describe the *same run* as the one checkpointed:
    /// a fingerprint (seed, geometry, horizon, policy, code, traffic,
    /// campaign, repair knobs — everything except `threads`, which only
    /// shapes execution, never results) is embedded in the snapshot and
    /// verified. Custom trace sources installed via
    /// [`Simulation::with_trace`] cannot be rebuilt from config alone and
    /// are rejected at checkpoint time, not here.
    ///
    /// # Errors
    ///
    /// Any [`CheckpointError`]: a damaged envelope (truncated, bad CRC,
    /// wrong schema version), a config/fingerprint mismatch, or payload
    /// fields that fail validation. Never panics on hostile input.
    pub fn resume(config: SimConfig, bytes: &[u8]) -> Result<Self, CheckpointError> {
        let payload = scrub_checkpoint::open(bytes)?;
        let mut r = Reader::new(payload);
        let stored_fp = r.bytes()?;
        if stored_fp != fingerprint(&config).as_slice() {
            return Err(CheckpointError::Malformed(
                "config fingerprint mismatch: snapshot was taken under a different \
                 seed/geometry/policy/code/traffic/campaign configuration"
                    .to_string(),
            ));
        }
        let clock = r.time_f64("checkpoint clock")?;
        let mut sim = Simulation::new(config);
        match r.u8()? {
            0 => {}
            1 => {
                sim.build_trace();
                let state = r.bytes()?.to_vec();
                let trace = sim.trace.as_mut().ok_or_else(|| {
                    CheckpointError::Malformed(
                        "snapshot has trace state but config traffic is idle".to_string(),
                    )
                })?;
                trace
                    .load_state(&state)
                    .map_err(CheckpointError::Malformed)?;
            }
            other => {
                return Err(CheckpointError::Malformed(format!(
                    "invalid trace-presence flag {other}"
                )))
            }
        }
        sim.pending = match r.u8()? {
            0 => None,
            1 => {
                let at = SimTime::from_secs(r.time_f64("pending op time")?);
                let kind = match r.u8()? {
                    0 => OpKind::Read,
                    1 => OpKind::Write,
                    other => {
                        return Err(CheckpointError::Malformed(format!(
                            "invalid pending-op kind {other}"
                        )))
                    }
                };
                let addr = r.u32()?;
                if addr >= sim.memory.demand_lines() {
                    return Err(CheckpointError::Malformed(format!(
                        "pending-op line {addr} out of range (demand space is {})",
                        sim.memory.demand_lines()
                    )));
                }
                Some(MemOp {
                    at,
                    kind,
                    addr: pcm_memsim::LineAddr(addr),
                })
            }
            other => {
                return Err(CheckpointError::Malformed(format!(
                    "invalid pending-op flag {other}"
                )))
            }
        };
        match (r.u8()?, &mut sim.engine) {
            (0, None) => {}
            (1, Some(engine)) => engine.restore_state(&mut r)?,
            (flag, engine) => {
                return Err(CheckpointError::Malformed(format!(
                    "engine presence mismatch: snapshot flag {flag}, config builds {}",
                    if engine.is_some() {
                        "an engine"
                    } else {
                        "no engine"
                    }
                )))
            }
        }
        sim.memory.restore_state(&mut r)?;
        r.finish()?;
        sim.started = true;
        sim.clock = SimTime::from_secs(clock);
        Ok(sim)
    }

    /// Builds the demand trace and draws the first op, exactly once.
    fn start(&mut self) {
        if self.started {
            return;
        }
        self.build_trace();
        self.pending = self.trace.as_mut().and_then(|t| t.next_op());
        self.started = true;
    }

    /// Installs the active trace (custom if provided, else from config)
    /// without drawing from it. Split out of [`Simulation::start`] so
    /// resume can rebuild the generator and then overlay its saved RNG
    /// position instead of consuming the first op.
    pub(crate) fn build_trace(&mut self) {
        self.trace = match self.custom_trace.take() {
            Some(t) => Some(t),
            None => match &self.config.traffic {
                DemandTraffic::Idle => None,
                DemandTraffic::Suite { id, rate_scale } => Some(Box::new(id.build(
                    self.memory.demand_lines(),
                    *rate_scale,
                    self.config.seed.wrapping_add(0x9E37_79B9),
                ))),
                DemandTraffic::OpenLoop { spec, rate_scale } => Some(Box::new(spec.build(
                    self.memory.demand_lines(),
                    *rate_scale,
                    self.config.seed.wrapping_add(0x9E37_79B9),
                ))),
            },
        };
    }

    /// Advances the event loop through every event with time at most
    /// `stop`, on whichever core the config selects. Both cores execute
    /// the same events in the same order and leave byte-identical state
    /// (see `crates/bench/tests/engine_differential.rs`).
    fn advance_to(&mut self, stop: SimTime, batched: bool) {
        match self.config.engine {
            EngineKind::Stepped => {
                self.advance_to_stepped(stop, batched);
                // The event engine dispatches campaign boundaries through
                // its queue; the stepped loop emits the same marker set
                // here so both engines' telemetry reconciles exactly.
                self.emit_campaign_markers(stop);
            }
            EngineKind::Event => self.advance_to_event(stop, batched),
        }
        if stop > self.clock {
            self.clock = stop;
        }
    }

    /// Telemetry markers for fault-campaign boundaries crossed in
    /// `(clock, stop]`. Derived purely from config and segmentation, so
    /// both engines emit identical marker sets and nothing needs
    /// checkpointing.
    fn emit_campaign_markers(&mut self, stop: SimTime) {
        if !tel::enabled() {
            return;
        }
        let Some(spec) = &self.config.fault_campaign else {
            return;
        };
        for (t, label) in event::campaign_boundaries(spec, self.clock, stop) {
            tel::counter_add(tel::Counter::CampaignBoundaries, 1);
            tel::event(
                t,
                tel::EventKind::CampaignBoundary {
                    label: label.to_string(),
                },
            );
        }
    }

    fn advance_to_stepped(&mut self, stop: SimTime, batched: bool) {
        self.start();
        loop {
            let demand_due = self.pending.map(|op| op.at);
            let scrub_due = self.engine.as_ref().map(|e| e.next_slot());
            let next_is_demand = match (demand_due, scrub_due) {
                (Some(d), Some(s)) => d <= s,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => break,
            };
            if next_is_demand {
                let op = self.pending.expect("demand op present");
                if op.at > stop {
                    // Demand won the tie-break, so the scrub slot (if any)
                    // is not due before `stop` either. The op stays
                    // pending for the next segment.
                    break;
                }
                self.exec_demand_op(op);
            } else {
                let engine = self.engine.as_mut().expect("scrub slot present");
                if engine.next_slot() > stop {
                    break;
                }
                let threads = self.config.threads.max(1);
                if !(batched && engine.step_batch(&mut self.memory, stop, demand_due, threads)) {
                    engine.step(&mut self.memory);
                }
            }
        }
    }

    /// Executes one demand op and draws the next from the trace — the
    /// single demand path shared by both engines.
    fn exec_demand_op(&mut self, op: MemOp) {
        match op.kind {
            OpKind::Read => {
                let result = self.memory.demand_read(op.addr, op.at);
                if let Some(e) = &mut self.engine {
                    e.notify_demand_read(op.addr, op.at);
                }
                // Optional in-band scrub: repair heavily drifted
                // lines the program happens to touch.
                if let Some(theta) = self.config.inband_writeback_theta {
                    if result.persistent_bits >= theta || result.outcome.is_uncorrectable() {
                        self.memory.demand_write(op.addr, op.at);
                    }
                }
            }
            OpKind::Write => {
                self.memory.demand_write(op.addr, op.at);
                if let Some(e) = &mut self.engine {
                    e.notify_demand_write(op.addr, op.at);
                }
            }
        }
        self.pending = self.trace.as_mut().and_then(|t| t.next_op());
    }

    /// The priority-queue core: typed events ([`EvKind`]) dispatched from
    /// a binary heap in (time, kind) order, with O(1) idle fast-forward
    /// when the policy can bound its next due slot
    /// ([`crate::ScrubPolicy::idle_until`]).
    ///
    /// Event payloads live in the simulation (`pending`, the engine's
    /// slot clock); the heap holds exactly one live entry per stream plus
    /// the campaign boundaries for this segment, and is rebuilt on every
    /// call — so checkpoints carry no queue state and remain
    /// byte-identical to stepped-engine checkpoints.
    fn advance_to_event(&mut self, stop: SimTime, batched: bool) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        self.start();
        let _phase = tel::phase("engine.event_loop");
        let mut heap: BinaryHeap<Reverse<Ev>> = BinaryHeap::with_capacity(8);
        let push = |heap: &mut BinaryHeap<Reverse<Ev>>, at: SimTime, kind: EvKind| {
            heap.push(Reverse(Ev {
                at,
                kind,
                label: "",
            }));
        };
        push(&mut heap, stop, EvKind::HorizonEnd);
        if let Some(op) = self.pending {
            push(&mut heap, op.at, EvKind::Demand);
        }
        if let Some(e) = &self.engine {
            push(&mut heap, e.next_slot(), EvKind::Scrub);
        }
        if tel::enabled() {
            if let Some(spec) = &self.config.fault_campaign {
                for (t, label) in event::campaign_boundaries(spec, self.clock, stop) {
                    heap.push(Reverse(Ev {
                        at: SimTime::from_secs(t),
                        kind: EvKind::Campaign,
                        label,
                    }));
                }
            }
        }
        while let Some(Reverse(ev)) = heap.pop() {
            match ev.kind {
                EvKind::HorizonEnd => break,
                EvKind::Demand => {
                    let op = self.pending.expect("demand event implies pending op");
                    debug_assert_eq!(op.at.secs(), ev.at.secs());
                    self.exec_demand_op(op);
                    if let Some(next) = self.pending {
                        push(&mut heap, next.at, EvKind::Demand);
                    }
                }
                EvKind::Scrub => {
                    let demand_due = self.pending.map(|op| op.at);
                    let engine = self.engine.as_mut().expect("scrub event implies engine");
                    let now = engine.next_slot();
                    debug_assert_eq!(now.secs(), ev.at.secs());
                    // Idle fast-forward: between region passes, jump the
                    // slot clock straight to the next due time instead of
                    // idling through the cadence grid. Per-line error
                    // state needs no walking either way — drift
                    // fast-forwards analytically on next touch.
                    let skipped = match engine.policy().idle_until(now) {
                        Some(due) if due > now => {
                            engine.skip_idle_slots_before(due, stop, &self.memory)
                        }
                        _ => 0,
                    };
                    if skipped == 0 {
                        let threads = self.config.threads.max(1);
                        if !(batched
                            && engine.step_batch(&mut self.memory, stop, demand_due, threads))
                        {
                            engine.step(&mut self.memory);
                        }
                    }
                    let next = self.engine.as_ref().expect("still present").next_slot();
                    push(&mut heap, next, EvKind::Scrub);
                }
                EvKind::Campaign => {
                    tel::counter_add(tel::Counter::CampaignBoundaries, 1);
                    tel::event(
                        ev.at.secs(),
                        tel::EventKind::CampaignBoundary {
                            label: ev.label.to_string(),
                        },
                    );
                }
            }
        }
    }

    /// Consumes the simulation and produces the final report (plus the
    /// telemetry mirrors). Private: reached via `run`/`finish`.
    fn into_report(self) -> SimReport {
        let window_ns = self.config.horizon_s * 1e9;
        let bw = self.memory.bandwidth();
        let base_read = self.memory.timing().read_ns;
        let report = SimReport {
            workload: self.config.traffic.label(),
            policy: self.config.policy.label(),
            code: self.memory.code().name().to_string(),
            horizon_s: self.config.horizon_s,
            num_lines: self.config.geometry.num_lines(),
            stats: self.memory.stats(),
            engine: self.engine.as_ref().map(|e| *e.stats()).unwrap_or_default(),
            scrub_energy_uj: self.memory.energy().scrub_total_pj() / 1e6,
            demand_energy_uj: self.memory.energy().demand_total_pj() / 1e6,
            mean_wear: self.memory.mean_wear(),
            max_wear: self.memory.max_wear(),
            worn_cells: self.memory.total_worn_cells(),
            scrub_utilization: bw.scrub_utilization(window_ns),
            demand_read_latency_ns: bw.demand_read_latency_ns(base_read, window_ns),
            measured_read_latency_ns: self.memory.measured_demand_read_latency_ns(),
            first_unrepairable_s: self.memory.first_unrepairable_s(),
            degraded_banks: self.memory.degraded_banks(),
        };
        if tel::enabled() {
            // Report-level mirrors of the op-level counters: integer adds
            // commute, so across any number of concurrent simulations the
            // `report_*` totals reconcile exactly with the op-level ones.
            tel::counter_add(tel::Counter::ReportScrubProbes, report.stats.scrub_probes);
            tel::counter_add(
                tel::Counter::ReportScrubWritebacks,
                report.stats.scrub_writebacks,
            );
            tel::counter_add(tel::Counter::ReportUncorrectable, report.uncorrectable());
            tel::event(
                self.config.horizon_s,
                tel::EventKind::SimDone {
                    policy: report.policy.clone(),
                    workload: report.workload.clone(),
                    seed: self.config.seed,
                    scrub_probes: report.stats.scrub_probes,
                    scrub_writes: report.stats.scrub_writebacks,
                    ue: report.uncorrectable(),
                    demand_ue: report.stats.demand_ue,
                    scrub_energy_uj: report.scrub_energy_uj,
                    mean_wear: report.mean_wear,
                },
            );
        }
        report
    }
}

/// Canonical encoding of everything in a [`SimConfig`] that determines the
/// simulated trajectory. Embedded in snapshots and verified on resume so a
/// snapshot cannot silently continue under a different run's configuration.
/// `threads` is deliberately excluded: it shapes execution, never results.
fn fingerprint(config: &SimConfig) -> Vec<u8> {
    let mut w = Writer::new();
    w.put_u64(config.seed);
    w.put_u32(config.geometry.num_lines());
    w.put_u32(config.geometry.banks());
    w.put_f64(config.horizon_s);
    w.put_str(&config.policy.label());
    w.put_str(config.code.name());
    w.put_str(&config.traffic.label());
    match &config.fault_campaign {
        Some(spec) => {
            w.put_u8(1);
            w.put_str(&spec.to_string());
        }
        None => w.put_u8(0),
    }
    match config.wear_leveling {
        Some(period) => {
            w.put_u8(1);
            w.put_u32(period);
        }
        None => w.put_u8(0),
    }
    match config.inband_writeback_theta {
        Some(theta) => {
            w.put_u8(1);
            w.put_u32(theta);
        }
        None => w.put_u8(0),
    }
    w.put_u8(match config.probe_kind {
        ProbeKind::FullDecode => 0,
        ProbeKind::CrcThenDecode => 1,
    });
    match config.repair {
        Some(rc) => {
            w.put_u8(1);
            w.put_u16(rc.ecp_entries_per_line);
            w.put_u32(rc.spare_lines_per_bank);
        }
        None => w.put_u8(0),
    }
    match config.ue_recovery {
        Some(rc) => {
            w.put_u8(1);
            w.put_f64(rc.recover_prob);
        }
        None => w.put_u8(0),
    }
    w.into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_config(policy: PolicyKind, code: CodeSpec) -> SimConfig {
        SimConfig::builder()
            .num_lines(1024)
            .policy(policy)
            .code(code)
            .traffic(DemandTraffic::suite(WorkloadId::KvCache))
            .horizon_s(4.0 * 3600.0)
            .seed(11)
            .build()
    }

    #[test]
    fn runs_and_reports() {
        let r = Simulation::new(quick_config(
            PolicyKind::Basic { interval_s: 900.0 },
            CodeSpec::secded_line(),
        ))
        .run();
        // 16 sweeps over 1024 lines in 4 hours.
        assert!(r.stats.scrub_probes >= 15 * 1024);
        assert!(r.stats.demand_reads > 0);
        assert!(r.scrub_energy_uj > 0.0);
    }

    #[test]
    fn idle_traffic_runs_scrub_only() {
        let config = SimConfig::builder()
            .num_lines(512)
            .policy(PolicyKind::Basic { interval_s: 1800.0 })
            .traffic(DemandTraffic::Idle)
            .horizon_s(3600.0)
            .seed(12)
            .build();
        let r = Simulation::new(config).run();
        assert_eq!(r.stats.demand_reads, 0);
        assert_eq!(r.stats.demand_writes, 0);
        assert!(r.stats.scrub_probes > 0);
        assert_eq!(r.workload, "idle");
    }

    #[test]
    fn no_policy_no_traffic_terminates() {
        let config = SimConfig::builder()
            .num_lines(64)
            .policy(PolicyKind::None)
            .traffic(DemandTraffic::Idle)
            .horizon_s(100.0)
            .seed(13)
            .build();
        let r = Simulation::new(config).run();
        assert_eq!(r.stats.scrub_probes, 0);
        assert_eq!(r.stats.demand_reads, 0);
    }

    /// The execution-layer contract at full-simulation granularity: for
    /// every batchable policy, under both idle and demand-interleaved
    /// traffic, the unbatched path, the batched single-thread path, and
    /// the batched 8-thread path produce identical reports — every
    /// counter, every energy total, every f64, bit for bit.
    #[test]
    fn batched_and_parallel_runs_are_bit_identical() {
        let policies = [
            PolicyKind::Basic { interval_s: 1200.0 },
            PolicyKind::Threshold {
                interval_s: 1200.0,
                theta: 4,
            },
            PolicyKind::AgeAware {
                interval_s: 1200.0,
                theta: 4,
                min_age_s: 600.0,
            },
        ];
        let traffics = [
            DemandTraffic::Idle,
            DemandTraffic::suite(WorkloadId::KvCache),
        ];
        for policy in &policies {
            for traffic in &traffics {
                let cfg = |threads: usize| {
                    SimConfig::builder()
                        .num_lines(1024)
                        .policy(policy.clone())
                        .code(CodeSpec::bch_line(6))
                        .traffic(traffic.clone())
                        .horizon_s(3.0 * 3600.0)
                        .seed(33)
                        .threads(threads)
                        .build()
                };
                let unbatched = Simulation::new(cfg(1)).run_unbatched();
                let serial = Simulation::new(cfg(1)).run();
                let parallel = Simulation::new(cfg(8)).run();
                assert_eq!(unbatched, serial, "{policy:?}/{traffic:?}");
                assert_eq!(serial, parallel, "{policy:?}/{traffic:?}");
                assert!(serial.stats.scrub_probes > 0);
            }
        }
    }

    #[test]
    fn campaign_repair_and_recovery_flow_through_config() {
        let mk = |campaign: bool| {
            let mut b = SimConfig::builder();
            b.num_lines(512)
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::Basic { interval_s: 900.0 })
                .traffic(DemandTraffic::Idle)
                .horizon_s(3600.0)
                .seed(17)
                .repair(pcm_memsim::RepairConfig::default())
                .ue_recovery(pcm_memsim::RecoveryConfig { recover_prob: 0.0 });
            if campaign {
                b.fault_campaign(
                    "seed=3;seu=lines:512,count:6,window:1800"
                        .parse()
                        .expect("valid spec"),
                );
            }
            Simulation::new(b.build()).run()
        };
        let baseline = mk(false);
        let bombarded = mk(true);
        // 6 SEUs per line overwhelm SECDED (though the basic policy's
        // unconditional write-backs keep clearing them between probes):
        // the campaign must surface as extra uncorrectable errors.
        assert!(
            bombarded.uncorrectable() > baseline.uncorrectable() + 100,
            "campaign {} vs baseline {}",
            bombarded.uncorrectable(),
            baseline.uncorrectable()
        );
        // SEUs are data faults, not worn cells: the repair hierarchy
        // rightly leaves them to scrub write-backs.
        assert_eq!(bombarded.stats.lines_retired, 0);
        assert_eq!(bombarded.degraded_banks, 0);
        assert!(bombarded.first_unrepairable_s.is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let run = || {
            Simulation::new(quick_config(
                PolicyKind::combined_default(900.0),
                CodeSpec::bch_line(6),
            ))
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.scrub_energy_uj, b.scrub_energy_uj);
    }

    #[test]
    fn wear_leveling_runs_and_copies() {
        let mut b = SimConfig::builder();
        b.num_lines(512)
            .policy(PolicyKind::None)
            .traffic(DemandTraffic::suite(WorkloadId::Logging))
            .horizon_s(4.0 * 3600.0)
            .seed(21)
            .wear_leveling(8);
        let r = Simulation::new(b.build()).run();
        assert!(r.stats.wear_level_writes > 0);
        assert_eq!(
            r.stats.wear_level_writes,
            r.stats.demand_writes / 8,
            "one rotation copy per 8 demand writes"
        );
    }

    #[test]
    fn inband_writeback_cuts_demand_ues_without_scrub() {
        let mk = |inband: bool| {
            let mut b = SimConfig::builder();
            b.num_lines(1024)
                .code(CodeSpec::secded_line())
                .policy(PolicyKind::None)
                .traffic(DemandTraffic::suite(WorkloadId::WebServe))
                .horizon_s(12.0 * 3600.0)
                .seed(22);
            if inband {
                b.inband_writeback(1);
            }
            Simulation::new(b.build()).run()
        };
        let plain = mk(false);
        let inband = mk(true);
        assert!(
            inband.stats.demand_ue < plain.stats.demand_ue.max(1),
            "inband {} vs plain {}",
            inband.stats.demand_ue,
            plain.stats.demand_ue
        );
    }

    #[test]
    fn combined_beats_basic_on_writes_and_ues() {
        let basic = Simulation::new(quick_config(
            PolicyKind::Basic { interval_s: 900.0 },
            CodeSpec::secded_line(),
        ))
        .run();
        let combined = Simulation::new(quick_config(
            PolicyKind::combined_default(900.0),
            CodeSpec::bch_line(6),
        ))
        .run();
        assert!(
            combined.scrub_writes() * 4 < basic.scrub_writes().max(4),
            "combined {} vs basic {} scrub writes",
            combined.scrub_writes(),
            basic.scrub_writes()
        );
        assert!(
            combined.uncorrectable() <= basic.uncorrectable(),
            "combined {} vs basic {} UEs",
            combined.uncorrectable(),
            basic.uncorrectable()
        );
    }
}
