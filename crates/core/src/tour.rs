//! Tour scrub: an IOPS-budgeted sweep that shares its token bucket with
//! demand traffic, modeled on kimberlite's `Scrubbing.tla`.
//!
//! A *tour* visits every line exactly once. Unlike the paper's policies,
//! which assume scrub probes are free to schedule, the tour scheduler
//! spends from a token bucket refilled at `iops` tokens/second; demand
//! reads and writes drain the same bucket, so a busy machine naturally
//! slows its scrub — but never stalls it: after `max_defer` consecutive
//! throttled slots the next probe is *forced* (the anti-starvation
//! boost), which caps any tour at `num_lines * (max_defer + 1)` slots.
//! That cap is the executable form of the TLA property `ScrubProgress`,
//! and is checked three ways: exhaustive small-model BFS
//! (`pcm_analysis::modelcheck`), stateful proptest against this very
//! implementation, and the `starvation_max_lag` telemetry gauge at run
//! time.
//!
//! Each bank starts its share of the tour at a *randomized origin*
//! (derived deterministically from the run seed), so a fleet of machines
//! booted together does not synchronize its scrub storms.

use pcm_memsim::{AccessResult, LineAddr, SimTime};
use scrub_checkpoint::{CheckpointError, Reader, Writer};
use scrub_telemetry as tel;

use crate::policy::{ScrubAction, ScrubContext, ScrubPolicy};
use crate::threshold::ThresholdScrub;

/// The token-bucket parameters of a [`TourScrub`], as plain data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TourBudget {
    /// Bucket refill rate (tokens per second); every probe, demand read,
    /// and demand write costs one token.
    pub iops: f64,
    /// Bucket capacity (burst allowance), in tokens.
    pub burst: f64,
    /// Consecutive throttled slots tolerated before a probe is forced.
    pub max_defer: u32,
}

/// SplitMix64: the standard 64-bit finalizer-style PRNG step, used here
/// only to derive per-bank tour origins from the run seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// IOPS-budgeted tour scrub with randomized per-bank origins and lazy
/// write-back at `theta` errors.
///
/// # Examples
///
/// ```
/// use scrub_core::{TourBudget, TourScrub};
/// let p = TourScrub::new(
///     900.0,
///     65_536,
///     8,
///     4,
///     TourBudget { iops: 200.0, burst: 64.0, max_defer: 8 },
///     7,
/// );
/// assert_eq!(p.progress_bound_slots(), 65_536 * 9);
/// ```
#[derive(Debug, Clone)]
pub struct TourScrub {
    // --- configuration (rebuilt from the run config on resume) ---
    interval_s: f64,
    num_lines: u32,
    banks: u32,
    theta: u32,
    budget: TourBudget,
    /// Per-bank tour origin: bank `b` visits its `j`-th line as
    /// `b + ((origins[b] + j) % count_b) * banks`.
    origins: Vec<u32>,
    /// Test-only: disable the anti-starvation boost, making the scheduler
    /// deliberately unfair. Never serialized.
    unfair: bool,
    // --- mutable state (checkpointed) ---
    /// Tour position in `0..num_lines`; position `p` maps to bank
    /// `p % banks`, per-bank index `p / banks`.
    pos: u32,
    tours_completed: u64,
    /// Tokens currently in the bucket, `0.0..=burst`.
    tokens: f64,
    last_refill: SimTime,
    /// Consecutive slots throttled since the last probe.
    defer_streak: u32,
    throttled_slots: u64,
    forced_probes: u64,
    /// Slots spent in the tour in progress.
    slots_this_tour: u64,
    /// Longest completed tour, in slots (the measured `ScrubProgress`
    /// lag; must stay within [`TourScrub::progress_bound_slots`]).
    max_tour_slots: u64,
}

impl TourScrub {
    /// Creates a tour scrubber.
    ///
    /// * `interval_s` — unthrottled tour period (sets the slot cadence
    ///   `interval_s / num_lines`; contention stretches real tours).
    /// * `theta` — lazy write-back threshold.
    /// * `budget` — token-bucket parameters shared with demand traffic.
    /// * `seed` — run seed; per-bank origins derive from it.
    ///
    /// # Panics
    ///
    /// Panics on non-positive interval/iops/burst, zero lines/banks, or
    /// `theta == 0`.
    pub fn new(
        interval_s: f64,
        num_lines: u32,
        banks: u32,
        theta: u32,
        budget: TourBudget,
        seed: u64,
    ) -> Self {
        assert!(interval_s > 0.0, "interval must be positive");
        assert!(num_lines > 0, "need at least one line");
        assert!(banks > 0 && banks <= num_lines, "need 1..=num_lines banks");
        assert!(theta >= 1, "theta must be >= 1");
        assert!(
            budget.iops.is_finite() && budget.iops > 0.0,
            "iops must be positive"
        );
        assert!(
            budget.burst.is_finite() && budget.burst >= 1.0,
            "burst must be at least one token"
        );
        let origins = (0..banks)
            .map(|b| {
                let count = Self::bank_line_count(num_lines, banks, b);
                (splitmix64(seed ^ 0x0074_5552 ^ u64::from(b)) % u64::from(count)) as u32
            })
            .collect();
        Self {
            interval_s,
            num_lines,
            banks,
            theta,
            budget,
            origins,
            unfair: false,
            pos: 0,
            tours_completed: 0,
            tokens: budget.burst,
            last_refill: SimTime::ZERO,
            defer_streak: 0,
            throttled_slots: 0,
            forced_probes: 0,
            slots_this_tour: 0,
            max_tour_slots: 0,
        }
    }

    /// Lines owned by bank `b` under low-order interleaving.
    fn bank_line_count(num_lines: u32, banks: u32, b: u32) -> u32 {
        num_lines / banks + u32::from(b < num_lines % banks)
    }

    /// The `ScrubProgress` bound: no tour — and therefore no gap between
    /// consecutive probes of any one line — can exceed this many slots,
    /// however hard demand traffic drains the bucket.
    pub fn progress_bound_slots(&self) -> u64 {
        u64::from(self.num_lines) * (u64::from(self.budget.max_defer) + 1)
    }

    /// Tour position (the next line index in tour order).
    pub fn position(&self) -> u32 {
        self.pos
    }

    /// Tokens currently in the bucket.
    pub fn tokens(&self) -> f64 {
        self.tokens
    }

    /// Completed tours.
    pub fn tours_completed(&self) -> u64 {
        self.tours_completed
    }

    /// Longest completed tour, in slots.
    pub fn max_tour_slots(&self) -> u64 {
        self.max_tour_slots
    }

    /// Slots throttled by an empty bucket.
    pub fn throttled_slots(&self) -> u64 {
        self.throttled_slots
    }

    /// Probes forced by the anti-starvation boost.
    pub fn forced_probes(&self) -> u64 {
        self.forced_probes
    }

    /// Per-bank tour origins (derived from the run seed).
    pub fn origins(&self) -> &[u32] {
        &self.origins
    }

    /// Test-only tripwire: disables the anti-starvation boost so
    /// saturating demand starves the tour. The starvation proptest
    /// proves the harness catches this deliberately unfair variant.
    #[doc(hidden)]
    pub fn set_unfair_for_test(&mut self, unfair: bool) {
        self.unfair = unfair;
    }

    /// The line the tour visits at position `p`: banks interleave
    /// low-order (`bank = p % banks`), and bank `b` walks its own lines
    /// from its randomized origin.
    fn addr_at(&self, p: u32) -> LineAddr {
        let b = p % self.banks;
        let j = p / self.banks;
        let count = Self::bank_line_count(self.num_lines, self.banks, b);
        LineAddr(b + ((self.origins[b as usize] + j) % count) * self.banks)
    }

    /// Refills the bucket for the time elapsed since the last charge.
    fn refill(&mut self, now: SimTime) {
        let elapsed = now.since(self.last_refill).max(0.0);
        self.tokens = (self.tokens + self.budget.iops * elapsed).min(self.budget.burst);
        self.last_refill = now;
    }

    /// Charges one demand operation against the shared bucket.
    fn charge_demand(&mut self, now: SimTime) {
        self.refill(now);
        self.tokens = (self.tokens - 1.0).max(0.0);
    }

    /// Advances the tour cursor, closing out a completed tour.
    fn advance(&mut self) {
        self.pos += 1;
        if self.pos == self.num_lines {
            self.pos = 0;
            self.tours_completed += 1;
            self.max_tour_slots = self.max_tour_slots.max(self.slots_this_tour);
            if tel::enabled() {
                tel::counter_add(tel::Counter::ToursCompleted, 1);
                tel::gauge_max(tel::Gauge::StarvationMaxLag, self.slots_this_tour);
            }
            self.slots_this_tour = 0;
        }
    }
}

impl ScrubPolicy for TourScrub {
    fn name(&self) -> &str {
        "tour"
    }

    fn probe_gap_s(&self, _ctx: &ScrubContext<'_>) -> f64 {
        self.interval_s / self.num_lines as f64
    }

    fn next_action(&mut self, ctx: &ScrubContext<'_>) -> ScrubAction {
        self.refill(ctx.now);
        self.slots_this_tour += 1;
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            self.defer_streak = 0;
            let addr = self.addr_at(self.pos);
            self.advance();
            return ScrubAction::Probe(addr);
        }
        if !self.unfair && self.defer_streak >= self.budget.max_defer {
            // Anti-starvation boost: the probe runs even with an empty
            // bucket (going into debt is modeled as clamping at zero).
            self.defer_streak = 0;
            self.forced_probes += 1;
            tel::counter_add(tel::Counter::BudgetForcedProbes, 1);
            let addr = self.addr_at(self.pos);
            self.advance();
            return ScrubAction::Probe(addr);
        }
        self.defer_streak += 1;
        self.throttled_slots += 1;
        tel::counter_add(tel::Counter::BudgetThrottled, 1);
        ScrubAction::Idle
    }

    fn wants_writeback(
        &mut self,
        _addr: LineAddr,
        result: &AccessResult,
        _ctx: &ScrubContext<'_>,
    ) -> bool {
        ThresholdScrub::threshold_rule(self.theta, result)
    }

    fn on_demand_write(&mut self, _addr: LineAddr, now: SimTime) {
        self.charge_demand(now);
    }

    fn on_demand_read(&mut self, _addr: LineAddr, now: SimTime) {
        self.charge_demand(now);
    }

    fn save_state(&self, w: &mut Writer) {
        w.put_u32(self.pos);
        w.put_u64(self.tours_completed);
        w.put_f64(self.tokens);
        w.put_f64(self.last_refill.secs());
        w.put_u32(self.defer_streak);
        w.put_u64(self.throttled_slots);
        w.put_u64(self.forced_probes);
        w.put_u64(self.slots_this_tour);
        w.put_u64(self.max_tour_slots);
        // Origins are derived from the run config; they are serialized
        // anyway as an identity check so a snapshot resumed under a
        // different seed fails loudly instead of silently re-origining.
        for &o in &self.origins {
            w.put_u32(o);
        }
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let pos = r.u32()?;
        if pos >= self.num_lines {
            return Err(CheckpointError::Malformed(format!(
                "tour position {pos} out of range ({} lines)",
                self.num_lines
            )));
        }
        let tours_completed = r.u64()?;
        let tokens = r.finite_f64("tour tokens")?;
        if !(0.0..=self.budget.burst).contains(&tokens) {
            return Err(CheckpointError::Malformed(format!(
                "tour tokens {tokens} outside bucket [0, {}]",
                self.budget.burst
            )));
        }
        let last_refill = r.time_f64("tour last refill")?;
        let defer_streak = r.u32()?;
        if defer_streak > self.budget.max_defer {
            return Err(CheckpointError::Malformed(format!(
                "tour defer streak {defer_streak} exceeds max_defer {}",
                self.budget.max_defer
            )));
        }
        let throttled_slots = r.u64()?;
        let forced_probes = r.u64()?;
        let slots_this_tour = r.u64()?;
        let max_tour_slots = r.u64()?;
        for (b, &want) in self.origins.iter().enumerate() {
            let got = r.u32()?;
            if got != want {
                return Err(CheckpointError::Malformed(format!(
                    "tour origin mismatch on bank {b}: snapshot has {got}, config derives {want}"
                )));
            }
        }
        self.pos = pos;
        self.tours_completed = tours_completed;
        self.tokens = tokens;
        self.last_refill = SimTime::from_secs(last_refill);
        self.defer_streak = defer_streak;
        self.throttled_slots = throttled_slots;
        self.forced_probes = forced_probes;
        self.slots_this_tour = slots_this_tour;
        self.max_tour_slots = max_tour_slots;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcm_ecc::CodeSpec;
    use pcm_memsim::{MemGeometry, Memory};
    use pcm_model::DeviceConfig;
    use std::collections::HashSet;

    fn budget(iops: f64, burst: f64, max_defer: u32) -> TourBudget {
        TourBudget {
            iops,
            burst,
            max_defer,
        }
    }

    fn mem(lines: u32, banks: u32) -> Memory {
        Memory::new(
            MemGeometry::new(lines, banks),
            DeviceConfig::default(),
            CodeSpec::bch_line(6),
            7,
        )
    }

    fn ctx<'a>(now_s: f64, mem: &'a Memory) -> ScrubContext<'a> {
        ScrubContext {
            now: SimTime::from_secs(now_s),
            mem,
        }
    }

    /// One tour visits every line exactly once, for bank counts that do
    /// and do not divide the line count.
    #[test]
    fn tour_is_a_permutation_of_all_lines() {
        for (lines, banks) in [(64u32, 8u32), (60, 8), (17, 3), (5, 5)] {
            for seed in [0u64, 1, 99] {
                let p = TourScrub::new(900.0, lines, banks, 4, budget(1e6, 1e6, 4), seed);
                let visited: HashSet<u32> = (0..lines).map(|i| p.addr_at(i).0).collect();
                assert_eq!(visited.len(), lines as usize, "{lines}x{banks} seed {seed}");
                assert!(visited.iter().all(|&a| a < lines));
            }
        }
    }

    /// Origins differ across seeds (the anti-storm property) and across
    /// banks, but are identical for identical seeds.
    #[test]
    fn origins_are_seeded_and_deterministic() {
        let a = TourScrub::new(900.0, 4096, 8, 4, budget(100.0, 10.0, 4), 1);
        let b = TourScrub::new(900.0, 4096, 8, 4, budget(100.0, 10.0, 4), 1);
        let c = TourScrub::new(900.0, 4096, 8, 4, budget(100.0, 10.0, 4), 2);
        assert_eq!(a.origins(), b.origins());
        assert_ne!(a.origins(), c.origins(), "different seed, different tour");
        assert!(
            a.origins().iter().collect::<HashSet<_>>().len() > 1,
            "banks should not all share one origin: {:?}",
            a.origins()
        );
    }

    /// With a full bucket and no demand, every slot probes.
    #[test]
    fn unthrottled_tour_probes_every_slot() {
        let m = mem(16, 2);
        let mut p = TourScrub::new(160.0, 16, 2, 4, budget(1.0, 16.0, 4), 3);
        let mut probes = 0;
        for s in 0..16 {
            match p.next_action(&ctx(10.0 * s as f64, &m)) {
                ScrubAction::Probe(_) => probes += 1,
                ScrubAction::Idle => {}
            }
        }
        assert_eq!(probes, 16);
        assert_eq!(p.tours_completed(), 1);
        assert_eq!(p.max_tour_slots(), 16);
    }

    /// An empty bucket throttles, and the anti-starvation boost forces a
    /// probe after exactly `max_defer` deferred slots.
    #[test]
    fn starved_bucket_throttles_then_forces() {
        let m = mem(8, 2);
        // iops so small the bucket never meaningfully refills.
        let mut p = TourScrub::new(8.0, 8, 2, 4, budget(1e-9, 1.0, 3), 5);
        // Drain the single token.
        p.on_demand_read(LineAddr(0), SimTime::ZERO);
        let mut pattern = Vec::new();
        for s in 0..8 {
            let a = p.next_action(&ctx(s as f64, &m));
            pattern.push(matches!(a, ScrubAction::Probe(_)));
        }
        // 3 throttled slots, then a forced probe, repeating.
        assert_eq!(
            pattern,
            [false, false, false, true, false, false, false, true]
        );
        assert_eq!(p.forced_probes(), 2);
        assert_eq!(p.throttled_slots(), 6);
    }

    /// The unfair variant starves forever — the tripwire the starvation
    /// proptest must catch.
    #[test]
    fn unfair_variant_never_forces() {
        let m = mem(8, 2);
        let mut p = TourScrub::new(8.0, 8, 2, 4, budget(1e-9, 1.0, 3), 5);
        p.set_unfair_for_test(true);
        p.on_demand_read(LineAddr(0), SimTime::ZERO);
        for s in 0..100 {
            assert_eq!(p.next_action(&ctx(s as f64, &m)), ScrubAction::Idle);
        }
        assert_eq!(p.forced_probes(), 0);
    }

    /// Demand traffic drains the same bucket the scrubber spends from.
    #[test]
    fn demand_charges_shared_bucket() {
        let m = mem(8, 2);
        let mut p = TourScrub::new(8.0, 8, 2, 4, budget(1e-9, 4.0, 10), 5);
        assert_eq!(p.tokens(), 4.0);
        p.on_demand_read(LineAddr(0), SimTime::ZERO);
        p.on_demand_write(LineAddr(1), SimTime::ZERO);
        assert_eq!(p.tokens(), 2.0);
        // Two probes spend the rest; the third slot throttles.
        assert!(matches!(
            p.next_action(&ctx(0.0, &m)),
            ScrubAction::Probe(_)
        ));
        assert!(matches!(
            p.next_action(&ctx(1.0, &m)),
            ScrubAction::Probe(_)
        ));
        assert_eq!(p.next_action(&ctx(2.0, &m)), ScrubAction::Idle);
    }

    /// The bucket refills at `iops` and caps at `burst`.
    #[test]
    fn bucket_refills_and_caps() {
        let mut p = TourScrub::new(8.0, 8, 2, 4, budget(2.0, 5.0, 4), 5);
        p.on_demand_read(LineAddr(0), SimTime::ZERO);
        p.on_demand_read(LineAddr(0), SimTime::ZERO);
        p.on_demand_read(LineAddr(0), SimTime::ZERO);
        assert_eq!(p.tokens(), 2.0);
        // 1 s at 2 tokens/s refills 2, minus the one this read spends.
        p.on_demand_read(LineAddr(0), SimTime::from_secs(1.0));
        assert!((p.tokens() - 3.0).abs() < 1e-9);
        // A long quiet period caps at burst.
        p.charge_demand(SimTime::from_secs(1000.0));
        assert!((p.tokens() - 4.0).abs() < 1e-9); // burst 5 minus this charge
    }

    /// save/load round-trips mid-tour state exactly; tampered state is
    /// rejected with a typed error.
    #[test]
    fn checkpoint_roundtrip_and_validation() {
        let m = mem(64, 8);
        let mk = || TourScrub::new(640.0, 64, 8, 4, budget(0.5, 4.0, 3), 11);
        let mut p = mk();
        for s in 0..37 {
            p.on_demand_read(LineAddr(0), SimTime::from_secs(9.9 * s as f64));
            p.next_action(&ctx(10.0 * s as f64, &m));
        }
        let mut w = Writer::new();
        p.save_state(&mut w);
        let bytes = w.into_bytes();

        let mut q = mk();
        let mut r = Reader::new(&bytes);
        q.load_state(&mut r).expect("roundtrip");
        r.finish().expect("all bytes consumed");
        // Identical observable state...
        assert_eq!(q.position(), p.position());
        assert_eq!(q.tokens(), p.tokens());
        assert_eq!(q.tours_completed(), p.tours_completed());
        // ...and identical re-serialization (byte-for-byte survival).
        let mut w2 = Writer::new();
        q.save_state(&mut w2);
        assert_eq!(w2.into_bytes(), bytes);

        // Tampered tokens (beyond burst) must be rejected.
        let mut w3 = Writer::new();
        let mut bad = mk();
        bad.tokens = 4.0;
        bad.save_state(&mut w3);
        let mut evil = w3.into_bytes();
        // tokens is the third field: u32 pos + u64 tours + f64 tokens
        // (the codec is little-endian throughout).
        let off = 4 + 8;
        evil[off..off + 8].copy_from_slice(&1e9f64.to_le_bytes());
        let mut r3 = Reader::new(&evil);
        let err = mk().load_state(&mut r3).unwrap_err();
        assert!(matches!(err, CheckpointError::Malformed(_)));

        // A snapshot from a different seed fails the origin check.
        let mut w4 = Writer::new();
        mk().save_state(&mut w4);
        let other = w4.into_bytes();
        let mut r4 = Reader::new(&other);
        let mut diff_seed = TourScrub::new(640.0, 64, 8, 4, budget(0.5, 4.0, 3), 12);
        assert!(diff_seed.load_state(&mut r4).is_err());
    }

    /// Pins the codec byte order the tamper test above depends on.
    #[test]
    fn writer_is_little_endian_for_f64() {
        let mut w = Writer::new();
        w.put_f64(1.0);
        assert_eq!(w.into_bytes(), 1.0f64.to_le_bytes());
    }
}
