//! Adaptive-rate scrub: per-region sweep intervals that respond to
//! observed error pressure, trading soft-error risk against the hard-error
//! wear and energy of scrubbing too eagerly.

use pcm_memsim::{AccessResult, LineAddr, SimTime};
use scrub_checkpoint::{CheckpointError, Reader, Writer};
use scrub_telemetry as tel;

use crate::policy::{ScrubAction, ScrubContext, ScrubPolicy};
use crate::threshold::ThresholdScrub;

/// Per-region sweep state shared by the adaptive policies.
#[derive(Debug, Clone)]
pub(crate) struct RegionState {
    /// First line of the region.
    pub start: u32,
    /// One past the last line.
    pub end: u32,
    /// Next line to probe within the current pass.
    pub cursor: u32,
    /// When this region's next pass may begin.
    pub next_due: SimTime,
    /// Interval multiplier (AIMD state), bounded to
    /// `[MIN_MULT, MAX_MULT]`.
    pub mult: f64,
    /// Probes issued in the current pass.
    pub pass_probes: u64,
    /// Persistent errors seen in the current pass.
    pub pass_errors: u64,
}

pub(crate) const MIN_MULT: f64 = 0.25;
pub(crate) const MAX_MULT: f64 = 4.0;

/// Scheduler that owns the regions and the AIMD adaptation rule.
#[derive(Debug, Clone)]
pub(crate) struct RegionScheduler {
    pub regions: Vec<RegionState>,
    pub base_interval_s: f64,
    /// Mean persistent errors per probed line above which a region's
    /// interval halves.
    pub speed_up_at: f64,
    /// Mean below which it doubles.
    pub slow_down_at: f64,
    /// Region currently being swept, if any.
    active: Option<usize>,
}

impl RegionScheduler {
    pub fn new(num_lines: u32, num_regions: u32, base_interval_s: f64, theta: u32) -> Self {
        assert!(
            num_regions >= 1 && num_regions <= num_lines,
            "bad region count"
        );
        let region_size = num_lines.div_ceil(num_regions);
        let regions = (0..num_regions)
            .map(|r| {
                let start = r * region_size;
                RegionState {
                    start,
                    end: ((r + 1) * region_size).min(num_lines),
                    cursor: start,
                    next_due: SimTime::ZERO,
                    mult: 1.0,
                    pass_probes: 0,
                    pass_errors: 0,
                }
            })
            .collect();
        Self {
            regions,
            base_interval_s,
            // Err toward catching errors: speed up once lines carry half
            // the lazy-write-back budget, relax only when nearly clean.
            speed_up_at: theta as f64 * 0.5,
            slow_down_at: 0.25,
            active: None,
        }
    }

    /// Picks the next line to probe, or `None` if no region is due.
    pub fn next_line(&mut self, now: SimTime) -> Option<LineAddr> {
        if self.active.is_none() {
            // Start the most overdue region, if any.
            self.active = self
                .regions
                .iter()
                .enumerate()
                .filter(|(_, r)| r.next_due <= now)
                .min_by(|(_, a), (_, b)| {
                    a.next_due
                        .partial_cmp(&b.next_due)
                        .expect("times are finite")
                })
                .map(|(i, _)| i);
        }
        let idx = self.active?;
        let region = &mut self.regions[idx];
        let addr = LineAddr(region.cursor);
        region.cursor += 1;
        if region.cursor >= region.end {
            self.finish_pass(idx, now);
        }
        Some(addr)
    }

    /// Ends a region pass: adapts the multiplier from observed error
    /// pressure and schedules the next pass.
    fn finish_pass(&mut self, idx: usize, now: SimTime) {
        let region = &mut self.regions[idx];
        let per_line = if region.pass_probes == 0 {
            0.0
        } else {
            region.pass_errors as f64 / region.pass_probes as f64
        };
        let before = region.mult;
        if per_line > self.speed_up_at {
            region.mult = (region.mult * 0.5).max(MIN_MULT);
        } else if per_line < self.slow_down_at {
            region.mult = (region.mult * 2.0).min(MAX_MULT);
        }
        region.next_due = now + self.base_interval_s * region.mult;
        region.cursor = region.start;
        region.pass_probes = 0;
        region.pass_errors = 0;
        if tel::enabled() {
            tel::counter_add(tel::Counter::RegionPasses, 1);
            if region.mult < before {
                tel::counter_add(tel::Counter::RegionSpeedups, 1);
            } else if region.mult > before {
                tel::counter_add(tel::Counter::RegionSlowdowns, 1);
            }
            tel::event(
                now.secs(),
                tel::EventKind::RateChange {
                    region: idx as u32,
                    mult: region.mult,
                    next_interval_s: self.base_interval_s * region.mult,
                },
            );
        }
        self.active = None;
    }

    /// Earliest time any region's next pass may begin, or `None` while a
    /// pass is active (slots then probe/skip lines, mutating state).
    /// While no pass is active and `next_due() > now`, every slot is an
    /// Idle that touches nothing — the idle fast-forward guarantee
    /// behind [`crate::ScrubPolicy::idle_until`].
    pub fn next_due(&self) -> Option<SimTime> {
        if self.active.is_some() {
            return None;
        }
        self.regions
            .iter()
            .map(|r| r.next_due)
            .min_by(|a, b| a.partial_cmp(b).expect("times are finite"))
    }

    /// Records a probe result for the active pass's statistics.
    pub fn record_probe(&mut self, addr: LineAddr, persistent_bits: u32) {
        // The probe belongs to whichever region contains the address; the
        // active pass may already have rolled over, so locate by range.
        if let Some(region) = self
            .regions
            .iter_mut()
            .find(|r| addr.0 >= r.start && addr.0 < r.end)
        {
            region.pass_probes += 1;
            region.pass_errors += persistent_bits as u64;
        }
    }

    /// Mean interval multiplier across regions (diagnostic).
    pub fn mean_mult(&self) -> f64 {
        self.regions.iter().map(|r| r.mult).sum::<f64>() / self.regions.len() as f64
    }

    /// Serializes the scheduler's mutable state: per-region cursors, due
    /// times, AIMD multipliers, pass statistics, and the active region.
    pub fn save_state(&self, w: &mut Writer) {
        w.put_u32(self.regions.len() as u32);
        for region in &self.regions {
            w.put_u32(region.cursor);
            w.put_f64(region.next_due.secs());
            w.put_f64(region.mult);
            w.put_u64(region.pass_probes);
            w.put_u64(region.pass_errors);
        }
        match self.active {
            Some(idx) => {
                w.put_u8(1);
                w.put_u32(idx as u32);
            }
            None => w.put_u8(0),
        }
    }

    /// Restores state captured by [`RegionScheduler::save_state`] onto a
    /// scheduler with the same region partition.
    pub fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        let n = r.u32()? as usize;
        if n != self.regions.len() {
            return Err(CheckpointError::Malformed(format!(
                "region count mismatch: snapshot {n}, config {}",
                self.regions.len()
            )));
        }
        let mut restored = Vec::with_capacity(n);
        for (idx, region) in self.regions.iter().enumerate() {
            let cursor = r.u32()?;
            if cursor < region.start || cursor >= region.end {
                return Err(CheckpointError::Malformed(format!(
                    "region {idx} cursor {cursor} outside [{}, {})",
                    region.start, region.end
                )));
            }
            let next_due = r.time_f64(&format!("region {idx} next_due"))?;
            let mult = r.finite_f64(&format!("region {idx} mult"))?;
            if !(MIN_MULT..=MAX_MULT).contains(&mult) {
                return Err(CheckpointError::Malformed(format!(
                    "region {idx} multiplier {mult} outside [{MIN_MULT}, {MAX_MULT}]"
                )));
            }
            restored.push(RegionState {
                start: region.start,
                end: region.end,
                cursor,
                next_due: SimTime::from_secs(next_due),
                mult,
                pass_probes: r.u64()?,
                pass_errors: r.u64()?,
            });
        }
        let active = if r.bool()? {
            let idx = r.u32()? as usize;
            if idx >= n {
                return Err(CheckpointError::Malformed(format!(
                    "active region {idx} out of range ({n} regions)"
                )));
            }
            Some(idx)
        } else {
            None
        };
        self.regions = restored;
        self.active = active;
        Ok(())
    }
}

/// Adaptive-rate scrub: regions that stay clean get scrubbed up to 4×
/// less often; regions under error pressure get scrubbed up to 4× more
/// often. Combined with the lazy write-back threshold.
///
/// # Examples
///
/// ```
/// use scrub_core::AdaptiveScrub;
/// let p = AdaptiveScrub::new(900.0, 65_536, 5, 64);
/// assert_eq!(p.num_regions(), 64);
/// ```
#[derive(Debug, Clone)]
pub struct AdaptiveScrub {
    sched: RegionScheduler,
    num_lines: u32,
    theta: u32,
}

impl AdaptiveScrub {
    /// Creates an adaptive scrubber with `num_regions` independently paced
    /// regions over a base sweep interval.
    ///
    /// # Panics
    ///
    /// Panics if parameters are degenerate (zero lines/regions/theta,
    /// non-positive interval, or more regions than lines).
    pub fn new(base_interval_s: f64, num_lines: u32, theta: u32, num_regions: u32) -> Self {
        assert!(base_interval_s > 0.0, "scrub interval must be positive");
        assert!(num_lines > 0, "need at least one line");
        assert!(theta >= 1, "theta must be >= 1");
        Self {
            sched: RegionScheduler::new(num_lines, num_regions, base_interval_s, theta),
            num_lines,
            theta,
        }
    }

    /// Number of independently paced regions.
    pub fn num_regions(&self) -> u32 {
        self.sched.regions.len() as u32
    }

    /// Mean region interval multiplier (1.0 = base rate; >1 = relaxed).
    pub fn mean_interval_multiplier(&self) -> f64 {
        self.sched.mean_mult()
    }
}

impl ScrubPolicy for AdaptiveScrub {
    fn name(&self) -> &str {
        "adaptive"
    }

    fn probe_gap_s(&self, _ctx: &ScrubContext<'_>) -> f64 {
        // Slot pacing stays at the base rate; adaptation works by letting
        // regions go idle (Idle slots consume no memory bandwidth).
        self.sched.base_interval_s / self.num_lines as f64
    }

    fn next_action(&mut self, ctx: &ScrubContext<'_>) -> ScrubAction {
        match self.sched.next_line(ctx.now) {
            Some(addr) => ScrubAction::Probe(addr),
            None => ScrubAction::Idle,
        }
    }

    fn wants_writeback(
        &mut self,
        addr: LineAddr,
        result: &AccessResult,
        _ctx: &ScrubContext<'_>,
    ) -> bool {
        self.sched.record_probe(addr, result.persistent_bits);
        ThresholdScrub::threshold_rule(self.theta, result)
    }

    fn on_demand_write(&mut self, _addr: LineAddr, _now: SimTime) {}

    fn idle_until(&self, _now: SimTime) -> Option<SimTime> {
        self.sched.next_due()
    }

    fn save_state(&self, w: &mut Writer) {
        self.sched.save_state(w);
    }

    fn load_state(&mut self, r: &mut Reader<'_>) -> Result<(), CheckpointError> {
        self.sched.load_state(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_partition_lines() {
        let s = RegionScheduler::new(100, 7, 900.0, 4);
        assert_eq!(s.regions.first().expect("nonempty").start, 0);
        assert_eq!(s.regions.last().expect("nonempty").end, 100);
        for w in s.regions.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn clean_region_slows_down() {
        let mut s = RegionScheduler::new(10, 1, 100.0, 4);
        let now = SimTime::from_secs(1.0);
        for _ in 0..10 {
            let addr = s.next_line(now).expect("due");
            s.record_probe(addr, 0);
        }
        assert_eq!(s.regions[0].mult, 2.0);
        assert!(s.regions[0].next_due > now + 199.0);
        // Not due again until next_due.
        assert!(s.next_line(now + 10.0).is_none());
    }

    #[test]
    fn dirty_region_speeds_up() {
        let mut s = RegionScheduler::new(10, 1, 100.0, 4);
        let now = SimTime::from_secs(1.0);
        for _ in 0..10 {
            let addr = s.next_line(now).expect("due");
            s.record_probe(addr, 5); // heavy error pressure
        }
        assert_eq!(s.regions[0].mult, 0.5);
    }

    #[test]
    fn multiplier_stays_bounded() {
        let mut s = RegionScheduler::new(4, 1, 1.0, 4);
        let mut now = SimTime::from_secs(0.0);
        for _ in 0..20 {
            now += 1000.0;
            for _ in 0..4 {
                if let Some(addr) = s.next_line(now) {
                    s.record_probe(addr, 0);
                }
            }
        }
        assert!(s.regions[0].mult <= MAX_MULT);
        let mut s2 = RegionScheduler::new(4, 1, 1.0, 4);
        let mut now = SimTime::from_secs(0.0);
        for _ in 0..20 {
            now += 1000.0;
            for _ in 0..4 {
                if let Some(addr) = s2.next_line(now) {
                    s2.record_probe(addr, 9);
                }
            }
        }
        assert!(s2.regions[0].mult >= MIN_MULT);
    }

    #[test]
    fn sweeps_cover_whole_region() {
        let mut s = RegionScheduler::new(6, 2, 100.0, 4);
        let now = SimTime::from_secs(1.0);
        let mut seen = Vec::new();
        for _ in 0..6 {
            let a = s.next_line(now).expect("due");
            s.record_probe(a, 0);
            seen.push(a.0);
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2, 3, 4, 5]);
    }
}
