//! Scratch component profiler: per-path costs of the sim hot loop.
//! Run: cargo run --release -p scrub-bench --example profile_components

use pcm_ecc::CodeSpec;
use pcm_memsim::{FaultEngine, LineAddr, MemGeometry, Memory, OpKind, SimTime, TraceSource};
use pcm_model::DeviceConfig;
use pcm_workloads::WorkloadId;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scrub_core::{BasicScrub, CombinedScrub, ScrubEngine};
use std::time::Instant;

fn time<F: FnMut() -> u64>(label: &str, iters: u64, mut f: F) {
    // warmup
    f();
    let t0 = Instant::now();
    let mut acc = 0u64;
    for _ in 0..iters {
        acc = acc.wrapping_add(f());
    }
    let dt = t0.elapsed().as_nanos() as f64 / iters as f64;
    println!("{label:44} {dt:10.1} ns/iter (acc {acc})");
}

fn main() {
    let mut rng = StdRng::seed_from_u64(1);
    let engine = FaultEngine::new(&DeviceConfig::default(), 288);

    // multinomial occupancy re-roll
    {
        let mut r = StdRng::seed_from_u64(2);
        time("sample_multinomial(288, 4 uniform)", 200_000, || {
            let v = pcm_model::math::sample_multinomial(&mut r, 288, &[0.25, 0.25, 0.25, 0.25]);
            v[0] as u64
        });
    }
    // binomial at various np
    {
        let mut r = StdRng::seed_from_u64(3);
        for (n, p) in [(288u32, 0.25f64), (288, 0.01), (288, 1e-6), (72, 0.33)] {
            time(&format!("sample_binomial({n}, {p})"), 200_000, || {
                pcm_model::math::sample_binomial(&mut r, n, p) as u64
            });
        }
    }
    // fault engine paths on a realistic line
    {
        let mut line = engine.fresh_line(SimTime::ZERO, &mut rng);
        let mut t = 1000.0f64;
        time("advance +0.5s jump (aged line)", 200_000, || {
            t += 0.5;
            engine.advance(&mut line, SimTime::from_secs(t), &mut rng) as u64
        });
        time("transient_errors (aged line)", 200_000, || {
            engine.transient_errors(&line, SimTime::from_secs(t), &mut rng) as u64
        });
        time("on_write", 100_000, || {
            t += 0.5;
            engine.on_write(&mut line, SimTime::from_secs(t), &mut rng);
            line.wear as u64
        });
    }
    // classify
    {
        let secded = CodeSpec::secded_line();
        let bch6 = CodeSpec::bch_line(6);
        let mut r = StdRng::seed_from_u64(4);
        time("classify secded 0 errs", 200_000, || {
            matches!(secded.classify(0, &mut r), pcm_ecc::ClassifyOutcome::Clean) as u64
        });
        time("classify secded 2 errs", 200_000, || {
            matches!(
                secded.classify(2, &mut r),
                pcm_ecc::ClassifyOutcome::Corrected { .. }
            ) as u64
        });
        time("classify bch6 3 errs", 200_000, || {
            matches!(
                bch6.classify(3, &mut r),
                pcm_ecc::ClassifyOutcome::Corrected { .. }
            ) as u64
        });
    }
    // trace generation
    {
        let mut trace = WorkloadId::DbOltp.build(8192, 1.0, 7);
        time("DbOltp next_op", 500_000, || {
            trace.next_op().map(|o| o.addr.index() as u64).unwrap_or(0)
        });
        let mut s = WorkloadId::Stream.build(8192, 1.0, 7);
        time("Stream next_op", 500_000, || {
            s.next_op().map(|o| o.addr.index() as u64).unwrap_or(0)
        });
    }
    // full memory op paths
    {
        let mut mem = Memory::new(
            MemGeometry::new(8192, 8),
            DeviceConfig::default(),
            CodeSpec::bch_line(6),
            6,
        );
        let mut trace = WorkloadId::DbOltp.build(8192, 1.0, 7);
        let mut now = SimTime::ZERO;
        // age the memory a bit
        for _ in 0..20_000 {
            let op = trace.next_op().expect("inf");
            now = op.at;
            match op.kind {
                OpKind::Read => {
                    mem.demand_read(op.addr, op.at);
                }
                OpKind::Write => mem.demand_write(op.addr, op.at),
            }
        }
        let mut i = 0u32;
        time("demand_read (bch6, aged mem)", 200_000, || {
            i = (i.wrapping_mul(2654435761)) % 8192;
            now += 0.001;
            mem.demand_read(LineAddr(i), now).persistent_bits as u64
        });
        time("demand_write (bch6, aged mem)", 100_000, || {
            i = (i.wrapping_mul(2654435761)) % 8192;
            now += 0.001;
            mem.demand_write(LineAddr(i), now);
            0
        });
    }
    // scrub engine step paths
    {
        let mut mem = Memory::new(
            MemGeometry::new(8192, 8),
            DeviceConfig::default(),
            CodeSpec::secded_line(),
            4,
        );
        let mut eng = ScrubEngine::new(Box::new(BasicScrub::new(900.0, 8192)));
        time("engine.step basic+secded", 200_000, || {
            eng.step(&mut mem);
            0
        });
        let mut mem2 = Memory::new(
            MemGeometry::new(8192, 8),
            DeviceConfig::default(),
            CodeSpec::bch_line(6),
            5,
        );
        let mut eng2 = ScrubEngine::new(Box::new(CombinedScrub::new(900.0, 8192, 5, 64, 600.0)));
        time("engine.step combined+bch6", 200_000, || {
            eng2.step(&mut mem2);
            0
        });
    }
}
