//! `cargo bench --bench experiments` regenerates every paper table and
//! figure series (E1–E13) in one pass. Honors `SCRUB_QUICK=1`; otherwise
//! runs at full scale, matching what EXPERIMENTS.md records.

fn main() {
    // Criterion-style harness disabled (harness = false): this target is a
    // reproduction driver, not a timing benchmark.
    let scale = scrub_bench::Scale::from_env();
    println!("scrubsim experiment suite — scale: {scale:?}\n");
    type ExperimentFn = fn(scrub_bench::Scale) -> String;
    let experiments: [(&str, ExperimentFn); 14] = [
        ("E1", scrub_bench::experiments::e1::run),
        ("E2", scrub_bench::experiments::e2::run),
        ("E3", scrub_bench::experiments::e3::run),
        ("E4", scrub_bench::experiments::e4::run),
        ("E5", scrub_bench::experiments::e5::run),
        ("E6", scrub_bench::experiments::e6::run),
        ("E7", scrub_bench::experiments::e7::run),
        ("E8", scrub_bench::experiments::e8::run),
        ("E9", scrub_bench::experiments::e9::run),
        ("E10", scrub_bench::experiments::e10::run),
        ("E11", scrub_bench::experiments::e11::run),
        ("E12", scrub_bench::experiments::e12::run),
        ("E13", scrub_bench::experiments::e13::run),
        ("X1", scrub_bench::experiments::x1::run),
    ];
    for (name, run) in experiments {
        let started = std::time::Instant::now();
        let output = run(scale);
        println!("==== {name} ({:.1}s) ====", started.elapsed().as_secs_f64());
        println!("{output}");
    }
}
