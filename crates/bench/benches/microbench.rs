//! Criterion microbenchmarks of the performance-critical substrates:
//! GF arithmetic, BCH encode/decode, drift-model evaluation, the fault
//! engine, and end-to-end simulation stepping.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pcm_ecc::{BchCode, BitBuf, CodeSpec, GfTable, LineCode, SecdedLine};
use pcm_memsim::{FaultEngine, LineAddr, MemGeometry, Memory, SimTime};
use pcm_model::DeviceConfig;
use pcm_workloads::WorkloadId;
use scrub_core::{BasicScrub, CombinedScrub, ScrubEngine};

fn bench_gf_arith(c: &mut Criterion) {
    let gf = GfTable::new(10);
    c.bench_function("gf1024_mul_chain_1k", |b| {
        b.iter(|| {
            let mut acc = 1u16;
            for i in 1..1024u16 {
                acc = gf.mul(acc, i) ^ gf.inv(i);
            }
            std::hint::black_box(acc)
        })
    });
}

fn random_data(rng: &mut StdRng, bits: usize) -> BitBuf {
    let mut b = BitBuf::zeros(bits);
    for i in 0..bits {
        if rng.gen::<bool>() {
            b.set(i, true);
        }
    }
    b
}

fn bench_bch_codec(c: &mut Criterion) {
    let code = BchCode::new(10, 4, 512);
    let mut rng = StdRng::seed_from_u64(1);
    let data = random_data(&mut rng, 512);
    let clean = code.encode(&data);
    c.bench_function("bch4_encode_512b", |b| {
        b.iter(|| std::hint::black_box(code.encode(&data)))
    });
    c.bench_function("bch4_decode_clean", |b| {
        b.iter_batched(
            || clean.clone(),
            |mut cw| std::hint::black_box(code.decode(&mut cw)),
            BatchSize::SmallInput,
        )
    });
    c.bench_function("bch4_decode_4_errors", |b| {
        b.iter_batched(
            || {
                let mut cw = clean.clone();
                for pos in [3usize, 100, 333, 490] {
                    cw.flip(pos);
                }
                cw
            },
            |mut cw| std::hint::black_box(code.decode(&mut cw)),
            BatchSize::SmallInput,
        )
    });
    let secded = SecdedLine::new();
    let sd_clean = secded.encode(&data);
    c.bench_function("secded_line_decode_clean", |b| {
        b.iter_batched(
            || sd_clean.clone(),
            |mut cw| std::hint::black_box(secded.decode(&mut cw)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_drift_eval(c: &mut Criterion) {
    let model = DeviceConfig::default().drift_model();
    c.bench_function("drift_p_up_lut", |b| {
        let mut t = 1.0f64;
        b.iter(|| {
            t = if t > 1e9 { 1.0 } else { t * 1.001 };
            std::hint::black_box(model.p_up(2, t))
        })
    });
    c.bench_function("drift_p_up_exact_quadrature", |b| {
        b.iter(|| std::hint::black_box(model.p_up_exact(2, 86_400.0)))
    });
}

fn bench_fault_engine(c: &mut Criterion) {
    let engine = FaultEngine::new(&DeviceConfig::default(), 288);
    c.bench_function("fault_engine_advance_1h", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter_batched(
            || engine.fresh_line(SimTime::ZERO, &mut rng),
            |mut line| {
                let mut r = StdRng::seed_from_u64(3);
                std::hint::black_box(engine.advance(&mut line, SimTime::from_secs(3600.0), &mut r))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_sim_throughput(c: &mut Criterion) {
    c.bench_function("scrub_sweep_4k_lines_basic", |b| {
        b.iter_batched(
            || {
                let mem = Memory::new(
                    MemGeometry::new(4096, 8),
                    DeviceConfig::default(),
                    CodeSpec::secded_line(),
                    4,
                );
                let engine = ScrubEngine::new(Box::new(BasicScrub::new(4096.0, 4096)));
                (mem, engine)
            },
            |(mut mem, mut engine)| {
                for _ in 0..4096 {
                    engine.step(&mut mem);
                }
                std::hint::black_box(mem.stats().scrub_probes)
            },
            BatchSize::LargeInput,
        )
    });
    c.bench_function("scrub_sweep_4k_lines_combined", |b| {
        b.iter_batched(
            || {
                let mem = Memory::new(
                    MemGeometry::new(4096, 8),
                    DeviceConfig::default(),
                    CodeSpec::bch_line(6),
                    5,
                );
                let engine =
                    ScrubEngine::new(Box::new(CombinedScrub::new(4096.0, 4096, 5, 16, 600.0)));
                (mem, engine)
            },
            |(mut mem, mut engine)| {
                for _ in 0..4096 {
                    engine.step(&mut mem);
                }
                std::hint::black_box(mem.stats().scrub_probes)
            },
            BatchSize::LargeInput,
        )
    });
    c.bench_function("demand_op_replay_10k", |b| {
        use pcm_memsim::{OpKind, TraceSource};
        b.iter_batched(
            || {
                let mem = Memory::new(
                    MemGeometry::new(4096, 8),
                    DeviceConfig::default(),
                    CodeSpec::bch_line(6),
                    6,
                );
                let trace = WorkloadId::DbOltp.build(4096, 1.0, 7);
                (mem, trace)
            },
            |(mut mem, mut trace)| {
                for _ in 0..10_000 {
                    let op = trace.next_op().expect("infinite");
                    match op.kind {
                        OpKind::Read => {
                            mem.demand_read(op.addr, op.at);
                        }
                        OpKind::Write => mem.demand_write(op.addr, op.at),
                    }
                }
                std::hint::black_box(mem.stats().demand_reads)
            },
            BatchSize::LargeInput,
        )
    });
    // Keep a trivial use of LineAddr so the import stays meaningful if
    // benches above are edited.
    std::hint::black_box(LineAddr(0));
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_gf_arith,
        bench_bch_codec,
        bench_drift_eval,
        bench_fault_engine,
        bench_sim_throughput
);
criterion_main!(benches);
