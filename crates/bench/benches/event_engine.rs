//! Event-engine performance pin: E6 at the `BENCH_e6.json` scale under
//! both engines, with a regression gate and a machine-readable record.
//!
//! Three layers:
//!
//! 1. Criterion microbenches of a small simulation under each engine
//!    (per-change sensitivity; the numbers live in criterion's report).
//! 2. A quick-scale E6 run under stepped then event, asserting the two
//!    engines produce identical output (the differential harness at
//!    bench scale) and that the event engine has not regressed past
//!    `EVENT_REGRESSION_LIMIT` × the stepped wall-clock — the gate that
//!    keeps skip-ahead from quietly rotting.
//! 3. Optionally (`SCRUBSIM_YEAR=1`), a one-year-horizon E6 variant under
//!    the event engine, gated to finish in under the original 12-hour
//!    wall-clock budget (43 200 s).
//!
//! The measurements, the anchor speedup against the checked-in
//! `BENCH_e6.json`, and the year-horizon result land in
//! `BENCH_event.json` at the workspace root.
//!
//! Run with: `cargo bench -p scrub-bench --bench event_engine`
//! (add `SCRUBSIM_YEAR=1` to refresh the year-horizon entry).

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use scrub_bench::experiments::e6;
use scrub_bench::{runner, Scale};
use scrub_core::{EngineKind, SimConfig, Simulation};

/// The event engine may not fall behind the stepped engine by more than
/// this factor on E6 (it should be at least at parity; the margin absorbs
/// shared-machine jitter).
const EVENT_REGRESSION_LIMIT: f64 = 1.15;

/// The year-horizon run must finish inside the original 12-hour
/// wall-clock budget the stepped engine needed for a 12-hour horizon.
const YEAR_WALL_BUDGET_S: f64 = 12.0 * 3600.0;

fn micro_config(engine: EngineKind) -> SimConfig {
    SimConfig::builder()
        .num_lines(512)
        .horizon_s(1800.0)
        .seed(11)
        .threads(1)
        .engine(engine)
        .build()
}

fn bench_engines_micro(c: &mut Criterion) {
    for engine in [EngineKind::Stepped, EngineKind::Event] {
        c.bench_function(&format!("sim_512l_30min_{}", engine.label()), |b| {
            b.iter(|| {
                let sim = Simulation::new(micro_config(engine));
                black_box(sim.run())
            })
        });
    }
}

/// `cargo bench` runs the binary with the package directory as cwd; the
/// BENCH records live at the workspace root, two levels up.
fn workspace_path(name: &str) -> std::path::PathBuf {
    let manifest = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest.ancestors().nth(2).unwrap_or(manifest).join(name)
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// Pulls a numeric field out of a flat JSON record without a parser
/// dependency (the records are machine-written with one `"key": value`
/// per line).
fn json_field(text: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = &text[text.find(&pat)? + pat.len()..];
    let end = rest.find([',', '\n', '}'])?;
    rest[..end].trim().parse().ok()
}

fn timed_e6(engine: EngineKind, scale: Scale) -> (String, f64) {
    runner::set_engine(engine);
    let start = Instant::now();
    let out = e6::compute(scale);
    let wall = start.elapsed().as_secs_f64();
    (format!("{out:?}"), wall)
}

fn e6_gate_and_record() {
    scrub_exec::set_default_threads(1);
    let scale = Scale::quick();

    let (out_stepped, wall_stepped) = timed_e6(EngineKind::Stepped, scale);
    let (out_event, wall_event) = timed_e6(EngineKind::Event, scale);
    assert_eq!(
        out_stepped, out_event,
        "engines disagree on E6 headline metrics — run the differential \
         harness (cargo test -p scrub-bench --test engine_differential)"
    );
    let speedup = wall_stepped / wall_event;
    println!(
        "[event_engine] E6 quick: stepped {wall_stepped:.2}s, event {wall_event:.2}s \
         ({speedup:.2}x); outputs identical"
    );
    assert!(
        wall_event <= EVENT_REGRESSION_LIMIT * wall_stepped,
        "event engine regressed: {wall_event:.2}s vs stepped {wall_stepped:.2}s \
         (limit {EVENT_REGRESSION_LIMIT}x)"
    );

    // Speedup against the checked-in anchor record, when present.
    let anchor_wall = std::fs::read_to_string(workspace_path("BENCH_e6.json"))
        .ok()
        .and_then(|t| json_field(&t, "wall_s"));
    let anchor_speedup = anchor_wall.map(|w| w / wall_event);
    if let (Some(w), Some(s)) = (anchor_wall, anchor_speedup) {
        println!("[event_engine] vs BENCH_e6.json anchor ({w:.2}s): {s:.2}x");
    }

    // Year-horizon variant: same line count, horizon stretched to a year.
    let year = if std::env::var("SCRUBSIM_YEAR").is_ok_and(|v| v != "0" && !v.is_empty()) {
        let year_scale = Scale {
            horizon_s: 365.0 * 86_400.0,
            ..scale
        };
        let (_, wall_year) = timed_e6(EngineKind::Event, year_scale);
        println!(
            "[event_engine] E6 one-year horizon (event): {wall_year:.0}s \
             (budget {YEAR_WALL_BUDGET_S:.0}s)"
        );
        assert!(
            wall_year < YEAR_WALL_BUDGET_S,
            "one-year E6 took {wall_year:.0}s, over the {YEAR_WALL_BUDGET_S:.0}s budget"
        );
        Some(wall_year)
    } else {
        // Preserve the previously recorded value so a year-less refresh
        // does not erase the expensive measurement.
        std::fs::read_to_string(workspace_path("BENCH_event.json"))
            .ok()
            .and_then(|t| json_field(&t, "year_horizon_event_wall_s"))
    };

    let record = format!(
        "{{\n  \"experiment\": \"event_engine\",\n  \"threads\": 1,\n  \
         \"scale\": {{\n    \"num_lines\": {},\n    \"horizon_s\": {},\n    \
         \"reps\": {},\n    \"mc_cells\": {}\n  }},\n  \
         \"stepped_wall_s\": {},\n  \"event_wall_s\": {},\n  \
         \"event_speedup_vs_stepped\": {},\n  \
         \"anchor_wall_s\": {},\n  \"event_speedup_vs_anchor\": {},\n  \
         \"event_regression_limit\": {EVENT_REGRESSION_LIMIT},\n  \
         \"year_horizon_s\": {},\n  \"year_horizon_event_wall_s\": {},\n  \
         \"year_wall_budget_s\": {YEAR_WALL_BUDGET_S}\n}}\n",
        scale.num_lines,
        json_f64(scale.horizon_s),
        scale.reps,
        scale.mc_cells,
        json_f64(wall_stepped),
        json_f64(wall_event),
        json_f64(speedup),
        anchor_wall.map_or("null".into(), json_f64),
        anchor_speedup.map_or("null".into(), json_f64),
        json_f64(365.0 * 86_400.0),
        year.map_or("null".into(), json_f64),
    );
    match std::fs::write(workspace_path("BENCH_event.json"), &record) {
        Ok(()) => eprintln!("[event_engine] record: BENCH_event.json"),
        Err(e) => eprintln!("[event_engine] could not write record: {e}"),
    }
}

criterion_group!(benches, bench_engines_micro);

fn main() {
    benches();
    e6_gate_and_record();
}
