//! Disabled-path telemetry overhead: per-call costs of every recorder
//! entry point while recording is off, plus an end-to-end estimate of
//! what those calls add to an E6 quick-scale run.
//!
//! The disabled path cannot be compared against a telemetry-free build
//! from inside one binary, so the estimate is per-call cost × call count:
//! an enabled E6 run counts how many instrumented sites fire, a disabled
//! E6 run provides the wall-clock baseline, and the product of count and
//! per-call cost bounds the disabled-path overhead. The result lands in
//! `BENCH_telemetry.json` (the repo's acceptance bar is < 2%).
//!
//! Run with: `cargo bench -p scrub-bench --bench telemetry_overhead`

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, Criterion};
use scrub_bench::experiments::e6;
use scrub_bench::Scale;
use scrub_telemetry as tel;

fn bench_disabled_calls(c: &mut Criterion) {
    tel::set_enabled(false);
    c.bench_function("tel_disabled_counter_add", |b| {
        b.iter(|| tel::counter_add(black_box(tel::Counter::ScrubProbes), black_box(1)))
    });
    c.bench_function("tel_disabled_event", |b| {
        b.iter(|| {
            tel::event(
                black_box(1.0),
                tel::EventKind::DemandWriteNotify { addr: black_box(7) },
            )
        })
    });
    c.bench_function("tel_disabled_gauge_max", |b| {
        b.iter(|| tel::gauge_max(black_box(tel::Gauge::ExecJobsHighWater), black_box(3)))
    });
    c.bench_function("tel_disabled_phase", |b| {
        b.iter(|| drop(tel::phase(black_box("bench"))))
    });
    c.bench_function("tel_disabled_enabled_check", |b| {
        b.iter(|| black_box(tel::enabled()))
    });
}

/// Median ns/call of `f` called in tight 4M-iteration batches.
fn per_call_ns<F: FnMut()>(mut f: F) -> f64 {
    const CALLS: u64 = 4_000_000;
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..CALLS {
                f();
            }
            start.elapsed().as_nanos() as f64 / CALLS as f64
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn json_f64(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

fn overhead_estimate() {
    let scale = Scale::quick();
    tel::set_enabled(false);
    let counter_ns = per_call_ns(|| tel::counter_add(black_box(tel::Counter::ScrubProbes), 1));
    let event_ns = per_call_ns(|| {
        tel::event(
            black_box(0.5),
            tel::EventKind::DemandWriteNotify { addr: black_box(3) },
        )
    });

    // Baseline: E6 quick-scale with the recorder disabled.
    let start = Instant::now();
    let disabled = e6::compute(scale);
    let wall_disabled_s = start.elapsed().as_secs_f64();

    // Counting run: every counter increment is one guarded site firing.
    // Journal mask Sim keeps the enabled run's event volume negligible.
    tel::install(tel::Config {
        journal_capacity: 1024,
        event_mask: tel::EventClass::Sim.bit(),
    });
    let start = Instant::now();
    let enabled = e6::compute(scale);
    let wall_enabled_s = start.elapsed().as_secs_f64();
    let doc = tel::snapshot();
    tel::set_enabled(false);
    assert_eq!(
        disabled, enabled,
        "telemetry must not perturb simulation results"
    );
    let guarded_calls: u64 = doc.counters.values().sum();

    // Each counted site costs at most one counter-add check plus one
    // event-path check on the disabled path; double the count to bound
    // sites that only check `enabled()` and record nothing.
    let per_site_ns = counter_ns + event_ns;
    let overhead_s = 2.0 * guarded_calls as f64 * per_site_ns / 1e9;
    let overhead_pct = 100.0 * overhead_s / wall_disabled_s;
    let enabled_delta_pct = 100.0 * (wall_enabled_s - wall_disabled_s) / wall_disabled_s;

    let record = format!(
        "{{\n  \"experiment\": \"telemetry_overhead\",\n  \
         \"disabled_counter_add_ns\": {},\n  \"disabled_event_ns\": {},\n  \
         \"e6_quick_wall_s\": {},\n  \"guarded_calls\": {},\n  \
         \"disabled_overhead_pct\": {},\n  \"enabled_measured_delta_pct\": {}\n}}\n",
        json_f64(counter_ns),
        json_f64(event_ns),
        json_f64(wall_disabled_s),
        guarded_calls,
        json_f64(overhead_pct),
        json_f64(enabled_delta_pct)
    );
    println!(
        "telemetry disabled-path: {counter_ns:.3} ns/counter, {event_ns:.3} ns/event, \
         {guarded_calls} guarded calls over {wall_disabled_s:.2}s => {overhead_pct:.4}% overhead \
         (enabled run measured {enabled_delta_pct:+.2}%)"
    );
    assert!(
        overhead_pct < 2.0,
        "disabled-path overhead {overhead_pct:.4}% exceeds the 2% budget"
    );
    // `cargo bench` runs with the package directory as cwd; the record
    // belongs at the workspace root next to the other BENCH files.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .map(|root| root.join("BENCH_telemetry.json"))
        .unwrap_or_else(|| "BENCH_telemetry.json".into());
    match std::fs::write(&out, &record) {
        Ok(()) => eprintln!("[telemetry_overhead] record: {}", out.display()),
        Err(e) => eprintln!("[telemetry_overhead] could not write record: {e}"),
    }
}

criterion_group!(benches, bench_disabled_calls);

fn main() {
    benches();
    overhead_estimate();
}
