//! E17 — profiling-guided scrub + symbol ECC, oracle-validated
//! head-to-head.
//!
//! Two tables:
//!
//! * **Policy table** — the paper's combined scheme vs. a budgeted tour
//!   vs. the profiled policy at the tour's exact budget, all under BCH-6
//!   and a fault campaign that concentrates errors on a few lines (stuck
//!   cells + an SEU sprinkle), where per-line profiling should shine:
//!   the profiler's hit rate (dirty fraction among probes of *profiled*
//!   lines) is published next to the run's base dirty rate (dirty
//!   fraction among *all* probes) — concentration means the former beats
//!   the latter, and the quiet stretch converts the saved probes into
//!   fewer write-backs than the combined scheme at lower UE.
//! * **Code table** — BCH-6 vs. Reed–Solomon (72,64) over GF(2^8) under
//!   a correlated-burst campaign, same profiled policy. A 17-bit burst
//!   spans at most three byte symbols at any alignment, so RS-4 corrects
//!   every one with a symbol to spare for drift, while BCH-6 (a 6-*bit*
//!   budget) detects an uncorrectable error — the symbol code's burst
//!   edge. (Under purely random errors BCH-6 beats RS-4; see
//!   `scrub_oracle::symbol_ue_tail`'s tests.)
//!
//! Telemetry values CI guards with `jq`: `e17.profiler_hit_rate` vs.
//! `e17.random_hit_rate`, `e17.rs_ue` vs. `e17.bch_ue`, per-row
//! `e17.<label>.*`, and `e17.progress_bound_slots` (the profiled
//! analogue of the tour's model-checked `ScrubProgress` bound) against
//! the `starvation_max_lag` gauge.

use pcm_analysis::{event_rate, fmt_count, Table};
use pcm_ecc::CodeSpec;
use pcm_memsim::CampaignSpec;
use pcm_model::DeviceConfig;
use pcm_workloads::WorkloadId;
use scrub_core::{
    DemandTraffic, PolicyKind, ProfileParams, ProfiledScrub, SimConfig, SimReport, Simulation,
    TourBudget,
};
use scrub_telemetry as tel;

use crate::runner;
use crate::scale::Scale;

const INTERVAL_S: f64 = 900.0;
const THETA: u32 = 4;
const BURST_TOKENS: f64 = 64.0;
const MAX_DEFER: u32 = 8;
const HOT_STRIDE: u32 = 9;
const STRETCH: u32 = 2;
const RISK: u32 = 2;

/// Token budget for the tour and profiled rows, as a multiple of the
/// nominal one-line-per-slot rate. Demand traffic charges the same
/// bucket, so 1x leaves the scrubber starved behind db-oltp's write
/// stream (the E14 regime); 3.25x covers demand with roughly the
/// nominal scrub rate left over. The two budgeted rows share the
/// figure, so their comparison isolates profiling.
const BUDGET_FACTOR: f64 = 3.25;

fn profile_capacity(scale: &Scale) -> u32 {
    (scale.num_lines / 8).max(16)
}

fn nominal_iops(scale: &Scale) -> f64 {
    runner::scrub_iops().unwrap_or(scale.num_lines as f64 / INTERVAL_S)
}

fn profiled_kind(scale: &Scale, theta: u32, iops_factor: f64) -> PolicyKind {
    PolicyKind::Profiled {
        interval_s: INTERVAL_S,
        theta,
        iops: nominal_iops(scale) * iops_factor,
        burst: BURST_TOKENS,
        max_defer: MAX_DEFER,
        capacity: profile_capacity(scale),
        hot_stride: HOT_STRIDE,
        stretch: STRETCH,
        risk: RISK,
    }
}

/// Policy-table roster: combined, tour at the same nominal budget, and
/// the profiled policy.
pub fn roster(scale: &Scale) -> Vec<(String, PolicyKind)> {
    vec![
        (
            "combined".to_string(),
            PolicyKind::combined_default(INTERVAL_S),
        ),
        (
            "tour".to_string(),
            PolicyKind::Tour {
                interval_s: INTERVAL_S,
                theta: THETA,
                iops: nominal_iops(scale) * BUDGET_FACTOR,
                burst: BURST_TOKENS,
                max_defer: MAX_DEFER,
            },
        ),
        (
            "profiled".to_string(),
            profiled_kind(scale, THETA, BUDGET_FACTOR),
        ),
    ]
}

/// The policy table's default campaign: errors concentrated on a small
/// set of repeat-offender lines, the regime profiling is for.
/// `--fault-campaign` overrides it.
fn policy_campaign(scale: &Scale) -> CampaignSpec {
    if let Some(spec) = runner::fault_campaign() {
        return spec;
    }
    let stuck = (scale.num_lines / 32).max(4);
    let seu = (scale.num_lines / 128).max(2);
    let window = scale.horizon_s * 0.5;
    format!("seed=17;stuck=lines:{stuck},cells:2;seu=lines:{seu},count:2,window:{window:.0}")
        .parse()
        .expect("literal campaign grammar")
}

/// The code table's campaign: correlated 17-bit bursts landing
/// mid-horizon on a visible share of lines. Seventeen contiguous bits
/// span at most three byte symbols at any alignment — inside RS-4's
/// budget with a symbol to spare for background drift — while being
/// nearly three times BCH-6's bit budget.
fn burst_campaign(scale: &Scale) -> CampaignSpec {
    let lines = (scale.num_lines / 4).max(8);
    let at = scale.horizon_s / 3.0;
    format!("seed=23;burst=lines:{lines},bits:17,at:{at:.0}")
        .parse()
        .expect("literal campaign grammar")
}

/// One policy-table row, rep-averaged.
#[derive(Debug, Clone, PartialEq)]
pub struct PolicyRow {
    /// Roster label.
    pub label: String,
    /// Mean uncorrectable errors per GiB-day.
    pub ue_per_gib_day: f64,
    /// Mean scrub probes.
    pub probes: f64,
    /// Mean scrub write-backs.
    pub scrub_writes: f64,
    /// Mean scrub energy (µJ).
    pub energy_uj: f64,
    /// Dirty fraction among probes of profiled lines (profiled rows
    /// with telemetry on; `None` otherwise).
    pub hit_rate: Option<f64>,
    /// Dirty fraction among all probes of the same runs.
    pub base_rate: Option<f64>,
}

/// One code-table row, rep-averaged.
#[derive(Debug, Clone, PartialEq)]
pub struct CodeRow {
    /// Code label (`"bch-6"` / `"rs:72,64"`).
    pub label: String,
    /// Mean uncorrectable errors per GiB-day.
    pub ue_per_gib_day: f64,
    /// Mean raw uncorrectable events.
    pub ue_events: f64,
    /// Mean scrub probes.
    pub probes: f64,
    /// Mean scrub write-backs.
    pub scrub_writes: f64,
}

/// Both tables, computed.
#[derive(Debug, Clone, PartialEq)]
pub struct E17Results {
    /// Policy head-to-head under the concentrated-error campaign.
    pub policies: Vec<PolicyRow>,
    /// BCH-6 vs. RS(72,64) under the burst campaign.
    pub codes: Vec<CodeRow>,
}

fn run_one(
    scale: &Scale,
    code: &CodeSpec,
    policy: &PolicyKind,
    campaign: &CampaignSpec,
    seed: u64,
    threads: usize,
) -> SimReport {
    let mut builder = SimConfig::builder();
    builder
        .num_lines(scale.num_lines)
        .device(DeviceConfig::default())
        .code(code.clone())
        .policy(policy.clone())
        .traffic(DemandTraffic::suite(WorkloadId::DbOltp))
        .horizon_s(scale.horizon_s)
        .seed(seed)
        .threads(threads)
        .engine(runner::engine())
        .fault_campaign(campaign.clone());
    let config = builder.build();
    match runner::checkpoint_every_s() {
        Some(every_s) => {
            scrub_core::run_split(config, every_s)
                .expect("split run over config-built traces cannot fail")
                .report
        }
        None => Simulation::new(config).run(),
    }
}

/// Minimum rep count for both tables. Single-run write-back totals
/// jitter by roughly the head-to-head margin (a few tens of events at
/// quick scale), so the gates compare multi-seed means instead of one
/// draw.
const MIN_REPS: u32 = 5;

fn reps(
    scale: &Scale,
    code: &CodeSpec,
    policy: &PolicyKind,
    campaign: &CampaignSpec,
    threads: usize,
) -> Vec<SimReport> {
    let n = scale.reps.max(MIN_REPS);
    let (outer, inner) = super::split_threads(threads, n as usize);
    scrub_exec::par_map(outer, (0..n).collect(), |_, rep| {
        run_one(
            scale,
            code,
            policy,
            campaign,
            0xE17 + rep as u64 * 1000,
            inner,
        )
    })
}

/// Computes both tables without rendering.
pub fn compute(scale: Scale) -> E17Results {
    let threads = scrub_exec::default_threads();
    if tel::enabled() {
        // The run-time progress bound for the profiled policy, the
        // shadow of the tour's model-checked ScrubProgress property.
        let bound = ProfiledScrub::new(
            INTERVAL_S,
            scale.num_lines,
            8,
            THETA,
            TourBudget {
                iops: nominal_iops(&scale),
                burst: BURST_TOKENS,
                max_defer: MAX_DEFER,
            },
            ProfileParams {
                capacity: profile_capacity(&scale),
                hot_stride: HOT_STRIDE,
                stretch: STRETCH,
                risk: RISK,
            },
            0,
        )
        .progress_bound_slots();
        tel::set_value("e17.progress_bound_slots", bound as f64);
    }
    let bch = CodeSpec::bch_line(6);
    let campaign = policy_campaign(&scale);
    let policies = roster(&scale)
        .into_iter()
        .map(|(label, policy)| {
            // Profiler counters are process-global; the delta across this
            // roster entry's reps isolates its hit/dirty mix (other
            // policies never touch these counters).
            let before = [
                tel::counter_value(tel::Counter::ProfilerHits),
                tel::counter_value(tel::Counter::ProfilerMisses),
                tel::counter_value(tel::Counter::ProfilerDirtyProbes),
                tel::counter_value(tel::Counter::ScrubProbes),
            ];
            let reports = reps(&scale, &bch, &policy, &campaign, threads);
            let after = [
                tel::counter_value(tel::Counter::ProfilerHits),
                tel::counter_value(tel::Counter::ProfilerMisses),
                tel::counter_value(tel::Counter::ProfilerDirtyProbes),
                tel::counter_value(tel::Counter::ScrubProbes),
            ];
            let n = reports.len() as f64;
            let mut row = PolicyRow {
                label: label.clone(),
                ue_per_gib_day: 0.0,
                probes: 0.0,
                scrub_writes: 0.0,
                energy_uj: 0.0,
                hit_rate: None,
                base_rate: None,
            };
            for r in &reports {
                row.ue_per_gib_day += r.ue_per_gib_day();
                row.probes += r.stats.scrub_probes as f64;
                row.scrub_writes += r.stats.scrub_writebacks as f64;
                row.energy_uj += r.scrub_energy_uj;
            }
            row.ue_per_gib_day /= n;
            row.probes /= n;
            row.scrub_writes /= n;
            row.energy_uj /= n;
            let [hits, misses, dirty, probes] = [
                after[0] - before[0],
                after[1] - before[1],
                after[2] - before[2],
                after[3] - before[3],
            ];
            row.hit_rate = event_rate(hits, misses);
            if dirty > 0 {
                row.base_rate = event_rate(dirty, probes.saturating_sub(dirty));
            }
            if tel::enabled() {
                tel::set_value(&format!("e17.{label}.ue_per_gib_day"), row.ue_per_gib_day);
                tel::set_value(&format!("e17.{label}.probes"), row.probes);
                tel::set_value(&format!("e17.{label}.scrub_writes"), row.scrub_writes);
                tel::set_value(&format!("e17.{label}.energy_uj"), row.energy_uj);
                if let (Some(h), Some(b)) = (row.hit_rate, row.base_rate) {
                    tel::set_value("e17.profiler_hit_rate", h);
                    tel::set_value("e17.random_hit_rate", b);
                }
            }
            row
        })
        .collect();

    let burst = burst_campaign(&scale);
    let codes = [
        ("bch-6".to_string(), CodeSpec::bch_line(6), THETA),
        ("rs:72,64".to_string(), CodeSpec::rs_line(72, 64), 1),
    ]
    .into_iter()
    .map(|(label, code, theta)| {
        // 4x the nominal budget: the code table compares ECC strength,
        // so probes should not be the bottleneck the way they are in the
        // budget-focused policy table.
        let policy = profiled_kind(&scale, theta, 4.0);
        let reports = reps(&scale, &code, &policy, &burst, threads);
        let n = reports.len() as f64;
        let mut row = CodeRow {
            label: label.clone(),
            ue_per_gib_day: 0.0,
            ue_events: 0.0,
            probes: 0.0,
            scrub_writes: 0.0,
        };
        for r in &reports {
            row.ue_per_gib_day += r.ue_per_gib_day();
            row.ue_events += r.uncorrectable() as f64;
            row.probes += r.stats.scrub_probes as f64;
            row.scrub_writes += r.stats.scrub_writebacks as f64;
        }
        row.ue_per_gib_day /= n;
        row.ue_events /= n;
        row.probes /= n;
        row.scrub_writes /= n;
        if tel::enabled() {
            tel::set_value(
                &format!("e17.code.{label}.ue_per_gib_day"),
                row.ue_per_gib_day,
            );
            tel::set_value(&format!("e17.code.{label}.ue_events"), row.ue_events);
        }
        row
    })
    .collect::<Vec<_>>();
    if tel::enabled() {
        let find = |l: &str| codes.iter().find(|r| r.label == l).map(|r| r.ue_events);
        if let (Some(b), Some(r)) = (find("bch-6"), find("rs:72,64")) {
            tel::set_value("e17.bch_ue", b);
            tel::set_value("e17.rs_ue", r);
        }
    }
    E17Results { policies, codes }
}

/// Runs E17 and renders its tables.
pub fn run(scale: Scale) -> String {
    render(&compute(scale))
}

/// Runs E17 once, returning the rendered tables plus headline metrics
/// for the `BENCH_e17.json` record.
pub fn run_with_metrics(scale: Scale) -> (String, Vec<(String, f64)>) {
    let results = compute(scale);
    let mut metrics = Vec::new();
    for row in &results.policies {
        metrics.push((format!("{}.ue_per_gib_day", row.label), row.ue_per_gib_day));
        metrics.push((format!("{}.scrub_writes", row.label), row.scrub_writes));
        if let Some(h) = row.hit_rate {
            metrics.push((format!("{}.hit_rate", row.label), h));
        }
    }
    for row in &results.codes {
        metrics.push((format!("code.{}.ue_events", row.label), row.ue_events));
    }
    (render(&results), metrics)
}

/// Renders both tables.
fn render(results: &E17Results) -> String {
    let mut out = String::from(
        "E17: profiling-guided scrub + symbol ECC head-to-head\n\
         (concentrated-error campaign, db-oltp demand traffic)\n\n\
         Policy table (BCH-6):\n",
    );
    let mut table = Table::new(vec![
        "policy",
        "ue/GiB-day",
        "probes",
        "scrub_writes",
        "energy_uJ",
        "hit%",
        "base%",
    ]);
    for row in &results.policies {
        let pct = |v: Option<f64>| match v {
            Some(x) => format!("{:.1}", x * 100.0),
            None => "-".to_string(),
        };
        table.row(vec![
            row.label.clone(),
            format!("{:.3}", row.ue_per_gib_day),
            fmt_count(row.probes),
            fmt_count(row.scrub_writes),
            format!("{:.1}", row.energy_uj),
            pct(row.hit_rate),
            pct(row.base_rate),
        ]);
    }
    out.push_str(&table.render());
    out.push_str("\nCode table (17-bit burst campaign, profiled policy):\n");
    let mut table = Table::new(vec![
        "code",
        "ue/GiB-day",
        "ue_events",
        "probes",
        "scrub_writes",
    ]);
    for row in &results.codes {
        table.row(vec![
            row.label.clone(),
            format!("{:.3}", row.ue_per_gib_day),
            format!("{:.1}", row.ue_events),
            fmt_count(row.probes),
            fmt_count(row.scrub_writes),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: with errors concentrated on repeat-offender lines,\n\
         the profiler's hit rate beats the run's base dirty rate, and the\n\
         quiet-stretch + lazy-plus write-back spends fewer writes than the\n\
         combined scheme at equal-or-better UE. On the burst campaign the\n\
         symbol code corrects every 17-bit burst (<= 3 byte symbols) that\n\
         BCH-6's bit budget cannot, so the RS row shows strictly fewer UEs —\n\
         the reverse of the random-error ranking the oracle suite pins.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            num_lines: 512,
            horizon_s: 6.0 * 3600.0,
            reps: 1,
            mc_cells: 100,
        }
    }

    #[test]
    fn policy_table_profiles_pay_off() {
        let r = compute(tiny());
        assert_eq!(r.policies.len(), 3);
        let by = |l: &str| r.policies.iter().find(|x| x.label == l).unwrap();
        let combined = by("combined");
        let tour = by("tour");
        let profiled = by("profiled");
        assert!(profiled.probes > 0.0 && combined.probes > 0.0);
        // At the *same* token budget, the profiler's quiet stretch spends
        // strictly fewer probes and writes than the plain tour under the
        // concentrated campaign — the budget-matched claim that holds at
        // every scale. (The combined-scheme comparison needs enough tour
        // cycles for stretch batching to pay off, so CI gates it at quick
        // and full scale rather than here.)
        assert!(
            profiled.probes < tour.probes,
            "profiled {profiled:?} vs tour {tour:?}"
        );
        assert!(
            profiled.scrub_writes < tour.scrub_writes,
            "profiled {profiled:?} vs tour {tour:?}"
        );
    }

    #[test]
    fn burst_campaign_favors_the_symbol_code() {
        let r = compute(tiny());
        assert_eq!(r.codes.len(), 2);
        let by = |l: &str| r.codes.iter().find(|x| x.label == l).unwrap();
        let bch = by("bch-6");
        let rs = by("rs:72,64");
        // Every 17-bit burst defeats BCH-6 and fits RS-4's symbol budget.
        assert!(rs.ue_events < bch.ue_events, "rs {rs:?} vs bch {bch:?}");
    }
}
