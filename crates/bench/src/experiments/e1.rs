//! E1 — drift-model validation: analytic misread probability vs.
//! cell-exact Monte Carlo, per level and age.
//!
//! Paper analogue: the drift/error-model characterization figure. The
//! series to check: misread probability grows with age, is worst for the
//! high-ν intermediate levels, and the analytic fast path agrees with
//! ground truth. The `p_oracle` column is the independent closed-form
//! prediction from `scrub-oracle` (Gauss–Legendre quadrature, no shared
//! numerics with the simulator LUTs): three implementations of the same
//! physics, printed side by side.

use pcm_analysis::Table;
use pcm_model::{CellArray, DeviceConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scrub_oracle::DriftOracle;

use crate::scale::Scale;

/// Ages reported, in seconds.
const AGES: [(f64, &str); 5] = [
    (60.0, "1min"),
    (3600.0, "1h"),
    (21_600.0, "6h"),
    (86_400.0, "1d"),
    (604_800.0, "1w"),
];

/// Runs E1 and renders its table.
pub fn run(scale: Scale) -> String {
    let dev = DeviceConfig::default();
    let model = dev.drift_model();
    let oracle = DriftOracle::new(&dev);
    let mut rng = StdRng::seed_from_u64(0xE1);
    let mut out =
        String::from("E1: drift misread probability — analytic vs oracle vs Monte Carlo\n\n");
    let mut table = Table::new(vec![
        "level",
        "age",
        "p_analytic",
        "p_oracle",
        "oracle_rel",
        "p_monte_carlo",
        "rel_err",
    ]);
    for level in 0..4usize {
        let mut arr = CellArray::new(dev.clone(), scale.mc_cells);
        arr.program_all(level, 0.0, &mut rng);
        for (age, label) in AGES {
            let analytic = model.p_misread(level, age);
            let oracle_p = oracle.p_misread(level, age);
            let oracle_rel = if analytic > 0.0 {
                format!("{:.2}%", (oracle_p - analytic).abs() / analytic * 100.0)
            } else {
                "n/a".to_string()
            };
            let mc = arr.misread_fraction_for_level(level, age, &mut rng);
            // Relative error is only meaningful when the Monte-Carlo run
            // expects enough events to resolve the probability at all.
            let expected_events = analytic * scale.mc_cells as f64;
            let rel = if expected_events >= 5.0 {
                format!("{:.1}%", (mc - analytic).abs() / analytic * 100.0)
            } else {
                "n/a (<5 events)".to_string()
            };
            table.row(vec![
                format!("L{level}"),
                label.to_string(),
                format!("{analytic:.3e}"),
                format!("{oracle_p:.3e}"),
                oracle_rel,
                format!("{mc:.3e}"),
                rel,
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: p grows with age; L2 (nu=0.06) and L1 (nu=0.02) dominate;\n\
         L3 has no upper boundary so only transient noise contributes.\n\
         p_oracle is scrub-oracle's independent quadrature: oracle_rel beyond\n\
         the LUTs' documented interpolation band flags a physics regression.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_all_rows() {
        let mut s = Scale::quick();
        s.mc_cells = 5_000;
        let out = run(s);
        assert!(out.contains("L0") && out.contains("L3"));
        assert!(out.contains("1w"));
    }
}
