//! E3 — ECC-strength ladder: what stronger codes buy, with and without
//! exploiting their headroom.
//!
//! Paper analogue: the ECC table (SECDED through BCH-6). Two policies per
//! code: eager (basic, write back on any error) shows ECC alone; lazy
//! (threshold θ = t−1) shows ECC *exploited* by lightweight detection.

use pcm_analysis::{fmt_count, fmt_percent, Table};
use pcm_ecc::{standard_code_ladder, CodeSpec};
use pcm_model::DeviceConfig;
use pcm_workloads::WorkloadId;
use scrub_core::{DemandTraffic, PolicyKind};

use crate::experiments::run_reps;
use crate::scale::Scale;

const INTERVAL_S: f64 = 900.0;

/// Runs E3 and renders its table.
pub fn run(scale: Scale) -> String {
    let dev = DeviceConfig::default();
    let traffic = DemandTraffic::suite(WorkloadId::DbOltp);
    let mut out = String::from("E3: ECC strength ladder (db-oltp, 15min sweep)\n\n");
    let mut table = Table::new(vec![
        "code",
        "overhead",
        "UEs_eager",
        "writes_eager",
        "UEs_lazy",
        "writes_lazy",
        "energy_lazy_uJ",
    ]);
    for code in standard_code_ladder() {
        let eager = run_reps(
            &scale,
            &dev,
            &code,
            &PolicyKind::Basic {
                interval_s: INTERVAL_S,
            },
            &traffic,
            0xE3,
        );
        let theta = code.guaranteed_t().saturating_sub(1).max(1);
        let lazy = run_reps(
            &scale,
            &dev,
            &code,
            &PolicyKind::Threshold {
                interval_s: INTERVAL_S,
                theta,
            },
            &traffic,
            0xE3,
        );
        table.row(vec![
            code.name().to_string(),
            fmt_percent(code.storage_overhead() * 100.0),
            fmt_count(eager.ue),
            fmt_count(eager.scrub_writes),
            fmt_count(lazy.ue),
            fmt_count(lazy.scrub_writes),
            fmt_count(lazy.scrub_energy_uj),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: UEs fall steeply with code strength; lazy write-back\n\
         cuts writes by ~theta sweeps' worth while keeping UEs near the eager level.\n",
    );
    out
}

/// The ladder used (exposed for the experiments bench).
pub fn ladder() -> Vec<CodeSpec> {
    standard_code_ladder()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ladder_has_seven_codes() {
        assert_eq!(ladder().len(), 7);
    }
}
