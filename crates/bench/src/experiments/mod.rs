//! Experiment implementations E1–E13 (see DESIGN.md's experiment index).
//!
//! Every experiment is a pure function `run(scale) -> String` returning
//! the rendered tables; the `exp_*` binaries print them and the
//! `experiments` bench target runs them all in quick mode.

pub mod e1;
pub mod e10;
pub mod e11;
pub mod e12;
pub mod e13;
pub mod e14;
pub mod e15;
pub mod e16;
pub mod e17;
pub mod e2;
pub mod e3;
pub mod e4;
pub mod e5;
pub mod e6;
pub mod e7;
pub mod e8;
pub mod e9;
pub mod x1;

use pcm_ecc::CodeSpec;
use pcm_model::DeviceConfig;
use pcm_workloads::WorkloadId;
use scrub_core::{DemandTraffic, PolicyKind, SimConfig, SimReport, Simulation};

use crate::scale::Scale;

/// Builds and runs one simulation on `threads` bank-sweep workers.
///
/// Results are bit-identical for every thread count (the simulator's
/// determinism contract), so the split between outer job-level and inner
/// bank-level parallelism is purely a scheduling decision. When the
/// process has a `--fault-campaign` installed, it is attached to every
/// simulation (the campaign's own seed keeps that deterministic too).
pub(crate) fn run_sim(
    scale: &Scale,
    device: DeviceConfig,
    code: CodeSpec,
    policy: PolicyKind,
    traffic: DemandTraffic,
    seed: u64,
    threads: usize,
) -> SimReport {
    let mut builder = SimConfig::builder();
    builder
        .num_lines(scale.num_lines)
        .device(device)
        .code(code)
        .policy(policy)
        .traffic(traffic)
        .horizon_s(scale.horizon_s)
        .seed(seed)
        .threads(threads)
        .engine(crate::runner::engine());
    if let Some(spec) = crate::runner::fault_campaign() {
        builder.fault_campaign(spec);
    }
    Simulation::new(builder.build()).run()
}

/// Splits a thread budget between outer (job fan-out) and inner (per-bank
/// sweep) parallelism: with more than one independent job, the outer level
/// gets the whole budget and each simulation runs its sweeps inline.
fn split_threads(budget: usize, jobs: usize) -> (usize, usize) {
    let outer = budget.max(1).min(jobs.max(1));
    let inner = if outer > 1 { 1 } else { budget.max(1) };
    (outer, inner)
}

/// Aggregated metrics over repeated seeds (averages).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Metrics {
    pub ue: f64,
    pub demand_ue: f64,
    pub scrub_writes: f64,
    pub scrub_probes: f64,
    pub scrub_energy_uj: f64,
    pub mean_wear: f64,
    pub worn_cells: f64,
    pub scrub_utilization: f64,
    pub read_latency_ns: f64,
    pub measured_latency_ns: f64,
}

impl Metrics {
    pub fn of(reports: &[SimReport]) -> Self {
        let n = reports.len() as f64;
        assert!(n > 0.0, "no reports to aggregate");
        let mut m = Metrics::default();
        for r in reports {
            m.ue += r.uncorrectable() as f64;
            m.demand_ue += r.stats.demand_ue as f64;
            m.scrub_writes += r.stats.scrub_writebacks as f64;
            m.scrub_probes += r.stats.scrub_probes as f64;
            m.scrub_energy_uj += r.scrub_energy_uj;
            m.mean_wear += r.mean_wear;
            m.worn_cells += r.worn_cells as f64;
            m.scrub_utilization += r.scrub_utilization;
            m.read_latency_ns += r.demand_read_latency_ns;
            m.measured_latency_ns += r.measured_read_latency_ns;
        }
        m.ue /= n;
        m.demand_ue /= n;
        m.scrub_writes /= n;
        m.scrub_probes /= n;
        m.scrub_energy_uj /= n;
        m.mean_wear /= n;
        m.worn_cells /= n;
        m.scrub_utilization /= n;
        m.read_latency_ns /= n;
        m.measured_latency_ns /= n;
        m
    }
}

/// Runs a configuration once per rep seed and aggregates, fanning the
/// rep jobs out over [`scrub_exec::default_threads`] workers.
pub(crate) fn run_reps(
    scale: &Scale,
    device: &DeviceConfig,
    code: &CodeSpec,
    policy: &PolicyKind,
    traffic: &DemandTraffic,
    base_seed: u64,
) -> Metrics {
    run_reps_threads(
        scale,
        device,
        code,
        policy,
        traffic,
        base_seed,
        scrub_exec::default_threads(),
    )
}

/// [`run_reps`] with an explicit thread budget. Each rep's seed depends
/// only on `(base_seed, rep)`, so the aggregate is bit-identical for every
/// budget; `par_map` additionally returns reports in rep order.
pub fn run_reps_threads(
    scale: &Scale,
    device: &DeviceConfig,
    code: &CodeSpec,
    policy: &PolicyKind,
    traffic: &DemandTraffic,
    base_seed: u64,
    threads: usize,
) -> Metrics {
    let (outer, inner) = split_threads(threads, scale.reps as usize);
    let reports: Vec<SimReport> =
        scrub_exec::par_map(outer, (0..scale.reps).collect(), |_, rep| {
            run_sim(
                scale,
                device.clone(),
                code.clone(),
                policy.clone(),
                traffic.clone(),
                base_seed + rep as u64 * 1000,
                inner,
            )
        });
    Metrics::of(&reports)
}

/// Averages a metric across the whole workload suite, fanning the
/// `workload × rep` grid out over [`scrub_exec::default_threads`] workers.
pub(crate) fn run_suite(
    scale: &Scale,
    device: &DeviceConfig,
    code: &CodeSpec,
    policy: &PolicyKind,
    base_seed: u64,
) -> Metrics {
    run_suite_threads(
        scale,
        device,
        code,
        policy,
        base_seed,
        scrub_exec::default_threads(),
    )
}

/// [`run_suite`] with an explicit thread budget.
///
/// The whole `workload × rep` grid is flattened into one job list so the
/// pool stays busy even when `reps == 1`. Every job's seed is a pure
/// function of `(base_seed, rep)` and its RNG streams of `(seed, bank)`,
/// so results are independent of scheduling; reports are regrouped by
/// workload in suite order before averaging (f64 accumulation order is
/// part of the determinism contract).
pub fn run_suite_threads(
    scale: &Scale,
    device: &DeviceConfig,
    code: &CodeSpec,
    policy: &PolicyKind,
    base_seed: u64,
    threads: usize,
) -> Metrics {
    let workloads = WorkloadId::all();
    let jobs: Vec<(WorkloadId, u32)> = workloads
        .iter()
        .flat_map(|&id| (0..scale.reps).map(move |rep| (id, rep)))
        .collect();
    let (outer, inner) = split_threads(threads, jobs.len());
    let reports: Vec<SimReport> = scrub_exec::par_map(outer, jobs, |_, (id, rep)| {
        run_sim(
            scale,
            device.clone(),
            code.clone(),
            policy.clone(),
            DemandTraffic::suite(id),
            base_seed + rep as u64 * 1000,
            inner,
        )
    });
    let per_workload: Vec<Metrics> = reports
        .chunks(scale.reps as usize)
        .map(Metrics::of)
        .collect();
    assert_eq!(per_workload.len(), workloads.len());
    let n = per_workload.len() as f64;
    let mut m = Metrics::default();
    for w in &per_workload {
        m.ue += w.ue / n;
        m.demand_ue += w.demand_ue / n;
        m.scrub_writes += w.scrub_writes / n;
        m.scrub_probes += w.scrub_probes / n;
        m.scrub_energy_uj += w.scrub_energy_uj / n;
        m.mean_wear += w.mean_wear / n;
        m.worn_cells += w.worn_cells / n;
        m.scrub_utilization += w.scrub_utilization / n;
        m.read_latency_ns += w.read_latency_ns / n;
        m.measured_latency_ns += w.measured_latency_ns / n;
    }
    m
}

/// The evaluation's baseline configuration: DRAM-style basic scrub over
/// SECDED at a 15-minute sweep.
pub(crate) fn baseline_policy() -> (CodeSpec, PolicyKind) {
    (
        CodeSpec::secded_line(),
        PolicyKind::Basic { interval_s: 900.0 },
    )
}

/// The paper's combined mechanism over BCH-6 at the same base sweep.
pub(crate) fn combined_policy() -> (CodeSpec, PolicyKind) {
    (CodeSpec::bch_line(6), PolicyKind::combined_default(900.0))
}

/// Configurations compared in the bandwidth-overhead experiment (E9):
/// basic scrub across rates, plus the combined mechanism.
pub(crate) fn roster_for_bandwidth() -> Vec<(String, CodeSpec, PolicyKind)> {
    let mut v: Vec<(String, CodeSpec, PolicyKind)> = [60.0, 300.0, 900.0, 3600.0]
        .into_iter()
        .map(|interval_s| {
            (
                format!("basic@{interval_s:.0}s"),
                CodeSpec::secded_line(),
                PolicyKind::Basic { interval_s },
            )
        })
        .collect();
    let (code, policy) = combined_policy();
    v.push(("combined@900s".to_string(), code, policy));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_average_reports() {
        let scale = Scale {
            num_lines: 256,
            horizon_s: 1800.0,
            reps: 2,
            mc_cells: 100,
        };
        let (code, policy) = baseline_policy();
        let m = run_reps(
            &scale,
            &DeviceConfig::default(),
            &code,
            &policy,
            &DemandTraffic::Idle,
            9,
        );
        assert!(m.scrub_probes > 0.0);
    }
}
