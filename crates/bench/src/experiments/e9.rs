//! E9 — performance overhead: channel bandwidth consumed by scrubbing and
//! the resulting demand-read latency inflation.
//!
//! Paper analogue: the performance-impact figure.
//!
//! Scrub channel time per line is capacity-independent, but the channel is
//! shared at DIMM granularity — so the utilization measured on the small
//! simulated memory is rescaled to a reference 16 GiB DIMM before the
//! latency model is applied (otherwise a 1 MiB toy memory trivially shows
//! 0% share at any interval).

use pcm_analysis::{fmt_percent, Table};
use pcm_model::DeviceConfig;
use pcm_workloads::WorkloadId;
use scrub_core::DemandTraffic;

use crate::experiments::{roster_for_bandwidth, run_reps};
use crate::scale::Scale;

/// Reference DIMM capacity the utilization is scaled to.
const REF_CAPACITY_BYTES: f64 = 16.0 * (1u64 << 30) as f64;
const BASE_READ_NS: f64 = 120.0;

/// Runs E9 and renders its table.
pub fn run(scale: Scale) -> String {
    let dev = DeviceConfig::default();
    let traffic = DemandTraffic::suite(WorkloadId::DbOltp);
    let capacity_factor = REF_CAPACITY_BYTES / (scale.num_lines as f64 * 64.0);
    let mut out = format!(
        "E9: scrub bandwidth share and demand-read latency (db-oltp),\n\
         utilization scaled to a 16 GiB DIMM (factor {capacity_factor:.0})\n\n"
    );
    let mut table = Table::new(vec![
        "config",
        "scrub_bw_share@16GiB",
        "est_read_latency_ns",
        "latency_overhead",
    ]);
    for (label, code, policy) in roster_for_bandwidth() {
        let m = run_reps(&scale, &dev, &code, &policy, &traffic, 0xE9);
        let share = (m.scrub_utilization * capacity_factor).min(0.99);
        let latency = if share >= 0.9 {
            BASE_READ_NS * 10.0
        } else {
            BASE_READ_NS / (1.0 - share)
        };
        table.row(vec![
            label,
            fmt_percent(share * 100.0),
            format!("{latency:.1}"),
            fmt_percent((latency / BASE_READ_NS - 1.0) * 100.0),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: at DIMM capacities, aggressive basic scrub consumes a\n\
         large channel share (every probe-with-error triggers a ~1us write);\n\
         the combined mechanism's share at the same base interval is a small\n\
         fraction of the baseline's, keeping demand latency near the raw read\n\
         time.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use crate::experiments::roster_for_bandwidth;

    #[test]
    fn bandwidth_roster_nonempty() {
        assert!(roster_for_bandwidth().len() >= 4);
    }

    #[test]
    fn reference_capacity_is_16_gib() {
        assert_eq!(super::REF_CAPACITY_BYTES, 16.0 * 1024.0 * 1024.0 * 1024.0);
    }
}
