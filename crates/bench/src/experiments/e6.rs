//! E6 — the headline table: combined mechanism vs. the DRAM-style
//! baseline.
//!
//! Paper numbers to compare against (from the abstract): **96.5%** fewer
//! uncorrectable errors, **24.4×** fewer scrub writes, **37.8%** less
//! scrub energy.

use pcm_analysis::{
    fmt_count, fmt_percent, fmt_ratio, improvement_ratio, percent_reduction, Table,
};
use pcm_model::DeviceConfig;
use pcm_workloads::WorkloadId;
use scrub_telemetry as tel;

use crate::experiments::{baseline_policy, combined_policy, run_suite, Metrics};
use crate::scale::Scale;

/// Computed headline comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Headline {
    /// Suite-averaged metrics for basic+SECDED.
    pub basic: Metrics,
    /// Suite-averaged metrics for combined+BCH6.
    pub combined: Metrics,
}

impl Headline {
    /// UE reduction percentage (paper: 96.5%).
    pub fn ue_reduction_pct(&self) -> f64 {
        percent_reduction(self.basic.ue, self.combined.ue)
    }

    /// Scrub-write improvement ratio (paper: 24.4×).
    pub fn write_ratio(&self) -> f64 {
        improvement_ratio(self.basic.scrub_writes, self.combined.scrub_writes)
    }

    /// Scrub-energy reduction percentage (paper: 37.8%).
    pub fn energy_reduction_pct(&self) -> f64 {
        percent_reduction(self.basic.scrub_energy_uj, self.combined.scrub_energy_uj)
    }
}

/// Computes the headline comparison without rendering.
///
/// When the telemetry recorder is enabled, each suite runs under its own
/// phase scope (crediting the total simulated span it covered) and the
/// headline metrics are recorded as bit-exact `e6.*` values.
pub fn compute(scale: Scale) -> Headline {
    let dev = DeviceConfig::default();
    let (base_code, base_policy) = baseline_policy();
    let (comb_code, comb_policy) = combined_policy();
    let suite_span_s = scale.horizon_s * (WorkloadId::all().len() as u32 * scale.reps) as f64;
    let basic = {
        let mut scope = tel::phase("e6.basic_suite");
        scope.add_sim_span(suite_span_s);
        run_suite(&scale, &dev, &base_code, &base_policy, 0xE6)
    };
    let combined = {
        let mut scope = tel::phase("e6.combined_suite");
        scope.add_sim_span(suite_span_s);
        run_suite(&scale, &dev, &comb_code, &comb_policy, 0xE6)
    };
    let h = Headline { basic, combined };
    if tel::enabled() {
        for (prefix, m) in [("e6.basic", &h.basic), ("e6.combined", &h.combined)] {
            tel::set_value(&format!("{prefix}.ue"), m.ue);
            tel::set_value(&format!("{prefix}.scrub_writes"), m.scrub_writes);
            tel::set_value(&format!("{prefix}.scrub_probes"), m.scrub_probes);
            tel::set_value(&format!("{prefix}.scrub_energy_uj"), m.scrub_energy_uj);
            tel::set_value(&format!("{prefix}.mean_wear"), m.mean_wear);
        }
        tel::set_value("e6.ue_reduction_pct", h.ue_reduction_pct());
        tel::set_value("e6.write_ratio", h.write_ratio());
        tel::set_value("e6.energy_reduction_pct", h.energy_reduction_pct());
    }
    h
}

/// Runs E6 and renders its table, with paper-reported targets inline.
pub fn run(scale: Scale) -> String {
    render(&compute(scale))
}

/// Runs E6 once, returning the rendered table plus the headline metrics
/// for the `BENCH_e6.json` record.
pub fn run_with_metrics(scale: Scale) -> (String, Vec<(String, f64)>) {
    let h = compute(scale);
    let metrics = vec![
        ("ue_reduction_pct".to_string(), h.ue_reduction_pct()),
        ("write_ratio".to_string(), h.write_ratio()),
        ("energy_reduction_pct".to_string(), h.energy_reduction_pct()),
        ("basic_ue".to_string(), h.basic.ue),
        ("combined_ue".to_string(), h.combined.ue),
        ("basic_scrub_writes".to_string(), h.basic.scrub_writes),
        ("combined_scrub_writes".to_string(), h.combined.scrub_writes),
    ];
    (render(&h), metrics)
}

/// Renders the headline comparison table.
fn render(h: &Headline) -> String {
    let mut out = String::from("E6: headline — combined mechanism vs DRAM-style basic scrub\n\n");
    let mut table = Table::new(vec![
        "metric",
        "basic+SECDED",
        "combined+BCH6",
        "improvement",
        "paper",
    ]);
    table.row(vec![
        "uncorrectable errors".into(),
        fmt_count(h.basic.ue),
        fmt_count(h.combined.ue),
        fmt_percent(h.ue_reduction_pct()),
        "96.5% fewer".into(),
    ]);
    table.row(vec![
        "scrub writes".into(),
        fmt_count(h.basic.scrub_writes),
        fmt_count(h.combined.scrub_writes),
        fmt_ratio(h.write_ratio()),
        "24.4x fewer".into(),
    ]);
    table.row(vec![
        "scrub energy (uJ)".into(),
        fmt_count(h.basic.scrub_energy_uj),
        fmt_count(h.combined.scrub_energy_uj),
        fmt_percent(h.energy_reduction_pct()),
        "37.8% less".into(),
    ]);
    table.row(vec![
        "mean line wear".into(),
        format!("{:.2}", h.basic.mean_wear),
        format!("{:.2}", h.combined.mean_wear),
        fmt_percent(percent_reduction_safe(
            h.basic.mean_wear,
            h.combined.mean_wear,
        )),
        "(not reported)".into(),
    ]);
    out.push_str(&table.render());
    out.push_str(
        "\nAbsolute numbers depend on the simulated substrate; the claim checked\n\
         here is the *shape*: combined wins every axis, by a large factor on\n\
         UEs and writes and a solid margin on energy.\n",
    );
    out
}

fn percent_reduction_safe(baseline: f64, new: f64) -> f64 {
    pcm_analysis::percent_reduction(baseline, new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn headline_directions_hold_at_tiny_scale() {
        let scale = Scale {
            num_lines: 2048,
            horizon_s: 8.0 * 3600.0,
            reps: 1,
            mc_cells: 100,
        };
        let h = compute(scale);
        assert!(
            h.ue_reduction_pct() > 50.0,
            "UE reduction {}",
            h.ue_reduction_pct()
        );
        assert!(h.write_ratio() > 3.0, "write ratio {}", h.write_ratio());
        assert!(
            h.energy_reduction_pct() > 0.0,
            "energy reduction {}",
            h.energy_reduction_pct()
        );
    }
}
