//! E12 — capacity and interval scaling: normalized rates should be
//! capacity-invariant, and the interval knob moves energy/reliability as
//! predicted.
//!
//! Paper analogue: the scaling/configuration-space table.

use pcm_analysis::{fmt_count, Table};
use pcm_model::DeviceConfig;
use pcm_workloads::WorkloadId;
use scrub_core::{DemandTraffic, PolicyKind};

use crate::experiments::{combined_policy, run_reps};
use crate::scale::Scale;

/// Runs E12 and renders its tables.
pub fn run(scale: Scale) -> String {
    let dev = DeviceConfig::default();
    let (code, _) = combined_policy();
    let traffic_of = DemandTraffic::suite(WorkloadId::DbOltp);
    let mut out = String::from("E12: capacity and interval scaling (combined+BCH6, db-oltp)\n\n");

    // Part A: capacity sweep at fixed policy.
    let mut cap = Table::new(vec![
        "lines",
        "capacity",
        "UE/GiB-day",
        "energy_nJ/line-day",
    ]);
    let days = scale.horizon_s / 86_400.0;
    for factor in [1u32, 2, 4] {
        let num_lines = (scale.num_lines / 4) * factor;
        let sub = Scale { num_lines, ..scale };
        let m = run_reps(
            &sub,
            &dev,
            &code,
            &PolicyKind::combined_default(900.0),
            &traffic_of,
            0xE12,
        );
        let gib = num_lines as f64 * 64.0 / (1u64 << 30) as f64;
        cap.row(vec![
            num_lines.to_string(),
            format!("{:.1}MiB", num_lines as f64 * 64.0 / (1 << 20) as f64),
            fmt_count(m.ue / gib / days),
            fmt_count(m.scrub_energy_uj * 1e3 / num_lines as f64 / days),
        ]);
    }
    out.push_str(&cap.render());

    // Part B: base-interval sweep at fixed capacity.
    let mut intv = Table::new(vec!["base_interval", "UEs", "scrub_writes", "energy_uJ"]);
    for interval_s in [300.0, 900.0, 2700.0, 8100.0] {
        let m = run_reps(
            &scale,
            &dev,
            &code,
            &PolicyKind::combined_default(interval_s),
            &traffic_of,
            0xE12,
        );
        intv.row(vec![
            format!("{interval_s:.0}s"),
            fmt_count(m.ue),
            fmt_count(m.scrub_writes),
            fmt_count(m.scrub_energy_uj),
        ]);
    }
    out.push('\n');
    out.push_str(&intv.render());
    out.push_str(
        "\nExpected shape: normalized UE and energy rates are capacity-invariant\n\
         (part A); relaxing the base interval saves energy until drift\n\
         accumulation outruns theta and UEs reappear (part B).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn module_compiles() {
        // Execution covered by the experiments bench target.
    }
}
