//! E8 — the soft-vs-hard error tradeoff: scrub harder and drift errors
//! fall while wear-out errors rise.
//!
//! Paper analogue: the figure motivating *adaptive* scrub — there is an
//! interior optimum, and it moves with the workload, so a fixed rate is
//! always wrong somewhere. Uses an accelerated-endurance device (see
//! DESIGN.md "Substitutions") so wear-out is observable in-horizon.

use pcm_analysis::{fmt_count, Table};
use pcm_ecc::CodeSpec;
use pcm_model::{DeviceConfig, EnduranceSpec};
use pcm_workloads::WorkloadId;
use scrub_core::{DemandTraffic, PolicyKind};

use crate::experiments::run_reps;
use crate::scale::Scale;

/// Sweep intervals, most aggressive first.
const INTERVALS: [(f64, &str); 5] = [
    (60.0, "1min"),
    (300.0, "5min"),
    (900.0, "15min"),
    (3600.0, "1h"),
    (14_400.0, "4h"),
];

/// Runs E8 and renders its table.
pub fn run(scale: Scale) -> String {
    // Endurance low enough that aggressive scrubbing wears cells out
    // within the horizon, but high enough that relaxed intervals stay
    // healthy. An eager (basic) scrubber at a 1-minute sweep writes each
    // line ~140 times per day under nominal drift (it only writes when a
    // probe finds an error) while a 15-minute one writes ~70; anchoring
    // the median at horizon/400 (~216 writes/day) puts only the
    // aggressive end into wear-out — once a few cells stick, the
    // write-back spiral does the rest, which is the hard-error explosion
    // the figure is about.
    let device = DeviceConfig::builder()
        .endurance(EnduranceSpec::new(scale.horizon_s / 400.0, 0.25))
        .build();
    let code = CodeSpec::bch_line(4);
    let traffic = DemandTraffic::suite(WorkloadId::KvCache);
    let mut out =
        String::from("E8: soft vs hard errors across scrub rates (accelerated endurance)\n\n");
    let mut table = Table::new(vec![
        "interval",
        "UEs",
        "worn_cells",
        "scrub_writes",
        "mean_wear",
        "energy_uJ",
    ]);
    for (interval_s, label) in INTERVALS {
        let m = run_reps(
            &scale,
            &device,
            &code,
            &PolicyKind::Basic { interval_s },
            &traffic,
            0xE8,
        );
        table.row(vec![
            label.to_string(),
            fmt_count(m.ue),
            fmt_count(m.worn_cells),
            fmt_count(m.scrub_writes),
            format!("{:.1}", m.mean_wear),
            fmt_count(m.scrub_energy_uj),
        ]);
    }
    // The adaptive policy should land near the good part of the curve
    // without being told where it is.
    let adaptive = run_reps(
        &scale,
        &device,
        &code,
        &PolicyKind::Adaptive {
            interval_s: 900.0,
            theta: 3,
            regions: 64,
        },
        &traffic,
        0xE8,
    );
    table.row(vec![
        "adaptive".to_string(),
        fmt_count(adaptive.ue),
        fmt_count(adaptive.worn_cells),
        fmt_count(adaptive.scrub_writes),
        format!("{:.1}", adaptive.mean_wear),
        fmt_count(adaptive.scrub_energy_uj),
    ]);
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: a U-curve. Aggressive intervals minimize drift UEs but\n\
         wear cells out (worn_cells explodes, and the resulting stuck-at errors\n\
         re-inflate UEs); lazy intervals do the opposite. Adaptive lands near\n\
         the interior optimum without a hand-tuned rate.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn intervals_are_ascending() {
        for w in super::INTERVALS.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }
}
