//! E14 — UE rate and demand-latency impact vs. scrub IOPS budget.
//!
//! Extension experiment: the paper's mechanisms schedule scrub probes as
//! if they were free; a production scrubber shares an IOPS budget with
//! demand traffic. E14 runs the budgeted tour policy (`PolicyKind::Tour`)
//! at a sweep of budgets — from comfortably above the nominal tour rate
//! down to a quarter of it — head-to-head with the paper's four
//! mechanisms, under demand traffic, and reports the reliability cost
//! (UE/GiB-day) and the demand-latency impact of each point.
//!
//! The tour's `ScrubProgress` bound (`lines * (max_defer + 1)` slots) is
//! published as `e14.progress_bound_slots` in the telemetry value map so
//! CI can assert the measured `starvation_max_lag` gauge never exceeds
//! it — the run-time shadow of the model-checked property (see
//! `pcm_analysis::modelcheck`).

use pcm_analysis::{fmt_count, Table};
use pcm_ecc::CodeSpec;
use pcm_model::DeviceConfig;
use pcm_workloads::WorkloadId;
use scrub_core::{DemandTraffic, PolicyKind, SimConfig, SimReport, Simulation};
use scrub_telemetry as tel;

use crate::runner;
use crate::scale::Scale;

const INTERVAL_S: f64 = 900.0;
const THETA: u32 = 4;
/// Token-bucket capacity for every budgeted point.
const BURST: f64 = 64.0;
/// Throttled slots tolerated before the anti-starvation boost fires.
const MAX_DEFER: u32 = 8;
/// Budget sweep, as multiples of the nominal tour rate
/// (`num_lines / INTERVAL_S`, the rate that never throttles).
const BUDGET_FACTORS: [f64; 4] = [2.0, 1.0, 0.5, 0.25];

/// The paper's four mechanisms plus the budgeted tour sweep:
/// (row label, IOPS budget or None for unbudgeted, policy).
pub fn roster(scale: &Scale) -> Vec<(String, Option<f64>, PolicyKind)> {
    let mut v: Vec<(String, Option<f64>, PolicyKind)> = vec![
        (
            "basic".into(),
            None,
            PolicyKind::Basic {
                interval_s: INTERVAL_S,
            },
        ),
        (
            "threshold".into(),
            None,
            PolicyKind::Threshold {
                interval_s: INTERVAL_S,
                theta: THETA,
            },
        ),
        (
            "age-aware".into(),
            None,
            PolicyKind::AgeAware {
                interval_s: INTERVAL_S,
                theta: THETA,
                min_age_s: INTERVAL_S * 2.0 / 3.0,
            },
        ),
        (
            "combined".into(),
            None,
            PolicyKind::combined_default(INTERVAL_S),
        ),
    ];
    // `--scrub-iops` rebases the whole sweep; the factors still apply, so
    // CI can force a throttled regime at any scale.
    let nominal = scale.num_lines as f64 / INTERVAL_S;
    let base = runner::scrub_iops().unwrap_or(nominal);
    for factor in BUDGET_FACTORS {
        let iops = base * factor;
        v.push((
            format!("tour@{factor}x"),
            Some(iops),
            PolicyKind::Tour {
                interval_s: INTERVAL_S,
                theta: THETA,
                iops,
                burst: BURST,
                max_defer: MAX_DEFER,
            },
        ));
    }
    v
}

/// One roster entry's rep-averaged figures.
#[derive(Debug, Clone, PartialEq)]
pub struct BudgetRow {
    /// Roster label (`"tour@0.5x"` etc).
    pub label: String,
    /// IOPS budget; `None` for the paper's unbudgeted mechanisms.
    pub iops: Option<f64>,
    /// Mean uncorrectable errors per GiB-day.
    pub ue_per_gib_day: f64,
    /// Mean scrub probes.
    pub probes: f64,
    /// Mean scrub write-backs.
    pub scrub_writes: f64,
    /// Mean slots the budget throttled (engine idle slots; the paper's
    /// mechanisms idle only on age skips).
    pub throttled: f64,
    /// Mean measured demand-read latency (ns), queueing included.
    pub read_latency_ns: f64,
}

fn run_one(scale: &Scale, policy: &PolicyKind, seed: u64, threads: usize) -> SimReport {
    let mut builder = SimConfig::builder();
    builder
        .num_lines(scale.num_lines)
        .device(DeviceConfig::default())
        .code(CodeSpec::bch_line(6))
        .policy(policy.clone())
        .traffic(DemandTraffic::suite(WorkloadId::DbOltp))
        .horizon_s(scale.horizon_s)
        .seed(seed)
        .threads(threads)
        .engine(runner::engine());
    if let Some(spec) = runner::fault_campaign() {
        builder.fault_campaign(spec);
    }
    let config = builder.build();
    // `--checkpoint-every` routes every rep through the serialize/resume
    // path — mid-tour checkpoints included; the determinism contract
    // makes this invisible in the output.
    match runner::checkpoint_every_s() {
        Some(every_s) => {
            scrub_core::run_split(config, every_s)
                .expect("split run over config-built traces cannot fail")
                .report
        }
        None => Simulation::new(config).run(),
    }
}

/// Computes the budget table without rendering.
pub fn compute(scale: Scale) -> Vec<BudgetRow> {
    let threads = scrub_exec::default_threads();
    if tel::enabled() {
        // The run-time bound CI checks `starvation_max_lag` against.
        tel::set_value(
            "e14.progress_bound_slots",
            scale.num_lines as f64 * (MAX_DEFER as f64 + 1.0),
        );
    }
    roster(&scale)
        .into_iter()
        .map(|(label, iops, policy)| {
            let (outer, inner) = super::split_threads(threads, scale.reps as usize);
            let reports: Vec<SimReport> =
                scrub_exec::par_map(outer, (0..scale.reps).collect(), |_, rep| {
                    run_one(&scale, &policy, 0xE14 + rep as u64 * 1000, inner)
                });
            let n = reports.len() as f64;
            let mut row = BudgetRow {
                label: label.clone(),
                iops,
                ue_per_gib_day: 0.0,
                probes: 0.0,
                scrub_writes: 0.0,
                throttled: 0.0,
                read_latency_ns: 0.0,
            };
            for r in &reports {
                row.ue_per_gib_day += r.ue_per_gib_day();
                row.probes += r.stats.scrub_probes as f64;
                row.scrub_writes += r.stats.scrub_writebacks as f64;
                row.throttled += r.engine.idle_slots as f64;
                row.read_latency_ns += r.measured_read_latency_ns;
            }
            row.ue_per_gib_day /= n;
            row.probes /= n;
            row.scrub_writes /= n;
            row.throttled /= n;
            row.read_latency_ns /= n;
            if tel::enabled() {
                tel::set_value(&format!("e14.{label}.ue_per_gib_day"), row.ue_per_gib_day);
                tel::set_value(&format!("e14.{label}.probes"), row.probes);
                tel::set_value(&format!("e14.{label}.throttled"), row.throttled);
                tel::set_value(&format!("e14.{label}.read_latency_ns"), row.read_latency_ns);
            }
            row
        })
        .collect()
}

/// Runs E14 and renders its table.
pub fn run(scale: Scale) -> String {
    render(&compute(scale))
}

/// Runs E14 once, returning the rendered table plus per-row headline
/// metrics for the `BENCH_e14.json` record.
pub fn run_with_metrics(scale: Scale) -> (String, Vec<(String, f64)>) {
    let rows = compute(scale);
    let mut metrics = Vec::new();
    for row in &rows {
        metrics.push((format!("{}.ue_per_gib_day", row.label), row.ue_per_gib_day));
        metrics.push((format!("{}.throttled", row.label), row.throttled));
        metrics.push((
            format!("{}.read_latency_ns", row.label),
            row.read_latency_ns,
        ));
    }
    (render(&rows), metrics)
}

/// Renders the budget table.
fn render(rows: &[BudgetRow]) -> String {
    let mut out = String::from(
        "E14: reliability and demand latency vs. scrub IOPS budget\n\
         (tour policy at a budget sweep vs. the paper's unbudgeted mechanisms,\n\
         db-oltp demand traffic, BCH-6)\n\n",
    );
    let mut table = Table::new(vec![
        "policy",
        "iops",
        "ue/GiB-day",
        "probes",
        "scrub_writes",
        "throttled",
        "read_lat_ns",
    ]);
    for row in rows {
        table.row(vec![
            row.label.clone(),
            match row.iops {
                Some(i) => format!("{i:.2}"),
                None => "-".to_string(),
            },
            format!("{:.3}", row.ue_per_gib_day),
            fmt_count(row.probes),
            fmt_count(row.scrub_writes),
            fmt_count(row.throttled),
            format!("{:.0}", row.read_latency_ns),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: demand traffic shares the token bucket, so even the\n\
         widest budget throttles some; shrinking the budget trades probes for\n\
         throttled slots and lets drift accumulate — but the anti-starvation\n\
         boost keeps every tour inside the ScrubProgress bound, so the UE cost\n\
         grows smoothly instead of collapsing to never-scrubbed.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale {
            num_lines: 512,
            horizon_s: 6.0 * 3600.0,
            reps: 1,
            mc_cells: 100,
        }
    }

    #[test]
    fn budget_sweep_throttles_and_degrades_smoothly() {
        let rows = compute(tiny());
        assert_eq!(rows.len(), 8);
        let by_label = |l: &str| rows.iter().find(|r| r.label == l).unwrap();
        let full = by_label("tour@2x");
        let starved = by_label("tour@0.25x");
        // Demand traffic shares the bucket, so every budget throttles
        // some — but shrinking it must throttle strictly more.
        assert!(
            starved.throttled > full.throttled,
            "{starved:?} vs {full:?}"
        );
        // Throttling costs probes across the sweep.
        assert!(starved.probes < full.probes, "{starved:?} vs {full:?}");
        // But the anti-starvation floor keeps scrub alive even at a
        // quarter budget under contention.
        assert!(starved.probes > 0.0, "{starved:?}");
        // The paper's mechanisms never throttle on budget.
        let threshold = by_label("threshold");
        assert!(full.throttled > threshold.throttled, "{full:?}");
    }

    #[test]
    fn unbudgeted_mechanisms_report_no_iops() {
        let rows = compute(tiny());
        for label in ["basic", "threshold", "age-aware", "combined"] {
            assert!(rows.iter().any(|r| r.label == label && r.iops.is_none()));
        }
    }
}
