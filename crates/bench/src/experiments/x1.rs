//! X1 — extensions beyond the paper's evaluated configuration, each
//! applied on top of the combined mechanism:
//!
//! * **time-aware sensing** (age-compensated read thresholds),
//! * **CRC-first lightweight probes** (full decode only on dirty lines),
//! * **Start-Gap wear leveling** (rotating logical→physical mapping),
//! * **in-band scrub** (demand reads trigger write-back of drifted lines).
//!
//! These correspond to the "many of our solutions will also apply..." /
//! future-work directions of the paper; DESIGN.md lists them as the
//! optional-feature deliverable.

use pcm_analysis::{fmt_count, Table};
use pcm_ecc::CodeSpec;
use pcm_memsim::ProbeKind;
use pcm_model::{DeviceConfig, SensingMode};
use pcm_workloads::WorkloadId;
use scrub_core::{DemandTraffic, PolicyKind, SimConfig, SimReport, Simulation};

use crate::scale::Scale;

fn run_one(
    scale: &Scale,
    device: DeviceConfig,
    probe_kind: ProbeKind,
    wear_leveling: Option<u32>,
    inband: Option<u32>,
    seed: u64,
) -> SimReport {
    let mut b = SimConfig::builder();
    b.num_lines(scale.num_lines)
        .device(device)
        .code(CodeSpec::bch_line(6))
        .policy(PolicyKind::combined_default(900.0))
        .traffic(DemandTraffic::suite(WorkloadId::WebServe))
        .horizon_s(scale.horizon_s)
        .seed(seed)
        .engine(crate::runner::engine())
        .probe_kind(probe_kind);
    if let Some(p) = wear_leveling {
        b.wear_leveling(p);
    }
    if let Some(t) = inband {
        b.inband_writeback(t);
    }
    Simulation::new(b.build()).run()
}

/// Runs X1 and renders its table.
pub fn run(scale: Scale) -> String {
    let nominal = DeviceConfig::default();
    let time_aware = DeviceConfig::builder()
        .sensing(SensingMode::AgeCompensated)
        .build();
    let rows: Vec<(&str, SimReport)> = vec![
        (
            "combined (paper)",
            run_one(
                &scale,
                nominal.clone(),
                ProbeKind::FullDecode,
                None,
                None,
                0xA1,
            ),
        ),
        (
            "+time-aware sensing",
            run_one(&scale, time_aware, ProbeKind::FullDecode, None, None, 0xA1),
        ),
        (
            "+CRC-first probes",
            run_one(
                &scale,
                nominal.clone(),
                ProbeKind::CrcThenDecode,
                None,
                None,
                0xA1,
            ),
        ),
        (
            "+start-gap leveling",
            run_one(
                &scale,
                nominal.clone(),
                ProbeKind::FullDecode,
                Some(8),
                None,
                0xA1,
            ),
        ),
        (
            "+in-band scrub",
            run_one(&scale, nominal, ProbeKind::FullDecode, None, Some(4), 0xA1),
        ),
    ];
    let mut out =
        String::from("X1: extension mechanisms on top of the combined scrub (web-serve)\n\n");
    let mut table = Table::new(vec![
        "config",
        "UEs",
        "scrub_writes",
        "scrub_energy_uJ",
        "max_wear",
        "wl_copies",
    ]);
    for (label, r) in rows {
        table.row(vec![
            label.to_string(),
            fmt_count(r.uncorrectable() as f64),
            fmt_count(r.scrub_writes() as f64),
            fmt_count(r.scrub_energy_uj),
            r.max_wear.to_string(),
            fmt_count(r.stats.wear_level_writes as f64),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: time-aware sensing slashes UEs and write-backs at the\n\
         device level; CRC probes cut scrub decode energy; start-gap flattens\n\
         max wear at a small write-copy cost; in-band scrub mops up drifted\n\
         lines the sweep hasn't reached yet.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn module_compiles() {
        // Execution covered by the experiments bench target.
    }
}
