//! E4 — lazy write-back threshold sweep: scrub writes and energy vs. θ.
//!
//! Paper analogue: the lightweight-detection figure — how far can
//! correction be deferred before uncorrectable errors creep back?

use pcm_analysis::{fmt_count, Table};
use pcm_ecc::CodeSpec;
use pcm_model::DeviceConfig;
use pcm_workloads::WorkloadId;
use scrub_core::{DemandTraffic, PolicyKind};

use crate::experiments::run_reps;
use crate::scale::Scale;

const INTERVAL_S: f64 = 900.0;

/// Runs E4 and renders its table.
pub fn run(scale: Scale) -> String {
    let dev = DeviceConfig::default();
    let code = CodeSpec::bch_line(6);
    let traffic = DemandTraffic::suite(WorkloadId::WebServe);
    let mut out = String::from("E4: write-back threshold sweep (BCH-6, web-serve)\n\n");
    let mut table = Table::new(vec![
        "theta",
        "UEs",
        "scrub_writes",
        "writes_vs_theta1",
        "scrub_energy_uJ",
        "mean_wear",
    ]);
    let mut theta1_writes = None;
    for theta in 1..=6u32 {
        let m = run_reps(
            &scale,
            &dev,
            &code,
            &PolicyKind::Threshold {
                interval_s: INTERVAL_S,
                theta,
            },
            &traffic,
            0xE4,
        );
        let base = *theta1_writes.get_or_insert(m.scrub_writes);
        table.row(vec![
            theta.to_string(),
            fmt_count(m.ue),
            fmt_count(m.scrub_writes),
            if m.scrub_writes > 0.0 {
                format!("{:.2}x", base / m.scrub_writes)
            } else {
                "inf".to_string()
            },
            fmt_count(m.scrub_energy_uj),
            format!("{:.2}", m.mean_wear),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: writes fall sharply with theta (each extra unit of\n\
         headroom defers the write by more sweeps); UEs stay low until theta\n\
         approaches the code's capability t=6.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn interval_is_evaluation_default() {
        assert_eq!(super::INTERVAL_S, 900.0);
    }
}
