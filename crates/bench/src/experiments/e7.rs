//! E7 — workload sensitivity: the E6 comparison broken out per workload.
//!
//! Paper analogue: the per-benchmark bar charts.

use pcm_analysis::{
    fmt_count, fmt_percent, fmt_ratio, improvement_ratio, percent_reduction, Table,
};
use pcm_model::DeviceConfig;
use pcm_workloads::WorkloadId;
use scrub_core::DemandTraffic;

use crate::experiments::{baseline_policy, combined_policy, run_reps};
use crate::scale::Scale;

/// Runs E7 and renders its table.
pub fn run(scale: Scale) -> String {
    let dev = DeviceConfig::default();
    let (base_code, base_policy) = baseline_policy();
    let (comb_code, comb_policy) = combined_policy();
    let mut out = String::from("E7: per-workload headline metrics (combined vs basic)\n\n");
    let mut table = Table::new(vec![
        "workload",
        "UE_basic",
        "UE_combined",
        "UE_reduction",
        "write_ratio",
        "energy_reduction",
    ]);
    for id in WorkloadId::all() {
        let traffic = DemandTraffic::suite(id);
        let b = run_reps(&scale, &dev, &base_code, &base_policy, &traffic, 0xE7);
        let c = run_reps(&scale, &dev, &comb_code, &comb_policy, &traffic, 0xE7);
        table.row(vec![
            id.name().to_string(),
            fmt_count(b.ue),
            fmt_count(c.ue),
            fmt_percent(percent_reduction(b.ue, c.ue)),
            fmt_ratio(improvement_ratio(b.scrub_writes, c.scrub_writes)),
            fmt_percent(percent_reduction(b.scrub_energy_uj, c.scrub_energy_uj)),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: the win holds everywhere, but read-mostly/cold\n\
         workloads (web-serve, archive) keep the most residual UEs and the\n\
         lowest write ratios — scrub write-backs are genuinely needed there —\n\
         while write-churning workloads let the lazy scrubber skip almost all\n\
         corrective writes.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn module_compiles() {
        // Execution covered by the experiments bench target.
    }
}
