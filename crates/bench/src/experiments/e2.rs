//! E2 — motivation: DRAM-style SECDED scrub vs. drift, across scrub
//! intervals.
//!
//! Paper analogue: the motivation figure showing that a conventional
//! scrub + SECDED organization cannot keep MLC-PCM uncorrectable-error
//! rates down without absurd scrub rates (and even then pays enormous
//! write traffic).

use pcm_analysis::{fmt_count, Table};
use pcm_ecc::CodeSpec;
use pcm_model::DeviceConfig;
use scrub_core::{DemandTraffic, PolicyKind};

use crate::experiments::run_reps;
use crate::scale::Scale;

/// Sweep intervals reported (seconds, label).
const INTERVALS: [(f64, &str); 5] = [
    (300.0, "5min"),
    (900.0, "15min"),
    (3600.0, "1h"),
    (14_400.0, "4h"),
    (86_400.0, "1d"),
];

/// Runs E2 and renders its table.
pub fn run(scale: Scale) -> String {
    let dev = DeviceConfig::default();
    let code = CodeSpec::secded_line();
    let mut out =
        String::from("E2: basic scrub + SECDED under drift (idle memory, worst case)\n\n");
    let mut table = Table::new(vec![
        "interval",
        "UEs",
        "UE_prob_per_probe",
        "scrub_writes",
        "writes/line-day",
        "scrub_energy_uJ",
    ]);
    let days = scale.horizon_s / 86_400.0;
    for (interval_s, label) in INTERVALS {
        let m = run_reps(
            &scale,
            &dev,
            &code,
            &PolicyKind::Basic { interval_s },
            &DemandTraffic::Idle,
            0xE2,
        );
        table.row(vec![
            label.to_string(),
            fmt_count(m.ue),
            // The motivating series: how likely each sweep visit is to
            // find the line already uncorrectable. (Raw UE event counts
            // are deduplicated per write epoch, so at long intervals
            // fewer — but near-certain — discoveries occur.)
            format!("{:.2e}", m.ue / m.scrub_probes.max(1.0)),
            fmt_count(m.scrub_writes),
            fmt_count(m.scrub_writes / scale.num_lines as f64 / days),
            fmt_count(m.scrub_energy_uj),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: the per-probe UE probability climbs orders of magnitude\n\
         with the interval (drift overwhelms SECDED); short intervals trade that\n\
         for massive write traffic and energy.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_run_renders() {
        let s = Scale {
            num_lines: 512,
            horizon_s: 4.0 * 3600.0,
            reps: 1,
            mc_cells: 100,
        };
        let out = run(s);
        assert!(out.contains("15min"));
        assert!(out.contains("UE_prob_per_probe"));
    }
}
