//! E10 — drift-parameter sensitivity: do the headline conclusions survive
//! pessimistic/optimistic device assumptions?
//!
//! Paper analogue: the drift-coefficient sensitivity study.

use pcm_analysis::{
    fmt_count, fmt_percent, fmt_ratio, improvement_ratio, percent_reduction, Table,
};
use pcm_model::{DeviceConfig, DriftParams};
use pcm_workloads::WorkloadId;
use scrub_core::DemandTraffic;

use crate::experiments::{baseline_policy, combined_policy, run_reps};
use crate::scale::Scale;

/// Drift severity multipliers swept.
const NU_SCALES: [f64; 4] = [0.5, 1.0, 1.5, 2.0];
/// Drift-exponent spreads swept (log-domain σ of ν).
const SIGMAS: [f64; 2] = [0.3, 0.6];

/// Runs E10 and renders its table.
pub fn run(scale: Scale) -> String {
    let (base_code, base_policy) = baseline_policy();
    let (comb_code, comb_policy) = combined_policy();
    let traffic = DemandTraffic::suite(WorkloadId::KvCache);
    let mut out = String::from("E10: sensitivity to drift severity and spread (kv-cache)\n\n");
    let mut table = Table::new(vec![
        "nu_scale",
        "sigma_ln_nu",
        "UE_basic",
        "UE_combined",
        "UE_reduction",
        "write_ratio",
    ]);
    for sigma in SIGMAS {
        for nu_scale in NU_SCALES {
            let device = DeviceConfig::builder()
                .drift(DriftParams::new(sigma, 1.0).with_scale(nu_scale))
                .build();
            let b = run_reps(&scale, &device, &base_code, &base_policy, &traffic, 0xE10);
            let c = run_reps(&scale, &device, &comb_code, &comb_policy, &traffic, 0xE10);
            table.row(vec![
                format!("{nu_scale:.1}"),
                format!("{sigma:.1}"),
                fmt_count(b.ue),
                fmt_count(c.ue),
                fmt_percent(percent_reduction(b.ue, c.ue)),
                fmt_ratio(improvement_ratio(b.scrub_writes, c.scrub_writes)),
            ]);
        }
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: absolute UE counts move orders of magnitude with drift\n\
         severity, but the combined mechanism's relative advantage persists\n\
         across the sweep (the conclusion is not an artifact of one ν choice).\n",
    );
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweeps_cover_nominal() {
        assert!(super::NU_SCALES.contains(&1.0));
        assert!(super::SIGMAS.contains(&0.3));
    }
}
