//! E11 — ablation: the combined mechanism minus one ingredient at a time.
//!
//! Paper analogue: the design-choice breakdown; DESIGN.md calls these out
//! as the ablation benches.

use pcm_analysis::{fmt_count, Table};
use pcm_ecc::CodeSpec;
use pcm_model::DeviceConfig;
use scrub_core::PolicyKind;

use crate::experiments::run_suite;
use crate::scale::Scale;

const INTERVAL_S: f64 = 900.0;

/// Ablation variants: (label, code, policy).
pub fn variants() -> Vec<(&'static str, CodeSpec, PolicyKind)> {
    let full = PolicyKind::Combined {
        interval_s: INTERVAL_S,
        theta: 4,
        regions: 64,
        min_age_s: INTERVAL_S * 2.0 / 3.0,
    };
    vec![
        ("combined (full)", CodeSpec::bch_line(6), full.clone()),
        (
            // Strong ECC replaced by SECDED; θ must drop to its capability.
            "-strong-ECC",
            CodeSpec::secded_line(),
            PolicyKind::Combined {
                interval_s: INTERVAL_S,
                theta: 1,
                regions: 64,
                min_age_s: INTERVAL_S * 2.0 / 3.0,
            },
        ),
        (
            // Lazy write-back disabled: θ=1 writes back on any error.
            "-lazy-writeback",
            CodeSpec::bch_line(6),
            PolicyKind::Combined {
                interval_s: INTERVAL_S,
                theta: 1,
                regions: 64,
                min_age_s: INTERVAL_S * 2.0 / 3.0,
            },
        ),
        (
            // Age filter disabled.
            "-age-filter",
            CodeSpec::bch_line(6),
            PolicyKind::Combined {
                interval_s: INTERVAL_S,
                theta: 4,
                regions: 64,
                min_age_s: 0.0,
            },
        ),
        (
            // Adaptive pacing disabled: one region cannot specialize, and
            // with the whole memory as one region the AIMD signal averages
            // out — approximates a fixed-rate sweep.
            "-adaptive",
            CodeSpec::bch_line(6),
            PolicyKind::AgeAware {
                interval_s: INTERVAL_S,
                theta: 4,
                min_age_s: INTERVAL_S * 2.0 / 3.0,
            },
        ),
    ]
}

/// Runs E11 and renders its table.
pub fn run(scale: Scale) -> String {
    let dev = DeviceConfig::default();
    let mut out = String::from("E11: ablation — combined minus one feature (suite average)\n\n");
    let mut table = Table::new(vec![
        "variant",
        "UEs",
        "scrub_writes",
        "probes",
        "energy_uJ",
        "mean_wear",
    ]);
    for (label, code, policy) in variants() {
        let m = run_suite(&scale, &dev, &code, &policy, 0xE11);
        table.row(vec![
            label.to_string(),
            fmt_count(m.ue),
            fmt_count(m.scrub_writes),
            fmt_count(m.scrub_probes),
            fmt_count(m.scrub_energy_uj),
            format!("{:.2}", m.mean_wear),
        ]);
    }
    out.push_str(&table.render());
    out.push_str(
        "\nExpected shape: dropping strong ECC devastates UEs; dropping lazy\n\
         write-back multiplies writes; dropping the age filter or adaptivity\n\
         costs energy/probes with little UE benefit.\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_variants() {
        assert_eq!(variants().len(), 5);
    }
}
